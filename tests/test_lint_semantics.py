"""Tests for the lint v2 semantic layer: index, call graph and rules.

Each semantic rule (LCK001, LCK002, DET001, EXC001, SCH001) gets a
planted true-positive fixture, a ``# repro: noqa``-suppressed variant
and a clean near-miss; the phase-1 machinery (symbol tables, call-graph
resolution, must-hold propagation, lock association) is exercised
directly on synthetic repositories under ``tmp_path``.  A meta-test
asserts the live repository is clean under the semantic rules alone.
"""

import textwrap

from repro.lint import LintConfig, LintEngine
from repro.lint import main as lint_main

SEMANTIC_RULES = {"LCK001", "LCK002", "DET001", "EXC001", "SCH001"}


def make_repo(tmp_path, files):
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    return tmp_path


def run_fixture(tmp_path, files, **overrides):
    root = make_repo(tmp_path, files)
    config = LintConfig(root=root, paths=(root / "src",), **overrides)
    return LintEngine(config).run()


def rules_of(report):
    return sorted({f.rule for f in report.findings})


# ---------------------------------------------------------------------------
# phase 1: the project index
# ---------------------------------------------------------------------------


class TestProjectIndex:
    def index(self, tmp_path, files):
        root = make_repo(tmp_path, files)
        config = LintConfig(root=root, paths=(root / "src",))
        engine = LintEngine(config)
        contexts, errors = engine.parse_all()
        assert errors == []
        return engine.build_index(contexts)

    def test_cross_module_call_edge_resolves(self, tmp_path):
        index = self.index(tmp_path, {
            "src/pkg/a.py": (
                "from pkg.b import helper\n\n"
                "def caller():\n"
                "    return helper()\n"
            ),
            "src/pkg/b.py": "def helper():\n    return 1\n",
        })
        assert ("pkg.b:helper",) == tuple(
            sorted(index.graph.edges.get("pkg.a:caller", ())))

    def test_method_call_through_self_resolves(self, tmp_path):
        index = self.index(tmp_path, {
            "src/pkg/c.py": """\
                class Engine:
                    def run(self):
                        return self._step()

                    def _step(self):
                        return 0
                """,
        })
        assert "pkg.c:Engine._step" in index.graph.edges.get(
            "pkg.c:Engine.run", set())

    def test_must_hold_propagates_to_private_helper(self, tmp_path):
        index = self.index(tmp_path, {
            "src/pkg/d.py": """\
                import threading

                _LOCK = threading.Lock()
                _CACHE = {}  # repro: lock(_LOCK)

                def put(key, value):
                    with _LOCK:
                        _store(key, value)

                def _store(key, value):
                    _CACHE[key] = value
                """,
        })
        assert ("pkg.d", "", "_LOCK") in index.must_hold.get(
            "pkg.d:_store", frozenset())

    def test_must_hold_is_intersection_over_call_sites(self, tmp_path):
        index = self.index(tmp_path, {
            "src/pkg/e.py": """\
                import threading

                _LOCK = threading.Lock()

                def locked():
                    with _LOCK:
                        _work()

                def unlocked():
                    _work()

                def _work():
                    return 1
                """,
        })
        assert index.must_hold.get("pkg.e:_work", frozenset()) == frozenset()

    def test_escaping_function_inherits_nothing(self, tmp_path):
        index = self.index(tmp_path, {
            "src/pkg/f.py": """\
                import threading

                _LOCK = threading.Lock()
                CALLBACK = None

                def install():
                    global CALLBACK
                    CALLBACK = _work  # escapes: unknown future call sites

                def locked():
                    with _LOCK:
                        _work()

                def _work():
                    return 1
                """,
        })
        assert index.must_hold.get("pkg.f:_work", frozenset()) == frozenset()

    def test_lock_association_by_annotation(self, tmp_path):
        index = self.index(tmp_path, {
            "src/pkg/g.py": """\
                import threading

                _LOCK = threading.Lock()
                _ITEMS = []  # repro: lock(_LOCK)
                """,
        })
        summary = index.locks["pkg.g"]
        var = summary.variables[("pkg.g", "", "_ITEMS")]
        assert var.lock == ("pkg.g", "", "_LOCK")
        assert not var.inferred

    def test_lock_association_by_inference(self, tmp_path):
        index = self.index(tmp_path, {
            "src/pkg/h.py": """\
                import threading

                _LOCK = threading.Lock()
                _ITEMS = []

                def a():
                    with _LOCK:
                        _ITEMS.append(1)

                def b():
                    with _LOCK:
                        _ITEMS.append(2)

                def c():
                    with _LOCK:
                        return len(_ITEMS)
                """,
        })
        summary = index.locks["pkg.h"]
        var = summary.variables[("pkg.h", "", "_ITEMS")]
        assert var.lock == ("pkg.h", "", "_LOCK")
        assert var.inferred

    def test_unassociated_candidate_has_no_lock(self, tmp_path):
        index = self.index(tmp_path, {
            "src/pkg/i.py": (
                "_ITEMS = []\n\n"
                "def add(x):\n"
                "    _ITEMS.append(x)\n"
            ),
        })
        summary = index.locks["pkg.i"]
        assert list(summary.guarded_vars()) == []


# ---------------------------------------------------------------------------
# LCK001 — lock discipline
# ---------------------------------------------------------------------------


ANNOTATED_CACHE = """\
    import threading

    _LOCK = threading.Lock()
    _CACHE = {{}}  # repro: lock(_LOCK)

    def put(key, value):
        with _LOCK:
            _CACHE[key] = value

    def get(key):
        return _CACHE.get(key){noqa}
    """


class TestLCK001:
    def run(self, tmp_path, body, **overrides):
        return run_fixture(tmp_path, {"src/pkg/m.py": body},
                           select={"LCK001"}, **overrides)

    def test_unguarded_read_of_annotated_var_flagged(self, tmp_path):
        report = self.run(tmp_path, ANNOTATED_CACHE.format(noqa=""))
        assert rules_of(report) == ["LCK001"]
        [finding] = report.findings
        assert "read of `_CACHE`" in finding.message
        assert "annotated" in finding.message
        assert finding.line == 11

    def test_noqa_suppresses(self, tmp_path):
        report = self.run(
            tmp_path,
            ANNOTATED_CACHE.format(noqa="  # repro: noqa[LCK001]"))
        assert report.findings == []

    def test_all_accesses_locked_is_clean(self, tmp_path):
        report = self.run(tmp_path, """\
            import threading

            _LOCK = threading.Lock()
            _CACHE = {}  # repro: lock(_LOCK)

            def put(key, value):
                with _LOCK:
                    _CACHE[key] = value

            def get(key):
                with _LOCK:
                    return _CACHE.get(key)
            """)
        assert report.findings == []

    def test_inferred_association_flags_the_outlier(self, tmp_path):
        report = self.run(tmp_path, """\
            import threading

            _LOCK = threading.Lock()
            _ITEMS = []

            def a():
                with _LOCK:
                    _ITEMS.append(1)

            def b():
                with _LOCK:
                    _ITEMS.append(2)

            def c():
                with _LOCK:
                    _ITEMS.append(3)

            def peek():
                return list(_ITEMS)
            """)
        assert rules_of(report) == ["LCK001"]
        [finding] = report.findings
        assert "inferred from usage" in finding.message
        assert finding.line == 19

    def test_unassociated_variable_is_not_flagged(self, tmp_path):
        # No annotation and no majority usage pattern: no association,
        # no findings — discovery alone must not fire the rule.
        report = self.run(tmp_path, (
            "_ITEMS = []\n\n"
            "def add(x):\n"
            "    _ITEMS.append(x)\n"
        ))
        assert report.findings == []

    def test_module_level_and_init_are_exempt(self, tmp_path):
        report = self.run(tmp_path, """\
            import threading

            _LOCK = threading.Lock()
            _CACHE = {}  # repro: lock(_LOCK)
            _CACHE["boot"] = 1

            def put(key, value):
                with _LOCK:
                    _CACHE[key] = value

            def get(key):
                with _LOCK:
                    return _CACHE.get(key)
            """)
        assert report.findings == []

    def test_unknown_annotation_is_a_problem_finding(self, tmp_path):
        report = self.run(tmp_path, (
            "_CACHE = {}  # repro: lock(_NOPE)\n"
        ))
        assert rules_of(report) == ["LCK001"]
        assert "names no known lock" in report.findings[0].message

    def test_must_hold_inheritance_keeps_helper_clean(self, tmp_path):
        report = self.run(tmp_path, """\
            import threading

            _LOCK = threading.Lock()
            _CACHE = {}  # repro: lock(_LOCK)

            def put(key, value):
                with _LOCK:
                    _store(key, value)

            def get(key):
                with _LOCK:
                    return _CACHE.get(key)

            def _store(key, value):
                _CACHE[key] = value
            """)
        assert report.findings == []

    def test_state_object_attribute_identity_unifies(self, tmp_path):
        # `self.items` in the class and `_STATE.items` at module scope
        # are the same variable when the class has a unique instance.
        report = self.run(tmp_path, """\
            import threading

            class _State:
                def __init__(self):
                    self.lock = threading.Lock()
                    self.items = []  # repro: lock(lock)

            _STATE = _State()

            def add(x):
                with _STATE.lock:
                    _STATE.items.append(x)

            def peek():
                return list(_STATE.items)
            """)
        assert rules_of(report) == ["LCK001"]
        [finding] = report.findings
        assert finding.line == 15
        assert "_STATE.items" in finding.message

    def test_global_scalar_rebind_is_a_candidate(self, tmp_path):
        report = self.run(tmp_path, """\
            import threading

            _LOCK = threading.Lock()
            _ENABLED = False  # repro: lock(_LOCK)

            def enable():
                global _ENABLED
                with _LOCK:
                    _ENABLED = True

            def enabled():
                return _ENABLED
            """)
        assert rules_of(report) == ["LCK001"]
        assert report.findings[0].line == 12

    def test_local_shadow_is_not_an_access(self, tmp_path):
        report = self.run(tmp_path, """\
            import threading

            _LOCK = threading.Lock()
            _CACHE = {}  # repro: lock(_LOCK)

            def other(_CACHE):
                return _CACHE.get("k")
            """)
        assert report.findings == []


# ---------------------------------------------------------------------------
# LCK002 — self-deadlock
# ---------------------------------------------------------------------------


class TestLCK002:
    def run(self, tmp_path, body):
        return run_fixture(tmp_path, {"src/pkg/m.py": body},
                           select={"LCK002"})

    def test_direct_nesting_flagged(self, tmp_path):
        report = self.run(tmp_path, """\
            import threading

            _LOCK = threading.Lock()

            def bad():
                with _LOCK:
                    with _LOCK:
                        pass
            """)
        assert rules_of(report) == ["LCK002"]
        [finding] = report.findings
        assert finding.line == 7
        assert "not reentrant" in finding.message

    def test_rlock_nesting_is_clean(self, tmp_path):
        report = self.run(tmp_path, """\
            import threading

            _LOCK = threading.RLock()

            def fine():
                with _LOCK:
                    with _LOCK:
                        pass
            """)
        assert report.findings == []

    def test_two_different_locks_are_clean(self, tmp_path):
        report = self.run(tmp_path, """\
            import threading

            _A = threading.Lock()
            _B = threading.Lock()

            def fine():
                with _A:
                    with _B:
                        pass
            """)
        assert report.findings == []

    def test_transitive_reacquire_flagged_at_call_site(self, tmp_path):
        # `_inner` also runs lock-free from `safe`, so must-hold stays
        # empty and only the call-graph walk can see the deadlock.
        report = self.run(tmp_path, """\
            import threading

            _LOCK = threading.Lock()

            def outer():
                with _LOCK:
                    _inner()

            def safe():
                _inner()

            def _inner():
                with _LOCK:
                    pass
            """)
        assert rules_of(report) == ["LCK002"]
        [finding] = report.findings
        assert finding.line == 7
        assert "_inner" in finding.message

    def test_must_hold_makes_inherited_reacquire_direct(self, tmp_path):
        # Every call site of `_inner` holds the lock, so `_inner`'s own
        # `with _LOCK:` is a guaranteed deadlock even without a path.
        report = self.run(tmp_path, """\
            import threading

            _LOCK = threading.Lock()

            def outer():
                with _LOCK:
                    _inner()

            def _inner():
                with _LOCK:
                    pass
            """)
        assert "LCK002" in rules_of(report)
        assert any(f.line == 10 for f in report.findings)

    def test_noqa_suppresses(self, tmp_path):
        report = self.run(tmp_path, """\
            import threading

            _LOCK = threading.Lock()

            def bad():
                with _LOCK:
                    with _LOCK:  # repro: noqa[LCK002]
                        pass
            """)
        assert report.findings == []


# ---------------------------------------------------------------------------
# DET001 — determinism reachability
# ---------------------------------------------------------------------------


def det_fixture(tmp_path, files, **overrides):
    overrides.setdefault("det_entry_prefixes", ("pkg.solvers.",))
    return run_fixture(tmp_path, files, select={"DET001"}, **overrides)


class TestDET001:
    def test_entry_reaching_global_prng_flagged(self, tmp_path):
        report = det_fixture(tmp_path, {
            "src/pkg/solvers/s.py": """\
                import random

                __all__ = ["solve"]

                def solve(graph):
                    return _jitter(graph)

                def _jitter(graph):
                    return random.random()
                """,
        })
        assert rules_of(report) == ["DET001"]
        [finding] = report.findings
        assert finding.line == 5
        assert "`solve`" in finding.message
        assert "via" in finding.message

    def test_cross_module_path_flagged(self, tmp_path):
        report = det_fixture(tmp_path, {
            "src/pkg/solvers/s.py": """\
                from pkg.util import shake

                __all__ = ["solve"]

                def solve(graph):
                    return shake(graph)
                """,
            "src/pkg/util.py": """\
                import random

                def shake(graph):
                    return random.shuffle(graph)
                """,
        })
        assert rules_of(report) == ["DET001"]
        assert "pkg/util.py" in report.findings[0].message

    def test_wall_clock_counts_as_nondeterminism(self, tmp_path):
        report = det_fixture(tmp_path, {
            "src/pkg/solvers/s.py": """\
                import time

                __all__ = ["solve"]

                def solve(graph):
                    return _stamp(graph)

                def _stamp(graph):
                    return time.time()
                """,
        })
        assert rules_of(report) == ["DET001"]
        assert "wall clock" in report.findings[0].message

    def test_source_in_entry_body_is_rng001s_job(self, tmp_path):
        report = det_fixture(tmp_path, {
            "src/pkg/solvers/s.py": """\
                import random

                __all__ = ["solve"]

                def solve(graph):
                    return random.random()
                """,
        })
        assert report.findings == []

    def test_seeded_helper_is_clean(self, tmp_path):
        report = det_fixture(tmp_path, {
            "src/pkg/solvers/s.py": """\
                import random

                __all__ = ["solve"]

                def solve(graph):
                    return _jitter(graph)

                def _jitter(graph):
                    return random.Random(7).random()
                """,
        })
        assert report.findings == []

    def test_exempt_prefix_sources_do_not_count(self, tmp_path):
        report = det_fixture(tmp_path, {
            "src/pkg/solvers/s.py": """\
                from pkg.obs.clock import stamp

                __all__ = ["solve"]

                def solve(graph):
                    return stamp(graph)
                """,
            "src/pkg/obs/clock.py": """\
                import time

                def stamp(graph):
                    return time.time()
                """,
        }, det_exempt_prefixes=("pkg.obs.",))
        assert report.findings == []

    def test_private_and_out_of_scope_functions_exempt(self, tmp_path):
        report = det_fixture(tmp_path, {
            # Not in __all__: not an entry point.
            "src/pkg/solvers/s.py": """\
                import random

                def helper(graph):
                    return _jitter(graph)

                def _jitter(graph):
                    return random.random()
                """,
            # Public, but outside det_entry_prefixes.
            "src/pkg/analysis/a.py": """\
                import random

                __all__ = ["tabulate"]

                def tabulate(rows):
                    return _jitter(rows)

                def _jitter(rows):
                    return random.random()
                """,
        })
        assert report.findings == []

    def test_noqa_suppresses(self, tmp_path):
        report = det_fixture(tmp_path, {
            "src/pkg/solvers/s.py": """\
                import random

                __all__ = ["solve"]

                def solve(graph):  # repro: noqa[DET001]
                    return _jitter(graph)

                def _jitter(graph):
                    return random.random()
                """,
        })
        assert report.findings == []


# ---------------------------------------------------------------------------
# EXC001 — instrumentation cleanup
# ---------------------------------------------------------------------------


class TestEXC001:
    def run(self, tmp_path, body):
        return run_fixture(tmp_path, {"src/pkg/m.py": body},
                           select={"EXC001"})

    def test_discarded_span_flagged(self, tmp_path):
        report = self.run(tmp_path, """\
            from pkg.obs.tracing import span

            def work(x):
                span("work")
                return x
            """)
        assert rules_of(report) == ["EXC001"]
        assert "discards" in report.findings[0].message

    def test_with_span_is_clean(self, tmp_path):
        report = self.run(tmp_path, """\
            from pkg.obs.tracing import span

            def work(x):
                with span("work"):
                    return x
            """)
        assert report.findings == []

    def test_release_outside_finally_flagged(self, tmp_path):
        report = self.run(tmp_path, """\
            from pkg.obs import resources

            def sample(run):
                resources.start_sampler()
                run()
                resources.stop_sampler()
            """)
        assert rules_of(report) == ["EXC001"]
        [finding] = report.findings
        assert finding.line == 6
        assert "finally" in finding.message

    def test_release_in_finally_is_clean(self, tmp_path):
        report = self.run(tmp_path, """\
            from pkg.obs import resources

            def sample(run):
                resources.start_sampler()
                try:
                    run()
                finally:
                    resources.stop_sampler()
            """)
        assert report.findings == []

    def test_enable_tracing_false_pairs_with_true(self, tmp_path):
        report = self.run(tmp_path, """\
            from pkg.obs.tracing import enable_tracing

            def traced(run):
                enable_tracing(True)
                run()
                enable_tracing(False)
            """)
        assert rules_of(report) == ["EXC001"]
        assert report.findings[0].line == 6

    def test_release_without_acquire_is_clean(self, tmp_path):
        # Tear-down helpers releasing state acquired elsewhere are fine.
        report = self.run(tmp_path, """\
            from pkg.obs import resources

            def teardown():
                resources.stop_sampler()
            """)
        assert report.findings == []

    def test_module_level_pairs_are_exempt(self, tmp_path):
        report = self.run(tmp_path, """\
            from pkg.obs import resources

            resources.start_sampler()
            resources.stop_sampler()
            """)
        assert report.findings == []

    def test_noqa_suppresses(self, tmp_path):
        report = self.run(tmp_path, """\
            from pkg.obs import resources

            def sample(run):
                resources.start_sampler()
                run()
                resources.stop_sampler()  # repro: noqa[EXC001]
            """)
        assert report.findings == []


# ---------------------------------------------------------------------------
# SCH001 — schema-version drift
# ---------------------------------------------------------------------------


class TestSCH001:
    def run(self, tmp_path, files, **overrides):
        return run_fixture(tmp_path, files, select={"SCH001"}, **overrides)

    def test_stale_reader_flagged(self, tmp_path):
        report = self.run(tmp_path, {
            "src/pkg/writer.py":
                'SCHEMA = "repro.obs/ledger-record/v2"\n',
            "src/pkg/reader.py":
                'ACCEPTED = "repro.obs/ledger-record/v1"\n',
        })
        assert rules_of(report) == ["SCH001"]
        [finding] = report.findings
        assert finding.path == "src/pkg/reader.py"
        assert "v1" in finding.message and "v2" in finding.message

    def test_migration_reader_mentioning_both_is_clean(self, tmp_path):
        report = self.run(tmp_path, {
            "src/pkg/writer.py":
                'SCHEMA = "repro.obs/ledger-record/v2"\n',
            "src/pkg/reader.py": (
                'CURRENT = "repro.obs/ledger-record/v2"\n'
                'LEGACY = "repro.obs/ledger-record/v1"\n'
            ),
        })
        assert report.findings == []

    def test_bare_mention_counts_for_the_file(self, tmp_path):
        # A docstring saying "ledger-record/v1" without the repro.obs/
        # prefix still marks the file as talking about the family.
        report = self.run(tmp_path, {
            "src/pkg/writer.py":
                'SCHEMA = "repro.obs/ledger-record/v2"\n',
            "src/pkg/tooling.py":
                '"""Validates ledger-record/v1 files."""\n',
        })
        assert rules_of(report) == ["SCH001"]
        assert report.findings[0].path == "src/pkg/tooling.py"

    def test_unrelated_families_do_not_interact(self, tmp_path):
        report = self.run(tmp_path, {
            "src/pkg/writer.py":
                'SCHEMA = "repro.obs/ledger-record/v2"\n',
            "src/pkg/events.py":
                'EVENT_SCHEMA = "repro.obs/event/v1"\n',
        })
        assert report.findings == []

    def test_docs_participate_via_schema_docs(self, tmp_path):
        report = self.run(tmp_path, {
            "src/pkg/writer.py":
                'SCHEMA = "repro.obs/ledger-record/v2"\n',
            "docs/format.md":
                "Records follow `repro.obs/ledger-record/v1`.\n",
        }, schema_docs=(tmp_path / "docs",))
        assert rules_of(report) == ["SCH001"]
        assert report.findings[0].path == "docs/format.md"

    def test_noqa_suppresses(self, tmp_path):
        report = self.run(tmp_path, {
            "src/pkg/writer.py":
                'SCHEMA = "repro.obs/ledger-record/v2"\n',
            "src/pkg/reader.py": (
                'ACCEPTED = "repro.obs/ledger-record/v1"'
                "  # repro: noqa[SCH001]\n"
            ),
        })
        assert report.findings == []


# ---------------------------------------------------------------------------
# the live repository is clean under the semantic rules
# ---------------------------------------------------------------------------


class TestLiveRepoSemantics:
    def test_semantic_rules_find_nothing(self, capsys):
        code = lint_main([
            "--strict", "--select", ",".join(sorted(SEMANTIC_RULES)),
        ])
        out = capsys.readouterr().out
        assert code == 0, out

    def test_full_run_is_fast(self):
        from pathlib import Path

        import repro.lint as lint_pkg

        root = Path(lint_pkg.__file__).resolve().parents[3]
        report = LintEngine(LintConfig.for_repo(root)).run()
        assert report.elapsed_s < 10.0
