"""Tests for repro.obs v2: run ledger, deterministic profiler, watchdog."""

from __future__ import annotations

import json

import pytest

from repro.core.game import TupleGame
from repro.graphs.core import Graph
from repro.graphs.generators import cycle_graph, grid_graph
from repro.obs import ledger, metrics as obs_metrics, tracing
from repro.obs import prof, watchdog
from repro.obs.tracing import Span


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts and ends with ledger/tracing off, buffers empty."""
    ledger.disable_ledger()
    tracing.enable_tracing(False)
    tracing.clear_trace()
    yield
    ledger.disable_ledger()
    tracing.enable_tracing(False)
    tracing.clear_trace()


@pytest.fixture
def ledger_dir(tmp_path):
    d = tmp_path / "ledger"
    ledger.enable_ledger(d)
    yield d
    ledger.disable_ledger()


def _solve(k=2, nu=2, graph=None):
    from repro.equilibria.solve import solve_game

    return solve_game(TupleGame(graph or cycle_graph(6), k, nu))


# --------------------------------------------------------------------------
# ledger


class TestLedgerRecording:
    def test_disabled_run_is_shared_noop(self):
        assert ledger.run("x") is ledger.run("y")
        with ledger.run("x", game=object()) as handle:
            assert handle is None

    def test_solve_lands_in_ledger(self, ledger_dir):
        _solve()
        records = ledger.read_runs(
            directory=ledger_dir, entry_point="equilibria.solve"
        )
        assert len(records) == 1
        record = records[0]
        assert record["schema"] == ledger.RECORD_SCHEMA
        assert record["status"] == "ok"
        assert record["duration_s"] > 0.0
        fp = record["fingerprint"]
        assert fp["kind"] == "tuple-game"
        assert len(fp["sha256"]) == 64
        assert (fp["n"], fp["m"], fp["k"], fp["nu"]) == (6, 6, 2, 2)
        assert record["metrics"]["counters"]["equilibria.solve.count"] >= 1
        assert [s["name"] for s in record["spans"]] == ["equilibria.solve"]
        assert record["env"]["cpu_count"] >= 1
        assert record["env"]["python"]

    def test_run_id_is_content_addressed(self, ledger_dir):
        _solve()
        record = ledger.read_runs(directory=ledger_dir)[-1]
        body = {k: v for k, v in record.items() if k != "run_id"}
        assert ledger._canonical_sha256(body)[:16] == record["run_id"]

    def test_error_run_recorded_with_exception(self, ledger_dir):
        from repro.equilibria.solve import NoEquilibriumFoundError, solve_game

        # C5 + chord defeats every structural construction at k=1.
        house = Graph([(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)])
        with pytest.raises(NoEquilibriumFoundError):
            solve_game(TupleGame(house, 1, 1))
        record = ledger.read_runs(
            directory=ledger_dir, entry_point="equilibria.solve", status="error"
        )[-1]
        assert record["error"]["type"] == "NoEquilibriumFoundError"
        assert "k=1" in record["error"]["message"]

    def test_append_only_across_runs(self, ledger_dir):
        _solve()
        _solve()
        path = ledger_dir / "equilibria.solve.jsonl"
        assert len(path.read_text().splitlines()) == 2

    def test_fingerprint_deterministic_across_instances(self):
        a = ledger.fingerprint_game(TupleGame(grid_graph(3, 3), 2, 1))
        b = ledger.fingerprint_game(TupleGame(grid_graph(3, 3), 2, 1))
        c = ledger.fingerprint_game(TupleGame(grid_graph(3, 3), 3, 1))
        assert a["sha256"] == b["sha256"]
        assert a["sha256"] != c["sha256"]

    def test_solver_routes_record(self, ledger_dir):
        from repro.solvers.double_oracle import double_oracle
        from repro.solvers.fictitious_play import fictitious_play

        game = TupleGame(cycle_graph(6), 2, 1)
        double_oracle(game)
        fictitious_play(game, rounds=5)
        points = {
            r["entry_point"] for r in ledger.read_runs(directory=ledger_dir)
        }
        assert "solvers.double_oracle" in points
        assert "solvers.fictitious_play" in points

    def test_fuzz_batch_records_dict_fingerprint(self, ledger_dir):
        from repro.fuzz.runner import run_fuzz

        run_fuzz(count=2, seed=3)
        record = ledger.read_runs(
            directory=ledger_dir, entry_point="fuzz.run"
        )[-1]
        assert record["fingerprint"] == {
            "kind": "fuzz-batch", "count": 2, "seed": 3,
        }

    def test_recording_failure_never_breaks_the_solve(self, tmp_path):
        # Point the ledger at a path that cannot be a directory.
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        ledger.enable_ledger(blocker / "sub")
        before = obs_metrics.counter("ledger.errors.count").value
        assert _solve().kind == "k-matching"
        assert obs_metrics.counter("ledger.errors.count").value > before


class TestLedgerReading:
    def test_filters_and_limit(self, ledger_dir):
        _solve(k=1, nu=1)
        _solve(k=2, nu=1)
        _solve(k=2, nu=1)
        all_runs = ledger.read_runs(directory=ledger_dir)
        solves = ledger.read_runs(
            directory=ledger_dir, entry_point="equilibria.solve"
        )
        assert len(solves) == 3
        assert len(all_runs) >= 3
        fp = solves[-1]["fingerprint"]["sha256"]
        same = ledger.read_runs(
            directory=ledger_dir, fingerprint_sha256=fp
        )
        assert len(same) == 2
        newest = ledger.read_runs(
            directory=ledger_dir, entry_point="equilibria.solve", limit=1
        )
        assert len(newest) == 1
        assert newest[0]["started_at"] == max(
            r["started_at"] for r in solves
        )

    def test_read_tolerates_torn_line(self, ledger_dir):
        _solve()
        path = ledger_dir / "equilibria.solve.jsonl"
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"schema": "repro.obs/ledger-re')  # torn write
        assert len(ledger.read_runs(directory=ledger_dir)) == 1

    def test_find_run_by_prefix(self, ledger_dir):
        _solve()
        record = ledger.read_runs(directory=ledger_dir)[-1]
        assert ledger.find_run(
            record["run_id"][:6], directory=ledger_dir
        ) == record
        assert ledger.find_run("ffffffffff", directory=ledger_dir) is None

    def test_run_diff_same_game(self, ledger_dir):
        _solve()
        _solve()
        a, b = ledger.read_runs(
            directory=ledger_dir, entry_point="equilibria.solve"
        )
        diff = ledger.run_diff(a, b)
        assert diff["same_fingerprint"] is True
        assert diff["env_changes"] == {}
        assert diff["entry_points"] == ["equilibria.solve"] * 2
        # The second run bumped the cumulative solve counter.
        assert diff["metrics"]["counters"]["equilibria.solve.count"] >= 1

    def test_run_diff_different_games(self, ledger_dir):
        _solve(k=1)
        _solve(k=2)
        runs = ledger.read_runs(
            directory=ledger_dir, entry_point="equilibria.solve"
        )
        assert ledger.run_diff(runs[0], runs[1])["same_fingerprint"] is False

    def test_missing_directory_reads_empty(self, tmp_path):
        assert ledger.read_runs(directory=tmp_path / "nope") == []


# --------------------------------------------------------------------------
# profiler


def _span(name, start, duration, children=(), status="ok", **attributes):
    s = Span(name, attributes)
    s.start = start
    s.duration_s = duration
    s.status = status
    s.children = list(children)
    return s


class TestAggregate:
    def test_self_time_subtracts_children(self):
        inner = _span("inner", 0.1, 0.3)
        outer = _span("outer", 0.0, 1.0, children=[inner])
        stats = prof.aggregate([outer])
        assert stats["outer"].total_s == pytest.approx(1.0)
        assert stats["outer"].self_s == pytest.approx(0.7)
        assert stats["inner"].self_s == pytest.approx(0.3)
        assert stats["outer"].calls == 1

    def test_recursive_span_not_double_counted(self):
        leaf = _span("f", 0.2, 0.4)
        root = _span("f", 0.0, 1.0, children=[leaf])
        stats = prof.aggregate([root])
        assert stats["f"].calls == 2
        assert stats["f"].total_s == pytest.approx(1.0)  # outermost only
        assert stats["f"].self_s == pytest.approx(0.6 + 0.4)

    def test_errors_counted(self):
        stats = prof.aggregate([_span("x", 0.0, 0.1, status="error")])
        assert stats["x"].errors == 1

    def test_defaults_to_thread_trace(self):
        tracing.enable_tracing(True)
        with tracing.span("live"):
            pass
        assert "live" in prof.aggregate()

    def test_render_aggregate(self):
        inner = _span("inner", 0.1, 0.3)
        outer = _span("outer", 0.0, 1.0, children=[inner])
        text = prof.render_aggregate(prof.aggregate([outer]))
        lines = text.splitlines()
        assert lines[0].split() == [
            "span", "calls", "total", "ms", "self", "ms", "self", "%",
        ]
        # Hottest self-time first: outer (0.7) before inner (0.3).
        assert lines[1].startswith("outer")
        assert lines[2].startswith("inner")

    def test_render_empty(self):
        assert prof.render_aggregate({}) == "(no spans recorded)"


class TestFoldedStacks:
    def test_format_and_merge(self):
        run1 = _span("root", 0.0, 1.0, children=[_span("leaf", 0.1, 0.4)])
        run2 = _span("root", 2.0, 1.0, children=[_span("leaf", 2.1, 0.4)])
        text = prof.to_folded_stacks([run1, run2])
        assert text.endswith("\n")
        lines = dict(
            line.rsplit(" ", 1) for line in text.strip().splitlines()
        )
        # Identical stacks merged; self-time in integer microseconds.
        assert int(lines["root"]) == 2 * 600_000
        assert int(lines["root;leaf"]) == 2 * 400_000

    def test_empty_is_empty_string(self):
        assert prof.to_folded_stacks([]) == ""

    def test_write(self, tmp_path):
        target = prof.write_folded_stacks(
            tmp_path / "out.folded", [_span("a", 0.0, 0.5)]
        )
        assert target.read_text() == "a 500000\n"


class TestChromeTrace:
    def test_schema(self):
        inner = _span("pkg.inner", 0.25, 0.5, status="error", n=3)
        inner.error_type = "ValueError"
        outer = _span("pkg.outer", 0.0, 1.0, children=[inner])
        document = prof.to_chrome_trace([outer])
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"]["generator"] == "repro.obs.prof"
        events = document["traceEvents"]
        assert [e["name"] for e in events] == ["pkg.outer", "pkg.inner"]
        for event in events:
            assert event["ph"] == "X"
            assert event["pid"] == 1 and event["tid"] == 1
            assert event["cat"] == "pkg"
        outer_ev, inner_ev = events
        assert outer_ev["ts"] == 0.0
        assert outer_ev["dur"] == pytest.approx(1e6)
        assert inner_ev["ts"] == pytest.approx(0.25e6)
        assert inner_ev["args"] == {
            "n": 3, "error": True, "error_type": "ValueError",
        }

    def test_events_sorted_parents_first(self):
        a = _span("a", 1.0, 0.2)
        b = _span("b", 0.5, 1.0, children=[_span("b.child", 0.5, 0.9)])
        events = prof.to_chrome_trace([a, b])["traceEvents"]
        assert [e["name"] for e in events] == ["b", "b.child", "a"]

    def test_empty_trace(self):
        assert prof.to_chrome_trace([])["traceEvents"] == []

    def test_write_round_trips(self, tmp_path):
        tracing.enable_tracing(True)
        with tracing.span("outer"):
            with tracing.span("inner"):
                pass
        target = prof.write_chrome_trace(tmp_path / "trace.json")
        document = json.loads(target.read_text())
        assert {e["name"] for e in document["traceEvents"]} == {
            "outer", "inner",
        }


# --------------------------------------------------------------------------
# watchdog


def _history(values, case="case.a", rev_prefix="r"):
    return [
        {"git_rev": f"{rev_prefix}{i}", "timestamp": None,
         "cases": {case: v}}
        for i, v in enumerate(values)
    ]


class TestWatchdogCheck:
    def test_injected_2x_slowdown_detected(self):
        history = _history([0.10, 0.11, 0.09, 0.10, 0.12])
        report = watchdog.check(history, {"case.a": 0.20})
        assert not report.ok
        regression = report.regressions[0]
        assert regression.case == "case.a"
        assert regression.baseline_s == pytest.approx(0.10)
        assert regression.current_s == pytest.approx(0.20)
        assert "2.00x" in regression.describe()

    def test_steady_timing_passes(self):
        history = _history([0.10, 0.11, 0.09, 0.10, 0.12])
        report = watchdog.check(history, {"case.a": 0.12})
        assert report.ok
        assert report.checked == ["case.a"]

    def test_median_defeats_single_outlier(self):
        # One historic 10x spike must not raise the bar.
        history = _history([0.10, 0.10, 1.0, 0.10, 0.10])
        assert not watchdog.check(history, {"case.a": 0.20}).ok

    def test_no_history_case_skipped_not_fatal(self):
        report = watchdog.check(_history([0.1]), {"case.b": 5.0})
        assert report.ok
        assert report.skipped == ["case.b"]
        assert "no trailing history" in report.summary()

    def test_window_limits_lookback(self):
        # Old slow era followed by a fast era: a small window must judge
        # against the fast era only.
        history = _history([1.0] * 10 + [0.1] * 5)
        assert watchdog.check(history, {"case.a": 0.3}, window=15).ok
        assert not watchdog.check(history, {"case.a": 0.3}, window=5).ok

    def test_custom_ratio(self):
        history = _history([0.10] * 3)
        assert watchdog.check(history, {"case.a": 0.25}, ratio=3.0).ok
        assert not watchdog.check(history, {"case.a": 0.25}, ratio=2.0).ok


class TestWatchdogFile:
    def _write(self, tmp_path, document):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(document))
        return path

    def test_newest_entry_vs_trailing(self, tmp_path):
        document = {
            "schema": watchdog.SCHEMA_V2, "cases": {},
            "history": _history([0.1, 0.1, 0.1, 0.5]),
        }
        report = watchdog.watch_file(self._write(tmp_path, document))
        assert not report.ok
        assert "r3" in report.baseline_label

    def test_live_timings_against_full_history(self, tmp_path):
        document = {
            "schema": watchdog.SCHEMA_V2, "cases": {},
            "history": _history([0.1, 0.1, 0.1]),
        }
        path = self._write(tmp_path, document)
        assert watchdog.watch_file(path, current={"case.a": 0.1}).ok
        assert not watchdog.watch_file(path, current={"case.a": 0.9}).ok

    def test_against_pins_single_revision(self, tmp_path):
        document = {
            "schema": watchdog.SCHEMA_V2, "cases": {},
            "history": _history([0.05, 0.4, 0.1]),
        }
        path = self._write(tmp_path, document)
        # Against the slow r1 entry 0.2s is fine; against fast r0 it is not.
        assert watchdog.watch_file(
            path, current={"case.a": 0.2}, against="r1"
        ).ok
        assert not watchdog.watch_file(
            path, current={"case.a": 0.2}, against="r0"
        ).ok

    def test_against_unknown_revision_raises(self, tmp_path):
        document = {
            "schema": watchdog.SCHEMA_V2, "cases": {}, "history": [],
        }
        with pytest.raises(ValueError, match="no history entry"):
            watchdog.watch_file(
                self._write(tmp_path, document), current={}, against="zzz"
            )

    def test_committed_trajectory_passes(self):
        """The real BENCH_KERNELS.json must be watchdog-clean as committed."""
        from pathlib import Path

        path = Path(__file__).parent.parent / "BENCH_KERNELS.json"
        report = watchdog.watch_file(path)
        assert report.ok, report.summary()
        assert report.checked  # it actually compared something


class TestMigration:
    V1 = {
        "schema": watchdog.SCHEMA_V1,
        "slack": {"relative": 0.2, "absolute_s": 0.05},
        "cases": {
            "case.a": {"wall_clock_s": 0.125, "reference_s": 0.5},
            "case.b": {"wall_clock_s": 0.250, "reference_s": None},
        },
    }

    def test_v1_becomes_pre_history_entry(self):
        migrated = watchdog.migrate_history(self.V1)
        assert migrated["schema"] == watchdog.SCHEMA_V2
        assert migrated["cases"] == self.V1["cases"]  # snapshot preserved
        (entry,) = migrated["history"]
        assert entry["git_rev"] == "pre-history"
        assert entry["cases"] == {"case.a": 0.125, "case.b": 0.250}

    def test_v2_passes_through_unchanged(self):
        document = {"schema": watchdog.SCHEMA_V2, "history": []}
        assert watchdog.migrate_history(document) is document

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="unrecognized"):
            watchdog.migrate_history({"schema": "something/else"})

    def test_load_history_document_migrates(self, tmp_path):
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(self.V1))
        assert (
            watchdog.load_history_document(path)["schema"]
            == watchdog.SCHEMA_V2
        )


class TestCanonicalJson:
    """The explicit canonicalizer behind run ids and cache keys.

    Regression: the encoder previously leaned on ``json.dumps(...,
    default=str)``, so sets hashed in ``PYTHONHASHSEED``-dependent
    iteration order, NaN/Infinity leaked as non-RFC tokens, and unknown
    types were silently stringified into near-miss identities.
    """

    def test_key_order_independent(self):
        assert ledger.canonical_json({"b": 1, "a": 2}) \
            == ledger.canonical_json({"a": 2, "b": 1})

    def test_sets_sorted_independent_of_insertion(self):
        forward = ledger.canonical_json({"s": {1, 2, 3, 10}})
        backward = ledger.canonical_json({"s": frozenset([10, 3, 2, 1])})
        assert forward == backward
        assert json.loads(forward)["s"] == sorted(
            json.loads(forward)["s"],
            key=lambda m: json.dumps(m, sort_keys=True))

    def test_mixed_type_sets_are_deterministic(self):
        # Sorted by canonical JSON encoding, not by hash order.
        a = ledger.canonical_json({"s": {1, "1", 2.5}})
        b = ledger.canonical_json({"s": {"1", 2.5, 1}})
        assert a == b

    def test_nonfinite_floats_tagged(self):
        text = ledger.canonical_json(
            [float("nan"), float("inf"), float("-inf")])
        assert "NaN" not in text and "Infinity" not in text
        assert json.loads(text) == [
            {"__nonfinite__": "nan"},
            {"__nonfinite__": "inf"},
            {"__nonfinite__": "-inf"},
        ]

    def test_unknown_types_raise(self):
        with pytest.raises(TypeError):
            ledger.canonical_json({"x": object()})
        with pytest.raises(TypeError):
            ledger.canonical_json({1: "non-string key"})

    def test_tuples_encode_as_lists(self):
        assert ledger.canonical_json((1, 2)) == ledger.canonical_json([1, 2])

    def test_sha256_matches_canonical_text(self):
        import hashlib

        payload = {"z": {3, 1}, "a": [1.5, "x"]}
        expected = hashlib.sha256(
            ledger.canonical_json(payload).encode("utf-8")).hexdigest()
        assert ledger.canonical_sha256(payload) == expected
        # The private alias older tools import still points at it.
        assert ledger._canonical_sha256(payload) == expected
