"""Unit tests for pure/mixed configurations (repro.core.configuration)."""

import pytest

from repro.core.configuration import MixedConfiguration, PureConfiguration
from repro.core.game import GameError, TupleGame
from repro.graphs.generators import complete_bipartite_graph, path_graph


@pytest.fixture
def game():
    return TupleGame(path_graph(4), k=2, nu=2)


class TestPureConfiguration:
    def test_basic(self, game):
        config = PureConfiguration(game, [0, 3], [(0, 1), (2, 3)])
        assert config.vertex_choices == (0, 3)
        assert config.tuple_choice == ((0, 1), (2, 3))
        assert config.covered_vertices() == frozenset({0, 1, 2, 3})

    def test_rejects_wrong_attacker_count(self, game):
        with pytest.raises(GameError, match="expected 2"):
            PureConfiguration(game, [0], [(0, 1), (2, 3)])

    def test_rejects_foreign_vertex(self, game):
        with pytest.raises(GameError, match="not a vertex"):
            PureConfiguration(game, [0, 9], [(0, 1), (2, 3)])

    def test_rejects_wrong_tuple_size(self, game):
        with pytest.raises(GameError, match="exactly k=2"):
            PureConfiguration(game, [0, 3], [(0, 1)])

    def test_rejects_foreign_edge(self, game):
        with pytest.raises(GameError, match="not an edge"):
            PureConfiguration(game, [0, 3], [(0, 1), (0, 2)])

    def test_tuple_is_canonicalized(self, game):
        config = PureConfiguration(game, [0, 0], [(3, 2), (1, 0)])
        assert config.tuple_choice == ((0, 1), (2, 3))


class TestMixedValidation:
    def test_rejects_wrong_number_of_vp_distributions(self, game):
        with pytest.raises(GameError, match="expected 2"):
            MixedConfiguration(game, [{0: 1.0}], {((0, 1), (2, 3)): 1.0})

    def test_rejects_negative_probability(self, game):
        with pytest.raises(GameError, match="negative"):
            MixedConfiguration(
                game,
                [{0: 1.5, 1: -0.5}, {0: 1.0}],
                {((0, 1), (2, 3)): 1.0},
            )

    def test_rejects_mass_not_one(self, game):
        with pytest.raises(GameError, match="sum to 1"):
            MixedConfiguration(
                game, [{0: 0.7}, {0: 1.0}], {((0, 1), (2, 3)): 1.0}
            )

    def test_rejects_empty_support(self, game):
        with pytest.raises(GameError, match="empty support"):
            MixedConfiguration(game, [{}, {0: 1.0}], {((0, 1), (2, 3)): 1.0})

    def test_rejects_foreign_vertex(self, game):
        with pytest.raises(GameError, match="non-vertex"):
            MixedConfiguration(game, [{9: 1.0}, {0: 1.0}], {((0, 1), (2, 3)): 1.0})

    def test_rejects_wrong_tuple_arity(self, game):
        with pytest.raises(GameError, match="requires k=2"):
            MixedConfiguration(game, [{0: 1.0}, {0: 1.0}], {((0, 1),): 1.0})

    def test_rejects_duplicate_tuple_keys(self, game):
        # Same edge set under two orderings must be detected as one tuple.
        with pytest.raises(GameError, match="twice"):
            MixedConfiguration(
                game,
                [{0: 1.0}, {0: 1.0}],
                {((0, 1), (2, 3)): 0.5, ((2, 3), (0, 1)): 0.5},
            )

    def test_drops_zero_entries(self, game):
        config = MixedConfiguration(
            game,
            [{0: 1.0, 2: 0.0}, {0: 1.0}],
            {((0, 1), (2, 3)): 1.0, ((0, 1), (1, 2)): 0.0},
        )
        assert config.vp_support(0) == frozenset({0})
        assert config.tp_support() == frozenset({((0, 1), (2, 3))})

    def test_renormalizes_within_tolerance(self, game):
        p = 1.0 / 3.0
        config = MixedConfiguration(
            game,
            [{0: p, 1: p, 2: p}, {0: 1.0}],
            {((0, 1), (2, 3)): 1.0},
        )
        assert abs(sum(config.vp_distribution(0).values()) - 1.0) < 1e-15


class TestSupports:
    def test_supports_and_probabilities(self, game):
        config = MixedConfiguration(
            game,
            [{0: 0.5, 3: 0.5}, {1: 1.0}],
            {((0, 1), (2, 3)): 0.25, ((1, 2), (2, 3)): 0.75},
        )
        assert config.vp_support(0) == frozenset({0, 3})
        assert config.vp_support(1) == frozenset({1})
        assert config.vp_support_union() == frozenset({0, 1, 3})
        assert config.tp_support_edges() == frozenset({(0, 1), (1, 2), (2, 3)})
        assert config.tp_support_vertices() == frozenset({0, 1, 2, 3})
        assert config.prob_vp(0, 0) == 0.5
        assert config.prob_vp(0, 1) == 0.0
        assert config.prob_tp([(2, 3), (0, 1)]) == 0.25
        assert config.prob_tp([(0, 1), (1, 2)]) == 0.0

    def test_tuples_containing(self, game):
        config = MixedConfiguration(
            game,
            [{0: 1.0}, {0: 1.0}],
            {((0, 1), (2, 3)): 0.5, ((1, 2), (2, 3)): 0.5},
        )
        assert set(config.tuples_containing(0)) == {((0, 1), (2, 3))}
        assert len(config.tuples_containing(2)) == 2
        assert config.tuples_containing(99) == ()


class TestConstructors:
    def test_from_pure_is_degenerate(self, game):
        pure = PureConfiguration(game, [0, 3], [(0, 1), (2, 3)])
        mixed = MixedConfiguration.from_pure(pure)
        assert mixed.prob_vp(0, 0) == 1.0
        assert mixed.prob_tp(((0, 1), (2, 3))) == 1.0

    def test_uniform(self):
        game = TupleGame(complete_bipartite_graph(2, 3), k=1, nu=3)
        config = MixedConfiguration.uniform(
            game, [2, 3, 4], [[(0, 2)], [(0, 3)], [(1, 4)]]
        )
        for i in range(3):
            for v in (2, 3, 4):
                assert config.prob_vp(i, v) == pytest.approx(1 / 3)
        assert config.prob_tp([(0, 2)]) == pytest.approx(1 / 3)

    def test_uniform_deduplicates_support(self, game):
        config = MixedConfiguration.uniform(
            game, [0, 0, 3], [[(0, 1), (2, 3)]]
        )
        assert config.prob_vp(0, 0) == pytest.approx(0.5)

    def test_uniform_rejects_empty(self, game):
        with pytest.raises(GameError):
            MixedConfiguration.uniform(game, [], [[(0, 1), (2, 3)]])
        with pytest.raises(GameError):
            MixedConfiguration.uniform(game, [0], [])


class TestRenormalizationFixpoint:
    """Regression: construction renormalized by ``p / total`` even when the
    mass was already 1 up to an ulp, perturbing every probability and
    making JSON round trips drift bytes (found by the repro.fuzz
    differential harness).  Near-unit masses are now preserved verbatim.
    """

    def test_near_unit_masses_are_preserved_exactly(self, game):
        masses = {0: 0.7, 1: 0.2, 3: 0.1}
        assert sum(masses.values()) != 1.0  # 0.9999999999999999: the trap
        config = MixedConfiguration(
            game,
            [masses, {2: 1.0}],
            {((0, 1), (2, 3)): 1.0},
        )
        assert config.vp_distribution(0) == masses

    def test_construction_is_a_fixpoint(self, game):
        config = MixedConfiguration(
            game,
            [{0: 1 / 3, 1: 1 / 3, 3: 1 / 3}, {2: 0.3, 0: 0.7}],
            {((0, 1), (2, 3)): 1 / 6, ((1, 2), (2, 3)): 5 / 6},
        )
        again = MixedConfiguration(
            config.game,
            [config.vp_distribution(i) for i in range(game.nu)],
            config.tp_distribution(),
        )
        assert again.tp_distribution() == config.tp_distribution()
        for i in range(game.nu):
            assert again.vp_distribution(i) == config.vp_distribution(i)

    def test_far_from_unit_mass_still_renormalizes_or_fails(self, game):
        with pytest.raises(GameError, match="sum to 1"):
            MixedConfiguration(
                game,
                [{0: 0.6, 1: 0.6}, {2: 1.0}],
                {((0, 1), (2, 3)): 1.0},
            )
