"""Tests for configuration serialization (repro.core.serialize)."""

import json

import pytest

from repro.core.characterization import is_mixed_nash
from repro.core.configuration import MixedConfiguration
from repro.core.game import GameError, TupleGame
from repro.core.profits import expected_profit_tp
from repro.core.serialize import (
    configuration_from_json,
    configuration_to_json,
    solve_result_to_json,
)
from repro.equilibria.solve import solve_game
from repro.graphs.generators import complete_bipartite_graph, grid_graph, path_graph


@pytest.fixture
def equilibrium():
    game = TupleGame(grid_graph(2, 3), 2, nu=3)
    return game, solve_game(game).mixed


class TestRoundTrip:
    def test_preserves_distributions(self, equilibrium):
        game, config = equilibrium
        restored = configuration_from_json(configuration_to_json(config))
        assert restored.game == game
        assert restored.tp_distribution() == config.tp_distribution()
        for i in range(game.nu):
            assert restored.vp_distribution(i) == config.vp_distribution(i)

    def test_restored_equilibrium_is_still_nash(self, equilibrium):
        game, config = equilibrium
        restored = configuration_from_json(configuration_to_json(config))
        assert is_mixed_nash(restored.game, restored)
        assert expected_profit_tp(restored) == pytest.approx(
            expected_profit_tp(config)
        )

    def test_string_vertices(self):
        from repro.graphs.core import Graph

        game = TupleGame(Graph([("a", "b"), ("b", "c")]), 1, nu=1)
        config = MixedConfiguration(
            game, [{"a": 0.5, "c": 0.5}], {(("a", "b"),): 0.5, (("b", "c"),): 0.5}
        )
        restored = configuration_from_json(configuration_to_json(config))
        assert restored.prob_vp(0, "a") == pytest.approx(0.5)

    def test_deterministic_output(self, equilibrium):
        _, config = equilibrium
        assert configuration_to_json(config) == configuration_to_json(config)


class TestValidationOnLoad:
    def test_rejects_bad_json(self):
        with pytest.raises(GameError, match="invalid JSON"):
            configuration_from_json("{oops")

    def test_rejects_wrong_format_tag(self):
        with pytest.raises(GameError, match="unrecognized"):
            configuration_from_json(json.dumps({"format": "something.else"}))

    def test_rejects_missing_sections(self, equilibrium):
        _, config = equilibrium
        payload = json.loads(configuration_to_json(config))
        del payload["tuple_player"]
        with pytest.raises(GameError, match="missing 'tuple_player'"):
            configuration_from_json(json.dumps(payload))

    def test_rejects_tampered_probabilities(self, equilibrium):
        _, config = equilibrium
        payload = json.loads(configuration_to_json(config))
        payload["tuple_player"][0]["probability"] = 0.9999
        with pytest.raises(GameError, match="sum to 1"):
            configuration_from_json(json.dumps(payload))

    def test_rejects_foreign_edge_in_tuple(self, equilibrium):
        _, config = equilibrium
        payload = json.loads(configuration_to_json(config))
        payload["tuple_player"][0]["edges"][0] = [0, 5]
        with pytest.raises(GameError):
            configuration_from_json(json.dumps(payload))

    def test_rejects_malformed_game(self, equilibrium):
        _, config = equilibrium
        payload = json.loads(configuration_to_json(config))
        del payload["game"]["k"]
        with pytest.raises(GameError, match="malformed game"):
            configuration_from_json(json.dumps(payload))


class TestSolveResultDocument:
    def test_contains_solve_metadata(self):
        game = TupleGame(complete_bipartite_graph(2, 4), 2, nu=5)
        result = solve_game(game)
        payload = json.loads(solve_result_to_json(result))
        assert payload["solve"]["kind"] == "k-matching"
        assert payload["solve"]["defender_gain"] == pytest.approx(2.5)
        assert payload["solve"]["partition"] is not None
        # The embedded configuration is loadable on its own.
        restored = configuration_from_json(json.dumps(payload))
        assert is_mixed_nash(restored.game, restored)

    def test_pure_result_has_no_partition(self):
        game = TupleGame(path_graph(4), 2, nu=1)
        payload = json.loads(solve_result_to_json(solve_game(game)))
        assert payload["solve"]["partition"] is None


class TestNonIntegerLabels:
    """Round-trips on string- and mixed-labeled graphs.

    Regression: ``configuration_to_json`` used to sort vertex and tuple
    entries with bare ``sorted`` (falling back to ``repr`` ordering),
    which raised ``TypeError`` on mixed int/str vertex labels and put
    string labels in non-canonical order.  Both now go through
    ``vertex_sort_key`` / ``tuple_sort_key``.
    """

    def _round_trip(self, game):
        config = solve_game(game).mixed
        text = configuration_to_json(config)
        restored = configuration_from_json(text)
        assert restored.game == game
        assert is_mixed_nash(restored.game, restored)
        assert restored.tp_distribution() == config.tp_distribution()
        for i in range(game.nu):
            assert restored.vp_distribution(i) == config.vp_distribution(i)
        # Serialization is canonical: dumping the restored configuration
        # reproduces the document byte for byte.
        assert configuration_to_json(restored) == text

    def test_string_labeled_round_trip(self):
        from repro.graphs.core import Graph

        g = Graph([("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")])
        self._round_trip(TupleGame(g, 1, nu=2))

    def test_mixed_labeled_round_trip(self):
        from repro.graphs.core import Graph

        # Alternating int/str labels around C6 — unsortable by bare sorted().
        labels = [0, "s1", 2, "s3", 4, "s5"]
        edges = [(labels[i], labels[(i + 1) % 6]) for i in range(6)]
        self._round_trip(TupleGame(Graph(edges), 2, nu=2))

    def test_mixed_labeled_solve_result_document(self):
        from repro.graphs.core import Graph

        labels = [0, "s1", 2, "s3"]
        edges = [(labels[i], labels[(i + 1) % 4]) for i in range(4)]
        game = TupleGame(Graph(edges), 1, nu=1)
        payload = json.loads(solve_result_to_json(solve_game(game)))
        restored = configuration_from_json(json.dumps(payload))
        assert is_mixed_nash(restored.game, restored)


class TestWeightedGameIdentity:
    """Regression: the weighted model is part of the serialized identity.

    ``_game_payload`` used to serialize only ``(vertices, edges, k, nu)``,
    so two ``WeightedTupleGame``s differing only in weights produced
    identical documents (and identical ledger/cache fingerprints), and
    the round trip silently downgraded a weighted game to a plain
    ``TupleGame``.  Weighted games now carry a ``model`` discriminator
    and their weight vector; plain games keep the historical byte format.
    """

    def _weighted_pair(self):
        from repro.weighted.game import WeightedTupleGame

        graph = complete_bipartite_graph(2, 3)
        base = {v: 1.0 + 0.25 * i
                for i, v in enumerate(graph.sorted_vertices())}
        other = dict(base)
        other[graph.sorted_vertices()[0]] += 1.0
        return (WeightedTupleGame(graph, 2, base),
                WeightedTupleGame(graph, 2, other))

    def test_roundtrip_preserves_weighted_type(self):
        from repro.core.serialize import game_from_json, game_to_json
        from repro.weighted.game import WeightedTupleGame

        game, _ = self._weighted_pair()
        restored = game_from_json(game_to_json(game))
        assert isinstance(restored, WeightedTupleGame)
        assert restored.weights == game.weights
        assert restored.k == game.k and restored.nu == game.nu
        # Canonical: re-dump reproduces the document byte for byte.
        assert game_to_json(restored) == game_to_json(game)

    def test_distinct_weights_distinct_fingerprints(self):
        import hashlib

        from repro.core.serialize import game_to_json
        from repro.obs.ledger import fingerprint_game

        a, b = self._weighted_pair()
        assert game_to_json(a) != game_to_json(b)
        sha_a = hashlib.sha256(
            game_to_json(a).encode("utf-8")).hexdigest()
        assert fingerprint_game(a)["sha256"] == sha_a
        assert fingerprint_game(a)["sha256"] != fingerprint_game(b)["sha256"]
        assert fingerprint_game(a)["kind"] == "weighted-tuple-game"

    def test_plain_game_document_unchanged(self):
        from repro.core.serialize import game_from_json, game_to_json
        from repro.obs.ledger import fingerprint_game

        game = TupleGame(grid_graph(2, 3), 2, nu=2)
        payload = json.loads(game_to_json(game))
        assert "model" not in payload
        assert "weights" not in payload
        assert fingerprint_game(game)["kind"] == "tuple-game"
        assert isinstance(game_from_json(game_to_json(game)), TupleGame)
