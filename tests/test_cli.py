"""End-to-end tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main
from repro.graphs.generators import (
    complete_bipartite_graph,
    cycle_graph,
    grid_graph,
    petersen_graph,
)
from repro.graphs.io import save_edge_list


@pytest.fixture
def grid_file(tmp_path):
    path = tmp_path / "grid.edges"
    save_edge_list(grid_graph(3, 4), path)
    return str(path)


@pytest.fixture
def petersen_file(tmp_path):
    path = tmp_path / "petersen.edges"
    save_edge_list(petersen_graph(), path)
    return str(path)


@pytest.fixture
def house_file(tmp_path):
    """C5 + chord: defeats every structural construction in the library."""
    from repro.graphs.core import Graph

    path = tmp_path / "house.edges"
    save_edge_list(
        Graph([(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]), path
    )
    return str(path)


class TestInfo:
    def test_prints_structure(self, grid_file, capsys):
        assert main(["info", grid_file]) == 0
        out = capsys.readouterr().out
        assert "12" in out  # n
        assert "17" in out  # m
        assert "yes" in out  # bipartite
        assert "minimum edge cover" in out

    def test_missing_file_exits_2(self, capsys):
        assert main(["info", "/nonexistent/graph.edges"]) == 2
        assert "error" in capsys.readouterr().err


class TestPure:
    def test_exists(self, grid_file, capsys):
        assert main(["pure", grid_file, "-k", "6"]) == 0
        out = capsys.readouterr().out
        assert "pure NE exists" in out
        assert "defender cover" in out

    def test_not_exists(self, grid_file, capsys):
        assert main(["pure", grid_file, "-k", "2"]) == 1
        assert "no pure NE" in capsys.readouterr().out


class TestSolve:
    def test_kmatching(self, grid_file, capsys):
        assert main(["solve", grid_file, "-k", "3", "--nu", "4"]) == 0
        out = capsys.readouterr().out
        assert "k-matching" in out
        assert "defender gain" in out
        assert "2.000000" in out  # 3*4/6

    def test_pure_regime(self, grid_file, capsys):
        assert main(["solve", grid_file, "-k", "8", "--nu", "2"]) == 0
        assert "pure" in capsys.readouterr().out

    def test_petersen_solves_via_extension(self, petersen_file, capsys):
        assert main(["solve", petersen_file, "-k", "2"]) == 0
        assert "perfect-matching" in capsys.readouterr().out

    def test_no_equilibrium(self, house_file, capsys):
        assert main(["solve", house_file, "-k", "2"]) == 1
        assert "no structural equilibrium" in capsys.readouterr().out

    def test_invalid_k_reports_error(self, grid_file, capsys):
        assert main(["solve", grid_file, "-k", "99"]) == 2
        assert "error" in capsys.readouterr().err


class TestGain:
    def test_sweep_with_slope(self, grid_file, capsys):
        assert main(["gain", grid_file, "--nu", "4"]) == 0
        out = capsys.readouterr().out
        assert "fitted slope" in out
        assert "0.666667" in out  # 4 / rho = 4/6

    def test_lp_column(self, tmp_path, capsys):
        path = tmp_path / "k23.edges"
        save_edge_list(complete_bipartite_graph(2, 3), path)
        assert main(["gain", str(path), "--nu", "2", "--lp"]) == 0
        assert "lp_gain" in capsys.readouterr().out


class TestSimulate:
    def test_reports_ci(self, grid_file, capsys):
        assert main(
            ["simulate", grid_file, "-k", "2", "--nu", "3", "--trials", "4000"]
        ) == 0
        out = capsys.readouterr().out
        assert "analytic defender gain" in out
        assert "95% CI" in out
        assert "inside CI: yes" in out

    def test_no_equilibrium(self, house_file, capsys):
        assert main(["simulate", house_file, "-k", "2"]) == 1


class TestReport:
    def test_full_report(self, grid_file, capsys):
        assert main(
            ["report", grid_file, "-k", "2", "--nu", "3", "--trials", "1000"]
        ) == 0
        out = capsys.readouterr().out
        assert "NETWORK SECURITY GAME REPORT" in out
        assert "Operating point k = 2" in out

    def test_unsolvable_point(self, house_file, capsys):
        assert main(["report", house_file, "-k", "1"]) == 1
        assert "no structural equilibrium" in capsys.readouterr().out


class TestExport:
    def test_writes_loadable_schedule(self, grid_file, tmp_path, capsys):
        out_path = tmp_path / "schedule.json"
        assert main(
            ["export", grid_file, "-k", "2", "--nu", "3", "-o", str(out_path)]
        ) == 0
        assert "wrote k-matching schedule" in capsys.readouterr().out

        from repro.core.serialize import configuration_from_json
        from repro.core.characterization import is_mixed_nash

        restored = configuration_from_json(out_path.read_text())
        assert is_mixed_nash(restored.game, restored)

    def test_unsolvable(self, house_file, tmp_path, capsys):
        out_path = tmp_path / "never.json"
        assert main(["export", house_file, "-k", "2", "-o", str(out_path)]) == 1
        assert not out_path.exists()


class TestShapes:
    def test_comparison_table(self, grid_file, capsys):
        assert main(["shapes", grid_file, "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "tuple" in out
        assert "path" in out
        assert "star" in out
        assert "100.0%" in out


class TestRanges:
    def test_prints_polytope_tables(self, tmp_path, capsys):
        from repro.graphs.generators import star_graph

        path = tmp_path / "star.edges"
        save_edge_list(star_graph(3), path)
        assert main(["ranges", str(path), "-k", "1"]) == 0
        out = capsys.readouterr().out
        assert "duel value" in out
        assert "attacker probability ranges" in out
        assert "mandatory links" in out  # star: every edge is mandatory


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("info", "pure", "solve", "gain", "simulate"):
            args = parser.parse_args(
                [command, "g.edges"] + (["-k", "1"] if command in ("pure", "solve", "simulate") else [])
            )
            assert args.command == command


class TestStats:
    def test_prints_trace_and_snapshot(self, grid_file, capsys):
        assert main(["stats", grid_file, "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "equilibrium kind : k-matching" in out
        assert "== trace ==" in out
        assert "equilibria.solve" in out  # the root span
        assert "ms" in out
        assert "== metrics snapshot ==" in out
        assert "equilibria.solve.count" in out
        assert "equilibria.solve.kind.k-matching.count" in out

    def test_json_format_is_a_registry_snapshot(self, grid_file, capsys):
        import json

        assert main(["stats", grid_file, "-k", "2", "--format", "json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        assert snapshot["counters"]["equilibria.solve.count"] >= 1

    def test_prom_format(self, grid_file, capsys):
        assert main(["stats", grid_file, "-k", "2", "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_equilibria_solve_count counter" in out

    def test_unsolvable_still_reports_metrics(self, house_file, capsys):
        assert main(["stats", house_file, "-k", "2"]) == 1
        out = capsys.readouterr().out
        assert "no structural equilibrium" in out
        assert "== metrics snapshot ==" in out
        assert "equilibria.solve.kind.none.count" in out


class TestObservabilityFlags:
    def test_trace_appends_span_tree(self, grid_file, capsys):
        assert main(["solve", grid_file, "-k", "3", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "equilibrium kind : k-matching" in out  # normal output intact
        assert "== trace ==" in out
        assert "equilibria.solve" in out

    def test_trace_flag_before_subcommand(self, grid_file, capsys):
        assert main(["--trace", "solve", grid_file, "-k", "3"]) == 0
        assert "== trace ==" in capsys.readouterr().out

    def test_no_trace_by_default(self, grid_file, capsys):
        assert main(["solve", grid_file, "-k", "3"]) == 0
        assert "== trace ==" not in capsys.readouterr().out

    def test_quiet_suppresses_stdout(self, grid_file, capsys):
        assert main(["info", grid_file, "--quiet"]) == 0
        assert capsys.readouterr().out == ""

    def test_quiet_keeps_errors(self, capsys):
        assert main(["--quiet", "info", "/nonexistent/graph.edges"]) == 2
        assert "error" in capsys.readouterr().err

    def test_log_json_emits_json_lines(self, grid_file, capsys):
        import json

        assert main(["--log-json", "solve", grid_file, "-k", "3"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        for line in lines:
            record = json.loads(line)
            assert record["event"] == "output"
        assert any("k-matching" in json.loads(l)["text"] for l in lines)


class TestRedTeam:
    def test_drill_against_equilibrium(self, grid_file, capsys):
        assert main(
            ["redteam", grid_file, "-k", "2", "--rounds", "2000"]
        ) == 0
        out = capsys.readouterr().out
        assert "red-team escape rate" in out
        assert "schedule holds" in out

    def test_unsolvable(self, house_file, capsys):
        assert main(["redteam", house_file, "-k", "1"]) == 1


class TestStatsOutput:
    def test_prometheus_alias(self, grid_file, capsys):
        assert main(
            ["stats", grid_file, "-k", "2", "--format", "prometheus"]
        ) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_equilibria_solve_count counter" in out

    def test_output_file(self, grid_file, tmp_path, capsys):
        target = tmp_path / "metrics.prom"
        assert main(
            ["stats", grid_file, "-k", "2", "--format", "prometheus",
             "-o", str(target)]
        ) == 0
        out = capsys.readouterr().out
        assert f"wrote prometheus snapshot to {target}" in out
        assert "# TYPE" not in out  # the snapshot went to the file
        assert "repro_equilibria_solve_count" in target.read_text()

    def test_output_file_json(self, grid_file, tmp_path):
        import json

        target = tmp_path / "metrics.json"
        assert main(
            ["stats", grid_file, "-k", "2", "--format", "json",
             "--output", str(target)]
        ) == 0
        snapshot = json.loads(target.read_text())
        assert snapshot["counters"]["equilibria.solve.count"] >= 1

    def test_text_format_includes_span_aggregation(self, grid_file, capsys):
        assert main(["stats", grid_file, "-k", "2"]) == 0
        assert "== span aggregation ==" in capsys.readouterr().out


class TestProfile:
    def test_prints_aggregation_table(self, grid_file, capsys):
        assert main(["profile", grid_file, "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "equilibrium kind : k-matching" in out
        assert "== span aggregation" in out
        assert "equilibria.solve" in out
        assert "self %" in out

    def test_chrome_trace_export(self, grid_file, tmp_path, capsys):
        import json

        target = tmp_path / "trace.json"
        assert main(
            ["profile", grid_file, "-k", "2", "--chrome-trace", str(target)]
        ) == 0
        assert "wrote Chrome trace_event JSON" in capsys.readouterr().out
        document = json.loads(target.read_text())
        events = document["traceEvents"]
        assert events and all(e["ph"] == "X" for e in events)
        assert any(e["name"] == "equilibria.solve" for e in events)
        assert document["displayTimeUnit"] == "ms"

    def test_folded_export(self, grid_file, tmp_path):
        target = tmp_path / "stacks.folded"
        assert main(
            ["profile", grid_file, "-k", "2", "--folded", str(target)]
        ) == 0
        lines = target.read_text().strip().splitlines()
        assert lines
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert stack and count.isdigit()
        assert any(l.startswith("equilibria.solve") for l in lines)

    def test_unsolvable_exits_1(self, house_file, capsys):
        assert main(["profile", house_file, "-k", "1"]) == 1
        assert "no structural equilibrium" in capsys.readouterr().out


class TestLedgerFlags:
    def test_ledger_dir_records_solve(self, grid_file, tmp_path, capsys):
        import json

        d = tmp_path / "ledger"
        assert main(
            ["--ledger-dir", str(d), "solve", grid_file, "-k", "2"]
        ) == 0
        path = d / "equilibria.solve.jsonl"
        record = json.loads(path.read_text().splitlines()[0])
        assert record["schema"] == "repro.obs/ledger-record/v3"
        assert record["status"] == "ok"
        assert record["fingerprint"]["k"] == 2
        assert record["spans"]

    def test_ledger_disabled_after_run(self, grid_file, tmp_path):
        from repro.obs import ledger as obs_ledger

        assert main(
            ["--ledger-dir", str(tmp_path / "led"), "info", grid_file]
        ) == 0
        assert not obs_ledger.ledger_enabled()

    def test_no_ledger_by_default(self, grid_file, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["solve", grid_file, "-k", "2"]) == 0
        assert not (tmp_path / ".repro").exists()


class TestWatch:
    def _bench_file(self, tmp_path, history_values):
        import json

        path = tmp_path / "bench.json"
        path.write_text(json.dumps({
            "schema": "repro.kernels/bench-smoke/v2",
            "cases": {},
            "history": [
                {"git_rev": f"r{i}", "timestamp": None,
                 "cases": {"case.a": v}}
                for i, v in enumerate(history_values)
            ],
        }))
        return str(path)

    def test_clean_history_reports_ok(self, tmp_path, capsys):
        path = self._bench_file(tmp_path, [0.1, 0.1, 0.1, 0.11])
        assert main(["watch", "--file", path]) == 0
        out = capsys.readouterr().out
        assert "0 regressions" in out

    def test_regression_reported_but_not_fatal(self, tmp_path, capsys):
        path = self._bench_file(tmp_path, [0.1, 0.1, 0.1, 0.5])
        assert main(["watch", "--file", path]) == 0
        assert "REGRESSION case.a" in capsys.readouterr().out

    def test_strict_makes_regressions_fatal(self, tmp_path, capsys):
        path = self._bench_file(tmp_path, [0.1, 0.1, 0.1, 0.5])
        assert main(["watch", "--file", path, "--strict"]) == 1

    def test_against_unknown_rev_errors(self, tmp_path, capsys):
        path = self._bench_file(tmp_path, [0.1, 0.2])
        assert main(["watch", "--file", path, "--against", "nope"]) == 1
        assert "no history entry" in capsys.readouterr().out

    def test_missing_file_is_not_fatal(self, tmp_path, capsys):
        assert main(
            ["watch", "--file", str(tmp_path / "absent.json")]
        ) == 0
        assert "missing" in capsys.readouterr().out


class TestCache:
    @pytest.fixture(autouse=True)
    def _cache_off(self):
        import repro.cache as result_cache

        result_cache.disable_cache()
        yield
        result_cache.disable_cache()

    @pytest.fixture
    def populated(self, grid_file, tmp_path, capsys):
        """A cache directory populated by one --cache-dir solve."""
        cache_dir = str(tmp_path / "cache")
        assert main(["solve", grid_file, "-k", "3",
                     "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        return cache_dir

    def test_cache_dir_solve_populates_and_replays(self, grid_file,
                                                   populated, capsys):
        from repro.obs import metrics

        metrics.get_registry().reset()
        assert main(["solve", grid_file, "-k", "3",
                     "--cache-dir", populated]) == 0
        snapshot = metrics.get_registry().snapshot()["counters"]
        assert snapshot.get("cache.hits.count") == 1

    def test_stats_text_and_json(self, populated, capsys):
        assert main(["cache", "stats", "--dir", populated]) == 0
        out = capsys.readouterr().out
        assert "equilibria.solve" in out
        assert main(["cache", "stats", "--dir", populated,
                     "--format", "json"]) == 0
        import json as _json

        stats = _json.loads(capsys.readouterr().out)
        assert stats["entries"] == 1
        assert stats["solvers"]["equilibria.solve"]["entries"] == 1

    def test_lookup_lists_entries(self, populated, capsys):
        assert main(["cache", "lookup", "--dir", populated,
                     "--solver", "equilibria.solve"]) == 0
        assert "1 matching" in capsys.readouterr().out
        assert main(["cache", "lookup", "--dir", populated,
                     "--solver", "nope"]) == 0
        assert "0 matching" in capsys.readouterr().out

    def test_gc_empties_store(self, populated, capsys):
        assert main(["cache", "gc", "--dir", populated,
                     "--max-age", "0"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--dir", populated,
                     "--format", "json"]) == 0
        import json as _json

        assert _json.loads(capsys.readouterr().out)["entries"] == 0

    def test_cache_subcommand_never_enables_memoization(self, populated):
        import repro.cache as result_cache

        assert main(["cache", "stats", "--dir", populated]) == 0
        assert not result_cache.cache_enabled()
