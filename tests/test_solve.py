"""Tests for the one-call solver (repro.equilibria.solve)."""

import pytest

from repro.core.characterization import is_mixed_nash
from repro.core.game import TupleGame
from repro.core.pure import is_pure_nash
from repro.equilibria.solve import NoEquilibriumFoundError, SolveResult, solve_game
from repro.graphs.core import Graph
from repro.graphs.generators import (
    complete_bipartite_graph,
    cycle_graph,
    petersen_graph,
)
from repro.matching.covers import minimum_edge_cover_size
from tests.conftest import bipartite_zoo, general_zoo, zoo_params


class TestRegimeDispatch:
    @pytest.mark.parametrize("graph", zoo_params(bipartite_zoo()))
    def test_bipartite_graphs_solve_for_every_k(self, graph):
        """Theorem 5.1: bipartite instances always solve, and the regimes
        tile exactly at rho(G)."""
        rho = minimum_edge_cover_size(graph)
        for k in range(1, graph.m + 1):
            game = TupleGame(graph, k, nu=2)
            result = solve_game(game)
            if k >= rho:
                assert result.kind == "pure"
                assert result.pure is not None
                assert is_pure_nash(game, result.pure)
                assert result.defender_gain == pytest.approx(2.0)
            else:
                assert result.kind == "k-matching"
                assert result.partition is not None
                assert is_mixed_nash(game, result.mixed)
                assert result.defender_gain == pytest.approx(2 * k / rho)

    @pytest.mark.parametrize("graph", zoo_params(general_zoo()))
    def test_pure_regime_always_solves(self, graph):
        rho = minimum_edge_cover_size(graph)
        game = TupleGame(graph, rho, nu=1)
        result = solve_game(game)
        assert result.kind == "pure"

    def test_petersen_paper_machinery_raises(self):
        game = TupleGame(petersen_graph(), 3, nu=1)
        with pytest.raises(NoEquilibriumFoundError, match="no\\s+IS/VC partition"):
            solve_game(game, allow_extensions=False)

    def test_petersen_solves_via_perfect_matching_extension(self):
        game = TupleGame(petersen_graph(), 3, nu=5)
        result = solve_game(game)
        assert result.kind == "perfect-matching"
        assert is_mixed_nash(game, result.mixed)
        # rho = n/2 = 5, so the gain law extends: k * nu / rho.
        assert result.defender_gain == pytest.approx(3 * 5 / 5)

    def test_odd_cycle_paper_machinery_raises(self):
        game = TupleGame(cycle_graph(7), 2, nu=1)
        with pytest.raises(NoEquilibriumFoundError):
            solve_game(game, allow_extensions=False)

    def test_odd_cycle_solves_via_uniform_kmatchings(self):
        game = TupleGame(cycle_graph(7), 2, nu=1)
        result = solve_game(game)
        assert result.kind == "uniform-k-matching"
        assert is_mixed_nash(game, result.mixed)

    def test_house_graph_defeats_every_construction(self):
        # C5 plus one chord: no partition, no perfect matching (odd n),
        # and too asymmetric for uniform k-matchings to equalize hits.
        house = Graph([(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)])
        game = TupleGame(house, 1, nu=1)
        with pytest.raises(NoEquilibriumFoundError, match="extension families"):
            solve_game(game)

    def test_non_bipartite_with_partition_solves(self):
        g = Graph([("a", "b"), ("b", "c"), ("c", "a"), ("a", "d")])
        rho = minimum_edge_cover_size(g)
        assert rho == 2
        game = TupleGame(g, 1, nu=2)
        result = solve_game(game)
        assert result.kind == "k-matching"
        assert is_mixed_nash(game, result.mixed)


class TestSolveResult:
    def test_gain_matches_formula(self):
        graph = complete_bipartite_graph(2, 5)
        rho = minimum_edge_cover_size(graph)  # 5
        game = TupleGame(graph, 3, nu=10)
        result = solve_game(game)
        assert result.defender_gain == pytest.approx(3 * 10 / rho)

    def test_repr(self):
        game = TupleGame(complete_bipartite_graph(2, 3), 1, nu=1)
        assert "k-matching" in repr(solve_game(game))

    def test_pure_result_has_no_partition(self):
        game = TupleGame(complete_bipartite_graph(2, 3), 3, nu=1)
        result = solve_game(game)
        assert result.kind == "pure"
        assert result.partition is None

    def test_deterministic_across_calls(self):
        game = TupleGame(complete_bipartite_graph(3, 4), 2, nu=2)
        a = solve_game(game)
        b = solve_game(game)
        assert a.mixed.tp_support() == b.mixed.tp_support()
        assert a.mixed.vp_support_union() == b.mixed.vp_support_union()


class TestPureBranchInvariant:
    """Regression: the pure branch guarded its Theorem 3.1 invariant with
    a bare ``assert``, which vanishes under ``python -O`` and let the
    impossible state resurface as an AttributeError inside SolveResult."""

    def test_impossible_pure_miss_raises_game_error(self, monkeypatch):
        import repro.equilibria.solve as solve_mod
        from repro.core.game import GameError, TupleGame
        from repro.graphs.generators import path_graph

        game = TupleGame(path_graph(4), 2, nu=1)  # k >= rho: pure regime
        monkeypatch.setattr(solve_mod, "find_pure_nash", lambda g: None)
        with pytest.raises(GameError, match="invariant"):
            solve_mod.solve_game(game)

    def test_pure_branch_still_solves(self):
        from repro.core.game import TupleGame
        from repro.graphs.generators import path_graph

        game = TupleGame(path_graph(4), 2, nu=3)
        result = solve_game(game)
        assert result.kind == "pure"
        assert result.pure is not None
        assert result.defender_gain == 3
