"""Tests for optimal-strategy-polytope probing (repro.solvers.ranges)."""

import pytest

from repro.core.game import GameError, TupleGame
from repro.core.profits import hit_probability
from repro.equilibria.solve import solve_game
from repro.graphs.generators import (
    complete_bipartite_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.matching.covers import minimum_edge_cover_size
from repro.solvers.ranges import attacker_vertex_ranges, defender_edge_ranges


class TestAttackerRanges:
    def test_star_attacker_avoids_center(self):
        """On a star the center is hit by every edge; no optimal attacker
        ever stands there, and the leaves are interchangeable."""
        g = star_graph(4)
        game = TupleGame(g, 1, nu=1)
        ranges = attacker_vertex_ranges(game)
        low, high = ranges.ranges[0]  # center
        assert high == pytest.approx(0.0, abs=1e-6)
        for leaf in range(1, 5):
            leaf_low, leaf_high = ranges.ranges[leaf]
            assert leaf_high > 0.2
        assert 0 not in ranges.usable()

    def test_cycle_symmetry(self):
        """C6 is vertex-transitive: every vertex is usable, none is
        required (mass can concentrate on alternating triples)."""
        game = TupleGame(cycle_graph(6), 1, nu=1)
        ranges = attacker_vertex_ranges(game)
        assert len(ranges.usable()) == 6
        assert ranges.required() == []

    def test_bounds_contain_structural_equilibrium(self):
        g = complete_bipartite_graph(2, 4)
        game = TupleGame(g, 2, nu=1)
        config = solve_game(game).mixed
        ranges = attacker_vertex_ranges(game)
        for v in g.vertices():
            low, high = ranges.ranges[v]
            p = config.prob_vp(0, v)
            assert low - 1e-6 <= p <= high + 1e-6

    def test_value_matches_k_over_rho(self):
        g = complete_bipartite_graph(2, 4)
        game = TupleGame(g, 2, nu=1)
        ranges = attacker_vertex_ranges(game)
        assert ranges.value == pytest.approx(2 / minimum_edge_cover_size(g))


class TestDefenderRanges:
    def test_path_endpoint_edges_are_required(self):
        """On P4 with k=1, every optimal schedule must sometimes scan the
        two end edges (they are the only cover of the endpoints)."""
        game = TupleGame(path_graph(4), 1, nu=1)
        ranges = defender_edge_ranges(game)
        required = ranges.required()
        assert (0, 1) in required
        assert (2, 3) in required

    def test_bounds_contain_structural_marginals(self):
        g = complete_bipartite_graph(2, 3)
        game = TupleGame(g, 2, nu=1)
        config = solve_game(game).mixed
        ranges = defender_edge_ranges(game)
        for e in g.edges():
            marginal = sum(
                p for t, p in config.tp_distribution().items() if e in t
            )
            low, high = ranges.ranges[e]
            assert low - 1e-6 <= marginal <= high + 1e-6

    def test_star_every_optimal_schedule_is_uniformish(self):
        """Star K_{1,3}, k=1: hit(leaf_i) = p(edge_i) and the minimum must
        be v* = 1/3 with only unit mass available — every optimal schedule
        is exactly uniform, so all ranges collapse to [1/3, 1/3]."""
        game = TupleGame(star_graph(3), 1, nu=1)
        ranges = defender_edge_ranges(game)
        for low, high in ranges.ranges.values():
            assert low == pytest.approx(1 / 3, abs=1e-6)
            assert high == pytest.approx(1 / 3, abs=1e-6)


class TestErgonomics:
    def test_limit_guard(self):
        game = TupleGame(complete_bipartite_graph(4, 5), 8, nu=1)
        with pytest.raises(GameError, match="probing limit"):
            attacker_vertex_ranges(game, tuple_limit=10)
        with pytest.raises(GameError, match="probing limit"):
            defender_edge_ranges(game, tuple_limit=10)

    def test_repr(self):
        game = TupleGame(path_graph(4), 1, nu=1)
        assert "value=" in repr(attacker_vertex_ranges(game))


class TestPerturbedValueRobustness:
    """Regression: the probe LPs used an *absolute* 1e-9 relaxation on the
    optimality constraints and no fallback.  A game value carrying normal
    HiGHS solver error (~1e-8) could make the probed polytope empty and the
    whole range computation fail on well-posed games.  The relaxation is
    now relative and infeasibility triggers one widened retry.
    """

    @staticmethod
    def _stub_minimax(delta):
        """A solve_minimax stand-in whose value is off by ``delta``."""
        from repro.solvers.lp import solve_minimax

        class _Result:
            def __init__(self, value):
                self.value = value

        def stub(game, tuple_limit=None):
            return _Result(solve_minimax(game, tuple_limit=tuple_limit).value + delta)

        return stub

    def test_attacker_ranges_survive_undershot_value(self):
        """v* reported 1e-7 low: (Aq)_t <= v* + 1e-9 is infeasible, the
        widened retry (1e-5 relative) recovers."""
        from repro.obs import metrics
        from repro.solvers.ranges import _attacker_vertex_ranges

        game = TupleGame(star_graph(3), 1, nu=1)
        before = metrics.counter("ranges.probe.retry.count").value
        ranges = _attacker_vertex_ranges(game, 1000, self._stub_minimax(-1e-7))
        assert metrics.counter("ranges.probe.retry.count").value == before + 1
        # Star K_{1,3}: the attacker hides on a leaf, never the center.
        low, high = ranges.ranges[0]
        assert high == pytest.approx(0.0, abs=1e-4)

    def test_defender_ranges_survive_overshot_value(self):
        """v* reported 1e-7 high: (A^T p)_v >= v* - 1e-9 is infeasible,
        the widened retry recovers."""
        from repro.obs import metrics
        from repro.solvers.ranges import _defender_edge_ranges

        game = TupleGame(star_graph(3), 1, nu=1)
        before = metrics.counter("ranges.probe.retry.count").value
        ranges = _defender_edge_ranges(game, 1000, self._stub_minimax(1e-7))
        assert metrics.counter("ranges.probe.retry.count").value == before + 1
        for low, high in ranges.ranges.values():
            assert low == pytest.approx(1 / 3, abs=1e-4)
            assert high == pytest.approx(1 / 3, abs=1e-4)

    def test_hopeless_value_still_fails_loudly(self):
        """An error far beyond the widened relaxation must still raise."""
        from repro.solvers.ranges import _attacker_vertex_ranges

        game = TupleGame(star_graph(3), 1, nu=1)
        with pytest.raises(GameError, match="widened tolerance"):
            _attacker_vertex_ranges(game, 1000, self._stub_minimax(-0.05))

    def test_unperturbed_paths_do_not_retry(self):
        from repro.obs import metrics

        game = TupleGame(path_graph(4), 1, nu=1)
        before = metrics.counter("ranges.probe.retry.count").value
        attacker_vertex_ranges(game)
        defender_edge_ranges(game)
        assert metrics.counter("ranges.probe.retry.count").value == before


class TestCanonicalOrdering:
    """Regression: required()/usable() must report edge keys in the
    library's canonical edge order (edge_sort_key), not the vertex key's
    (type_name, repr) fallback that mixed-label tuples drop into."""

    def test_edge_keys_sort_like_sorted_edges(self):
        from repro.graphs.core import edge_sort_key
        from repro.solvers.ranges import StrategyRanges

        # Canonical edge order: (1, 2) < (1, "a") < ("a", "b").  The old
        # vertex_sort_key fallback compared reprs, where "(1, 'a')" sorts
        # *before* "(1, 2)" ("'" < "2" in ASCII).
        ranges = StrategyRanges(0.5, {
            ("a", "b"): (0.4, 0.9),
            (1, "a"): (0.3, 0.8),
            (1, 2): (0.2, 0.7),
        })
        canonical = [(1, 2), (1, "a"), ("a", "b")]
        assert sorted(ranges.ranges, key=edge_sort_key) == canonical
        assert ranges.usable() == canonical
        assert ranges.required() == canonical

    def test_vertex_keys_keep_vertex_order(self):
        from repro.graphs.core import vertex_sort_key
        from repro.solvers.ranges import StrategyRanges

        ranges = StrategyRanges(0.5, {"b": (0.1, 0.9), 3: (0.1, 0.9),
                                      1: (0.1, 0.9), "a": (0.1, 0.9)})
        assert ranges.usable() == sorted([1, 3, "a", "b"],
                                         key=vertex_sort_key)

    def test_mixed_label_defender_ranges_end_to_end(self):
        """defender_edge_ranges on an int+str graph reports usable edges
        in Graph.sorted_edges order."""
        from repro.graphs.core import Graph, edge_sort_key

        graph = Graph([(2, 1), ("a", 1), ("b", "a")])
        game = TupleGame(graph, 1, nu=1)
        defender = defender_edge_ranges(game)
        usable = defender.usable()
        assert usable == sorted(usable, key=edge_sort_key)
        required = defender.required()
        assert required == sorted(required, key=edge_sort_key)
        # The probed coordinate set is exactly the edge set, in order.
        assert sorted(defender.ranges, key=edge_sort_key) \
            == graph.sorted_edges()

    def test_mixed_label_attacker_ranges_end_to_end(self):
        from repro.graphs.core import Graph, vertex_sort_key

        graph = Graph([(2, 1), ("a", 1), ("b", "a")])
        game = TupleGame(graph, 1, nu=1)
        attacker = attacker_vertex_ranges(game)
        usable = attacker.usable()
        assert usable == sorted(usable, key=vertex_sort_key)
