"""Tests for pure Nash equilibria — Theorem 3.1, Corollaries 3.2/3.3
(repro.core.pure)."""

import pytest

from repro.core.configuration import PureConfiguration
from repro.core.game import TupleGame
from repro.core.pure import (
    edge_cover_of_size,
    find_pure_nash,
    is_pure_nash,
    pure_nash_exists,
)
from repro.graphs.core import Graph
from repro.graphs.generators import (
    complete_bipartite_graph,
    cycle_graph,
    double_star_graph,
    grid_graph,
    path_graph,
    petersen_graph,
    star_graph,
)
from repro.graphs.properties import is_edge_cover
from repro.matching.covers import minimum_edge_cover_size
from tests.conftest import general_zoo, zoo_params


class TestTheorem31Sufficiency:
    """k >= rho(G): a pure NE exists and our construction is one."""

    @pytest.mark.parametrize("graph", zoo_params(general_zoo()))
    def test_constructed_profile_is_pure_nash(self, graph):
        rho = minimum_edge_cover_size(graph)
        for k in {rho, min(rho + 1, graph.m), graph.m}:
            game = TupleGame(graph, k, nu=3)
            assert pure_nash_exists(game)
            config = find_pure_nash(game)
            assert config is not None
            assert len(config.tuple_choice) == k
            assert is_edge_cover(graph, config.tuple_choice)
            assert is_pure_nash(game, config)


class TestTheorem31Necessity:
    """k < rho(G): no pure NE — verified by first principles on small
    instances (every pure profile admits a profitable deviation)."""

    @pytest.mark.parametrize(
        "graph, k",
        [
            (path_graph(4), 1),
            (star_graph(3), 2),
            (cycle_graph(5), 2),
            (complete_bipartite_graph(2, 3), 2),
        ],
        ids=["path4-k1", "star3-k2", "cycle5-k2", "k23-k2"],
    )
    def test_every_profile_has_deviation(self, graph, k):
        from itertools import combinations, product

        game = TupleGame(graph, k, nu=1)
        assert not pure_nash_exists(game)
        assert find_pure_nash(game) is None
        for vertex in graph.sorted_vertices():
            for tuple_choice in combinations(graph.sorted_edges(), k):
                config = PureConfiguration(game, [vertex], tuple_choice)
                assert not is_pure_nash(game, config), (vertex, tuple_choice)

    def test_existence_threshold_exact(self):
        graph = double_star_graph(3, 4)
        rho = minimum_edge_cover_size(graph)
        for k in range(1, graph.m + 1):
            game = TupleGame(graph, k, nu=2)
            assert pure_nash_exists(game) == (k >= rho)


class TestCorollary33:
    """n >= 2k + 1 implies no pure NE."""

    @pytest.mark.parametrize("graph", zoo_params(general_zoo()))
    def test_no_pure_ne_below_half_n(self, graph):
        for k in range(1, graph.m + 1):
            if graph.n >= 2 * k + 1:
                assert not pure_nash_exists(TupleGame(graph, k, nu=1))


class TestEdgeCoverOfSize:
    def test_exact_size_and_distinctness(self):
        graph = grid_graph(2, 3)
        rho = minimum_edge_cover_size(graph)
        for k in range(rho, graph.m + 1):
            cover = edge_cover_of_size(TupleGame(graph, k, nu=1))
            assert cover is not None
            assert len(cover) == k
            assert len(set(cover)) == k
            assert is_edge_cover(graph, cover)

    def test_none_below_threshold(self):
        graph = grid_graph(2, 3)
        assert edge_cover_of_size(TupleGame(graph, 1, nu=1)) is None


class TestIsPureNashDirect:
    def test_accepts_full_cover(self):
        game = TupleGame(path_graph(4), k=2, nu=2)
        config = PureConfiguration(game, [0, 2], [(0, 1), (2, 3)])
        assert is_pure_nash(game, config)

    def test_rejects_when_attacker_can_escape(self):
        game = TupleGame(path_graph(4), k=2, nu=1)
        # Tuple (0,1),(1,2) leaves vertex 3 uncovered; attacker at 0 is
        # caught and would deviate.
        config = PureConfiguration(game, [0], [(0, 1), (1, 2)])
        assert not is_pure_nash(game, config)

    def test_rejects_when_defender_misses_attackers(self):
        game = TupleGame(path_graph(4), k=1, nu=2)
        # Both attackers on vertex 3; defender watches (0,1).
        config = PureConfiguration(game, [3, 3], [(0, 1)])
        assert not is_pure_nash(game, config)

    def test_k1_single_edge_graph(self):
        game = TupleGame(Graph([(1, 2)]), k=1, nu=1)
        config = PureConfiguration(game, [1], [(1, 2)])
        assert is_pure_nash(game, config)

    def test_rejects_config_from_other_game(self):
        from repro.core.game import GameError

        game_a = TupleGame(path_graph(4), k=2, nu=1)
        game_b = TupleGame(path_graph(4), k=2, nu=2)
        config = PureConfiguration(game_b, [0, 1], [(0, 1), (2, 3)])
        with pytest.raises(GameError, match="different game"):
            is_pure_nash(game_a, config)


class TestPetersenBoundary:
    def test_petersen_threshold_is_five(self):
        graph = petersen_graph()
        assert not pure_nash_exists(TupleGame(graph, 4, nu=1))
        game = TupleGame(graph, 5, nu=1)
        assert pure_nash_exists(game)
        config = find_pure_nash(game)
        assert is_pure_nash(game, config)
