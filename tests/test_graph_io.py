"""Unit tests for graph serialization (repro.graphs.io)."""

import pytest

from repro.graphs.core import Graph, GraphError
from repro.graphs.generators import grid_graph, petersen_graph
from repro.graphs.io import (
    format_edge_list,
    graph_from_json,
    graph_to_json,
    load_edge_list,
    load_graph,
    parse_edge_list,
    save_edge_list,
)


class TestEdgeListFormat:
    def test_parse_simple(self):
        g = parse_edge_list("1 2\n2 3\n")
        assert g == Graph([(1, 2), (2, 3)])

    def test_parse_comments_and_blank_lines(self):
        text = "# header\n1 2\n\n2 3  # trailing comment\n"
        g = parse_edge_list(text)
        assert g.m == 2

    def test_parse_string_labels(self):
        g = parse_edge_list("alpha beta\nbeta gamma\n")
        assert g.has_edge("alpha", "beta")

    def test_integer_labels_become_ints(self):
        g = parse_edge_list("10 20\n")
        assert g.has_vertex(10)
        assert not g.has_vertex("10")

    def test_mixed_labels_stay_strings(self):
        g = parse_edge_list("1 a\n")
        assert g.has_vertex("1")
        assert g.has_vertex("a")

    def test_parse_rejects_wrong_arity(self):
        with pytest.raises(GraphError, match="line 1"):
            parse_edge_list("1 2 3\n")

    def test_round_trip(self):
        g = grid_graph(3, 3)
        assert parse_edge_list(format_edge_list(g)) == g

    def test_format_is_sorted_and_newline_terminated(self):
        text = format_edge_list(Graph([(2, 1), (1, 3)]))
        assert text == "1 2\n1 3\n"


class TestFiles:
    def test_save_and_load(self, tmp_path):
        g = petersen_graph()
        path = tmp_path / "petersen.edges"
        save_edge_list(g, path)
        assert load_edge_list(path) == g

    def test_load_graph_dispatches_on_extension(self, tmp_path):
        g = grid_graph(2, 3)
        edge_path = tmp_path / "g.edges"
        json_path = tmp_path / "g.json"
        save_edge_list(g, edge_path)
        json_path.write_text(graph_to_json(g))
        assert load_graph(edge_path) == g
        assert load_graph(json_path) == g


class TestJson:
    def test_round_trip(self):
        g = grid_graph(2, 4)
        assert graph_from_json(graph_to_json(g)) == g

    def test_rejects_invalid_json(self):
        with pytest.raises(GraphError, match="invalid JSON"):
            graph_from_json("{not json")

    def test_rejects_missing_edges_key(self):
        with pytest.raises(GraphError, match="'edges'"):
            graph_from_json('{"vertices": [1, 2]}')

    def test_rejects_non_pair_edge(self):
        with pytest.raises(GraphError, match="not a pair"):
            graph_from_json('{"edges": [[1, 2, 3]]}')

    def test_rejects_isolated_vertex(self):
        with pytest.raises(GraphError, match="isolated"):
            graph_from_json('{"vertices": [1, 2, 9], "edges": [[1, 2]]}')


class TestLabelCoercion:
    """Integer coercion only fires on *canonical* decimal labels.

    Regression: ``_is_int`` used to defer to ``int()``, which accepts
    underscore separators (``1_0`` became vertex ``10``) and leading
    zeros (``01`` and ``1`` silently merged into one vertex).
    """

    def test_underscore_label_stays_string(self):
        g = parse_edge_list("1_0 2\n")
        assert g.has_vertex("1_0")
        assert not g.has_vertex(10)
        # The whole file falls back to strings: no half-coerced graphs.
        assert g.has_vertex("2")

    def test_leading_zero_labels_do_not_merge(self):
        g = parse_edge_list("01 2\n1 2\n")
        assert g.has_vertex("01") and g.has_vertex("1")
        assert g.n == 3 and g.m == 2

    def test_plus_sign_and_whitespace_rejected(self):
        g = parse_edge_list("+1 2\n")
        assert g.has_vertex("+1") and not g.has_vertex(1)

    def test_negative_zero_stays_string(self):
        g = parse_edge_list("-0 1\n")
        assert g.has_vertex("-0") and not g.has_vertex(0)

    def test_canonical_labels_still_coerce(self):
        g = parse_edge_list("0 1\n1 -2\n")
        assert g.has_vertex(0) and g.has_vertex(-2)

    def test_mixed_alpha_numeric_file_round_trips(self):
        text = "a 1\n1 2\n2 b\n"
        g = parse_edge_list(text)
        # One non-numeric label keeps every label a string.
        assert g.has_vertex("1") and not g.has_vertex(1)
        assert parse_edge_list(format_edge_list(g)) == g

    def test_numeric_file_round_trips_to_ints(self):
        g = parse_edge_list(format_edge_list(Graph([(1, 2), (2, 3)])))
        assert g == Graph([(1, 2), (2, 3)])
