"""Unit tests for graph serialization (repro.graphs.io)."""

import pytest

from repro.graphs.core import Graph, GraphError
from repro.graphs.generators import grid_graph, petersen_graph
from repro.graphs.io import (
    format_edge_list,
    graph_from_json,
    graph_to_json,
    load_edge_list,
    load_graph,
    parse_edge_list,
    save_edge_list,
)


class TestEdgeListFormat:
    def test_parse_simple(self):
        g = parse_edge_list("1 2\n2 3\n")
        assert g == Graph([(1, 2), (2, 3)])

    def test_parse_comments_and_blank_lines(self):
        text = "# header\n1 2\n\n2 3  # trailing comment\n"
        g = parse_edge_list(text)
        assert g.m == 2

    def test_parse_string_labels(self):
        g = parse_edge_list("alpha beta\nbeta gamma\n")
        assert g.has_edge("alpha", "beta")

    def test_integer_labels_become_ints(self):
        g = parse_edge_list("10 20\n")
        assert g.has_vertex(10)
        assert not g.has_vertex("10")

    def test_mixed_labels_stay_strings(self):
        g = parse_edge_list("1 a\n")
        assert g.has_vertex("1")
        assert g.has_vertex("a")

    def test_parse_rejects_wrong_arity(self):
        with pytest.raises(GraphError, match="line 1"):
            parse_edge_list("1 2 3\n")

    def test_round_trip(self):
        g = grid_graph(3, 3)
        assert parse_edge_list(format_edge_list(g)) == g

    def test_format_is_sorted_and_newline_terminated(self):
        text = format_edge_list(Graph([(2, 1), (1, 3)]))
        assert text == "1 2\n1 3\n"


class TestFiles:
    def test_save_and_load(self, tmp_path):
        g = petersen_graph()
        path = tmp_path / "petersen.edges"
        save_edge_list(g, path)
        assert load_edge_list(path) == g

    def test_load_graph_dispatches_on_extension(self, tmp_path):
        g = grid_graph(2, 3)
        edge_path = tmp_path / "g.edges"
        json_path = tmp_path / "g.json"
        save_edge_list(g, edge_path)
        json_path.write_text(graph_to_json(g))
        assert load_graph(edge_path) == g
        assert load_graph(json_path) == g


class TestJson:
    def test_round_trip(self):
        g = grid_graph(2, 4)
        assert graph_from_json(graph_to_json(g)) == g

    def test_rejects_invalid_json(self):
        with pytest.raises(GraphError, match="invalid JSON"):
            graph_from_json("{not json")

    def test_rejects_missing_edges_key(self):
        with pytest.raises(GraphError, match="'edges'"):
            graph_from_json('{"vertices": [1, 2]}')

    def test_rejects_non_pair_edge(self):
        with pytest.raises(GraphError, match="not a pair"):
            graph_from_json('{"edges": [[1, 2, 3]]}')

    def test_rejects_isolated_vertex(self):
        with pytest.raises(GraphError, match="isolated"):
            graph_from_json('{"vertices": [1, 2, 9], "edges": [[1, 2]]}')
