"""Full-pipeline sweep over the dense/exotic generator zoo.

Wheels, barbells, lollipops and complete multipartite graphs stress the
solver dispatch differently from the bipartite zoo: cliques bound the
independent set hard, bridges create asymmetry, hubs concentrate
coverage.  For each instance and several budgets this sweep records which
construction (if any) solves it and cross-checks the resulting value
against the exact LP.
"""

import pytest

from repro.core.characterization import verify_best_responses
from repro.core.game import TupleGame
from repro.equilibria.solve import NoEquilibriumFoundError, solve_game
from repro.graphs.generators import (
    barbell_graph,
    complete_multipartite_graph,
    lollipop_graph,
    wheel_graph,
)
from repro.matching.covers import minimum_edge_cover_size
from repro.solvers.double_oracle import double_oracle
from repro.solvers.lp import solve_minimax

ZOO = [
    pytest.param(wheel_graph(5), id="wheel5"),
    pytest.param(wheel_graph(6), id="wheel6"),
    pytest.param(barbell_graph(3, 1), id="barbell3-1"),
    pytest.param(barbell_graph(4, 3), id="barbell4-3"),
    pytest.param(lollipop_graph(4, 3), id="lollipop4-3"),
    pytest.param(lollipop_graph(5, 2), id="lollipop5-2"),
    pytest.param(complete_multipartite_graph(2, 2, 2), id="k222"),
    pytest.param(complete_multipartite_graph(1, 2, 3), id="k123"),
]


@pytest.mark.parametrize("graph", ZOO)
def test_pure_regime_always_solves(graph):
    rho = minimum_edge_cover_size(graph)
    game = TupleGame(graph, rho, nu=2)
    result = solve_game(game)
    assert result.kind == "pure"
    assert result.defender_gain == pytest.approx(2.0)


@pytest.mark.parametrize("graph", ZOO)
def test_mixed_regime_solutions_are_equilibria_and_match_lp(graph):
    rho = minimum_edge_cover_size(graph)
    for k in sorted({1, rho - 1}):
        if k < 1 or k >= rho:
            continue
        game = TupleGame(graph, k, nu=1)
        lp_value = solve_minimax(game).value
        try:
            result = solve_game(game)
        except NoEquilibriumFoundError:
            # Honest refusal; the LP value still exists.
            assert 0.0 < lp_value <= 1.0
            continue
        ok, gaps = verify_best_responses(game, result.mixed, tol=1e-9)
        assert ok, (result.kind, gaps)
        assert result.defender_gain == pytest.approx(lp_value, abs=1e-7)


@pytest.mark.parametrize("graph", ZOO)
def test_double_oracle_matches_lp(graph):
    rho = minimum_edge_cover_size(graph)
    k = max(1, rho - 1)
    game = TupleGame(graph, k, nu=1)
    assert double_oracle(game).value == pytest.approx(
        solve_minimax(game).value, abs=1e-7
    )


def test_wheel_optimal_attacker_is_uniform_hub_included():
    """Counter-intuitive wheel fact: unlike a star (whose hub is on
    *every* edge and therefore never attacked), the wheel's hub is on only
    half the edges; the unique optimal attacker is uniform over all n+1
    vertices — the polytope probe shows every vertex is *required* with
    probability exactly 1/(n+1)."""
    from repro.solvers.ranges import attacker_vertex_ranges

    graph = wheel_graph(6)
    game = TupleGame(graph, 1, nu=1)
    ranges = attacker_vertex_ranges(game)
    for v in graph.vertices():
        low, high = ranges.ranges[v]
        assert low == pytest.approx(1 / 7, abs=1e-6)
        assert high == pytest.approx(1 / 7, abs=1e-6)
    assert len(ranges.required()) == 7


def test_complete_multipartite_balanced_solves_via_extensions():
    """K_{2,2,2} (the octahedron) is 4-regular with a perfect matching:
    the mixed regime must be solved by an extension family."""
    graph = complete_multipartite_graph(2, 2, 2)
    rho = minimum_edge_cover_size(graph)
    game = TupleGame(graph, rho - 1, nu=1)
    result = solve_game(game)
    assert result.kind in ("perfect-matching", "uniform-k-matching", "k-matching")
    ok, _ = verify_best_responses(game, result.mixed)
    assert ok


def test_barbell_bridge_asymmetry():
    """Barbell graphs have no valid partition (cliques kill independence)
    and an odd component structure; whatever the solver decides, the
    decision must be consistent with the LP."""
    graph = barbell_graph(4, 3)
    game = TupleGame(graph, 2, nu=1)
    lp_value = solve_minimax(game).value
    try:
        result = solve_game(game)
        assert result.defender_gain == pytest.approx(lp_value, abs=1e-7)
    except NoEquilibriumFoundError:
        assert lp_value > 0
