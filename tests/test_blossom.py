"""Unit tests for the blossom algorithm (repro.matching.blossom).

General (non-bipartite) maximum matching, cross-validated against
networkx's max_weight_matching on random instances.
"""

import random

import networkx as nx
import pytest

from repro.graphs.core import Graph
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    gnp_random_graph,
    path_graph,
    petersen_graph,
    random_connected_graph,
)
from repro.graphs.properties import is_matching
from repro.matching.blossom import matching_number, maximum_matching


class TestHandCases:
    def test_single_edge(self):
        assert matching_number(Graph([(1, 2)])) == 1

    def test_triangle(self):
        assert matching_number(cycle_graph(3)) == 1

    def test_odd_cycle(self):
        # C5 has matching number 2 — requires handling the odd cycle.
        assert matching_number(cycle_graph(5)) == 2

    def test_even_cycle_perfect(self):
        assert matching_number(cycle_graph(8)) == 4

    def test_path(self):
        assert matching_number(path_graph(7)) == 3

    def test_complete_graph(self):
        assert matching_number(complete_graph(6)) == 3
        assert matching_number(complete_graph(7)) == 3

    def test_petersen_perfect_matching(self):
        assert matching_number(petersen_graph()) == 5

    def test_blossom_flower(self):
        """A stem attached to an odd cycle — the canonical blossom case
        where greedy matching inside the cycle must be re-based."""
        # Cycle 1-2-3-4-5-1 plus stem 0-1 and tail 5-6.
        g = Graph([(1, 2), (2, 3), (3, 4), (4, 5), (5, 1), (0, 1), (5, 6)])
        assert matching_number(g) == 3

    def test_two_triangles_joined(self):
        g = Graph([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)])
        assert matching_number(g) == 3

    def test_matching_is_a_matching(self):
        g = petersen_graph()
        matched = maximum_matching(g)
        assert is_matching(g, matched)

    def test_deterministic(self):
        g = gnp_random_graph(14, 0.3, seed=1)
        assert maximum_matching(g) == maximum_matching(g)


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(30))
    def test_random_graphs(self, seed):
        rng = random.Random(seed)
        n = rng.randrange(4, 30)
        g = gnp_random_graph(n, rng.uniform(0.1, 0.6), seed=seed)
        ours = maximum_matching(g)
        assert is_matching(g, ours)
        nxg = nx.Graph(list(g.edges()))
        theirs = nx.max_weight_matching(nxg, maxcardinality=True)
        assert len(ours) == len(theirs)

    @pytest.mark.parametrize("seed", range(10))
    def test_sparse_connected_graphs(self, seed):
        g = random_connected_graph(20, extra_edges=6, seed=seed)
        nxg = nx.Graph(list(g.edges()))
        assert len(maximum_matching(g)) == len(
            nx.max_weight_matching(nxg, maxcardinality=True)
        )
