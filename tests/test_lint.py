"""Tests for the repro.lint static analyzer.

Each rule gets fixture snippets that trigger it and a ``# repro: noqa``
suppression that silences it; the engine, baseline workflow, renderers
(including SARIF 2.1.0) and the CLI surfaces are exercised on synthetic
repositories under ``tmp_path``.  A meta-test asserts the live repository
itself passes ``repro lint --strict --baseline``.
"""

import json
import textwrap

import pytest

from repro.lint import (
    DEFAULT_BASELINE_NAME,
    Finding,
    LintConfig,
    LintEngine,
    Severity,
    apply_baseline,
    registered_rules,
    render_json,
    render_sarif,
    render_text,
    write_baseline,
)
from repro.lint import main as lint_main
from repro.lint.project import parse_api_doc, parse_theory_index

#: The six syntactic rules plus the five semantic (project-index) rules.
ALL_RULES = {
    "RNG001", "FLT001", "THM001", "LAY001", "OBS001", "API001",
    "LCK001", "LCK002", "DET001", "EXC001", "SCH001",
}


# ---------------------------------------------------------------------------
# fixture harness
# ---------------------------------------------------------------------------


def make_repo(tmp_path, files):
    """Materialise ``{relpath: source}`` under ``tmp_path`` (dedented)."""
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    return tmp_path


def run_fixture(tmp_path, files, **overrides):
    """Run the engine over a synthetic repo; rules see only ``overrides``."""
    root = make_repo(tmp_path, files)
    config = LintConfig(root=root, paths=(root / "src",), **overrides)
    return LintEngine(config).run()


def rules_of(report):
    return sorted({f.rule for f in report.findings})


# ---------------------------------------------------------------------------
# engine mechanics
# ---------------------------------------------------------------------------


class TestEngine:
    def test_all_rules_registered(self):
        assert set(registered_rules()) == ALL_RULES

    def test_clean_file_has_no_findings(self, tmp_path):
        report = run_fixture(
            tmp_path,
            {"src/pkg/clean.py": '"""A clean module."""\n\nX = 1\n'},
        )
        assert report.findings == []
        assert report.files_scanned == 1
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 0

    def test_syntax_error_reported_not_raised(self, tmp_path):
        report = run_fixture(
            tmp_path, {"src/pkg/broken.py": "def f(:\n    pass\n"}
        )
        assert len(report.parse_errors) == 1
        assert "broken.py" in report.parse_errors[0]

    def test_select_restricts_rules(self, tmp_path):
        files = {
            "src/pkg/mixed.py": """\
                import random

                def f(p):
                    x = random.random()
                    return p == 0.5
                """
        }
        report = run_fixture(tmp_path, dict(files), select={"FLT001"})
        assert rules_of(report) == ["FLT001"]

    def test_severity_override(self, tmp_path):
        report = run_fixture(
            tmp_path,
            {"src/pkg/f.py": "def f(p):\n    return p == 0.5\n"},
            severity_overrides={"FLT001": Severity.ERROR},
        )
        assert report.findings[0].severity is Severity.ERROR
        assert report.exit_code() == 1

    def test_bare_noqa_suppresses_any_rule(self, tmp_path):
        report = run_fixture(
            tmp_path,
            {
                "src/pkg/f.py": (
                    "def f(p):\n"
                    "    return p == 0.5  # repro: noqa\n"
                )
            },
        )
        assert report.findings == []

    def test_noqa_for_other_rule_does_not_suppress(self, tmp_path):
        report = run_fixture(
            tmp_path,
            {
                "src/pkg/f.py": (
                    "def f(p):\n"
                    "    return p == 0.5  # repro: noqa[RNG001]\n"
                )
            },
        )
        assert rules_of(report) == ["FLT001"]

    def test_noqa_inside_string_is_not_a_suppression(self, tmp_path):
        # The '#' lives in a string literal, not a comment: no suppression.
        report = run_fixture(
            tmp_path,
            {
                "src/pkg/f.py": (
                    "def f(p):\n"
                    '    return (p == 0.5, "# repro: noqa")\n'
                )
            },
        )
        assert rules_of(report) == ["FLT001"]

    def test_noqa_covers_whole_multiline_statement(self, tmp_path):
        # The comment sits on the closing line; the finding anchors to the
        # opening line.  A noqa anywhere on the logical line must cover it.
        report = run_fixture(
            tmp_path,
            {
                "src/pkg/f.py": (
                    "def f(p):\n"
                    "    return (p\n"
                    "            == 0.5)  # repro: noqa[FLT001]\n"
                )
            },
        )
        assert report.findings == []

    def test_noqa_on_opening_line_of_multiline_statement(self, tmp_path):
        report = run_fixture(
            tmp_path,
            {
                "src/pkg/f.py": (
                    "def f(p):\n"
                    "    return (p ==  # repro: noqa[FLT001]\n"
                    "            0.5)\n"
                )
            },
        )
        assert report.findings == []

    def test_standalone_noqa_comment_covers_only_its_own_line(self, tmp_path):
        # A comment line between statements is not part of either logical
        # line: it must not silence the statement below it.
        report = run_fixture(
            tmp_path,
            {
                "src/pkg/f.py": (
                    "def f(p):\n"
                    "    # repro: noqa[FLT001]\n"
                    "    return p == 0.5\n"
                )
            },
        )
        assert rules_of(report) == ["FLT001"]

    def test_multiline_noqa_does_not_leak_to_next_statement(self, tmp_path):
        report = run_fixture(
            tmp_path,
            {
                "src/pkg/f.py": (
                    "def f(p):\n"
                    "    a = (p\n"
                    "         == 0.5)  # repro: noqa[FLT001]\n"
                    "    return p == 0.25\n"
                )
            },
        )
        assert len(report.findings) == 1
        assert report.findings[0].line == 4


class TestFindings:
    def test_fingerprint_ignores_line_number(self):
        a = Finding("FLT001", Severity.WARNING, "src/x.py", 10, 4, "m", "p == 0.5")
        b = Finding("FLT001", Severity.WARNING, "src/x.py", 99, 4, "m", "p == 0.5")
        assert a.fingerprint == b.fingerprint

    def test_fingerprint_distinguishes_occurrences(self, tmp_path):
        # Two identical offending lines in one file must not collide.
        report = run_fixture(
            tmp_path,
            {
                "src/pkg/f.py": (
                    "def f(p, out):\n"
                    "    out.append(p == 0.5)\n"
                    "    out.append(p == 0.5)\n"
                    "    return out\n"
                )
            },
        )
        prints = [f.fingerprint for f in report.findings]
        assert len(prints) == 2
        assert len(set(prints)) == 2

    def test_render_and_severity_roundtrip(self):
        f = Finding("RNG001", Severity.ERROR, "src/x.py", 3, 0, "boom")
        assert f.render() == "src/x.py:3:0: error RNG001 boom"
        assert Severity.parse("warning") is Severity.WARNING
        assert Severity.ERROR.sarif_level == "error"
        with pytest.raises(ValueError):
            Severity.parse("fatal")


# ---------------------------------------------------------------------------
# RNG001 — unseeded randomness
# ---------------------------------------------------------------------------


class TestRNG001:
    def run(self, tmp_path, body, module="src/pkg/r.py", **overrides):
        return run_fixture(
            tmp_path, {module: body}, select={"RNG001"}, **overrides
        )

    def test_global_random_call_flagged(self, tmp_path):
        report = self.run(tmp_path, "import random\nx = random.random()\n")
        assert rules_of(report) == ["RNG001"]

    def test_from_import_alias_flagged(self, tmp_path):
        report = self.run(
            tmp_path, "from random import randint\nx = randint(0, 5)\n"
        )
        assert rules_of(report) == ["RNG001"]

    def test_numpy_global_state_flagged(self, tmp_path):
        report = self.run(
            tmp_path, "import numpy as np\nx = np.random.rand(3)\n"
        )
        assert rules_of(report) == ["RNG001"]

    def test_unseeded_constructor_flagged(self, tmp_path):
        report = self.run(tmp_path, "import random\nrng = random.Random()\n")
        assert rules_of(report) == ["RNG001"]

    def test_seeded_constructor_clean(self, tmp_path):
        report = self.run(
            tmp_path,
            "import random\nimport numpy as np\n"
            "rng = random.Random(7)\n"
            "gen = np.random.default_rng(7)\n",
        )
        assert report.findings == []

    def test_unseeded_default_rng_flagged(self, tmp_path):
        report = self.run(
            tmp_path, "import numpy as np\ngen = np.random.default_rng()\n"
        )
        assert rules_of(report) == ["RNG001"]

    def test_seed_taking_entry_point_exempt(self, tmp_path):
        body = """\
            import random

            def simulate(trials, seed=None):
                rng = random.Random() if seed is None else random.Random(seed)
                return rng
            """
        # Same code: exempt inside the sanctioned prefix, flagged outside it.
        exempt = self.run(
            tmp_path, body, module="src/pkg/sim/entry.py",
            rng_seeded_entry_prefixes=("pkg.sim.",),
        )
        assert exempt.findings == []
        flagged = run_fixture(
            tmp_path / "other", {"src/pkg/solve/entry.py": body},
            select={"RNG001"}, rng_seeded_entry_prefixes=("pkg.sim.",),
        )
        assert rules_of(flagged) == ["RNG001"]

    def test_noqa_suppresses(self, tmp_path):
        report = self.run(
            tmp_path,
            "import random\nx = random.random()  # repro: noqa[RNG001]\n",
        )
        assert report.findings == []


# ---------------------------------------------------------------------------
# FLT001 — bare float equality
# ---------------------------------------------------------------------------


class TestFLT001:
    def run(self, tmp_path, body):
        return run_fixture(
            tmp_path, {"src/pkg/f.py": body}, select={"FLT001"}
        )

    def test_eq_and_ne_float_literal_flagged(self, tmp_path):
        report = self.run(
            tmp_path,
            "def f(p):\n    return p == 0.5 or p != 1.0\n",
        )
        assert len(report.findings) == 2
        assert all(f.severity is Severity.WARNING for f in report.findings)

    def test_negative_literal_flagged(self, tmp_path):
        report = self.run(tmp_path, "def f(p):\n    return p == -1.0\n")
        assert rules_of(report) == ["FLT001"]

    def test_integer_and_ordering_comparisons_clean(self, tmp_path):
        report = self.run(
            tmp_path,
            "def f(p):\n    return p == 1 or p <= 0.5 or p > 0.0\n",
        )
        assert report.findings == []

    def test_isclose_is_the_sanctioned_spelling(self, tmp_path):
        report = self.run(
            tmp_path,
            "import math\n\ndef f(p):\n    return math.isclose(p, 0.5)\n",
        )
        assert report.findings == []

    def test_noqa_suppresses(self, tmp_path):
        report = self.run(
            tmp_path,
            "def f(p):\n    return p == 0.5  # repro: noqa[FLT001]\n",
        )
        assert report.findings == []


# ---------------------------------------------------------------------------
# THM001 — theorem tags
# ---------------------------------------------------------------------------


THEORY_DOC = """\
    # Theory guide

    Theorem 3.1 gives the pure characterization and Claims 4.2-4.4
    carry the covering construction; see also L4.1 and Corollary 3.3.
    """


class TestTHM001:
    def run(self, tmp_path, files, **overrides):
        files = dict(files)
        files.setdefault("docs/theory.md", THEORY_DOC)
        overrides.setdefault("theory_doc", tmp_path / "docs" / "theory.md")
        return run_fixture(tmp_path, files, select={"THM001"}, **overrides)

    def test_theory_index_parses_ranges_and_short_tags(self):
        index = parse_theory_index(textwrap.dedent(THEORY_DOC))
        assert {"T3.1", "CL4.2", "CL4.3", "CL4.4", "L4.1", "C3.3"} <= index

    def test_resolving_citation_clean(self, tmp_path):
        report = self.run(
            tmp_path,
            {"src/pkg/core/a.py": '"""Implements Theorem 3.1 (see CL4.3)."""\n'},
        )
        assert report.findings == []

    def test_dangling_citation_flagged(self, tmp_path):
        report = self.run(
            tmp_path,
            {"src/pkg/core/a.py": '"""Implements Theorem 9.9."""\n'},
        )
        assert rules_of(report) == ["THM001"]
        assert "T9.9" in report.findings[0].message

    def test_dangling_function_docstring_flagged(self, tmp_path):
        report = self.run(
            tmp_path,
            {
                "src/pkg/core/a.py": (
                    '"""Module (Theorem 3.1)."""\n\n'
                    "def f():\n"
                    '    """Uses L9.9."""\n'
                ),
            },
        )
        assert rules_of(report) == ["THM001"]
        assert "`f`" in report.findings[0].message

    def test_theory_package_module_must_cite(self, tmp_path):
        report = self.run(
            tmp_path,
            {"src/pkg/core/a.py": '"""No citation here."""\n'},
            theory_packages=("pkg.core",),
        )
        assert rules_of(report) == ["THM001"]
        assert "cites no paper result" in report.findings[0].message

    def test_non_theory_package_need_not_cite(self, tmp_path):
        report = self.run(
            tmp_path,
            {"src/pkg/util/a.py": '"""No citation here."""\n'},
            theory_packages=("pkg.core",),
        )
        assert report.findings == []

    def test_noqa_suppresses(self, tmp_path):
        report = self.run(
            tmp_path,
            {
                "src/pkg/core/a.py":
                    '"""Implements Theorem 9.9."""  # repro: noqa[THM001]\n'
            },
        )
        assert report.findings == []


# ---------------------------------------------------------------------------
# LAY001 — import layering
# ---------------------------------------------------------------------------


LAYERS = {"pkg": 9, "pkg.core": 1, "pkg.solvers": 2, "pkg.cli": 3}


class TestLAY001:
    def run(self, tmp_path, files):
        return run_fixture(
            tmp_path, files, select={"LAY001"}, layers=dict(LAYERS)
        )

    def test_upward_import_flagged(self, tmp_path):
        report = self.run(
            tmp_path,
            {
                "src/pkg/core/a.py": "from pkg.solvers.b import solve\n",
                "src/pkg/solvers/b.py": "def solve():\n    return 0\n",
            },
        )
        assert rules_of(report) == ["LAY001"]
        assert "layer 1" in report.findings[0].message
        assert "layer 2" in report.findings[0].message

    def test_downward_and_same_layer_imports_clean(self, tmp_path):
        report = self.run(
            tmp_path,
            {
                "src/pkg/core/a.py": "X = 1\n",
                "src/pkg/solvers/b.py": "from pkg.core.a import X\n",
                "src/pkg/solvers/c.py": "from pkg.solvers.b import X\n",
            },
        )
        assert report.findings == []

    def test_lazy_function_level_import_is_sanctioned(self, tmp_path):
        report = self.run(
            tmp_path,
            {
                "src/pkg/core/a.py": (
                    "def f():\n"
                    "    from pkg.solvers.b import solve\n"
                    "    return solve()\n"
                ),
                "src/pkg/solvers/b.py": "def solve():\n    return 0\n",
            },
        )
        assert report.findings == []

    def test_stdlib_imports_ignored(self, tmp_path):
        report = self.run(
            tmp_path,
            {"src/pkg/core/a.py": "import json\nimport os.path\n"},
        )
        assert report.findings == []

    def test_cycle_flagged(self, tmp_path):
        report = self.run(
            tmp_path,
            {
                "src/pkg/core/a.py": "import pkg.core.b\n",
                "src/pkg/core/b.py": "import pkg.core.a\n",
            },
        )
        assert rules_of(report) == ["LAY001"]
        assert "cycle" in report.findings[0].message

    def test_noqa_suppresses(self, tmp_path):
        report = self.run(
            tmp_path,
            {
                "src/pkg/core/a.py":
                    "from pkg.solvers.b import solve  # repro: noqa[LAY001]\n",
                "src/pkg/solvers/b.py": "def solve():\n    return 0\n",
            },
        )
        assert report.findings == []


# ---------------------------------------------------------------------------
# OBS001 — instrumentation of entry points
# ---------------------------------------------------------------------------


UNINSTRUMENTED = """\
    __all__ = ["solve"]

    def solve(graph, k):
        a = graph
        b = k
        c = a or b
        return c
    """


class TestOBS001:
    def run(self, tmp_path, body, module="src/pkg/solvers/s.py"):
        return run_fixture(
            tmp_path, {module: body},
            select={"OBS001"}, obs_required=("pkg.solvers.",),
        )

    def test_uninstrumented_export_flagged(self, tmp_path):
        report = self.run(tmp_path, UNINSTRUMENTED)
        assert rules_of(report) == ["OBS001"]
        assert "`solve`" in report.findings[0].message

    def test_span_counts_as_instrumentation(self, tmp_path):
        body = """\
            from pkg.obs import tracing

            __all__ = ["solve"]

            def solve(graph, k):
                with tracing.span("solve", k=k):
                    a = graph
                    b = k
                    return a or b
            """
        report = self.run(tmp_path, body)
        assert report.findings == []

    def test_traced_decorator_counts(self, tmp_path):
        body = """\
            from pkg.obs.tracing import traced

            __all__ = ["solve"]

            @traced("solve")
            def solve(graph, k):
                a = graph
                b = k
                c = a or b
                return c
            """
        report = self.run(tmp_path, body)
        assert report.findings == []

    def test_trivial_helper_exempt(self, tmp_path):
        body = """\
            __all__ = ["degree"]

            def degree(graph, v):
                return len(graph[v])
            """
        report = self.run(tmp_path, body)
        assert report.findings == []

    def test_private_function_exempt(self, tmp_path):
        body = UNINSTRUMENTED.replace('["solve"]', '["other"]') + \
            "\nother = solve\n"
        report = self.run(tmp_path, body)
        assert report.findings == []

    def test_module_outside_scope_exempt(self, tmp_path):
        report = self.run(
            tmp_path, UNINSTRUMENTED, module="src/pkg/analysis/s.py"
        )
        assert report.findings == []

    def test_noqa_suppresses(self, tmp_path):
        body = UNINSTRUMENTED.replace(
            "def solve(graph, k):",
            "def solve(graph, k):  # repro: noqa[OBS001]",
        )
        report = self.run(tmp_path, body)
        assert report.findings == []


# ---------------------------------------------------------------------------
# API001 — __all__ vs docs/api.md
# ---------------------------------------------------------------------------


API_DOC = """\
    # API

    ## `pkg.mod`

    - **`foo`** — does foo.
    """


class TestAPI001:
    def run(self, tmp_path, files):
        files = dict(files)
        files.setdefault("docs/api.md", API_DOC)
        return run_fixture(
            tmp_path, files,
            select={"API001"}, api_doc=tmp_path / "docs" / "api.md",
        )

    def test_parse_api_doc(self):
        assert parse_api_doc(textwrap.dedent(API_DOC)) == {"pkg.mod": {"foo"}}

    def test_documented_export_clean(self, tmp_path):
        report = self.run(
            tmp_path,
            {"src/pkg/mod.py": '__all__ = ["foo"]\n\ndef foo():\n    pass\n'},
        )
        assert report.findings == []

    def test_missing_name_flagged(self, tmp_path):
        report = self.run(
            tmp_path,
            {
                "src/pkg/mod.py":
                    '__all__ = ["foo", "bar"]\n\nfoo = bar = None\n'
            },
        )
        assert rules_of(report) == ["API001"]
        assert "bar" in report.findings[0].message

    def test_missing_section_flagged(self, tmp_path):
        report = self.run(
            tmp_path,
            {"src/pkg/newmod.py": '__all__ = ["baz"]\n\nbaz = None\n'},
        )
        assert rules_of(report) == ["API001"]
        assert "no section" in report.findings[0].message

    def test_noqa_suppresses(self, tmp_path):
        report = self.run(
            tmp_path,
            {
                "src/pkg/newmod.py":
                    '__all__ = ["baz"]  # repro: noqa[API001]\n\nbaz = None\n'
            },
        )
        assert report.findings == []


# ---------------------------------------------------------------------------
# baseline workflow
# ---------------------------------------------------------------------------


class TestBaseline:
    FILES = {"src/pkg/r.py": "import random\nx = random.random()\n"}

    def test_baseline_swallows_known_findings(self, tmp_path):
        report = run_fixture(tmp_path, dict(self.FILES), select={"RNG001"})
        assert report.findings
        baseline = tmp_path / DEFAULT_BASELINE_NAME
        write_baseline(baseline, report.findings)

        fresh = run_fixture(tmp_path, {}, select={"RNG001"})
        fresh = apply_baseline(fresh, baseline)
        assert fresh.findings == []
        assert fresh.baseline_applied == 1
        assert fresh.baseline_stale == 0
        assert fresh.exit_code(strict=True) == 0

    def test_new_finding_escapes_baseline(self, tmp_path):
        report = run_fixture(tmp_path, dict(self.FILES), select={"RNG001"})
        baseline = tmp_path / DEFAULT_BASELINE_NAME
        write_baseline(baseline, report.findings)

        make_repo(tmp_path, {
            "src/pkg/r2.py": "import random\ny = random.shuffle([1])\n"
        })
        fresh = run_fixture(tmp_path, {}, select={"RNG001"})
        fresh = apply_baseline(fresh, baseline)
        assert len(fresh.findings) == 1
        assert "r2.py" in fresh.findings[0].path

    def test_fixed_finding_counts_as_stale(self, tmp_path):
        report = run_fixture(tmp_path, dict(self.FILES), select={"RNG001"})
        baseline = tmp_path / DEFAULT_BASELINE_NAME
        write_baseline(baseline, report.findings)

        (tmp_path / "src/pkg/r.py").write_text(
            "import random\nx = random.Random(3).random()\n",
            encoding="utf-8",
        )
        fresh = run_fixture(tmp_path, {}, select={"RNG001"})
        fresh = apply_baseline(fresh, baseline)
        assert fresh.findings == []
        assert fresh.baseline_stale == 1


# ---------------------------------------------------------------------------
# renderers
# ---------------------------------------------------------------------------


class TestRenderers:
    def report(self, tmp_path):
        files = {
            "src/pkg/r.py": "import random\nx = random.random()\n",
            "src/pkg/f.py": "def f(p):\n    return p == 0.5\n",
        }
        root = make_repo(tmp_path, files)
        config = LintConfig(root=root, paths=(root / "src",),
                            select={"RNG001", "FLT001"})
        engine = LintEngine(config)
        return engine.run(), engine

    def test_text_summary(self, tmp_path):
        report, _ = self.report(tmp_path)
        text = render_text(report)
        assert "2 finding(s) in 2 file(s)" in text
        assert "FLT001=1" in text and "RNG001=1" in text

    def test_text_clean_summary(self, tmp_path):
        root = make_repo(tmp_path, {"src/pkg/ok.py": "X = 1\n"})
        config = LintConfig(root=root, paths=(root / "src",))
        text = render_text(LintEngine(config).run())
        assert text.startswith("clean: 0 findings in 1 file(s)")

    def test_json_roundtrip(self, tmp_path):
        report, _ = self.report(tmp_path)
        doc = json.loads(render_json(report))
        assert doc["tool"] == "repro-lint"
        assert doc["files_scanned"] == 2
        assert {f["rule"] for f in doc["findings"]} == {"RNG001", "FLT001"}
        assert all(len(f["fingerprint"]) == 20 for f in doc["findings"])

    def test_sarif_is_valid_2_1_0(self, tmp_path):
        report, engine = self.report(tmp_path)
        doc = json.loads(render_sarif(report, engine.rules))

        assert doc["version"] == "2.1.0"
        assert doc["$schema"].endswith("sarif-schema-2.1.0.json")
        assert len(doc["runs"]) == 1
        run = doc["runs"][0]

        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = [r["id"] for r in driver["rules"]]
        assert set(rule_ids) == {"RNG001", "FLT001"}
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] in (
                "note", "warning", "error")

        assert len(run["results"]) == 2
        for result in run["results"]:
            assert result["level"] in ("note", "warning", "error")
            assert rule_ids[result["ruleIndex"]] == result["ruleId"]
            loc = result["locations"][0]["physicalLocation"]
            assert loc["artifactLocation"]["uriBaseId"] == "SRCROOT"
            assert loc["region"]["startLine"] >= 1
            assert loc["region"]["startColumn"] >= 1
            assert result["partialFingerprints"]["reproLint/v1"]
        assert "SRCROOT" in run["originalUriBaseIds"]


# ---------------------------------------------------------------------------
# command-line surfaces
# ---------------------------------------------------------------------------


def violating_repo(tmp_path):
    """A repo-shaped fixture with exactly one violation per rule."""
    return make_repo(tmp_path, {
        "docs/theory.md": THEORY_DOC,
        "docs/api.md": API_DOC.replace("pkg.mod", "repro.analysis.ok"),
        "src/repro/analysis/rng_bad.py":
            "import random\nx = random.random()\n",
        "src/repro/analysis/flt_bad.py":
            "def f(p):\n    return p == 0.5\n",
        "src/repro/core/thm_bad.py": '"""Implements Theorem 9.9."""\n',
        "src/repro/core/lay_bad.py":
            '"""Theorem 3.1."""\nfrom repro.cli import main\n',
        "src/repro/solvers/obs_bad.py": UNINSTRUMENTED,
        "src/repro/analysis/api_bad.py":
            '__all__ = ["mystery"]\n\nmystery = None\n',
    })


class TestCommandLine:
    @pytest.mark.parametrize("rule,bad_file", [
        ("RNG001", "src/repro/analysis/rng_bad.py"),
        ("FLT001", "src/repro/analysis/flt_bad.py"),
        ("THM001", "src/repro/core/thm_bad.py"),
        ("LAY001", "src/repro/core/lay_bad.py"),
        ("OBS001", "src/repro/solvers/obs_bad.py"),
        ("API001", "src/repro/analysis/api_bad.py"),
    ])
    def test_each_rule_fails_its_fixture(self, tmp_path, rule, bad_file):
        root = violating_repo(tmp_path)
        code = lint_main([
            "--root", str(root), "--strict", "--select", rule,
            str(root / bad_file),
        ])
        assert code == 1

    def test_clean_fixture_exits_zero(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/analysis/ok.py":
                '__all__ = ["foo"]\n\ndef foo():\n    pass\n',
            "docs/api.md": API_DOC.replace("pkg.mod", "repro.analysis.ok"),
            "docs/theory.md": THEORY_DOC,
        })
        code = lint_main(["--root", str(root), "--strict",
                          str(root / "src" / "repro")])
        assert code == 0

    def test_parse_error_exits_two(self, tmp_path):
        root = make_repo(tmp_path, {
            "src/repro/analysis/broken.py": "def f(:\n    pass\n",
        })
        code = lint_main(["--root", str(root),
                          str(root / "src" / "repro" / "analysis")])
        assert code == 2

    def test_write_then_apply_baseline(self, tmp_path, capsys):
        root = violating_repo(tmp_path)
        target = str(root / "src" / "repro" / "analysis" / "rng_bad.py")

        assert lint_main(["--root", str(root), "--strict", target]) == 1
        assert lint_main(["--root", str(root), "--write-baseline",
                          target]) == 0
        assert (root / DEFAULT_BASELINE_NAME).is_file()
        assert lint_main(["--root", str(root), "--strict", "--baseline",
                          target]) == 0
        capsys.readouterr()

    def test_json_format_on_stdout(self, tmp_path, capsys):
        root = violating_repo(tmp_path)
        target = str(root / "src" / "repro" / "analysis" / "rng_bad.py")
        lint_main(["--root", str(root), "--format", "json", target])
        doc = json.loads(capsys.readouterr().out)
        assert doc["findings"][0]["rule"] == "RNG001"

    def test_cli_subcommand_sarif_on_live_repo(self, capsys):
        from repro.cli import main as cli_main

        code = cli_main(["lint", "--format", "sarif", "--baseline"])
        out = capsys.readouterr().out
        doc = json.loads(out)
        assert doc["version"] == "2.1.0"
        assert len(doc["runs"][0]["tool"]["driver"]["rules"]) == len(ALL_RULES)
        assert code == 0

    def test_lint_run_feeds_metrics(self, tmp_path):
        from repro.lint import run_lint
        from repro.obs import metrics

        root = make_repo(tmp_path, {"src/pkg/ok.py": "X = 1\n"})
        before = metrics.counter("lint.runs.count").value
        run_lint(LintConfig(root=root, paths=(root / "src",)))
        assert metrics.counter("lint.runs.count").value == before + 1

    def test_lint_run_records_wall_time(self, tmp_path):
        from repro.lint import run_lint
        from repro.obs import metrics

        root = make_repo(tmp_path, {"src/pkg/ok.py": "X = 1\n"})
        before = metrics.histogram("lint.run.seconds").count
        report = run_lint(LintConfig(root=root, paths=(root / "src",)))
        assert metrics.histogram("lint.run.seconds").count == before + 1
        assert report.elapsed_s > 0

    def test_output_file_option(self, tmp_path, capsys):
        root = violating_repo(tmp_path)
        target = str(root / "src" / "repro" / "analysis" / "rng_bad.py")
        out_file = tmp_path / "lint.sarif"
        code = lint_main(["--root", str(root), "--format", "sarif",
                          "--output", str(out_file), target])
        assert code == 1
        doc = json.loads(out_file.read_text(encoding="utf-8"))
        assert doc["version"] == "2.1.0"
        assert "wrote" in capsys.readouterr().out

    def test_sarif_rules_carry_help_uris(self, tmp_path, capsys):
        root = violating_repo(tmp_path)
        target = str(root / "src" / "repro" / "analysis" / "rng_bad.py")
        lint_main(["--root", str(root), "--format", "sarif", target])
        doc = json.loads(capsys.readouterr().out)
        for rule in doc["runs"][0]["tool"]["driver"]["rules"]:
            assert rule["helpUri"] == \
                f"docs/static_analysis.md#{rule['id'].lower()}"


# ---------------------------------------------------------------------------
# --changed mode
# ---------------------------------------------------------------------------


class TestChangedMode:
    @staticmethod
    def _git(root, *argv):
        import subprocess

        env = {
            "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t",
            "HOME": str(root), "PATH": "/usr/bin:/bin:/usr/local/bin",
        }
        proc = subprocess.run(["git", *argv], cwd=root,
                              capture_output=True, text=True, env=env)
        assert proc.returncode == 0, proc.stderr
        return proc.stdout

    def repo(self, tmp_path):
        """A committed two-violation repo, then one file edited."""
        root = make_repo(tmp_path, {
            "src/pkg/a.py": "def f(p):\n    return p == 0.5\n",
            "src/pkg/b.py": "def g(q):\n    return q == 0.25\n",
        })
        self._git(root, "init", "-q")
        self._git(root, "add", "-A")
        self._git(root, "commit", "-qm", "seed")
        (root / "src/pkg/a.py").write_text(
            "def f(p):\n    return p == 0.75\n", encoding="utf-8")
        return root

    def test_changed_files_lists_the_edit(self, tmp_path):
        from repro.lint import changed_files

        root = self.repo(tmp_path)
        assert changed_files(root) == {"src/pkg/a.py"}

    def test_changed_files_includes_untracked(self, tmp_path):
        from repro.lint import changed_files

        root = self.repo(tmp_path)
        make_repo(root, {"src/pkg/new.py": "X = 1\n"})
        assert "src/pkg/new.py" in changed_files(root)

    def test_changed_only_filters_findings(self, tmp_path):
        from repro.lint import changed_files

        root = self.repo(tmp_path)
        config = LintConfig(root=root, paths=(root / "src",),
                            select={"FLT001"})
        full = LintEngine(config).run()
        assert {f.path for f in full.findings} == \
            {"src/pkg/a.py", "src/pkg/b.py"}

        config.changed_only = changed_files(root)
        narrowed = LintEngine(config).run()
        assert {f.path for f in narrowed.findings} == {"src/pkg/a.py"}
        # The index still covers the whole project.
        assert narrowed.files_scanned == full.files_scanned

    def test_bad_ref_exits_two(self, tmp_path, capsys):
        root = self.repo(tmp_path)
        code = lint_main(["--root", str(root), "--changed", "no-such-ref",
                          str(root / "src")])
        assert code == 2
        assert "git diff" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# the live repository is clean
# ---------------------------------------------------------------------------


class TestLiveRepo:
    def test_repo_passes_strict_baseline(self, capsys):
        """The acceptance gate: `repro lint --strict --baseline` exits 0."""
        code = lint_main(["--strict", "--baseline"])
        capsys.readouterr()
        assert code == 0

    def test_default_layers_cover_every_package(self):
        from repro.lint import DEFAULT_LAYERS

        import repro

        pkg_root = repro.__path__[0]
        from pathlib import Path

        for child in sorted(Path(pkg_root).iterdir()):
            if child.is_dir() and (child / "__init__.py").is_file():
                assert f"repro.{child.name}" in DEFAULT_LAYERS, (
                    f"package repro.{child.name} missing from DEFAULT_LAYERS"
                )
