"""Tests for the content-addressed solve-result cache (repro.cache)."""

from __future__ import annotations

import sqlite3
import time

import pytest

import repro.cache as result_cache
from repro.cache.keys import cache_key, game_sha256, params_json
from repro.cache.migrations import (
    MIGRATIONS,
    SCHEMA_VERSION,
    CacheSchemaError,
    apply_migrations,
)
from repro.cache.store import ResultCache
from repro.core.game import TupleGame
from repro.core.serialize import configuration_to_json, solve_result_to_json
from repro.equilibria.solve import solve_game
from repro.graphs.generators import complete_bipartite_graph, grid_graph
from repro.obs import ledger as obs_ledger
from repro.obs import metrics
from repro.solvers.double_oracle import double_oracle
from repro.solvers.fictitious_play import fictitious_play
from repro.weighted.game import (
    WeightedTupleGame,
    weighted_double_oracle,
    weighted_lp_equilibrium,
)


@pytest.fixture(autouse=True)
def _cache_off():
    """Every test starts and ends with the cache disabled and clean metrics."""
    result_cache.disable_cache()
    metrics.get_registry().reset()
    yield
    result_cache.disable_cache()
    metrics.get_registry().reset()


@pytest.fixture
def game():
    return TupleGame(complete_bipartite_graph(2, 4), k=2, nu=3)


def _counter(name):
    return metrics.get_registry().snapshot()["counters"].get(name, 0)


# --------------------------------------------------------------------------
# key derivation


class TestKeys:
    def test_fingerprint_matches_ledger(self, game):
        assert game_sha256(game) == obs_ledger.fingerprint_game(game)["sha256"]

    def test_distinct_weights_distinct_fingerprints(self):
        graph = complete_bipartite_graph(2, 3)
        base = {v: 1.0 for v in graph.vertices()}
        other = dict(base)
        other[graph.sorted_vertices()[0]] = 2.0
        a = WeightedTupleGame(graph, 2, base)
        b = WeightedTupleGame(graph, 2, other)
        assert game_sha256(a) != game_sha256(b)

    def test_params_json_is_canonical(self):
        assert params_json({"b": 1, "a": 2}) == params_json({"a": 2, "b": 1})

    def test_key_separates_every_component(self):
        base = cache_key("f", "s", params_json({"x": 1}))
        assert cache_key("g", "s", params_json({"x": 1})) != base
        assert cache_key("f", "t", params_json({"x": 1})) != base
        assert cache_key("f", "s", params_json({"x": 2})) != base

    def test_key_resists_concatenation_ambiguity(self):
        # Without length prefixes these two triples would hash the
        # same byte stream.
        assert cache_key("ab", "c", "{}") != cache_key("a", "bc", "{}")


# --------------------------------------------------------------------------
# migrations


class TestMigrations:
    def test_fresh_store_reaches_current_schema(self, tmp_path):
        store = ResultCache(tmp_path / "c.sqlite3")
        try:
            assert store.stats()["schema_version"] == SCHEMA_VERSION
        finally:
            store.close()

    def test_migrations_are_idempotent(self, tmp_path):
        conn = sqlite3.connect(str(tmp_path / "c.sqlite3"))
        try:
            assert apply_migrations(conn) == [v for v, _ in MIGRATIONS]
            assert apply_migrations(conn) == []
        finally:
            conn.close()

    def test_v1_store_migrates_in_place(self, tmp_path):
        path = tmp_path / "c.sqlite3"
        conn = sqlite3.connect(str(path))
        with conn:
            for statement in MIGRATIONS[0][1]:
                conn.execute(statement)
            conn.execute("PRAGMA user_version = 1")
            conn.execute(
                "INSERT INTO cache_entries (key, fingerprint, solver, "
                "params, payload, size_bytes, created_at, last_access) "
                "VALUES ('k', 'f', 's', '{}', 'p', 1, 0, 0)"
            )
        conn.close()
        store = ResultCache(path)
        try:
            # The v1 row survives and picks up the v2 hits column.
            assert store.stats()["schema_version"] == SCHEMA_VERSION
            assert store.stats()["entries"] == 1
            assert store.entries()[0]["hits"] == 0
        finally:
            store.close()

    def test_newer_store_is_refused(self, tmp_path):
        path = tmp_path / "c.sqlite3"
        conn = sqlite3.connect(str(path))
        with conn:
            conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
        conn.close()
        with pytest.raises(CacheSchemaError):
            ResultCache(path)


# --------------------------------------------------------------------------
# store CRUD + eviction


class TestStore:
    def test_probe_miss_then_hit(self, tmp_path):
        store = ResultCache(tmp_path / "c.sqlite3")
        try:
            assert store.probe("f", "s", {"x": 1}) is None
            store.store("f", "s", {"x": 1}, "payload")
            assert store.probe("f", "s", {"x": 1}) == "payload"
            assert _counter("cache.misses.count") == 1
            assert _counter("cache.hits.count") == 1
            assert store.entries()[0]["hits"] == 1
        finally:
            store.close()

    def test_store_refresh_overwrites(self, tmp_path):
        store = ResultCache(tmp_path / "c.sqlite3")
        try:
            store.store("f", "s", {}, "old")
            store.store("f", "s", {}, "newer")
            assert store.probe("f", "s", {}) == "newer"
            assert store.stats()["entries"] == 1
        finally:
            store.close()

    def test_lru_eviction_by_entry_count(self, tmp_path):
        store = ResultCache(tmp_path / "c.sqlite3", max_entries=2)
        try:
            store.store("a", "s", {}, "pa")
            time.sleep(0.002)
            store.store("b", "s", {}, "pb")
            time.sleep(0.002)
            store.probe("a", "s", {})  # bump a's LRU clock past b's
            time.sleep(0.002)
            store.store("c", "s", {}, "pc")
            assert store.probe("b", "s", {}) is None  # b was the LRU
            assert store.probe("a", "s", {}) == "pa"
            assert store.probe("c", "s", {}) == "pc"
            assert _counter("cache.evictions.count") == 1
        finally:
            store.close()

    def test_eviction_by_size(self, tmp_path):
        store = ResultCache(tmp_path / "c.sqlite3", max_bytes=100)
        try:
            store.store("a", "s", {}, "x" * 80)
            time.sleep(0.002)
            store.store("b", "s", {}, "y" * 80)
            stats = store.stats()
            assert stats["entries"] == 1
            assert stats["bytes"] <= 100
            assert store.probe("b", "s", {}) == "y" * 80
        finally:
            store.close()

    def test_gc_by_age_and_solver(self, tmp_path):
        store = ResultCache(tmp_path / "c.sqlite3")
        try:
            store.store("a", "alpha", {}, "pa")
            store.store("b", "beta", {}, "pb")
            assert store.gc(max_age_s=0.0, solver="alpha") == 1
            assert store.probe("b", "beta", {}) == "pb"
            assert store.gc(max_age_s=0.0) == 1
            assert store.stats()["entries"] == 0
        finally:
            store.close()

    def test_stats_per_solver_breakdown(self, tmp_path):
        store = ResultCache(tmp_path / "c.sqlite3")
        try:
            store.store("a", "alpha", {}, "pa")
            store.store("b", "alpha", {"q": 1}, "pb")
            store.store("c", "beta", {}, "pc")
            solvers = store.stats()["solvers"]
            assert solvers["alpha"]["entries"] == 2
            assert solvers["beta"]["entries"] == 1
        finally:
            store.close()

    def test_entries_filters_by_prefix_and_solver(self, tmp_path):
        store = ResultCache(tmp_path / "c.sqlite3")
        try:
            key = store.store("a", "alpha", {}, "pa")
            store.store("b", "beta", {}, "pb")
            assert [e["key"] for e in store.entries(key_prefix=key[:12])] \
                == [key]
            assert [e["solver"] for e in store.entries(solver="beta")] \
                == ["beta"]
        finally:
            store.close()


# --------------------------------------------------------------------------
# the process-global facade


class TestFacade:
    def test_disabled_lookup_is_shared_noop(self, game):
        probe = result_cache.lookup(game, "equilibria.solve", {})
        assert probe is result_cache.lookup(game, "equilibria.solve", {})
        assert not probe.hit
        probe.store("ignored")  # must not create any store
        assert _counter("cache.stores.count") == 0
        assert _counter("cache.misses.count") == 0

    def test_enable_disable_roundtrip(self, tmp_path):
        assert not result_cache.cache_enabled()
        result_cache.enable_cache(tmp_path)
        assert result_cache.cache_enabled()
        assert result_cache.cache_directory() == tmp_path
        result_cache.disable_cache()
        assert not result_cache.cache_enabled()

    def test_env_opt_in(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        state = result_cache._CacheState()
        assert state.enabled
        assert state.directory == tmp_path

    def test_env_off_values(self, monkeypatch):
        for value in ("", "0", "false", "no"):
            monkeypatch.setenv("REPRO_CACHE", value)
            assert not result_cache._CacheState().enabled

    def test_replay_demotes_bad_payload_to_miss(self, tmp_path, game):
        result_cache.enable_cache(tmp_path)
        solve_game(game)
        store = result_cache.get_cache()
        with store._lock:
            with store._conn:
                store._conn.execute(
                    "UPDATE cache_entries SET payload = 'not json'")
        probe = result_cache.lookup(
            game, "equilibria.solve",
            {"seed": 0, "allow_extensions": True})
        assert probe.hit
        assert probe.replay(lambda text: (_ for _ in ()).throw(
            ValueError("boom"))) is None
        assert not probe.hit
        assert _counter("cache.errors.count") == 1


# --------------------------------------------------------------------------
# solver integration: byte-identical replay


class TestSolverReplay:
    def test_solve_game_replays_byte_identically(self, tmp_path, game):
        reference = solve_result_to_json(solve_game(game))
        result_cache.enable_cache(tmp_path)
        cold = solve_result_to_json(solve_game(game))
        hot = solve_result_to_json(solve_game(game))
        assert cold == reference  # enabled-cold == disabled
        assert hot == cold
        assert _counter("cache.hits.count") == 1

    def test_double_oracle_replays_equal_result(self, tmp_path):
        game = TupleGame(grid_graph(2, 3), k=2, nu=1)
        cold = double_oracle(game)
        result_cache.enable_cache(tmp_path)
        double_oracle(game)
        hot = double_oracle(game)
        assert _counter("cache.hits.count") == 1
        assert hot.value == cold.value
        assert hot.solution.defender == cold.solution.defender
        assert hot.solution.attacker == cold.solution.attacker
        assert hot.iterations == cold.iterations
        assert hot.gap_history == cold.gap_history
        assert hot.exact == cold.exact

    def test_fictitious_play_replays_equal_result(self, tmp_path):
        game = TupleGame(grid_graph(2, 3), k=2, nu=1)
        cold = fictitious_play(game, rounds=20)
        result_cache.enable_cache(tmp_path)
        fictitious_play(game, rounds=20)
        hot = fictitious_play(game, rounds=20)
        assert _counter("cache.hits.count") == 1
        assert hot.rounds == cold.rounds
        assert hot.lower_bound == cold.lower_bound
        assert hot.upper_bound == cold.upper_bound
        assert hot.history == cold.history

    def test_param_change_is_a_different_entry(self, tmp_path, game):
        result_cache.enable_cache(tmp_path)
        solve_game(game, seed=0)
        solve_game(game, seed=1)
        assert _counter("cache.hits.count") == 0
        assert result_cache.get_cache().stats()["entries"] == 2

    def test_weighted_games_never_share_entries(self, tmp_path):
        graph = complete_bipartite_graph(2, 3)
        base = {v: 1.0 for v in graph.vertices()}
        other = dict(base)
        other[graph.sorted_vertices()[0]] = 2.0
        a = WeightedTupleGame(graph, 2, base)
        b = WeightedTupleGame(graph, 2, other)
        result_cache.enable_cache(tmp_path)
        _, sol_a = weighted_lp_equilibrium(a)
        _, sol_b = weighted_lp_equilibrium(b)
        assert _counter("cache.hits.count") == 0
        assert result_cache.get_cache().stats()["entries"] == 2
        # Replays restore each game's own value, not the other's.
        _, sol_a2 = weighted_lp_equilibrium(a)
        _, sol_b2 = weighted_lp_equilibrium(b)
        assert _counter("cache.hits.count") == 2
        assert sol_a2.value == sol_a.value
        assert sol_b2.value == sol_b.value
        # The two games' solutions are genuinely different objects
        # (different supports), so a shared entry would have been caught.
        assert sol_a.defender != sol_b.defender

    def test_weighted_double_oracle_replays(self, tmp_path):
        graph = complete_bipartite_graph(2, 3)
        game = WeightedTupleGame(
            graph, 2, {v: 1.5 for v in graph.vertices()})
        cold_config, cold_value = weighted_double_oracle(game)
        result_cache.enable_cache(tmp_path)
        weighted_double_oracle(game)
        hot_config, hot_value = weighted_double_oracle(game)
        assert _counter("cache.hits.count") == 1
        assert hot_value == cold_value
        assert configuration_to_json(hot_config) \
            == configuration_to_json(cold_config)

    def test_cache_hit_stamped_in_ledger(self, tmp_path, game):
        obs_ledger.enable_ledger(tmp_path / "ledger")
        result_cache.enable_cache(tmp_path / "cache")
        try:
            solve_game(game)
            solve_game(game)
        finally:
            obs_ledger.disable_ledger()
        runs = obs_ledger.read_runs(directory=tmp_path / "ledger",
                                    entry_point="equilibria.solve")
        stamps = sorted(r["attributes"]["cache_hit"] for r in runs)
        assert stamps == [False, True]
