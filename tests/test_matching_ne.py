"""Tests for Edge-model matching NE and Algorithm A
(repro.equilibria.matching_ne)."""

import pytest

from repro.core.characterization import check_characterization, is_mixed_nash
from repro.core.configuration import MixedConfiguration
from repro.core.game import GameError, TupleGame
from repro.core.profits import expected_profit_tp, hit_probability
from repro.equilibria.matching_ne import (
    algorithm_a,
    build_matching_cover,
    is_matching_configuration,
    matching_equilibrium,
)
from repro.graphs.core import Graph
from repro.graphs.generators import petersen_graph
from repro.graphs.properties import is_edge_cover
from repro.matching.partition import bipartite_partition
from tests.conftest import bipartite_zoo, zoo_params


class TestBuildMatchingCover:
    @pytest.mark.parametrize("graph", zoo_params(bipartite_zoo()))
    def test_cover_structure(self, graph):
        independent, cover_side = bipartite_partition(graph)
        cover = build_matching_cover(graph, independent, cover_side)
        assert is_edge_cover(graph, cover)
        # Each IS vertex incident to exactly one cover edge.
        for v in independent:
            assert sum(1 for e in cover if v in e) == 1
        # Every edge has exactly one IS endpoint.
        for u, w in cover:
            assert (u in independent) != (w in independent)
        # |cover| = |IS| follows from the two facts above.
        assert len(cover) == len(independent)

    def test_rejects_non_partition(self, path4):
        with pytest.raises(GameError, match="partition"):
            build_matching_cover(path4, {0, 1}, {1, 2, 3})

    def test_rejects_dependent_is(self, path4):
        with pytest.raises(GameError, match="independent"):
            build_matching_cover(path4, {0, 1}, {2, 3})

    def test_rejects_empty_is(self, path4):
        with pytest.raises(GameError, match="non-empty"):
            build_matching_cover(path4, set(), {0, 1, 2, 3})

    def test_rejects_expander_violation_with_certificate(self, k23):
        # IS = small side {0,1}: the 3-side cannot match into it.
        with pytest.raises(GameError, match="Hall violator"):
            build_matching_cover(k23, {0, 1}, {2, 3, 4})


class TestAlgorithmA:
    @pytest.mark.parametrize("graph", zoo_params(bipartite_zoo()))
    def test_produces_matching_nash_equilibrium(self, graph):
        game = TupleGame(graph, k=1, nu=3)
        independent, cover_side = bipartite_partition(graph)
        config = algorithm_a(game, independent, cover_side)
        assert is_matching_configuration(game, config)
        assert is_mixed_nash(game, config)

    def test_hit_probability_is_one_over_is(self, k24):
        game = TupleGame(k24, k=1, nu=2)
        independent, cover_side = bipartite_partition(k24)
        config = algorithm_a(game, independent, cover_side)
        for v in config.vp_support_union():
            assert hit_probability(config, v) == pytest.approx(1 / len(independent))

    def test_defender_gain_formula(self, grid34):
        game = TupleGame(grid34, k=1, nu=4)
        independent, cover_side = bipartite_partition(grid34)
        config = algorithm_a(game, independent, cover_side)
        assert expected_profit_tp(config) == pytest.approx(4 / len(independent))

    def test_rejects_tuple_model_game(self, k24):
        game = TupleGame(k24, k=2, nu=1)
        independent, cover_side = bipartite_partition(k24)
        with pytest.raises(GameError, match="Edge model"):
            algorithm_a(game, independent, cover_side)


class TestMatchingEquilibriumEntryPoint:
    def test_bipartite(self, grid34):
        game = TupleGame(grid34, k=1, nu=2)
        config = matching_equilibrium(game)
        assert is_mixed_nash(game, config)

    def test_non_bipartite_with_partition(self):
        g = Graph([("a", "b"), ("b", "c"), ("c", "a"), ("a", "d")])
        game = TupleGame(g, k=1, nu=1)
        config = matching_equilibrium(game)
        assert is_matching_configuration(game, config)
        assert is_mixed_nash(game, config)

    def test_petersen_raises(self):
        game = TupleGame(petersen_graph(), k=1, nu=1)
        with pytest.raises(GameError, match="no IS/VC partition"):
            matching_equilibrium(game)


class TestIsMatchingConfiguration:
    def test_rejects_dependent_support(self, path4):
        game = TupleGame(path_graph_4 := path4, k=1, nu=1)
        config = MixedConfiguration.uniform(
            game, [0, 1], [[(0, 1)], [(2, 3)]]
        )
        assert not is_matching_configuration(game, config)

    def test_rejects_vertex_with_two_support_edges(self, path4):
        game = TupleGame(path4, k=1, nu=1)
        config = MixedConfiguration.uniform(
            game, [1], [[(0, 1)], [(1, 2)]]
        )
        assert not is_matching_configuration(game, config)

    def test_only_defined_on_edge_model(self, path4):
        game = TupleGame(path4, k=2, nu=1)
        config = MixedConfiguration.uniform(game, [0], [[(0, 1), (2, 3)]])
        with pytest.raises(GameError, match="Edge model"):
            is_matching_configuration(game, config)
