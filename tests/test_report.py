"""Tests for the one-shot security report (repro.analysis.report)."""

import pytest

from repro.analysis.report import security_report
from repro.equilibria.solve import NoEquilibriumFoundError
from repro.graphs.core import Graph
from repro.graphs.generators import (
    complete_bipartite_graph,
    grid_graph,
    petersen_graph,
    star_graph,
)


class TestSecurityReport:
    def test_contains_all_sections(self):
        report = security_report(grid_graph(2, 3), k=2, nu=3, trials=2_000)
        assert "1. Topology" in report
        assert "2. Defender power profile" in report
        assert "3. Operating point k = 2" in report
        assert "4. Optimal-polytope analysis" in report

    def test_topology_facts(self):
        report = security_report(grid_graph(2, 3), k=2, nu=1, trials=0)
        assert "minimum edge cover rho(G)" in report
        assert "bipartite" in report

    def test_simulation_confirmed(self):
        report = security_report(
            complete_bipartite_graph(2, 3), k=2, nu=2, trials=5_000, seed=4
        )
        assert "confirmed" in report

    def test_trials_zero_skips_simulation(self):
        report = security_report(grid_graph(2, 3), k=2, nu=1, trials=0)
        assert "simulation" not in report

    def test_star_report_flags_safe_center(self):
        report = security_report(star_graph(4), k=1, nu=1, trials=0)
        # The hub is hit by every edge; no rational attacker stands there.
        assert "hosts no rational attacker uses  : [0]" in report

    def test_pure_operating_point(self):
        report = security_report(grid_graph(2, 2), k=2, nu=2, trials=0)
        assert "equilibrium kind : pure" in report

    def test_petersen_via_extension_kind(self):
        report = security_report(petersen_graph(), k=2, nu=2, trials=0)
        assert "perfect-matching" in report

    def test_unsolvable_operating_point_raises(self):
        house = Graph([(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)])
        with pytest.raises(NoEquilibriumFoundError):
            security_report(house, k=1, nu=1, trials=0)

    def test_polytope_skipped_on_large_strategy_space(self):
        graph = grid_graph(4, 5)
        report = security_report(graph, k=8, nu=1, trials=0)
        assert "skipped" in report
