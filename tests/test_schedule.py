"""Tests for deterministic scan rosters (repro.analysis.schedule)."""

import pytest

from repro.analysis.schedule import (
    compile_roster,
    roster_discrepancy,
    roster_frequencies,
)
from repro.core.configuration import MixedConfiguration
from repro.core.game import GameError, TupleGame
from repro.equilibria.solve import solve_game
from repro.graphs.generators import complete_bipartite_graph, grid_graph, path_graph


@pytest.fixture
def equilibrium():
    game = TupleGame(complete_bipartite_graph(2, 5), 2, nu=1)
    return game, solve_game(game).mixed


class TestCompileRoster:
    def test_exact_frequencies_when_divisible(self, equilibrium):
        game, config = equilibrium
        support = len(config.tp_support())
        roster = compile_roster(config, length=support * 12)
        frequencies = roster_frequencies(roster)
        for t, p in config.tp_distribution().items():
            assert frequencies[t] == pytest.approx(p)

    def test_non_divisible_length_within_one_slot(self, equilibrium):
        game, config = equilibrium
        length = len(config.tp_support()) * 7 + 3
        roster = compile_roster(config, length=length)
        frequencies = roster_frequencies(roster)
        for t, p in config.tp_distribution().items():
            assert abs(frequencies[t] - p) <= 1.0 / length + 1e-12

    def test_every_support_tuple_appears(self, equilibrium):
        game, config = equilibrium
        roster = compile_roster(config, length=len(config.tp_support()))
        assert set(roster) == config.tp_support()

    def test_rejects_too_short_roster(self, equilibrium):
        game, config = equilibrium
        with pytest.raises(GameError, match="cannot represent"):
            compile_roster(config, length=len(config.tp_support()) - 1)

    def test_non_uniform_distribution(self):
        game = TupleGame(path_graph(4), 1, nu=1)
        config = MixedConfiguration(
            game, [{0: 1.0}], {((0, 1),): 0.75, ((2, 3),): 0.25}
        )
        roster = compile_roster(config, length=8)
        frequencies = roster_frequencies(roster)
        assert frequencies[((0, 1),)] == pytest.approx(0.75)
        assert frequencies[((2, 3),)] == pytest.approx(0.25)

    def test_deterministic(self, equilibrium):
        game, config = equilibrium
        assert compile_roster(config, 20) == compile_roster(config, 20)


class TestDiscrepancy:
    def test_compiled_roster_is_even_in_time(self, equilibrium):
        game, config = equilibrium
        roster = compile_roster(config, length=40)
        assert roster_discrepancy(roster, config) <= 1.0 + 1e-9

    def test_blocked_roster_is_uneven(self):
        """Playing each tuple in one solid block has discrepancy ~L/2."""
        game = TupleGame(path_graph(4), 1, nu=1)
        config = MixedConfiguration(
            game, [{0: 1.0}], {((0, 1),): 0.5, ((2, 3),): 0.5}
        )
        blocked = [((0, 1),)] * 10 + [((2, 3),)] * 10
        assert roster_discrepancy(blocked, config) >= 4.9
        interleaved = compile_roster(config, 20)
        assert roster_discrepancy(interleaved, config) <= 1.0 + 1e-9

    def test_rejects_off_support_play(self, equilibrium):
        game, config = equilibrium
        foreign = tuple(sorted(game.graph.sorted_edges()[:2]))
        roster = [foreign]
        if foreign in config.tp_support():
            pytest.skip("chosen tuple happens to be on-support")
        with pytest.raises(GameError, match="off-support"):
            roster_discrepancy(roster, config)

    def test_empty_roster_frequencies_raises(self):
        with pytest.raises(GameError):
            roster_frequencies([])


class TestOperationalPipeline:
    def test_grid_schedule_end_to_end(self):
        """Solve, compile a month of nightly scans, check evenness."""
        game = TupleGame(grid_graph(3, 3), 2, nu=4)
        config = solve_game(game).mixed
        roster = compile_roster(config, length=30)
        assert len(roster) == 30
        assert roster_discrepancy(roster, config) <= 1.0 + 1e-9
        for t in roster:
            assert t in config.tp_support()
