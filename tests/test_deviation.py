"""Tests for best-deviation witnesses (repro.core.deviation)."""

import pytest

from repro.core.configuration import MixedConfiguration
from repro.core.deviation import (
    best_attacker_deviation,
    best_defender_deviation,
    exploitability,
)
from repro.core.game import GameError, TupleGame
from repro.equilibria.solve import solve_game
from repro.graphs.generators import complete_bipartite_graph, grid_graph, path_graph


@pytest.fixture
def game():
    return TupleGame(path_graph(4), 1, nu=1)


class TestWitnesses:
    def test_attacker_finds_uncovered_vertex(self, game):
        config = MixedConfiguration(game, [{0: 1.0}], {((0, 1),): 1.0})
        deviation = best_attacker_deviation(game, config)
        # Vertices 2, 3 are never hit; the canonical minimum is 2.
        assert deviation.vertex == 2
        assert deviation.payoff == pytest.approx(1.0)
        assert deviation.gain == pytest.approx(1.0)  # was always caught

    def test_defender_finds_attacker_mass(self, game):
        config = MixedConfiguration(game, [{3: 1.0}], {((0, 1),): 1.0})
        deviation = best_defender_deviation(game, config)
        assert 3 in {v for e in deviation.tuple_choice for v in e}
        assert deviation.payoff == pytest.approx(1.0)
        assert deviation.gain == pytest.approx(1.0)

    def test_zero_gain_at_equilibrium(self):
        game = TupleGame(complete_bipartite_graph(2, 4), 2, nu=3)
        config = solve_game(game).mixed
        for i in range(game.nu):
            assert best_attacker_deviation(game, config, i).gain == pytest.approx(
                0.0, abs=1e-9
            )
        assert best_defender_deviation(game, config).gain == pytest.approx(
            0.0, abs=1e-9
        )

    def test_rejects_bad_player_index(self, game):
        config = solve_game(game).mixed
        with pytest.raises(GameError, match="no vertex player"):
            best_attacker_deviation(game, config, player=5)

    def test_rejects_foreign_config(self, game):
        other = TupleGame(path_graph(4), 1, nu=2)
        config = solve_game(other).mixed
        with pytest.raises(GameError, match="different game"):
            best_attacker_deviation(game, config)
        with pytest.raises(GameError, match="different game"):
            best_defender_deviation(game, config)


class TestExploitability:
    def test_zero_at_equilibrium(self):
        game = TupleGame(grid_graph(3, 3), 2, nu=2)
        config = solve_game(game).mixed
        assert exploitability(game, config) == pytest.approx(0.0, abs=1e-9)

    def test_positive_off_equilibrium(self, game):
        config = MixedConfiguration(game, [{0: 1.0}], {((2, 3),): 1.0})
        assert exploitability(game, config) > 0.5

    def test_normalized_by_nu(self):
        """A defender-side defect of fixed absolute size counts the same
        relative to the attacker population."""
        graph = path_graph(4)
        for nu in (1, 4):
            game = TupleGame(graph, 2, nu=nu)
            # Defender ignores the attackers camped on vertex 0's edge.
            config = MixedConfiguration(
                game, [{3: 1.0}] * nu, {((0, 1), (1, 2)): 1.0}
            )
            # All attackers escape; defender could catch all nu of them.
            assert exploitability(game, config) == pytest.approx(1.0)
