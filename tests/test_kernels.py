"""Tests for the coverage-oracle kernel (repro.kernels).

The property tests pin the kernel to *reference implementations* ported
verbatim from the seed ``best_response`` module (full enumeration over
``itertools.combinations`` and the original greedy loop), so any semantic
drift in the optimized searches is caught against first-principles code.

Weights in the identity sweeps are dyadic rationals (multiples of 1/64):
their coverage sums are exact in binary floating point, so mathematically
tied tuples compare exactly equal and the deterministic tie-break is
observable without summation-order noise.
"""

import inspect
import random
from itertools import combinations
from pathlib import Path

import pytest

from repro.core.tuples import tuple_vertices
from repro.graphs.core import GraphError
from repro.graphs.generators import (
    complete_bipartite_graph,
    cycle_graph,
    gnp_random_graph,
    path_graph,
)
from repro.kernels import CoverageOracle, clear_shared_oracles, shared_oracle

REPO_ROOT = Path(__file__).resolve().parent.parent


# --------------------------------------------------------------------------
# reference implementations (seed semantics, deliberately naive)
# --------------------------------------------------------------------------


def reference_exhaustive(graph, weights, k):
    best_t, best_v = None, float("-inf")
    for combo in combinations(graph.sorted_edges(), k):
        value = sum(weights.get(v, 0.0) for v in tuple_vertices(combo))
        if value > best_v + 1e-15:
            best_v = value
            best_t = combo
    return best_t, best_v


def reference_greedy(graph, weights, k):
    chosen, covered = [], set()
    remaining = set(graph.sorted_edges())
    value = 0.0
    for _ in range(k):
        best_edge, best_gain = None, float("-inf")
        for edge in sorted(remaining):
            gain = sum(
                weights.get(x, 0.0) for x in edge if x not in covered
            )
            if gain > best_gain + 1e-15:
                best_gain = gain
                best_edge = edge
        remaining.discard(best_edge)
        chosen.append(best_edge)
        covered.update(best_edge)
        value += best_gain
    return tuple(sorted(chosen)), value


def random_instance(seed, tie_prone):
    rng = random.Random(seed)
    graph = gnp_random_graph(rng.randrange(5, 9), 0.5, seed=seed)
    if tie_prone:
        weights = {v: float(rng.choice([0, 1, 1, 2])) for v in graph.vertices()}
    else:
        weights = {v: rng.randrange(0, 256) / 64.0 for v in graph.vertices()}
    return graph, weights


# --------------------------------------------------------------------------
# identity with the seed implementations
# --------------------------------------------------------------------------


class TestMatchesReference:
    @pytest.mark.parametrize("seed", range(25))
    @pytest.mark.parametrize("tie_prone", [False, True], ids=["dyadic", "ties"])
    def test_all_methods_match_seed_semantics(self, seed, tie_prone):
        graph, weights = random_instance(seed, tie_prone)
        for k in range(1, min(4, graph.m) + 1):
            oracle = CoverageOracle(graph, k)
            ref_t, ref_v = reference_exhaustive(graph, weights, k)
            for name in ("exhaustive", "branch_and_bound"):
                got_t, got_v = getattr(oracle, name)(weights)
                assert got_t == ref_t, (name, seed, k)
                assert got_v == pytest.approx(ref_v, abs=1e-12)
            ref_t, ref_v = reference_greedy(graph, weights, k)
            got_t, got_v = oracle.greedy(weights)
            assert got_t == ref_t, ("greedy", seed, k)
            assert got_v == pytest.approx(ref_v, abs=1e-12)

    @pytest.mark.parametrize("seed", range(10))
    def test_best_dispatch_is_exact(self, seed):
        graph, weights = random_instance(seed, tie_prone=False)
        k = min(3, graph.m)
        oracle = CoverageOracle(graph, k)
        ref_t, ref_v = reference_exhaustive(graph, weights, k)
        for method in ("auto", "exhaustive", "bnb"):
            got_t, got_v = oracle.best(weights, method=method)
            assert got_t == ref_t and got_v == pytest.approx(ref_v)

    def test_off_graph_weights_ignored(self):
        graph = path_graph(4)
        oracle = CoverageOracle(graph, 1)
        t, v = oracle.best({0: 1.0, "nope": 99.0}, method="exhaustive")
        assert v == pytest.approx(1.0)
        assert 0 in tuple_vertices(t)

    def test_bad_k_rejected(self):
        with pytest.raises(GraphError):
            CoverageOracle(path_graph(4), 0)
        with pytest.raises(GraphError):
            CoverageOracle(path_graph(4), 9)

    def test_unknown_method_rejected(self):
        oracle = CoverageOracle(path_graph(4), 1)
        with pytest.raises(ValueError, match="unknown method"):
            oracle.best({}, method="magic")


class TestExactMethodsAgreeOnTies:
    """Both exact searches must return the canonical (lexicographically
    smallest) optimal tuple — the seed bnb did not (see test_best_response
    for the pinned pre-fix disagreement)."""

    @pytest.mark.parametrize("seed", range(30))
    def test_bnb_tuple_equals_exhaustive_tuple(self, seed):
        graph, weights = random_instance(seed, tie_prone=True)
        for k in range(1, min(4, graph.m) + 1):
            oracle = CoverageOracle(graph, k)
            assert oracle.branch_and_bound(weights) == oracle.exhaustive(weights)

    def test_uniform_cycle_ties(self):
        graph = cycle_graph(8)
        weights = {v: 1.0 for v in graph.vertices()}
        oracle = CoverageOracle(graph, 3)
        t_bnb, _ = oracle.branch_and_bound(weights)
        t_exh, _ = oracle.exhaustive(weights)
        assert t_bnb == t_exh


# --------------------------------------------------------------------------
# batching
# --------------------------------------------------------------------------


class TestQueryMany:
    def _vectors(self, graph, count=6):
        rng = random.Random(7)
        return [
            {v: rng.randrange(0, 64) / 16.0 for v in graph.vertices()}
            for _ in range(count)
        ]

    def test_matches_single_queries(self):
        graph = complete_bipartite_graph(3, 4)
        oracle = CoverageOracle(graph, 2)
        vectors = self._vectors(graph)
        batched = oracle.query_many(vectors)
        assert batched == [oracle.best(wv) for wv in vectors]

    def test_parallel_matches_serial(self):
        graph = complete_bipartite_graph(3, 4)
        oracle = CoverageOracle(graph, 2)
        vectors = self._vectors(graph)
        serial = oracle.query_many(vectors, processes=1)
        # Falls back to the serial path on platforms without working
        # multiprocessing — either way the answers must be identical.
        parallel = oracle.query_many(vectors, processes=2)
        assert parallel == serial

    def test_empty_batch(self):
        oracle = CoverageOracle(path_graph(4), 1)
        assert oracle.query_many([]) == []


# --------------------------------------------------------------------------
# shared cache + coverage views
# --------------------------------------------------------------------------


class TestSharedCache:
    def test_same_instance_is_reused(self):
        graph = path_graph(5)
        assert shared_oracle(graph, 2) is shared_oracle(graph, 2)

    def test_distinct_k_distinct_oracles(self):
        graph = path_graph(5)
        assert shared_oracle(graph, 1) is not shared_oracle(graph, 2)

    def test_equal_graphs_share(self):
        assert shared_oracle(path_graph(5), 2) is shared_oracle(path_graph(5), 2)

    def test_clear_drops_cache(self):
        graph = path_graph(5)
        before = shared_oracle(graph, 2)
        clear_shared_oracles()
        assert shared_oracle(graph, 2) is not before

    def test_clear_resets_size_gauge(self):
        # Regression: clear_shared_oracles() used to leave the
        # perf.kernel.cache.size gauge at its pre-clear value, reporting
        # phantom cached oracles until the next miss.
        from repro.obs import metrics

        shared_oracle(path_graph(5), 2)
        shared_oracle(path_graph(6), 2)
        assert metrics.gauge("perf.kernel.cache.size").value >= 2
        clear_shared_oracles()
        assert metrics.gauge("perf.kernel.cache.size").value == 0


class TestCoverageViews:
    def test_coverage_sets_match_tuple_vertices(self):
        graph = cycle_graph(6)
        oracle = CoverageOracle(graph, 2)
        tuples = [((0, 1), (2, 3)), ((1, 2), (4, 5))]
        sets = oracle.coverage_sets(tuples)
        assert sets == {t: tuple_vertices(t) for t in tuples}

    def test_coverage_sets_memoized_on_support(self):
        graph = cycle_graph(6)
        oracle = CoverageOracle(graph, 2)
        tuples = [((0, 1), (2, 3)), ((1, 2), (4, 5))]
        first = oracle.coverage_sets(tuples)
        again = oracle.coverage_sets(list(reversed(tuples)))
        assert again is first

    def test_coverage_matrix_entries(self):
        np = pytest.importorskip("numpy")
        graph = cycle_graph(6)
        oracle = CoverageOracle(graph, 2)
        tuples = [((0, 1), (2, 3)), ((1, 2), (4, 5))]
        matrix, slot = oracle.coverage_matrix(tuples)
        for row, t in enumerate(tuples):
            covered = tuple_vertices(t)
            for v in oracle.vertices:
                assert matrix[row, slot[v]] == (v in covered)
        assert oracle.coverage_matrix(tuples)[0] is matrix


# --------------------------------------------------------------------------
# facade contract
# --------------------------------------------------------------------------


class TestFacadeContract:
    """The best_response facade must keep the seed public surface: every
    export documented in docs/api.md, signatures unchanged."""

    EXPECTED_SIGNATURES = {
        "coverage_value": "(weights, t)",
        "exhaustive_best_tuple": "(graph, weights, k)",
        "branch_and_bound_best_tuple": "(graph, weights, k)",
        "greedy_tuple": "(graph, weights, k)",
        "best_tuple": "(graph, weights, k, method='auto', exhaustive_limit=100000)",
    }

    def test_signatures_unchanged(self):
        from repro.solvers import best_response

        assert sorted(best_response.__all__) == sorted(self.EXPECTED_SIGNATURES)
        for name, expected in self.EXPECTED_SIGNATURES.items():
            sig = inspect.signature(getattr(best_response, name))
            # Compare parameter names and defaults, ignoring annotations.
            got = "({})".format(
                ", ".join(
                    p.name
                    if p.default is inspect.Parameter.empty
                    else f"{p.name}={p.default!r}"
                    for p in sig.parameters.values()
                )
            )
            assert got == expected, (name, got)

    def test_exports_documented_in_api_md(self):
        api = (REPO_ROOT / "docs" / "api.md").read_text()
        import repro.kernels
        from repro.solvers import best_response

        for name in list(best_response.__all__) + list(repro.kernels.__all__):
            assert f"`{name}`" in api, f"{name} missing from docs/api.md"
