"""Smoke tests: every shipped example must run cleanly end-to-end."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} printed nothing"


def test_all_examples_are_covered():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 4
