"""Tests for the vectorized simulation fast path (repro.simulation.fast)."""

import pytest

from repro.core.configuration import MixedConfiguration
from repro.core.game import GameError, TupleGame
from repro.core.profits import expected_profit_tp, hit_probability
from repro.equilibria.solve import solve_game
from repro.graphs.generators import complete_bipartite_graph, grid_graph, path_graph
from repro.simulation.engine import simulate
from repro.simulation.fast import simulate_fast


@pytest.fixture
def equilibrium():
    game = TupleGame(grid_graph(3, 3), 2, nu=4)
    return game, solve_game(game).mixed


class TestStatisticalCorrectness:
    def test_ci_contains_analytic_value(self, equilibrium):
        game, config = equilibrium
        result = simulate_fast(game, config, trials=120_000, seed=3)
        low, high = result.defender_confidence_interval()
        assert low <= expected_profit_tp(config) <= high

    def test_catch_rates_match_hit_probabilities(self, equilibrium):
        game, config = equilibrium
        result = simulate_fast(game, config, trials=120_000, seed=5)
        support = sorted(config.vp_support_union(), key=repr)
        theoretical = hit_probability(config, support[0])
        for rate in result.catch_rates:
            assert rate == pytest.approx(theoretical, abs=0.01)

    def test_non_uniform_profile(self):
        game = TupleGame(path_graph(4), 1, nu=1)
        config = MixedConfiguration(
            game, [{0: 0.3, 3: 0.7}], {((0, 1),): 0.2, ((2, 3),): 0.8}
        )
        result = simulate_fast(game, config, trials=150_000, seed=9)
        low, high = result.defender_confidence_interval()
        assert low <= expected_profit_tp(config) <= high


class TestEquivalenceWithReferenceEngine:
    def test_same_expectation_as_slow_engine(self, equilibrium):
        """Different RNG streams, same distribution: the two engines'
        confidence intervals must overlap generously."""
        game, config = equilibrium
        fast = simulate_fast(game, config, trials=60_000, seed=1)
        slow = simulate(game, config, trials=60_000, seed=1)
        fast_low, fast_high = fast.defender_confidence_interval()
        slow_low, slow_high = slow.defender_profit.confidence_interval()
        assert fast_low <= slow_high and slow_low <= fast_high

    def test_per_attacker_rates_agree(self):
        game = TupleGame(complete_bipartite_graph(2, 4), 2, nu=3)
        config = solve_game(game).mixed
        fast = simulate_fast(game, config, trials=60_000, seed=2)
        slow = simulate(game, config, trials=60_000, seed=2)
        for i in range(game.nu):
            assert fast.catch_rates[i] == pytest.approx(
                slow.catch_rate(i), abs=0.01
            )


class TestMechanics:
    def test_deterministic_per_seed(self, equilibrium):
        game, config = equilibrium
        a = simulate_fast(game, config, trials=5_000, seed=11)
        b = simulate_fast(game, config, trials=5_000, seed=11)
        assert a.defender_mean == b.defender_mean
        assert a.catch_rates == b.catch_rates

    def test_single_trial(self, equilibrium):
        game, config = equilibrium
        result = simulate_fast(game, config, trials=1, seed=0)
        assert result.defender_std == 0.0
        assert result.trials == 1

    def test_rejects_zero_trials(self, equilibrium):
        game, config = equilibrium
        with pytest.raises(GameError):
            simulate_fast(game, config, trials=0)

    def test_rejects_foreign_config(self, equilibrium):
        game, _ = equilibrium
        other = TupleGame(path_graph(4), 1, nu=1)
        config = solve_game(other).mixed
        with pytest.raises(GameError, match="different game"):
            simulate_fast(game, config, trials=10)

    def test_repr(self, equilibrium):
        game, config = equilibrium
        assert "trials=100" in repr(simulate_fast(game, config, trials=100))
