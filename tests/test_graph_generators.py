"""Unit tests for the generator zoo (repro.graphs.generators)."""

import pytest

from repro.graphs.core import GraphError
from repro.graphs.generators import (
    barbell_graph,
    circulant_graph,
    complete_bipartite_graph,
    complete_graph,
    complete_multipartite_graph,
    cycle_graph,
    double_star_graph,
    gnp_random_graph,
    grid_graph,
    hypercube_graph,
    lollipop_graph,
    path_graph,
    petersen_graph,
    random_bipartite_graph,
    random_connected_graph,
    random_tree,
    star_graph,
    wheel_graph,
)
from repro.graphs.properties import (
    bipartition,
    is_bipartite,
    is_connected,
    is_regular,
    max_degree,
    min_degree,
)


class TestStructuredFamilies:
    def test_path(self):
        g = path_graph(5)
        assert (g.n, g.m) == (5, 4)
        assert g.degree(0) == 1 and g.degree(4) == 1
        assert g.degree(2) == 2
        assert is_connected(g)

    def test_path_too_small(self):
        with pytest.raises(GraphError):
            path_graph(1)

    def test_cycle(self):
        g = cycle_graph(6)
        assert (g.n, g.m) == (6, 6)
        assert is_regular(g) and min_degree(g) == 2

    def test_odd_cycle_not_bipartite(self):
        assert not is_bipartite(cycle_graph(5))
        assert is_bipartite(cycle_graph(6))

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_complete(self):
        g = complete_graph(5)
        assert (g.n, g.m) == (5, 10)
        assert is_regular(g) and max_degree(g) == 4

    def test_complete_bipartite(self):
        g = complete_bipartite_graph(2, 3)
        assert (g.n, g.m) == (5, 6)
        left, right = bipartition(g)
        assert {len(left), len(right)} == {2, 3}

    def test_star(self):
        g = star_graph(4)
        assert (g.n, g.m) == (5, 4)
        assert g.degree(0) == 4

    def test_double_star(self):
        g = double_star_graph(3, 4)
        assert (g.n, g.m) == (9, 8)
        assert g.degree(0) == 4  # 3 leaves + bridge
        assert g.degree(1) == 5
        assert is_bipartite(g)

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.n == 12
        assert g.m == 3 * 3 + 2 * 4  # horizontal + vertical
        assert is_bipartite(g)

    def test_grid_single_row_is_path(self):
        assert grid_graph(1, 5) == path_graph(5)

    def test_hypercube(self):
        g = hypercube_graph(3)
        assert (g.n, g.m) == (8, 12)
        assert is_regular(g) and min_degree(g) == 3
        assert is_bipartite(g)

    def test_petersen(self):
        g = petersen_graph()
        assert (g.n, g.m) == (10, 15)
        assert is_regular(g) and min_degree(g) == 3
        assert not is_bipartite(g)

    def test_circulant(self):
        g = circulant_graph(8, (1, 3))
        assert g.n == 8
        assert is_regular(g) and min_degree(g) == 4

    def test_circulant_rejects_zero_offset(self):
        with pytest.raises(GraphError):
            circulant_graph(6, (6,))


class TestDenseFamilies:
    def test_wheel(self):
        g = wheel_graph(5)
        assert (g.n, g.m) == (6, 10)
        assert g.degree(0) == 5
        assert not is_bipartite(g)
        assert is_connected(g)

    def test_wheel_too_small(self):
        with pytest.raises(GraphError):
            wheel_graph(2)

    def test_complete_multipartite_counts(self):
        g = complete_multipartite_graph(2, 3, 4)
        assert g.n == 9
        assert g.m == 2 * 3 + 2 * 4 + 3 * 4

    def test_complete_multipartite_two_classes_is_bipartite(self):
        assert complete_multipartite_graph(3, 4) == complete_bipartite_graph(3, 4)

    def test_complete_multipartite_classes_are_independent(self):
        from repro.graphs.properties import is_independent_set

        g = complete_multipartite_graph(3, 2, 2)
        assert is_independent_set(g, {0, 1, 2})
        assert is_independent_set(g, {3, 4})

    def test_complete_multipartite_rejects_bad_args(self):
        with pytest.raises(GraphError):
            complete_multipartite_graph(3)
        with pytest.raises(GraphError):
            complete_multipartite_graph(3, 0)

    def test_barbell(self):
        g = barbell_graph(4, 3)
        assert g.n == 2 * 4 + 2  # two interior bridge vertices
        assert g.m == 2 * 6 + 3
        assert is_connected(g)
        assert not is_bipartite(g)

    def test_barbell_single_edge_bridge(self):
        g = barbell_graph(3, 1)
        assert g.n == 6
        assert g.m == 2 * 3 + 1

    def test_barbell_rejects_bad_args(self):
        with pytest.raises(GraphError):
            barbell_graph(2, 1)
        with pytest.raises(GraphError):
            barbell_graph(3, 0)

    def test_lollipop(self):
        g = lollipop_graph(5, 4)
        assert g.n == 9
        assert g.m == 10 + 4
        assert g.degree(8) == 1  # tail end
        assert is_connected(g)

    def test_lollipop_rejects_bad_args(self):
        with pytest.raises(GraphError):
            lollipop_graph(2, 2)
        with pytest.raises(GraphError):
            lollipop_graph(4, 0)


class TestRandomFamilies:
    def test_random_tree_is_a_tree(self):
        for seed in range(8):
            g = random_tree(15, seed=seed)
            assert g.n == 15
            assert g.m == 14
            assert is_connected(g)
            assert is_bipartite(g)

    def test_random_tree_deterministic_per_seed(self):
        assert random_tree(12, seed=4) == random_tree(12, seed=4)

    def test_random_tree_varies_across_seeds(self):
        graphs = {random_tree(12, seed=s) for s in range(10)}
        assert len(graphs) > 1

    def test_random_tree_two_vertices(self):
        g = random_tree(2, seed=0)
        assert (g.n, g.m) == (2, 1)

    def test_random_bipartite_no_isolated(self):
        for seed in range(8):
            g = random_bipartite_graph(6, 9, 0.1, seed=seed)
            assert min_degree(g) >= 1
            assert is_bipartite(g)
            assert g.n == 15

    def test_random_bipartite_deterministic(self):
        a = random_bipartite_graph(5, 5, 0.3, seed=2)
        b = random_bipartite_graph(5, 5, 0.3, seed=2)
        assert a == b

    def test_random_bipartite_p_one_is_complete(self):
        g = random_bipartite_graph(3, 4, 1.0, seed=0)
        assert g == complete_bipartite_graph(3, 4)

    def test_random_bipartite_rejects_bad_p(self):
        with pytest.raises(GraphError):
            random_bipartite_graph(3, 3, 1.5)

    def test_gnp_no_isolated(self):
        for seed in range(8):
            g = gnp_random_graph(14, 0.05, seed=seed)
            assert min_degree(g) >= 1
            assert g.n == 14

    def test_gnp_p_one_is_complete(self):
        assert gnp_random_graph(5, 1.0, seed=0) == complete_graph(5)

    def test_gnp_deterministic(self):
        assert gnp_random_graph(10, 0.3, seed=7) == gnp_random_graph(10, 0.3, seed=7)

    def test_random_connected_graph(self):
        g = random_connected_graph(12, extra_edges=5, seed=3)
        assert g.n == 12
        assert g.m == 11 + 5
        assert is_connected(g)

    def test_random_connected_zero_extra_is_tree(self):
        g = random_connected_graph(9, extra_edges=0, seed=1)
        assert g.m == 8


class TestPerfectMatchingFamily:
    def test_planted_matching_present(self):
        from repro.graphs.generators import random_graph_with_perfect_matching
        from repro.matching.blossom import matching_number

        for seed in range(6):
            g = random_graph_with_perfect_matching(5, extra_edges=8, seed=seed)
            assert g.n == 10
            assert matching_number(g) == 5  # perfect

    def test_zero_extras_is_the_bare_matching(self):
        from repro.graphs.generators import random_graph_with_perfect_matching

        g = random_graph_with_perfect_matching(4, extra_edges=0, seed=0)
        assert g.m == 4
        assert all(g.has_edge(2 * i, 2 * i + 1) for i in range(4))

    def test_deterministic(self):
        from repro.graphs.generators import random_graph_with_perfect_matching

        assert random_graph_with_perfect_matching(
            4, 6, seed=9
        ) == random_graph_with_perfect_matching(4, 6, seed=9)

    def test_rejects_zero_pairs(self):
        from repro.graphs.generators import random_graph_with_perfect_matching

        with pytest.raises(GraphError):
            random_graph_with_perfect_matching(0, 1)
