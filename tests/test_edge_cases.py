"""Edge-case and failure-injection tests across the whole stack.

Degenerate graphs (single edge), extreme parameters (k = m, ν = 1,
huge ν), numerically adversarial probabilities, and deliberately broken
inputs — making sure every layer fails loudly or degrades gracefully.
"""

import pytest

from repro.core.characterization import is_mixed_nash, verify_best_responses
from repro.core.configuration import MixedConfiguration, PureConfiguration
from repro.core.game import GameError, TupleGame
from repro.core.profits import expected_profit_tp
from repro.equilibria.solve import solve_game
from repro.graphs.core import Graph
from repro.graphs.generators import (
    complete_bipartite_graph,
    path_graph,
    star_graph,
)
from repro.matching.covers import minimum_edge_cover_size
from repro.simulation.engine import simulate
from repro.solvers.double_oracle import double_oracle
from repro.solvers.lp import solve_minimax


class TestSingleEdgeGraph:
    """K2: the smallest legal instance — everything must still work."""

    @pytest.fixture
    def k2(self):
        return Graph([(0, 1)])

    def test_solve_is_pure(self, k2):
        game = TupleGame(k2, 1, nu=3)
        result = solve_game(game)
        assert result.kind == "pure"
        assert result.defender_gain == 3.0

    def test_lp_value_is_one(self, k2):
        assert solve_minimax(TupleGame(k2, 1, nu=1)).value == pytest.approx(1.0)

    def test_double_oracle(self, k2):
        assert double_oracle(TupleGame(k2, 1, nu=1)).value == pytest.approx(1.0)

    def test_simulation(self, k2):
        game = TupleGame(k2, 1, nu=2)
        config = solve_game(game).mixed
        report = simulate(game, config, trials=100, seed=0)
        assert report.defender_profit.mean == pytest.approx(2.0)

    def test_rho_is_one(self, k2):
        assert minimum_edge_cover_size(k2) == 1


class TestKEqualsM:
    """k = m: the defender watches every link; everything is covered."""

    def test_solve(self):
        graph = path_graph(4)
        game = TupleGame(graph, graph.m, nu=2)
        result = solve_game(game)
        assert result.kind == "pure"
        config = result.mixed
        assert expected_profit_tp(config) == pytest.approx(2.0)

    def test_every_attacker_position_is_equivalent(self):
        graph = star_graph(3)
        game = TupleGame(graph, graph.m, nu=1)
        for v in graph.vertices():
            config = MixedConfiguration(
                game, [{v: 1.0}], {tuple(graph.sorted_edges()): 1.0}
            )
            ok, _ = verify_best_responses(game, config)
            assert ok


class TestManyAttackers:
    def test_large_nu_scales_linearly(self):
        graph = complete_bipartite_graph(2, 4)
        rho = minimum_edge_cover_size(graph)
        game = TupleGame(graph, 2, nu=1000)
        result = solve_game(game)
        assert result.defender_gain == pytest.approx(2 * 1000 / rho)

    def test_profile_with_heterogeneous_attackers_still_checks(self):
        graph = path_graph(4)
        game = TupleGame(graph, 2, nu=3)
        # Three attackers with *different* distributions on the support.
        config = MixedConfiguration(
            game,
            [{0: 1.0}, {3: 1.0}, {0: 0.5, 3: 0.5}],
            {((0, 1), (2, 3)): 1.0},
        )
        # Full cover: it is an NE (degenerate), and profits add up.
        ok, _ = verify_best_responses(game, config)
        assert ok
        assert expected_profit_tp(config) == pytest.approx(3.0)


class TestNumericalEdges:
    def test_near_one_probability_sum_tolerance(self):
        graph = path_graph(4)
        game = TupleGame(graph, 1, nu=1)
        third = 1.0 / 3.0
        config = MixedConfiguration(
            game,
            [{0: third, 2: third, 3: 1.0 - 2 * third}],
            {((0, 1),): 0.5, ((2, 3),): 0.5},
        )
        assert abs(sum(config.vp_distribution(0).values()) - 1.0) < 1e-12

    def test_tiny_probability_kept_not_dropped(self):
        graph = path_graph(4)
        game = TupleGame(graph, 1, nu=1)
        eps = 1e-12
        config = MixedConfiguration(
            game, [{0: 1.0 - eps, 3: eps}], {((0, 1),): 1.0}
        )
        assert 3 in config.vp_support(0)

    def test_is_mixed_nash_respects_custom_tolerance(self):
        graph = complete_bipartite_graph(2, 3)
        game = TupleGame(graph, 1, nu=1)
        config = solve_game(game).mixed
        # Perturb the attacker slightly: fails at tight tolerance, passes
        # at loose tolerance.
        dist = dict(config.vp_distribution(0))
        keys = sorted(dist, key=repr)
        dist[keys[0]] += 1e-5
        dist[keys[1]] -= 1e-5
        perturbed = MixedConfiguration(game, [dist], config.tp_distribution())
        assert not is_mixed_nash(game, perturbed, tol=1e-9)
        assert is_mixed_nash(game, perturbed, tol=1e-3)


class TestBrokenInputsFailLoudly:
    def test_pure_configuration_duplicate_edges(self):
        from repro.graphs.core import GraphError

        game = TupleGame(path_graph(4), 2, nu=1)
        with pytest.raises(GraphError, match="distinct"):
            PureConfiguration(game, [0], [(0, 1), (1, 0)])

    def test_mixed_configuration_nan_probability(self):
        game = TupleGame(path_graph(4), 1, nu=1)
        with pytest.raises(GameError):
            MixedConfiguration(game, [{0: float("nan")}], {((0, 1),): 1.0})

    def test_solver_rejects_disconnected_after_construction(self):
        # Disconnected graphs are legal for the solver (each component
        # gets covered), but isolated vertices are not.
        disconnected = Graph([(0, 1), (2, 3)])
        game = TupleGame(disconnected, 2, nu=1)
        result = solve_game(game)
        assert result.kind == "pure"

    def test_simulate_rejects_negative_trials(self):
        game = TupleGame(path_graph(4), 1, nu=1)
        config = solve_game(game).mixed
        with pytest.raises(GameError):
            simulate(game, config, trials=-5)
