"""Tests for the coverage best-response solvers (repro.solvers.best_response)."""

import random

import pytest

from repro.graphs.core import GraphError
from repro.graphs.generators import (
    complete_bipartite_graph,
    cycle_graph,
    gnp_random_graph,
    path_graph,
    star_graph,
)
from repro.solvers.best_response import (
    best_tuple,
    branch_and_bound_best_tuple,
    coverage_value,
    exhaustive_best_tuple,
    greedy_tuple,
)


class TestCoverageValue:
    def test_distinct_endpoints_only(self):
        weights = {0: 1.0, 1: 2.0, 2: 4.0}
        assert coverage_value(weights, ((0, 1), (1, 2))) == pytest.approx(7.0)

    def test_missing_vertices_count_zero(self):
        assert coverage_value({}, ((0, 1),)) == 0.0


class TestExactSolvers:
    def test_known_optimum_path(self):
        g = path_graph(5)
        weights = {0: 5.0, 1: 0.0, 2: 1.0, 3: 0.0, 4: 5.0}
        # Two edges cannot cover 0, 2 and 4 simultaneously on P5, so the
        # optimum takes both endpoints and forfeits the middle vertex.
        t, value = exhaustive_best_tuple(g, weights, 2)
        assert value == pytest.approx(10.0)
        assert t == ((0, 1), (3, 4))

    def test_overlap_penalized(self):
        # Star: all edges share the center, so extra edges add only leaves.
        g = star_graph(4)
        weights = {0: 10.0, 1: 1.0, 2: 2.0, 3: 3.0, 4: 4.0}
        t, value = exhaustive_best_tuple(g, weights, 2)
        assert value == pytest.approx(10.0 + 4.0 + 3.0)
        assert t == ((0, 3), (0, 4))

    @pytest.mark.parametrize("seed", range(15))
    def test_bnb_matches_exhaustive(self, seed):
        rng = random.Random(seed)
        g = gnp_random_graph(rng.randrange(5, 10), 0.5, seed=seed)
        weights = {v: rng.uniform(0, 3) for v in g.vertices()}
        k = rng.randrange(1, min(4, g.m) + 1)
        _, exhaustive_value = exhaustive_best_tuple(g, weights, k)
        _, bnb_value = branch_and_bound_best_tuple(g, weights, k)
        assert bnb_value == pytest.approx(exhaustive_value)

    def test_bnb_on_uniform_weights(self):
        g = cycle_graph(8)
        weights = {v: 1.0 for v in g.vertices()}
        _, value = branch_and_bound_best_tuple(g, weights, 4)
        assert value == pytest.approx(8.0)  # perfect cover exists

    def test_deterministic_tie_breaking(self):
        g = cycle_graph(6)
        weights = {v: 1.0 for v in g.vertices()}
        first = exhaustive_best_tuple(g, weights, 2)
        second = exhaustive_best_tuple(g, weights, 2)
        assert first == second


class TestCanonicalTieBreak:
    """Regression: the seed bnb explored edges in static-weight order and
    could return an equal-value but lexicographically *larger* tuple than
    exhaustive enumeration on ties.  Both exact methods must now return
    the canonical (lexicographically smallest) optimal tuple."""

    def test_pinned_pre_fix_disagreement(self):
        # On this instance the seed code returned ((0, 4), (3, 5)) from
        # exhaustive but ((3, 5), (4, 5)) from bnb (both value 6.0).
        rng = random.Random(1)
        g = gnp_random_graph(rng.randrange(5, 9), 0.5, seed=1)
        weights = {v: float(rng.choice([0, 1, 1, 2])) for v in g.vertices()}
        t_exh, v_exh = exhaustive_best_tuple(g, weights, 2)
        t_bnb, v_bnb = branch_and_bound_best_tuple(g, weights, 2)
        assert t_exh == t_bnb == ((0, 4), (3, 5))
        assert v_exh == v_bnb == pytest.approx(6.0)

    @pytest.mark.parametrize("seed", range(20))
    def test_exact_methods_agree_on_ties(self, seed):
        # Integer weights with few levels make value ties the common case.
        rng = random.Random(seed)
        g = gnp_random_graph(rng.randrange(5, 9), 0.5, seed=seed)
        weights = {v: float(rng.choice([0, 1, 1, 2])) for v in g.vertices()}
        for k in range(1, min(4, g.m) + 1):
            assert exhaustive_best_tuple(g, weights, k) == \
                branch_and_bound_best_tuple(g, weights, k)


class TestGreedy:
    def test_greedy_is_optimal_on_disjoint_instance(self):
        g = path_graph(6)
        weights = {0: 3.0, 1: 3.0, 2: 0.0, 3: 0.0, 4: 2.0, 5: 2.0}
        _, value = greedy_tuple(g, weights, 2)
        assert value == pytest.approx(10.0)

    @pytest.mark.parametrize("seed", range(10))
    def test_greedy_within_optimum(self, seed):
        rng = random.Random(seed)
        g = gnp_random_graph(8, 0.5, seed=seed)
        weights = {v: rng.uniform(0, 2) for v in g.vertices()}
        k = min(3, g.m)
        _, opt = exhaustive_best_tuple(g, weights, k)
        _, approx = greedy_tuple(g, weights, k)
        assert approx <= opt + 1e-9
        # 1 - 1/e guarantee, with slack for exact-arithmetic edge cases.
        assert approx >= (1 - 1 / 2.718281828) * opt - 1e-9

    def test_greedy_returns_k_distinct_edges(self):
        g = complete_bipartite_graph(3, 3)
        t, _ = greedy_tuple(g, {v: 1.0 for v in g.vertices()}, 4)
        assert len(set(t)) == 4


class TestDispatch:
    def test_auto_uses_exhaustive_for_small(self):
        g = path_graph(4)
        result_auto = best_tuple(g, {0: 1.0}, 1, method="auto")
        result_ex = exhaustive_best_tuple(g, {0: 1.0}, 1)
        assert result_auto == result_ex

    def test_auto_switches_to_bnb(self):
        g = complete_bipartite_graph(4, 5)
        weights = {v: 1.0 for v in g.vertices()}
        # Force the switch by setting the enumeration budget to 1.
        t, value = best_tuple(g, weights, 3, method="auto", exhaustive_limit=1)
        _, reference = exhaustive_best_tuple(g, weights, 3)
        assert value == pytest.approx(reference)

    def test_explicit_methods(self):
        g = path_graph(5)
        weights = {v: 1.0 for v in g.vertices()}
        for method in ("exhaustive", "bnb", "greedy"):
            t, value = best_tuple(g, weights, 2, method=method)
            assert len(t) == 2

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown method"):
            best_tuple(path_graph(4), {}, 1, method="magic")

    def test_bad_k(self):
        with pytest.raises(GraphError):
            best_tuple(path_graph(4), {}, 0)
        with pytest.raises(GraphError):
            best_tuple(path_graph(4), {}, 9)
