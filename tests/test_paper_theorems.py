"""Traceability matrix: one test per numbered claim of the paper.

Every theorem, corollary, lemma, claim and observation of *The Power of
the Defender* gets a test named after it that asserts the claim's exact
statement on concrete instances.  Other test modules probe the same
machinery more deeply; this one exists so a reviewer can map paper
statements to passing tests one-to-one.
"""

from math import gcd

import pytest

from repro.core.characterization import (
    check_characterization,
    is_mixed_nash,
    verify_best_responses,
)
from repro.core.configuration import MixedConfiguration
from repro.core.game import TupleGame
from repro.core.profits import (
    expected_profit_tp,
    hit_probability,
    tuple_mass,
)
from repro.core.pure import find_pure_nash, is_pure_nash, pure_nash_exists
from repro.equilibria.atuple import algorithm_a_tuple, cyclic_tuples
from repro.equilibria.kmatching import (
    is_kmatching_configuration,
    kmatching_profile,
    predicted_defender_gain,
    predicted_hit_probability,
)
from repro.equilibria.matching_ne import (
    algorithm_a,
    is_matching_configuration,
    matching_equilibrium,
)
from repro.equilibria.reduction import edge_to_tuple, tuple_to_edge
from repro.equilibria.solve import solve_game
from repro.graphs.generators import (
    complete_bipartite_graph,
    grid_graph,
    random_bipartite_graph,
)
from repro.matching.covers import has_edge_cover_of_size, minimum_edge_cover_size
from repro.matching.partition import bipartite_partition, is_valid_partition

GRAPH = random_bipartite_graph(4, 6, 0.4, seed=2006)
RHO = minimum_edge_cover_size(GRAPH)
NU = 3


def test_theorem_3_1_pure_ne_iff_edge_cover_of_size_k():
    """Π_k(G) has a pure NE iff G contains an edge cover of size k."""
    for k in range(1, GRAPH.m + 1):
        game = TupleGame(GRAPH, k, nu=NU)
        assert pure_nash_exists(game) == has_edge_cover_of_size(GRAPH, k)


def test_corollary_3_2_existence_decided_and_constructed_in_poly_time():
    """Decision + construction run the polynomial matching pipeline; the
    constructed profile is verified as a pure NE from first principles."""
    game = TupleGame(GRAPH, RHO, nu=NU)
    config = find_pure_nash(game)
    assert config is not None
    assert is_pure_nash(game, config)


def test_corollary_3_3_no_pure_ne_when_n_at_least_2k_plus_1():
    for k in range(1, GRAPH.m + 1):
        if GRAPH.n >= 2 * k + 1:
            assert not pure_nash_exists(TupleGame(GRAPH, k, nu=1))


def test_theorem_3_4_characterization_is_sound_and_complete():
    """Forward: a constructed NE satisfies all clauses.  Backward: a
    profile satisfying all clauses passes the independent best-response
    verifier (and a clause-violating profile fails it)."""
    k = max(1, RHO - 1)
    game = TupleGame(GRAPH, k, nu=NU)
    config = solve_game(game).mixed
    report = check_characterization(game, config)
    assert report.is_nash and report.properly_mixed
    ok, _ = verify_best_responses(game, config)
    assert ok


def test_observation_4_1_one_matching_equals_matching_configurations():
    """For k = 1 the two definitions coincide, in both directions."""
    edge_game = TupleGame(GRAPH, 1, nu=NU)
    config = matching_equilibrium(edge_game)
    assert is_matching_configuration(edge_game, config)
    assert is_kmatching_configuration(edge_game, config)
    # And a non-matching configuration is also not 1-matching.
    bad = MixedConfiguration.uniform(
        edge_game, [GRAPH.sorted_vertices()[0]],
        [[GRAPH.sorted_edges()[0]], [GRAPH.sorted_edges()[1]]],
    )
    assert is_matching_configuration(edge_game, bad) == (
        is_kmatching_configuration(edge_game, bad)
    )


def test_lemma_4_1_uniform_distributions_make_kmatching_configs_equilibria():
    k = max(1, RHO - 1)
    game = TupleGame(GRAPH, k, nu=NU)
    solved = solve_game(game).mixed
    rebuilt = kmatching_profile(
        game, solved.vp_support_union(), solved.tp_support()
    )
    assert is_mixed_nash(game, rebuilt)


def test_claim_4_2_vertex_masses_are_nu_over_support():
    from repro.core.profits import vertex_mass

    k = max(1, RHO - 1)
    game = TupleGame(GRAPH, k, nu=NU)
    config = solve_game(game).mixed
    support = config.vp_support_union()
    for v in support:
        assert vertex_mass(config, v) == pytest.approx(NU / len(support))
    for v in GRAPH.vertices() - support:
        assert vertex_mass(config, v) == 0.0


def test_claim_4_3_hit_probability_is_k_over_support_edges():
    for k in range(1, RHO):
        game = TupleGame(GRAPH, k, nu=NU)
        config = solve_game(game).mixed
        expected = game.k / len(config.tp_support_edges())
        assert predicted_hit_probability(game, config) == pytest.approx(expected)
        for v in config.vp_support_union():
            assert hit_probability(config, v) == pytest.approx(expected)


def test_claim_4_4_off_support_vertices_hit_at_least_as_often():
    k = max(1, RHO - 1)
    game = TupleGame(GRAPH, k, nu=NU)
    config = solve_game(game).mixed
    support = config.vp_support_union()
    floor = predicted_hit_probability(game, config)
    for v in GRAPH.vertices() - support:
        assert hit_probability(config, v) >= floor - 1e-12


def test_theorem_4_5_reduction_both_directions_with_gain_factor_k():
    edge_game = TupleGame(GRAPH, 1, nu=NU)
    edge_ne = matching_equilibrium(edge_game)
    for k in range(2, RHO):
        lifted = edge_to_tuple(edge_game, edge_ne, k)
        game = TupleGame(GRAPH, k, nu=NU)
        assert is_mixed_nash(game, lifted)
        assert expected_profit_tp(lifted) == pytest.approx(
            k * expected_profit_tp(edge_ne)
        )
        back = tuple_to_edge(game, lifted)
        assert is_mixed_nash(edge_game, back)


def test_corollary_4_7_flattening_divides_gain_by_k():
    k = max(2, RHO - 1)
    game = TupleGame(GRAPH, k, nu=NU)
    config = solve_game(game).mixed
    back = tuple_to_edge(game, config)
    assert expected_profit_tp(config) == pytest.approx(
        k * expected_profit_tp(back)
    )


def test_lemma_4_8_cyclic_lift_produces_kmatching_configuration():
    edge_game = TupleGame(GRAPH, 1, nu=NU)
    edge_ne = matching_equilibrium(edge_game)
    for k in range(2, RHO):
        lifted = edge_to_tuple(edge_game, edge_ne, k)
        assert is_kmatching_configuration(TupleGame(GRAPH, k, nu=NU), lifted)


def test_claim_4_9_each_edge_in_exactly_k_over_gcd_tuples():
    edges = [(2 * i, 2 * i + 1) for i in range(RHO)]
    for k in range(1, RHO + 1):
        windows = cyclic_tuples(edges, k)
        alpha = k // gcd(RHO, k)
        for e in edges:
            assert sum(1 for w in windows if e in w) == alpha


def test_corollary_4_10_lifting_multiplies_gain_by_k():
    edge_game = TupleGame(GRAPH, 1, nu=NU)
    edge_ne = matching_equilibrium(edge_game)
    base = expected_profit_tp(edge_ne)
    for k in range(2, RHO):
        assert expected_profit_tp(
            edge_to_tuple(edge_game, edge_ne, k)
        ) == pytest.approx(k * base)


def test_corollary_4_11_kmatching_ne_iff_is_vc_partition():
    """Bipartite instance: the partition exists and the NE exists; the
    exact search elsewhere (see test_hall_partition / test_solve) covers
    the negative direction (Petersen, C5)."""
    independent, cover = bipartite_partition(GRAPH)
    assert is_valid_partition(GRAPH, independent)
    game = TupleGame(GRAPH, max(1, RHO - 1), nu=NU)
    assert solve_game(game, allow_extensions=False).kind == "k-matching"


def test_theorem_4_12_algorithm_a_tuple_output_is_kmatching_ne():
    independent, cover = bipartite_partition(GRAPH)
    for k in range(1, RHO):
        game = TupleGame(GRAPH, k, nu=NU)
        config = algorithm_a_tuple(game, independent, cover)
        assert is_kmatching_configuration(game, config)
        assert is_mixed_nash(game, config)


def test_theorem_4_13_support_size_bounded_by_enum():
    """The O(k·n) bound manifests structurally: the construction emits
    δ = E_num/gcd ≤ E_num ≤ n tuples of k edges each (timing in E4)."""
    independent, cover = bipartite_partition(GRAPH)
    for k in range(1, RHO):
        game = TupleGame(GRAPH, k, nu=NU)
        config = algorithm_a_tuple(game, independent, cover)
        assert len(config.tp_support()) <= RHO
        assert len(config.tp_support()) == RHO // gcd(RHO, k)


def test_theorem_5_1_bipartite_pipeline_end_to_end():
    for seed in range(3):
        graph = random_bipartite_graph(3, 5, 0.4, seed=seed)
        rho = minimum_edge_cover_size(graph)
        for k in range(1, rho):
            game = TupleGame(graph, k, nu=2)
            result = solve_game(game, allow_extensions=False)
            assert result.kind == "k-matching"
            assert is_mixed_nash(game, result.mixed)


def test_lemma_2_1_uniform_matching_configuration_is_ne():
    """The Edge-model premise the paper imports from [7]."""
    edge_game = TupleGame(GRAPH, 1, nu=NU)
    independent, cover = bipartite_partition(GRAPH)
    config = algorithm_a(edge_game, independent, cover)
    assert is_matching_configuration(edge_game, config)
    assert is_mixed_nash(edge_game, config)


def test_theorem_2_2_partition_characterizes_matching_ne():
    """Positive direction here; the negative direction (no partition ⇒ no
    matching NE support exists) is exercised exhaustively on small graphs
    in test_hall_partition.py."""
    independent, cover = bipartite_partition(GRAPH)
    assert is_valid_partition(GRAPH, independent)
    config = matching_equilibrium(TupleGame(GRAPH, 1, nu=1))
    assert config.vp_support_union() == independent or is_valid_partition(
        GRAPH, config.vp_support_union()
    )


def test_section_1_2_headline_gain_linear_in_k():
    from repro.analysis.gain import fit_slope_through_origin, gain_curve

    points = [p for p in gain_curve(GRAPH, NU) if p.kind == "k-matching"]
    slope = fit_slope_through_origin(points)
    assert slope == pytest.approx(NU / RHO)
    for p in points:
        assert p.gain == pytest.approx(slope * p.k)
