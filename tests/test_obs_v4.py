"""Tests for the v4 observability layer — request correlation.

Covers the trace-context machinery in :mod:`repro.obs.tracing`
(W3C ``traceparent`` parsing, span identity, contextvars propagation
across thread hops), the ledger's ``trace_id`` stamping, the structured
access log (:mod:`repro.obs.access`) and the SLO engine
(:mod:`repro.obs.slo`) plus its panel in the run report.
"""

import contextvars
import json
import threading

import pytest

from repro.obs import access as obs_access
from repro.obs import events as obs_events
from repro.obs import ledger as obs_ledger
from repro.obs import tracing
from repro.obs.report import render_report_html, render_report_markdown
from repro.obs.slo import (
    SLO_REPORT_SCHEMA,
    SloEngine,
    SloObjective,
    default_objectives,
    evaluate_slos,
    load_slo_config,
)
from repro.serve import WorkerPool

VALID_TRACEPARENT = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
VALID_TRACE_ID = "4bf92f3577b34da6a3ce929d0e0e4736"
VALID_PARENT_ID = "00f067aa0ba902b7"


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Correlation state is process/context-global; reset around each test."""
    yield
    tracing.enable_tracing(False)
    tracing.clear_trace()
    obs_access.disable_access_log()
    obs_events.disable_events()
    obs_ledger.disable_ledger()


class TestTraceparent:
    def test_parse_valid(self):
        assert tracing.parse_traceparent(VALID_TRACEPARENT) == (
            VALID_TRACE_ID, VALID_PARENT_ID)

    def test_parse_uppercase_is_normalized(self):
        header = VALID_TRACEPARENT.upper().replace("FF", "ff")
        parsed = tracing.parse_traceparent(
            f"00-{VALID_TRACE_ID.upper()}-{VALID_PARENT_ID.upper()}-01")
        assert parsed == (VALID_TRACE_ID, VALID_PARENT_ID)
        del header

    @pytest.mark.parametrize("header", [
        None,
        "",
        "garbage",
        "00-abc-def-01",                                   # wrong lengths
        VALID_TRACEPARENT + "-extra",                      # 5 parts
        VALID_TRACEPARENT.replace("4bf9", "zzzz"),         # non-hex
        "ff-" + VALID_TRACEPARENT[3:],                     # reserved version
        f"00-{'0' * 32}-{VALID_PARENT_ID}-01",             # zero trace id
        f"00-{VALID_TRACE_ID}-{'0' * 16}-01",              # zero parent id
        f"0-{VALID_TRACE_ID}-{VALID_PARENT_ID}-01",        # short version
        f"00-{VALID_TRACE_ID}-{VALID_PARENT_ID}-1",        # short flags
    ])
    def test_parse_rejects(self, header):
        assert tracing.parse_traceparent(header) is None

    def test_format_round_trips(self):
        header = tracing.format_traceparent(VALID_TRACE_ID, VALID_PARENT_ID)
        assert tracing.parse_traceparent(header) == (
            VALID_TRACE_ID, VALID_PARENT_ID)


class TestStartTrace:
    def test_honors_inbound_traceparent(self):
        context = tracing.start_trace(VALID_TRACEPARENT)
        assert context.trace_id == VALID_TRACE_ID
        assert context.parent_id == VALID_PARENT_ID
        # This hop gets its own span id, echoed in the outbound header.
        assert context.span_id != VALID_PARENT_ID
        assert context.traceparent() == \
            f"00-{VALID_TRACE_ID}-{context.span_id}-01"

    def test_mints_on_malformed_header(self):
        context = tracing.start_trace("not-a-traceparent")
        assert context.trace_id != VALID_TRACE_ID
        assert len(context.trace_id) == 32
        int(context.trace_id, 16)
        assert context.parent_id is None

    def test_fresh_traces_are_distinct(self):
        first = tracing.start_trace(None)
        second = tracing.start_trace(None)
        assert first.trace_id != second.trace_id
        assert tracing.current_trace() is second

    def test_current_trace_id_create(self):
        tracing.start_trace(None)
        assert tracing.current_trace_id() == tracing.current_trace().trace_id
        created = tracing.current_trace_id(create=True)
        assert created == tracing.current_trace().trace_id


class TestSpanIdentity:
    def test_nested_spans_share_the_trace(self):
        tracing.enable_tracing(True)
        context = tracing.start_trace(VALID_TRACEPARENT)
        with tracing.span("outer") as outer:
            with tracing.span("inner") as inner:
                pass
        assert outer.trace_id == inner.trace_id == VALID_TRACE_ID
        assert outer.parent_id == context.span_id
        assert inner.parent_id == outer.span_id
        assert len({outer.span_id, inner.span_id, context.span_id}) == 3

    def test_to_dict_carries_identity(self):
        tracing.enable_tracing(True)
        tracing.start_trace(None)
        with tracing.span("work"):
            pass
        (root,) = tracing.get_trace()
        payload = root.to_dict()
        assert payload["trace_id"] == tracing.current_trace().trace_id
        assert payload["span_id"] == root.span_id
        assert payload["parent_id"] == root.parent_id

    def test_disabled_tracing_still_has_identity(self):
        tracing.enable_tracing(False)
        tracing.start_trace(None)
        with tracing.span("work") as live:
            assert live is None  # the near-free null context
        assert tracing.get_trace() == []
        assert tracing.current_trace_id() is not None


class TestContextPropagation:
    def test_copied_context_carries_the_trace_to_a_thread(self):
        context = tracing.start_trace(None)
        seen = {}
        copied = contextvars.copy_context()
        thread = threading.Thread(
            target=lambda: seen.update(
                trace_id=copied.run(tracing.current_trace_id)))
        thread.start()
        thread.join(timeout=10.0)
        assert seen["trace_id"] == context.trace_id

    def test_plain_thread_is_isolated(self):
        tracing.start_trace(None)
        seen = {}
        thread = threading.Thread(
            target=lambda: seen.update(trace=tracing.current_trace()))
        thread.start()
        thread.join(timeout=10.0)
        assert seen["trace"] is None

    def test_worker_pool_submit_propagates_the_trace(self):
        context = tracing.start_trace(None)
        pool = WorkerPool(workers=1, queue_limit=0)
        try:
            result = pool.submit(tracing.current_trace_id).result(timeout=30.0)
        finally:
            pool.close()
        assert result == context.trace_id

    def test_spans_from_a_copied_context_land_in_the_same_tree(self):
        tracing.enable_tracing(True)
        tracing.start_trace(None)
        copied = contextvars.copy_context()

        def work():
            with tracing.span("thread.work"):
                pass

        thread = threading.Thread(target=lambda: copied.run(work))
        thread.start()
        thread.join(timeout=10.0)
        assert [s.name for s in tracing.get_trace()] == ["thread.work"]


class TestLedgerTraceId:
    def test_recorded_run_stamps_the_active_trace(self, tmp_path):
        context = tracing.start_trace(None)
        obs_ledger.enable_ledger(tmp_path)
        with obs_ledger.run("test.correlated"):
            with tracing.span("test.step"):
                pass
        (record,) = obs_ledger.read_runs(directory=tmp_path)
        assert record["schema"] == obs_ledger.RECORD_SCHEMA
        assert record["trace_id"] == context.trace_id
        # The span tree carries the same id (runs always collect spans).
        assert record["spans"]
        assert all(s["trace_id"] == context.trace_id
                   for s in record["spans"])

    def test_run_without_a_trace_mints_one(self, tmp_path):
        # A fresh contextvars context has no trace at all.
        def record_in_fresh_context():
            obs_ledger.enable_ledger(tmp_path)
            with obs_ledger.run("test.minted"):
                pass

        contextvars.Context().run(record_in_fresh_context)
        (record,) = obs_ledger.read_runs(directory=tmp_path)
        assert record["trace_id"]
        int(record["trace_id"], 16)

    def test_run_events_carry_the_trace_id(self):
        context = tracing.start_trace(None)
        obs_events.enable_events(sink=False)
        with obs_ledger.run("test.events", record=False):
            pass
        events = obs_events.recent(types=["run.start", "run.end"])
        assert len(events) == 2
        assert all(e["payload"]["trace_id"] == context.trace_id
                   for e in events)


class TestAccessLog:
    def test_disabled_log_request_is_a_noop(self):
        assert not obs_access.access_log_enabled()
        assert obs_access.log_request(
            "a" * 32, "POST", "/solve", 200, None, 0.01) is None
        assert obs_access.access_log_path() is None

    def test_enable_write_read_round_trip(self, tmp_path):
        obs_access.enable_access_log(tmp_path)
        assert obs_access.access_log_enabled()
        record = obs_access.log_request(
            "b" * 32, "POST", "/solve", 200, None, 0.02,
            cache_hit=True, inflight=3)
        assert record["schema"] == obs_access.ACCESS_SCHEMA
        assert record["trace_id"] == "b" * 32
        assert record["endpoint"] == "/solve"
        assert record["cache_hit"] is True
        assert record["inflight"] == 3
        obs_access.disable_access_log()
        (read_back,) = obs_access.read_access(tmp_path)
        assert read_back == record

    def test_read_access_skips_corrupt_lines(self, tmp_path):
        sink = tmp_path / obs_access.SINK_FILENAME
        good = {"schema": obs_access.ACCESS_SCHEMA, "endpoint": "/solve",
                "status": 200}
        sink.write_text(json.dumps(good) + "\n{torn line\n[1, 2]\n")
        records = obs_access.read_access(sink)
        assert records == [good]

    def test_read_access_missing_file_is_empty(self, tmp_path):
        assert obs_access.read_access(tmp_path / "absent.jsonl") == []


class TestSloObjective:
    def test_needs_at_least_one_target(self):
        with pytest.raises(ValueError, match="latency_p95_s"):
            SloObjective("empty")

    @pytest.mark.parametrize("kwargs", [
        {"error_rate_budget": 0.0},
        {"error_rate_budget": 1.5},
        {"latency_p95_s": 0.0},
        {"latency_p95_s": 1.0, "window_s": 0},
        {"latency_p95_s": 1.0, "burn_rate_threshold": 0},
        {"latency_p95_s": 1.0, "endpoint": ""},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            SloObjective("bad", **kwargs)

    def test_matches_wildcard_and_exact(self):
        wildcard = SloObjective("all", endpoint="*", latency_p95_s=1.0)
        exact = SloObjective("solve", endpoint="/solve", latency_p95_s=1.0)
        assert wildcard.matches("/solve") and wildcard.matches("/ranges")
        assert exact.matches("/solve") and not exact.matches("/ranges")

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown objective keys"):
            SloObjective.from_dict(
                {"name": "x", "latency_p95_s": 1.0, "typo": True})

    def test_dict_round_trip(self):
        objective = SloObjective("solve", endpoint="/solve", window_s=600,
                                 error_rate_budget=0.05,
                                 burn_rate_threshold=2.0)
        rebuilt = SloObjective.from_dict(objective.to_dict())
        assert rebuilt.to_dict() == objective.to_dict()

    def test_defaults_cover_availability_and_latency(self):
        names = {o.name for o in default_objectives()}
        assert names == {"availability", "latency"}


class TestLoadSloConfig:
    def test_loads_the_committed_fixture(self):
        objectives = load_slo_config("tests/fixtures/slo/slo.json")
        assert [o.name for o in objectives] == [
            "availability", "solve-latency"]

    @pytest.mark.parametrize("document,match", [
        ("not json", "not valid JSON"),
        ("[1]", "JSON object"),
        ('{"schema": "wrong/v0", "objectives": []}', "schema"),
        ('{"schema": "repro.obs/slo-config/v1", "objectives": []}',
         "non-empty"),
        ('{"schema": "repro.obs/slo-config/v1", "objectives": ['
         '{"name": "a", "latency_p95_s": 1.0},'
         '{"name": "a", "latency_p95_s": 2.0}]}', "duplicate"),
    ])
    def test_rejects_bad_configs(self, tmp_path, document, match):
        path = tmp_path / "slo.json"
        path.write_text(document)
        with pytest.raises(ValueError, match=match):
            load_slo_config(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            load_slo_config(tmp_path / "absent.json")


def _access_record(ts, endpoint="/solve", status=200, latency_s=0.01):
    return {"schema": obs_access.ACCESS_SCHEMA, "ts": ts,
            "endpoint": endpoint, "status": status, "latency_s": latency_s}


class TestEvaluateSlos:
    def test_burn_rate_and_breach(self):
        objective = SloObjective("avail", error_rate_budget=0.10,
                                 window_s=100.0)
        records = [_access_record(1000.0 + i,
                                  status=500 if i < 2 else 200)
                   for i in range(10)]
        report = evaluate_slos([objective], records, now=1010.0)
        (result,) = report["results"]
        assert result["requests"] == 10
        assert result["errors"] == 2
        assert result["burn_rate"] == pytest.approx(2.0)
        assert result["breached"] is True
        assert report["breaches"] == ["avail"]
        assert report["schema"] == SLO_REPORT_SCHEMA

    def test_client_errors_do_not_burn_the_budget(self):
        objective = SloObjective("avail", error_rate_budget=0.01,
                                 window_s=100.0)
        records = [_access_record(1000.0 + i, status=400)
                   for i in range(10)]
        report = evaluate_slos([objective], records, now=1010.0)
        (result,) = report["results"]
        assert result["errors"] == 0
        assert result["breached"] is False

    def test_nearest_rank_p95(self):
        objective = SloObjective("lat", latency_p95_s=0.5, window_s=100.0)
        # 20 samples 0.01..0.20: nearest-rank p95 is the 19th -> 0.19.
        records = [_access_record(1000.0 + i, latency_s=(i + 1) / 100.0)
                   for i in range(20)]
        report = evaluate_slos([objective], records, now=1020.0)
        (result,) = report["results"]
        assert result["latency_p95_s"] == pytest.approx(0.19)
        assert result["breached"] is False

    def test_latency_target_needs_traffic(self):
        objective = SloObjective("lat", latency_p95_s=0.5)
        report = evaluate_slos([objective], [], now=1000.0)
        assert report["results"][0]["breached"] is False
        assert report["breaches"] == []

    def test_window_excludes_old_records(self):
        objective = SloObjective("avail", error_rate_budget=0.01,
                                 window_s=10.0)
        records = [_access_record(900.0, status=500),  # outside the window
                   _access_record(1005.0, status=200)]
        report = evaluate_slos([objective], records, now=1010.0)
        (result,) = report["results"]
        assert result["requests"] == 1 and result["errors"] == 0

    def test_now_defaults_to_newest_record(self):
        objective = SloObjective("avail", error_rate_budget=0.5,
                                 window_s=10.0)
        records = [_access_record(2000.0), _access_record(2005.0)]
        report = evaluate_slos([objective], records)
        assert report["now"] == 2005.0
        assert report["results"][0]["requests"] == 2

    def test_endpoint_filter(self):
        objective = SloObjective("solve", endpoint="/solve",
                                 error_rate_budget=0.5, window_s=100.0)
        records = [_access_record(1000.0, endpoint="/solve"),
                   _access_record(1001.0, endpoint="/ranges", status=500)]
        report = evaluate_slos([objective], records, now=1002.0)
        (result,) = report["results"]
        assert result["requests"] == 1 and result["errors"] == 0


class TestSloEngine:
    def test_status_document_shape(self):
        engine = SloEngine()
        engine.observe("/solve", 200, 0.01, ts=1000.0)
        report = engine.status_document(now=1001.0)
        assert report["schema"] == SLO_REPORT_SCHEMA
        assert {r["name"] for r in report["results"]} == {
            "availability", "latency"}
        assert report["breaches"] == []

    def test_breach_transition_publishes_once_and_rearms(self):
        objective = SloObjective("avail", error_rate_budget=0.10,
                                 window_s=100.0)
        engine = SloEngine([objective])
        obs_events.enable_events(sink=False)

        def breach_events():
            return obs_events.recent(types=["slo.breach"])

        baseline = len(breach_events())
        for i in range(10):
            engine.observe("/solve", 500, 0.01, ts=1000.0 + i)
        engine.status_document(now=1010.0)
        engine.status_document(now=1010.0)  # still breached: no re-publish
        assert len(breach_events()) == baseline + 1
        event = breach_events()[-1]
        assert event["payload"]["objective"] == "avail"
        # Recovery (errors age out of the window) re-arms the objective.
        for i in range(100):
            engine.observe("/solve", 200, 0.01, ts=1200.0 + i)
        report = engine.status_document(now=1300.0)
        assert report["breaches"] == []
        for i in range(10):
            engine.observe("/solve", 500, 0.01, ts=1301.0 + i)
        engine.status_document(now=1311.0)
        assert len(breach_events()) == baseline + 2


class TestReportSloPanel:
    def _breach_report(self):
        objective = SloObjective("avail", error_rate_budget=0.01,
                                 window_s=100.0)
        records = [_access_record(1000.0 + i, status=500) for i in range(5)]
        return evaluate_slos([objective], records, now=1005.0)

    def test_html_panel_renders_breach(self):
        document = render_report_html([], slo_report=self._breach_report())
        assert "Service-level objectives" in document
        assert "breach" in document
        assert "avail" in document

    def test_html_without_report_shows_hint(self):
        document = render_report_html([])
        assert "No SLO report" in document

    def test_markdown_panel(self):
        document = render_report_markdown(
            [], slo_report=self._breach_report())
        assert "## Service-level objectives" in document
        assert "BREACH" in document

    def test_markdown_without_report_omits_section(self):
        document = render_report_markdown([])
        assert "Service-level objectives" not in document


class TestSloCli:
    FIXTURES = "tests/fixtures/slo"

    def test_slo_check_exit_codes(self, capsys):
        from repro.cli import main

        assert main(["slo", "check", "--config", f"{self.FIXTURES}/slo.json",
                     "--access-path",
                     f"{self.FIXTURES}/access_ok.jsonl"]) == 0
        assert main(["slo", "check", "--config", f"{self.FIXTURES}/slo.json",
                     "--access-path",
                     f"{self.FIXTURES}/access_breach.jsonl"]) == 1
        captured = capsys.readouterr()
        assert "SLO breach:" in captured.err

    def test_slo_check_default_objectives(self, capsys):
        from repro.cli import main

        # No --config: the built-in availability + latency objectives.
        assert main(["slo", "check", "--access-path",
                     f"{self.FIXTURES}/access_ok.jsonl"]) == 0
        assert "availability" in capsys.readouterr().out

    def test_slo_report_json_document(self, capsys):
        from repro.cli import main

        assert main(["slo", "report", "--format", "json",
                     "--config", f"{self.FIXTURES}/slo.json",
                     "--access-path",
                     f"{self.FIXTURES}/access_breach.jsonl"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == SLO_REPORT_SCHEMA
        assert sorted(document["breaches"]) == [
            "availability", "solve-latency"]

    def test_ledger_report_access_path_builds_the_panel(self, tmp_path,
                                                        capsys):
        from repro.cli import main

        out_html = tmp_path / "r.html"
        out_md = tmp_path / "r.md"
        # --access-path alone evaluates the built-in objectives, same as
        # `slo check` without --config.
        assert main(["ledger", "report", "--dir", "tests/fixtures/ledger",
                     "-o", str(out_html), "--markdown", str(out_md),
                     "--access-path",
                     f"{self.FIXTURES}/access_ok.jsonl"]) == 0
        assert "Service-level objectives" in out_md.read_text()
        html_text = out_html.read_text()
        assert "availability" in html_text and "latency" in html_text
