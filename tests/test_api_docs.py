"""The committed API index must match the code (tools/gen_api_docs.py)."""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_api_docs_are_current():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "gen_api_docs.py"), "--check"],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr


def test_api_docs_cover_every_package():
    text = (REPO_ROOT / "docs" / "api.md").read_text()
    for package in (
        "repro.core", "repro.equilibria", "repro.graphs", "repro.matching",
        "repro.models", "repro.simulation", "repro.solvers", "repro.weighted",
        "repro.analysis",
    ):
        assert f"## `{package}`" in text, f"{package} missing from docs/api.md"
