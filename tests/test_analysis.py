"""Tests for table rendering and gain analysis (repro.analysis)."""

import pytest

from repro.analysis.gain import (
    GainPoint,
    fit_slope_through_origin,
    gain_curve,
    max_linearity_residual,
)
from repro.analysis.tables import Table, format_number
from repro.graphs.generators import (
    complete_bipartite_graph,
    grid_graph,
    petersen_graph,
)
from repro.matching.covers import minimum_edge_cover_size


class TestFormatNumber:
    def test_float_precision(self):
        assert format_number(1.23456, precision=3) == "1.235"

    def test_int_verbatim(self):
        assert format_number(42) == "42"

    def test_bool_words(self):
        assert format_number(True) == "yes"
        assert format_number(False) == "no"

    def test_string_passthrough(self):
        assert format_number("k-matching") == "k-matching"


class TestTable:
    def test_render_alignment(self):
        t = Table(["name", "value"], precision=2)
        t.add_row(["alpha", 1.5])
        t.add_row(["b", 10])
        out = t.render()
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", "+"}
        assert len(lines) == 4
        assert len(t) == 2

    def test_render_with_title(self):
        t = Table(["x"])
        t.add_row([1])
        assert t.render(title="My Table").splitlines()[0] == "My Table"

    def test_rejects_arity_mismatch(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError, match="2 columns"):
            t.add_row([1])

    def test_rejects_empty_headers(self):
        with pytest.raises(ValueError):
            Table([])

    def test_empty_table_renders_headers(self):
        t = Table(["only"])
        assert "only" in t.render()


class TestGainCurve:
    def test_default_sweep_covers_mixed_regime_plus_pure(self):
        graph = complete_bipartite_graph(2, 4)
        rho = minimum_edge_cover_size(graph)
        points = gain_curve(graph, nu=3)
        assert [p.k for p in points] == list(range(1, rho + 1))
        assert all(p.kind == "k-matching" for p in points[:-1])
        assert points[-1].kind == "pure"

    def test_gain_is_exactly_linear_in_mixed_regime(self):
        graph = grid_graph(3, 3)
        rho = minimum_edge_cover_size(graph)
        points = [p for p in gain_curve(graph, nu=4) if p.kind == "k-matching"]
        slope = fit_slope_through_origin(points)
        assert slope == pytest.approx(4 / rho)
        assert max_linearity_residual(points, slope) == pytest.approx(0.0, abs=1e-9)

    def test_lp_cross_check(self):
        graph = complete_bipartite_graph(2, 3)
        points = gain_curve(graph, nu=2, include_lp=True)
        for p in points:
            assert p.lp_gain is not None
            assert p.lp_gain == pytest.approx(p.gain, abs=1e-6)

    def test_lp_skipped_above_limit(self):
        graph = grid_graph(3, 4)
        points = gain_curve(graph, nu=1, ks=[5], include_lp=True, lp_tuple_limit=10)
        assert points[0].lp_gain is None

    def test_explicit_ks(self):
        graph = complete_bipartite_graph(2, 4)
        points = gain_curve(graph, nu=1, ks=[2, 3])
        assert [p.k for p in points] == [2, 3]

    def test_repr(self):
        assert "GainPoint" in repr(GainPoint(1, "pure", 2.0))


class TestSlopeFitting:
    def test_exact_line(self):
        points = [GainPoint(k, "k-matching", 0.75 * k) for k in range(1, 6)]
        assert fit_slope_through_origin(points) == pytest.approx(0.75)
        assert max_linearity_residual(points, 0.75) == pytest.approx(0.0)

    def test_residual_detects_nonlinearity(self):
        points = [GainPoint(1, "x", 1.0), GainPoint(2, "x", 4.0)]
        slope = fit_slope_through_origin(points)
        assert max_linearity_residual(points, slope) > 0.1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            fit_slope_through_origin([])

    def test_empty_residual_is_zero(self):
        assert max_linearity_residual([], 1.0) == 0.0
