"""Tests for the double-oracle solver (repro.solvers.double_oracle)."""

import pytest

from repro.core.game import TupleGame
from repro.graphs.generators import (
    complete_bipartite_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    petersen_graph,
    random_bipartite_graph,
)
from repro.matching.covers import minimum_edge_cover_size
from repro.solvers.double_oracle import double_oracle
from repro.solvers.lp import solve_minimax


class TestMatchesFullLP:
    @pytest.mark.parametrize(
        "graph, k",
        [
            (path_graph(6), 2),
            (cycle_graph(7), 2),
            (complete_bipartite_graph(2, 4), 3),
            (petersen_graph(), 2),
            (grid_graph(2, 4), 2),
        ],
        ids=["path6", "cycle7", "k24", "petersen", "grid24"],
    )
    def test_value_agrees(self, graph, k):
        game = TupleGame(graph, k, nu=1)
        full = solve_minimax(game).value
        result = double_oracle(game)
        assert result.value == pytest.approx(full, abs=1e-7)
        assert result.certified_gap <= 1e-7

    def test_pools_stay_small(self):
        graph = complete_bipartite_graph(3, 5)
        game = TupleGame(graph, 2, nu=1)
        result = double_oracle(game)
        assert result.defender_pool_size < game.tuple_strategy_count() / 3
        assert result.attacker_pool_size <= graph.n


class TestBeyondEnumeration:
    def test_solves_instance_too_large_for_full_lp(self):
        """C(60, 4) ≈ 487k tuples — over the LP limit, but double oracle
        handles it and lands on the k/rho value the theory predicts."""
        graph = random_bipartite_graph(15, 25, 0.15, seed=8)
        k = 4
        game = TupleGame(graph, k, nu=1)
        assert game.tuple_strategy_count() > 200_000
        result = double_oracle(game)
        rho = minimum_edge_cover_size(graph)
        assert result.value == pytest.approx(k / rho, abs=1e-7)

    def test_pure_regime_value_one(self):
        graph = path_graph(4)
        rho = minimum_edge_cover_size(graph)
        game = TupleGame(graph, rho, nu=1)
        result = double_oracle(game)
        assert result.value == pytest.approx(1.0, abs=1e-9)


class TestMechanics:
    def test_deterministic(self):
        game = TupleGame(grid_graph(2, 3), 2, nu=1)
        a = double_oracle(game)
        b = double_oracle(game)
        assert a.value == b.value
        assert a.iterations == b.iterations

    def test_repr(self):
        game = TupleGame(path_graph(4), 1, nu=1)
        assert "value=" in repr(double_oracle(game))

    def test_greedy_oracle_reports_gap(self):
        """With a greedy defender oracle the certificate may be loose but
        the value still lands within the reported gap of the truth."""
        graph = grid_graph(2, 4)
        game = TupleGame(graph, 2, nu=1)
        truth = solve_minimax(game).value
        result = double_oracle(game, method="greedy")
        assert result.value <= truth + result.certified_gap + 1e-7
        assert result.value >= truth - result.certified_gap - 1e-7

    def test_lazy_attacker_matches_eager(self):
        game = TupleGame(grid_graph(2, 4), 2, nu=1)
        eager = double_oracle(game)
        lazy = double_oracle(game, lazy_attacker=True)
        assert lazy.value == pytest.approx(eager.value, abs=1e-9)
        assert lazy.exact and eager.exact


class TestInexactConvergence:
    """Regression: a greedy defender oracle can stall on a suboptimal
    tuple the restricted LP already contains, so the run used to claim
    convergence with a tiny reported gap while the value was silently
    wrong.  The result must now be re-certified with an exact oracle call
    and flagged ``exact=False`` when the true gap exceeds the slack."""

    def test_greedy_stall_is_flagged_inexact(self):
        from repro.graphs.generators import gnp_random_graph

        graph = gnp_random_graph(9, 0.4, seed=2)
        game = TupleGame(graph, 4, nu=1)
        truth = solve_minimax(game).value
        result = double_oracle(game, method="greedy", tolerance=1e-9)
        assert not result.exact
        assert result.certified_gap > 2e-9
        # The re-certified gap is a true bracket around the optimum.
        assert result.value < truth - 1e-6
        assert result.value + result.certified_gap >= truth - 1e-9

    def test_exact_methods_certify(self):
        game = TupleGame(grid_graph(2, 4), 2, nu=1)
        for method in ("auto", "bnb", "exhaustive"):
            result = double_oracle(game, method=method)
            assert result.exact
            assert result.certified_gap <= 2e-9


class TestConvergenceGuard:
    def test_max_iterations_raises(self):
        from repro.core.game import GameError

        game = TupleGame(grid_graph(3, 3), 2, nu=1)
        with pytest.raises(GameError, match="did not converge"):
            double_oracle(game, max_iterations=1)
