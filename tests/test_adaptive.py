"""Tests for adaptive (no-regret) attackers (repro.simulation.adaptive)."""

import pytest

from repro.core.configuration import MixedConfiguration
from repro.core.game import GameError, TupleGame
from repro.equilibria.solve import solve_game
from repro.graphs.generators import complete_bipartite_graph, grid_graph, path_graph
from repro.matching.covers import minimum_edge_cover_size
from repro.simulation.adaptive import exploit_gap, regret_matching_attack


class TestAgainstEquilibriumDefender:
    def test_escape_rate_capped_by_equilibrium_value(self):
        graph = complete_bipartite_graph(2, 4)
        rho = minimum_edge_cover_size(graph)
        game = TupleGame(graph, 2, nu=1)
        defender = solve_game(game).mixed
        result = regret_matching_attack(game, defender, rounds=6_000, seed=3)
        value = 2 / rho
        # Statistical cap: allow a few standard deviations of slack.
        assert result.escape_rate <= (1 - value) + 0.03
        assert abs(exploit_gap(result, value)) <= 0.03

    def test_learner_approaches_the_cap(self):
        """Regret matching should not do much *worse* than 1 - value
        either — it converges to the equilibrium escape rate."""
        graph = grid_graph(2, 3)
        rho = minimum_edge_cover_size(graph)
        game = TupleGame(graph, 2, nu=1)
        defender = solve_game(game).mixed
        result = regret_matching_attack(game, defender, rounds=8_000, seed=5)
        assert result.escape_rate >= (1 - 2 / rho) - 0.03

    def test_regret_vanishes(self):
        game = TupleGame(complete_bipartite_graph(2, 3), 1, nu=1)
        defender = solve_game(game).mixed
        result = regret_matching_attack(game, defender, rounds=10_000, seed=1)
        assert result.regret <= 0.03


class TestAgainstNaiveDefender:
    def test_static_defender_is_exploited(self):
        """A defender that always scans the same links leaks almost
        everything to a learner — the reason Lemma 4.1 randomizes."""
        graph = path_graph(6)
        game = TupleGame(graph, 2, nu=1)
        static = MixedConfiguration(
            game, [{0: 1.0}], {((0, 1), (1, 2)): 1.0}
        )
        result = regret_matching_attack(game, static, rounds=3_000, seed=2)
        rho = minimum_edge_cover_size(graph)
        value = 2 / rho
        assert result.escape_rate > 0.95
        assert exploit_gap(result, value) > 0.3

    def test_skewed_defender_is_exploited(self):
        graph = complete_bipartite_graph(2, 4)
        game = TupleGame(graph, 2, nu=1)
        equilibrium = solve_game(game).mixed
        tuples = sorted(equilibrium.tp_support())
        weights = [0.9] + [0.1 / (len(tuples) - 1)] * (len(tuples) - 1)
        skewed = MixedConfiguration(game, [{0: 1.0}], dict(zip(tuples, weights)))
        result = regret_matching_attack(game, skewed, rounds=6_000, seed=4)
        value = 2 / minimum_edge_cover_size(graph)
        assert exploit_gap(result, value) > 0.1


class TestMechanics:
    def test_deterministic_per_seed(self):
        game = TupleGame(path_graph(5), 2, nu=1)
        defender = solve_game(game).mixed
        a = regret_matching_attack(game, defender, rounds=500, seed=9)
        b = regret_matching_attack(game, defender, rounds=500, seed=9)
        assert a.escape_rate == b.escape_rate
        assert a.strategy == b.strategy

    def test_strategy_is_distribution(self):
        game = TupleGame(path_graph(5), 2, nu=1)
        defender = solve_game(game).mixed
        result = regret_matching_attack(game, defender, rounds=400, seed=0)
        assert sum(result.strategy.values()) == pytest.approx(1.0)

    def test_rejects_foreign_defender(self):
        game_a = TupleGame(path_graph(5), 2, nu=1)
        game_b = TupleGame(path_graph(5), 2, nu=2)
        defender = solve_game(game_b).mixed
        with pytest.raises(GameError, match="different game"):
            regret_matching_attack(game_a, defender, rounds=10)

    def test_rejects_zero_rounds(self):
        game = TupleGame(path_graph(5), 2, nu=1)
        defender = solve_game(game).mixed
        with pytest.raises(GameError, match="at least one round"):
            regret_matching_attack(game, defender, rounds=0)

    def test_repr(self):
        game = TupleGame(path_graph(5), 2, nu=1)
        defender = solve_game(game).mixed
        result = regret_matching_attack(game, defender, rounds=50)
        assert "escape_rate" in repr(result)
