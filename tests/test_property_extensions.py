"""Property-based tests (hypothesis) for the extension subsystems:
double oracle, serialization, weighted games, rosters, path families."""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.game import TupleGame
from repro.core.serialize import configuration_from_json, configuration_to_json
from repro.equilibria.solve import NoEquilibriumFoundError, solve_game
from repro.graphs.generators import (
    cycle_graph,
    gnp_random_graph,
    random_bipartite_graph,
    random_tree,
)
from repro.matching.covers import minimum_edge_cover_size
from repro.models.families import enumerate_k_edge_paths
from repro.solvers.double_oracle import double_oracle
from repro.solvers.lp import solve_minimax
from repro.weighted import WeightedTupleGame, weighted_minimax

seeds = st.integers(min_value=0, max_value=10_000)
relaxed = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@relaxed
@given(n=st.integers(4, 14), p=st.floats(0.15, 0.6), seed=seeds,
       k=st.integers(1, 3))
def test_double_oracle_always_matches_full_lp(n, p, seed, k):
    graph = gnp_random_graph(n, p, seed=seed)
    k = min(k, graph.m)
    game = TupleGame(graph, k, nu=1)
    if game.tuple_strategy_count() > 20_000:
        return
    full = solve_minimax(game).value
    result = double_oracle(game)
    assert abs(result.value - full) < 1e-7
    assert result.certified_gap <= 1e-7


@relaxed
@given(a=st.integers(2, 6), b=st.integers(2, 7), p=st.floats(0.2, 0.7),
       seed=seeds, nu=st.integers(1, 4))
def test_serialization_round_trips_solver_output(a, b, p, seed, nu):
    graph = random_bipartite_graph(a, b, p, seed=seed)
    rho = minimum_edge_cover_size(graph)
    k = max(1, rho - 1)
    game = TupleGame(graph, k, nu=nu)
    config = solve_game(game).mixed
    restored = configuration_from_json(configuration_to_json(config))
    assert restored.game == game
    # Re-validation renormalizes, which may shift values by one ULP.
    assert restored.tp_support() == config.tp_support()
    for t, p in config.tp_distribution().items():
        assert restored.prob_tp(t) == pytest.approx(p, abs=1e-12)
    for i in range(nu):
        assert restored.vp_distribution(i) == pytest.approx(
            config.vp_distribution(i)
        )


@relaxed
@given(a=st.integers(2, 5), b=st.integers(2, 6), p=st.floats(0.3, 0.8),
       seed=seeds, scale=st.floats(0.5, 5.0))
def test_weighted_value_scales_homogeneously(a, b, p, seed, scale):
    graph = random_bipartite_graph(a, b, p, seed=seed)
    k = min(2, graph.m)
    unit = {v: 1.0 for v in graph.vertices()}
    scaled = {v: scale for v in graph.vertices()}
    base = weighted_minimax(WeightedTupleGame(graph, k, unit))
    lifted = weighted_minimax(WeightedTupleGame(graph, k, scaled))
    assert lifted.value == pytest.approx(scale * base.value, rel=1e-6)


@relaxed
@given(a=st.integers(2, 5), b=st.integers(2, 6), p=st.floats(0.3, 0.8),
       seed=seeds, length_factor=st.integers(1, 9))
def test_roster_prefix_discrepancy_bounded(a, b, p, seed, length_factor):
    from repro.analysis.schedule import compile_roster, roster_discrepancy

    graph = random_bipartite_graph(a, b, p, seed=seed)
    rho = minimum_edge_cover_size(graph)
    if rho < 2:
        return
    game = TupleGame(graph, rho - 1, nu=1)
    config = solve_game(game).mixed
    support = len(config.tp_support())
    roster = compile_roster(config, length=support * length_factor + 1)
    assert roster_discrepancy(roster, config) <= 1.0 + 1e-9


@relaxed
@given(n=st.integers(4, 10), k=st.integers(1, 4))
def test_cycle_path_counts_are_n(n, k):
    if k >= n:
        return
    assert len(list(enumerate_k_edge_paths(cycle_graph(n), k))) == n


@relaxed
@given(n=st.integers(3, 20), seed=seeds, k=st.integers(1, 5))
def test_tree_path_counts_match_pair_distances(n, seed, k):
    """In a tree, k-edge simple paths correspond 1:1 to vertex pairs at
    distance exactly k."""
    from repro.graphs.metrics import bfs_distances

    tree = random_tree(n, seed=seed)
    expected = 0
    order = tree.sorted_vertices()
    for i, v in enumerate(order):
        distances = bfs_distances(tree, v)
        expected += sum(
            1 for u in order[i + 1:] if distances.get(u) == k
        )
    actual = len(list(enumerate_k_edge_paths(tree, k)))
    assert actual == expected


@relaxed
@given(n=st.integers(4, 12), p=st.floats(0.2, 0.6), seed=seeds)
def test_solver_never_lies_about_equilibria(n, p, seed):
    """Whatever kind solve_game returns, the profile passes the
    first-principles best-response check."""
    from repro.core.characterization import verify_best_responses

    graph = gnp_random_graph(n, p, seed=seed)
    rho = minimum_edge_cover_size(graph)
    for k in {1, max(1, rho - 1), min(rho, graph.m)}:
        game = TupleGame(graph, k, nu=2)
        try:
            result = solve_game(game)
        except NoEquilibriumFoundError:
            continue
        ok, gaps = verify_best_responses(game, result.mixed)
        assert ok, (result.kind, gaps)


@relaxed
@given(pairs=st.integers(2, 10), extra=st.integers(0, 20), seed=seeds,
       k=st.integers(1, 5))
def test_perfect_matching_equilibrium_on_random_matchable_graphs(
    pairs, extra, seed, k
):
    """The extension family's headline property: any graph with a perfect
    matching admits the cyclic-window equilibrium for every k up to n/2,
    with gain exactly 2k*nu/n."""
    from repro.core.characterization import verify_best_responses
    from repro.core.profits import expected_profit_tp
    from repro.equilibria.families import perfect_matching_equilibrium
    from repro.graphs.generators import random_graph_with_perfect_matching

    graph = random_graph_with_perfect_matching(pairs, extra, seed=seed)
    k = min(k, pairs)
    game = TupleGame(graph, k, nu=2)
    config = perfect_matching_equilibrium(game)
    ok, gaps = verify_best_responses(game, config)
    assert ok, gaps
    assert abs(expected_profit_tp(config) - 2 * k * 2 / graph.n) < 1e-9


@relaxed
@given(pairs=st.integers(2, 8), extra=st.integers(0, 15), seed=seeds)
def test_double_oracle_value_on_matchable_graphs_is_2k_over_n(
    pairs, extra, seed
):
    """Independent confirmation of the extended gain law: on any graph
    with a perfect matching the duel value is at most 2k/n (the window
    schedule guarantees it) and the LP/double-oracle value matches when
    rho = n/2."""
    from repro.graphs.generators import random_graph_with_perfect_matching
    from repro.matching.covers import minimum_edge_cover_size

    graph = random_graph_with_perfect_matching(pairs, extra, seed=seed)
    rho = minimum_edge_cover_size(graph)
    assert rho == pairs  # perfect matching => rho = n/2
    k = max(1, pairs - 1)
    game = TupleGame(graph, k, nu=1)
    value = double_oracle(game).value
    assert value <= k / rho + 1e-7
