"""Unit tests for edge tuples and the game object
(repro.core.tuples, repro.core.game)."""

from math import comb

import pytest

from repro.core.game import GameError, TupleGame
from repro.core.tuples import (
    all_tuples,
    canonical_tuple,
    count_tuples,
    tuple_edges,
    tuple_vertices,
)
from repro.graphs.core import Graph, GraphError
from repro.graphs.generators import cycle_graph, path_graph, petersen_graph


class TestCanonicalTuple:
    def test_sorts_edges(self):
        assert canonical_tuple([(3, 2), (1, 0)]) == ((0, 1), (2, 3))

    def test_canonicalizes_edge_orientation(self):
        assert canonical_tuple([(2, 1)]) == ((1, 2),)

    def test_order_independent(self):
        assert canonical_tuple([(0, 1), (2, 3)]) == canonical_tuple([(2, 3), (0, 1)])

    def test_rejects_duplicates(self):
        with pytest.raises(GraphError, match="distinct"):
            canonical_tuple([(0, 1), (1, 0)])

    def test_rejects_empty(self):
        with pytest.raises(GraphError, match="at least one"):
            canonical_tuple([])

    def test_vertices_and_edges(self):
        t = canonical_tuple([(0, 1), (1, 2)])
        assert tuple_vertices(t) == frozenset({0, 1, 2})
        assert tuple_edges(t) == frozenset({(0, 1), (1, 2)})


class TestEnumeration:
    def test_count_matches_enumeration(self):
        g = cycle_graph(5)
        for k in range(1, 6):
            tuples = list(all_tuples(g, k))
            assert len(tuples) == comb(5, k)
            assert count_tuples(g, k) == len(tuples)
            assert len(set(tuples)) == len(tuples)  # all distinct

    def test_each_tuple_has_k_distinct_edges(self):
        g = path_graph(5)
        for t in all_tuples(g, 2):
            assert len(t) == 2
            assert len(set(t)) == 2

    def test_rejects_bad_k(self):
        g = path_graph(4)
        with pytest.raises(GraphError):
            list(all_tuples(g, 0))
        with pytest.raises(GraphError):
            list(all_tuples(g, 4))  # m = 3
        with pytest.raises(GraphError):
            count_tuples(g, 99)


class TestTupleGame:
    def test_basic_properties(self):
        game = TupleGame(path_graph(4), k=2, nu=3)
        assert (game.n, game.m, game.k, game.nu) == (4, 3, 2, 3)
        assert game.vertex_strategies == frozenset({0, 1, 2, 3})
        assert game.tuple_strategy_count() == 3

    def test_default_single_attacker(self):
        assert TupleGame(path_graph(3), k=1).nu == 1

    def test_rejects_k_out_of_range(self):
        with pytest.raises(GameError, match="1 <= k <= m"):
            TupleGame(path_graph(4), k=0)
        with pytest.raises(GameError, match="1 <= k <= m"):
            TupleGame(path_graph(4), k=4)

    def test_rejects_non_integer_k(self):
        with pytest.raises(GameError):
            TupleGame(path_graph(4), k=1.5)

    def test_rejects_bad_nu(self):
        with pytest.raises(GameError, match="vertex player"):
            TupleGame(path_graph(4), k=1, nu=0)

    def test_rejects_invalid_graph(self):
        with pytest.raises(GameError, match="invalid game graph"):
            TupleGame(Graph([(1, 2)], vertices=[7], allow_isolated=True), k=1)

    def test_edge_game(self):
        game = TupleGame(petersen_graph(), k=3, nu=4)
        edge = game.edge_game()
        assert edge.k == 1
        assert edge.nu == 4
        assert edge.graph == game.graph
        assert edge.is_edge_model()
        assert not game.is_edge_model()

    def test_edge_game_override_nu(self):
        game = TupleGame(path_graph(4), k=2, nu=4)
        assert game.edge_game(nu=1).nu == 1

    def test_equality_and_hash(self):
        a = TupleGame(path_graph(4), k=2, nu=3)
        b = TupleGame(path_graph(4), k=2, nu=3)
        c = TupleGame(path_graph(4), k=1, nu=3)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "game"

    def test_repr(self):
        assert "k=2" in repr(TupleGame(path_graph(4), k=2, nu=3))
