"""Tests for the generalized defender models (repro.models)."""

from itertools import combinations
from math import comb

import pytest

from repro.core.game import GameError, TupleGame
from repro.core.tuples import tuple_vertices
from repro.graphs.core import Graph, GraphError
from repro.graphs.generators import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    petersen_graph,
    star_graph,
)
from repro.models.families import (
    KPathFamily,
    KStarFamily,
    KTupleFamily,
    enumerate_k_edge_paths,
)
from repro.models.game import (
    GeneralizedGame,
    covering_strategy,
    pure_nash_exists_generalized,
)
from repro.solvers.lp import solve_minimax


class TestKTupleFamily:
    def test_matches_binomial_count(self):
        g = cycle_graph(6)
        for k in (1, 2, 3):
            assert len(list(KTupleFamily(k).strategies(g))) == comb(6, k)

    def test_empty_when_k_exceeds_m(self):
        assert list(KTupleFamily(5).strategies(path_graph(4))) == []
        with pytest.raises(GraphError, match="empty"):
            KTupleFamily(5).validate(path_graph(4))

    def test_rejects_bad_k(self):
        with pytest.raises(GraphError):
            KTupleFamily(0)


class TestPathEnumeration:
    def test_path_graph_counts(self):
        # P5 has exactly 5-k simple paths with k edges.
        g = path_graph(5)
        for k in (1, 2, 3, 4):
            assert len(list(enumerate_k_edge_paths(g, k))) == 5 - k

    def test_cycle_counts(self):
        # C_n has n paths of k edges for every 1 <= k < n.
        g = cycle_graph(6)
        for k in (1, 2, 3, 4, 5):
            assert len(list(enumerate_k_edge_paths(g, k))) == 6

    def test_k1_equals_edges(self):
        g = petersen_graph()
        paths = set(enumerate_k_edge_paths(g, 1))
        assert paths == {(e,) for e in g.edges()}

    def test_paths_are_simple(self):
        g = complete_graph(5)
        for path in enumerate_k_edge_paths(g, 3):
            assert len(tuple_vertices(path)) == 4  # k+1 distinct vertices

    def test_no_duplicates(self):
        g = grid_graph(3, 3)
        paths = list(enumerate_k_edge_paths(g, 3))
        assert len(paths) == len(set(paths))

    def test_star_has_no_long_paths(self):
        # In a star every simple path has at most 2 edges.
        g = star_graph(5)
        assert list(enumerate_k_edge_paths(g, 3)) == []
        assert len(list(enumerate_k_edge_paths(g, 2))) == comb(5, 2)


class TestKStarFamily:
    def test_leaf_capped_at_degree(self):
        g = star_graph(4)
        strategies = list(KStarFamily(2).strategies(g))
        # Center contributes C(4,2)=6 two-edge stars; each leaf's capped
        # single-edge star duplicates a center edge... but the center's
        # size-2 subsets don't include single edges, so the 4 leaf
        # singletons survive dedup.
        assert len(strategies) == 6 + 4

    def test_single_edge_dedup(self):
        g = path_graph(3)  # edges (0,1), (1,2)
        strategies = set(KStarFamily(1).strategies(g))
        assert strategies == {((0, 1),), ((1, 2),)}

    def test_all_share_a_center(self):
        g = grid_graph(3, 3)
        for strategy in KStarFamily(3).strategies(g):
            vertex_sets = [set(e) for e in strategy]
            common = set.intersection(*vertex_sets) if len(vertex_sets) > 1 else {1}
            assert common


class TestGeneralizedGame:
    def test_construction_and_counts(self):
        game = GeneralizedGame(cycle_graph(6), KPathFamily(2), nu=2)
        assert game.strategy_count() == 6
        assert "path" in repr(game)

    def test_rejects_empty_family(self):
        with pytest.raises(GameError, match="empty"):
            GeneralizedGame(star_graph(4), KPathFamily(3))

    def test_rejects_bad_nu(self):
        with pytest.raises(GameError, match="attacker"):
            GeneralizedGame(cycle_graph(5), KTupleFamily(1), nu=0)

    def test_strategy_limit(self):
        with pytest.raises(GameError, match="strategy limit"):
            GeneralizedGame(complete_graph(8), KTupleFamily(3), strategy_limit=5)

    def test_tuple_family_value_matches_tuple_model_lp(self):
        graph = complete_bipartite_graph(2, 4)
        for k in (1, 2, 3):
            generalized = GeneralizedGame(graph, KTupleFamily(k), nu=1)
            tuple_model = TupleGame(graph, k, nu=1)
            assert generalized.solve_minimax().value == pytest.approx(
                solve_minimax(tuple_model).value, abs=1e-9
            )


class TestShapeHierarchy:
    """paths ⊆ tuples forces value(path) <= value(tuple)."""

    @pytest.mark.parametrize(
        "graph",
        [cycle_graph(6), grid_graph(2, 3), complete_bipartite_graph(2, 3),
         petersen_graph()],
        ids=["cycle6", "grid23", "k23", "petersen"],
    )
    def test_path_value_at_most_tuple_value(self, graph):
        for k in (2, 3):
            path_game = GeneralizedGame(graph, KPathFamily(k), nu=1)
            tuple_game = GeneralizedGame(graph, KTupleFamily(k), nu=1)
            assert (
                path_game.solve_minimax().value
                <= tuple_game.solve_minimax().value + 1e-9
            )

    def test_strict_gap_exists_somewhere(self):
        # On a long path graph, contiguity genuinely hurts the defender.
        graph = path_graph(8)
        k = 3
        path_value = GeneralizedGame(graph, KPathFamily(k), nu=1).solve_minimax().value
        tuple_value = GeneralizedGame(graph, KTupleFamily(k), nu=1).solve_minimax().value
        assert path_value < tuple_value - 1e-6

    def test_cycle_path_defender_value(self):
        # On C_n a contiguous k-path covers k+1 vertices vs 2k for
        # disjoint edges: value (k+1)/n vs min(2k/n, ...).
        n, k = 8, 2
        graph = cycle_graph(n)
        path_value = GeneralizedGame(graph, KPathFamily(k), nu=1).solve_minimax().value
        assert path_value == pytest.approx((k + 1) / n, abs=1e-7)


class TestGeneralizedPureNash:
    def test_covering_path_iff_pure_ne(self):
        # P4 has a covering path with 3 edges (the whole path).
        game = GeneralizedGame(path_graph(4), KPathFamily(3), nu=1)
        assert pure_nash_exists_generalized(game)
        strategy = covering_strategy(game)
        assert tuple_vertices(strategy) == game.graph.vertices()

    def test_no_covering_path_on_star(self):
        game = GeneralizedGame(star_graph(4), KPathFamily(2), nu=1)
        assert not pure_nash_exists_generalized(game)

    def test_star_family_covers_star_graph(self):
        game = GeneralizedGame(star_graph(4), KStarFamily(4), nu=1)
        assert pure_nash_exists_generalized(game)

    def test_tuple_family_threshold_matches_theorem_31(self):
        from repro.matching.covers import minimum_edge_cover_size

        graph = grid_graph(2, 3)
        rho = minimum_edge_cover_size(graph)
        assert not pure_nash_exists_generalized(
            GeneralizedGame(graph, KTupleFamily(rho - 1), nu=1)
        )
        assert pure_nash_exists_generalized(
            GeneralizedGame(graph, KTupleFamily(rho), nu=1)
        )
