"""Unit tests for the profit functionals (repro.core.profits).

Hand-computed cases for equations (1) and (2) plus the mass/hit
identities of Section 2.
"""

import pytest

from repro.core.configuration import MixedConfiguration, PureConfiguration
from repro.core.game import TupleGame
from repro.core.profits import (
    all_hit_probabilities,
    all_vertex_masses,
    edge_mass,
    expected_profit_tp,
    expected_profit_vp,
    hit_probability,
    pure_profit_tp,
    pure_profit_vp,
    tuple_mass,
    vertex_mass,
)
from repro.graphs.generators import path_graph


@pytest.fixture
def game():
    # P4: edges (0,1), (1,2), (2,3); k = 2; two attackers.
    return TupleGame(path_graph(4), k=2, nu=2)


class TestPureProfits:
    def test_attacker_caught(self, game):
        config = PureConfiguration(game, [0, 2], [(0, 1), (1, 2)])
        assert pure_profit_vp(config, 0) == 0  # on endpoint 0
        assert pure_profit_vp(config, 1) == 0  # on endpoint 2
        assert pure_profit_tp(config) == 2

    def test_attacker_escapes(self, game):
        config = PureConfiguration(game, [3, 3], [(0, 1), (1, 2)])
        assert pure_profit_vp(config, 0) == 1
        assert pure_profit_tp(config) == 0

    def test_mixed_outcomes(self, game):
        config = PureConfiguration(game, [0, 3], [(0, 1), (1, 2)])
        assert pure_profit_vp(config, 0) == 0
        assert pure_profit_vp(config, 1) == 1
        assert pure_profit_tp(config) == 1


class TestMassesAndHits:
    def test_vertex_mass_sums_attackers(self, game):
        config = MixedConfiguration(
            game,
            [{0: 0.5, 3: 0.5}, {0: 1.0}],
            {((0, 1), (2, 3)): 1.0},
        )
        assert vertex_mass(config, 0) == pytest.approx(1.5)
        assert vertex_mass(config, 3) == pytest.approx(0.5)
        assert vertex_mass(config, 1) == 0.0
        masses = all_vertex_masses(config)
        assert sum(masses.values()) == pytest.approx(game.nu)

    def test_edge_mass(self, game):
        config = MixedConfiguration(
            game, [{0: 1.0}, {1: 1.0}], {((0, 1), (2, 3)): 1.0}
        )
        assert edge_mass(config, (0, 1)) == pytest.approx(2.0)
        assert edge_mass(config, (1, 0)) == pytest.approx(2.0)
        assert edge_mass(config, (2, 3)) == 0.0

    def test_tuple_mass_counts_shared_vertex_once(self, game):
        """V(t) is a *set*: a vertex shared by two tuple edges counts once."""
        config = MixedConfiguration(
            game, [{1: 1.0}, {1: 1.0}], {((0, 1), (1, 2)): 1.0}
        )
        # tuple covers {0, 1, 2}; all mass (2.0) sits on the shared vertex 1
        assert tuple_mass(config, ((0, 1), (1, 2))) == pytest.approx(2.0)

    def test_hit_probability(self, game):
        config = MixedConfiguration(
            game,
            [{0: 1.0}, {0: 1.0}],
            {((0, 1), (1, 2)): 0.25, ((1, 2), (2, 3)): 0.75},
        )
        assert hit_probability(config, 0) == pytest.approx(0.25)
        assert hit_probability(config, 1) == pytest.approx(1.0)
        assert hit_probability(config, 3) == pytest.approx(0.75)
        hits = all_hit_probabilities(config)
        assert hits[0] == pytest.approx(0.25)
        assert hits[3] == pytest.approx(0.75)

    def test_hit_probability_off_support_vertex(self, game):
        config = MixedConfiguration(
            game, [{0: 1.0}, {0: 1.0}], {((0, 1), (2, 3)): 1.0}
        )
        assert all_hit_probabilities(config)[2] == pytest.approx(1.0)


class TestExpectedProfits:
    def test_equation_1_hand_case(self, game):
        config = MixedConfiguration(
            game,
            [{0: 0.5, 3: 0.5}, {1: 1.0}],
            {((0, 1), (1, 2)): 0.5, ((1, 2), (2, 3)): 0.5},
        )
        # Hit(0) = 0.5, Hit(3) = 0.5, Hit(1) = 1.0
        assert expected_profit_vp(config, 0) == pytest.approx(0.5 * 0.5 + 0.5 * 0.5)
        assert expected_profit_vp(config, 1) == pytest.approx(0.0)

    def test_equation_2_hand_case(self, game):
        config = MixedConfiguration(
            game,
            [{0: 0.5, 3: 0.5}, {1: 1.0}],
            {((0, 1), (1, 2)): 0.5, ((1, 2), (2, 3)): 0.5},
        )
        # t1 covers {0,1,2}: mass 0.5 + 1.0; t2 covers {1,2,3}: mass 1.0 + 0.5
        assert expected_profit_tp(config) == pytest.approx(0.5 * 1.5 + 0.5 * 1.5)

    def test_profit_conservation(self, game):
        """Defender catches + attacker escapes = ν in expectation, because
        each attacker is either caught or not."""
        config = MixedConfiguration(
            game,
            [{0: 0.3, 2: 0.7}, {1: 0.6, 3: 0.4}],
            {((0, 1), (1, 2)): 0.2, ((1, 2), (2, 3)): 0.8},
        )
        escapes = sum(expected_profit_vp(config, i) for i in range(game.nu))
        assert expected_profit_tp(config) + escapes == pytest.approx(game.nu)

    def test_degenerate_mixed_equals_pure(self, game):
        pure = PureConfiguration(game, [0, 3], [(0, 1), (1, 2)])
        mixed = MixedConfiguration.from_pure(pure)
        assert expected_profit_tp(mixed) == pytest.approx(pure_profit_tp(pure))
        for i in range(game.nu):
            assert expected_profit_vp(mixed, i) == pytest.approx(
                pure_profit_vp(pure, i)
            )
