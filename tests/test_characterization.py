"""Tests for the Theorem 3.4 characterization (repro.core.characterization).

The theorem is an *iff*; the key test strategy is agreement between the
characterization checker and an independent first-principles best-response
verifier across equilibria, perturbed equilibria and arbitrary profiles.
"""

import random

import pytest

from repro.core.characterization import (
    check_characterization,
    is_mixed_nash,
    verify_best_responses,
)
from repro.core.configuration import MixedConfiguration
from repro.core.game import GameError, TupleGame
from repro.core.tuples import all_tuples
from repro.equilibria.solve import solve_game
from repro.graphs.generators import (
    complete_bipartite_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)


def k24_equilibrium():
    game = TupleGame(complete_bipartite_graph(2, 4), k=2, nu=5)
    return game, solve_game(game).mixed


class TestEquilibriaPass:
    @pytest.mark.parametrize(
        "graph, k, nu",
        [
            (path_graph(6), 2, 3),
            (cycle_graph(6), 2, 2),
            (star_graph(5), 2, 4),
            (grid_graph(3, 3), 3, 2),
            (complete_bipartite_graph(3, 4), 3, 6),
        ],
        ids=["path6", "cycle6", "star5", "grid33", "k34"],
    )
    def test_structural_equilibria_satisfy_all_conditions(self, graph, k, nu):
        game = TupleGame(graph, k, nu)
        result = solve_game(game)
        report = check_characterization(game, result.mixed)
        assert report.is_nash, report.failures
        assert report.condition_1_edge_cover
        assert report.condition_1_vertex_cover
        assert report.condition_2a_uniform_min_hit
        assert report.condition_2b_tp_mass
        assert report.condition_3a_uniform_max_mass
        assert report.condition_3b_total_mass
        assert not report.failures

    def test_pure_equilibrium_wrapped_as_mixed_is_degenerate_but_nash(self):
        """A pure NE wrapped as a degenerate mixed profile: Theorem 3.4's
        clause 1 does not apply (Claim 3.6 premise fails), but the
        fallback best-response oracle still certifies the NE."""
        game = TupleGame(path_graph(4), k=2, nu=2)
        result = solve_game(game)
        assert result.kind == "pure"
        report = check_characterization(game, result.mixed)
        assert not report.properly_mixed
        assert is_mixed_nash(game, result.mixed)
        ok, _ = verify_best_responses(game, result.mixed)
        assert ok


class TestPerturbationsFail:
    def test_non_uniform_defender_breaks_2a(self):
        game, config = k24_equilibrium()
        tuples = sorted(config.tp_support())
        assert len(tuples) >= 2
        weights = [0.7] + [0.3 / (len(tuples) - 1)] * (len(tuples) - 1)
        skew = dict(zip(tuples, weights))
        perturbed = MixedConfiguration(
            game, [config.vp_distribution(i) for i in range(game.nu)], skew
        )
        report = check_characterization(game, perturbed)
        assert not report.condition_2a_uniform_min_hit
        assert not report.is_nash
        assert any("2(a)" in f for f in report.failures)

    def test_support_not_edge_cover_breaks_1(self):
        game = TupleGame(path_graph(4), k=2, nu=1)
        config = MixedConfiguration(
            game, [{0: 1.0}], {((0, 1), (1, 2)): 1.0}  # vertex 3 uncovered
        )
        report = check_characterization(game, config)
        assert not report.condition_1_edge_cover
        assert any("uncovered" in f for f in report.failures)

    def test_attacker_off_min_hit_breaks_2a(self):
        game, config = k24_equilibrium()
        # Move an attacker onto a high-hit vertex (the small side of K24).
        dists = [config.vp_distribution(i) for i in range(game.nu)]
        dists[0] = {0: 1.0}  # vertex 0 is on the 2-side: hit prob higher
        perturbed = MixedConfiguration(game, dists, config.tp_distribution())
        report = check_characterization(game, perturbed)
        assert not report.is_nash

    def test_defender_on_suboptimal_tuple_breaks_3a(self):
        game = TupleGame(path_graph(4), k=2, nu=1)
        # Attacker fixed on vertex 0; defender mixes over both tuples
        # containing (2,3) — one of which misses all attacker mass.
        config = MixedConfiguration(
            game,
            [{0: 0.5, 3: 0.5}],
            {((0, 1), (2, 3)): 0.5, ((1, 2), (2, 3)): 0.5},
        )
        report = check_characterization(game, config)
        assert not report.condition_3a_uniform_max_mass


class TestTheoremIsAnIff:
    """check_characterization and verify_best_responses must agree on
    every configuration (equilibrium or not)."""

    @pytest.mark.parametrize("seed", range(20))
    def test_agreement_on_random_configurations(self, seed):
        rng = random.Random(seed)
        graph = path_graph(4) if seed % 2 == 0 else star_graph(3)
        game = TupleGame(graph, k=2, nu=2)
        tuples = list(all_tuples(graph, 2))
        # Random supports and probabilities.
        vp_dists = []
        for _ in range(game.nu):
            support = rng.sample(graph.sorted_vertices(), rng.randrange(1, 4))
            weights = [rng.random() + 0.05 for _ in support]
            total = sum(weights)
            vp_dists.append({v: w / total for v, w in zip(support, weights)})
        t_support = rng.sample(tuples, rng.randrange(1, min(4, len(tuples)) + 1))
        t_weights = [rng.random() + 0.05 for _ in t_support]
        t_total = sum(t_weights)
        config = MixedConfiguration(
            game, vp_dists, {t: w / t_total for t, w in zip(t_support, t_weights)}
        )
        oracle_verdict = is_mixed_nash(game, config, tol=1e-9)
        by_best_response, gaps = verify_best_responses(game, config, tol=1e-9)
        assert oracle_verdict == by_best_response, gaps
        # On *properly mixed* profiles the raw characterization is the iff.
        report = check_characterization(game, config, tol=1e-9)
        if report.properly_mixed:
            assert report.is_nash == by_best_response, (gaps, report.failures)

    @pytest.mark.parametrize(
        "graph,k,nu", [(path_graph(6), 2, 3), (complete_bipartite_graph(2, 4), 3, 4)],
        ids=["path6", "k24"],
    )
    def test_agreement_on_equilibria(self, graph, k, nu):
        game = TupleGame(graph, k, nu)
        config = solve_game(game).mixed
        assert is_mixed_nash(game, config)
        ok, gaps = verify_best_responses(game, config)
        assert ok, gaps


class TestReportErgonomics:
    def test_bool_and_repr(self):
        game, config = k24_equilibrium()
        report = check_characterization(game, config)
        assert bool(report)
        assert "NE" in repr(report)

    def test_rejects_foreign_configuration(self):
        game_a = TupleGame(path_graph(4), k=2, nu=1)
        game_b = TupleGame(path_graph(4), k=2, nu=2)
        config = solve_game(game_b).mixed
        with pytest.raises(GameError, match="different game"):
            check_characterization(game_a, config)
        with pytest.raises(GameError, match="different game"):
            verify_best_responses(game_a, config)
