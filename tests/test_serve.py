"""Tests for :mod:`repro.serve` — the HTTP solve service.

The happy paths ride a shared module-scoped service; the failure-mode
tests (saturation, timeout, shutdown) spin up dedicated services with
deliberately tiny pools and monkeypatched slow runners so the races are
deterministic.
"""

import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

import repro.cache as result_cache
from repro.obs import access as obs_access
from repro.obs import events as obs_events
from repro.obs import ledger as obs_ledger
from repro.obs import metrics
from repro.serve import (
    ENDPOINTS,
    ERROR_SCHEMA,
    RESPONSE_SCHEMA,
    RequestError,
    ServeConfig,
    WorkerPool,
    running_service,
)
from repro.serve.routes import EndpointSpec

PATH_GAME = {
    "vertices": [1, 2, 3, 4],
    "edges": [[1, 2], [2, 3], [3, 4]],
    "k": 2,
    "nu": 1,
}

#: C5 with k=1: k < rho=3 and no IS/VC partition, so the paper's
#: machinery (extensions disabled) finds no equilibrium.
CYCLE5_GAME = {
    "vertices": [0, 1, 2, 3, 4],
    "edges": [[0, 1], [1, 2], [2, 3], [3, 4], [0, 4]],
    "k": 1,
    "nu": 1,
}


def post_full(base, path, body: bytes, headers=None, timeout=30.0):
    """POST raw bytes; return (status, parsed JSON body, response headers)."""
    request = urllib.request.Request(
        base + path, data=body,
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read()), resp.headers
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), exc.headers


def post_raw(base, path, body: bytes, timeout=30.0):
    """POST raw bytes; return (status, parsed JSON body)."""
    status, document, _headers = post_full(base, path, body, timeout=timeout)
    return status, document


def post(base, path, document, timeout=30.0):
    return post_raw(base, path, json.dumps(document).encode(), timeout)


def get(base, path, timeout=30.0):
    try:
        with urllib.request.urlopen(base + path, timeout=timeout) as resp:
            return resp.status, resp.read().decode(), resp.headers
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode(), exc.headers


@pytest.fixture(scope="module")
def service():
    with running_service(ServeConfig(workers=2, queue_limit=4)) as pair:
        yield pair


class TestEndpoints:
    def test_solve(self, service):
        _svc, base = service
        status, body = post(base, "/solve", {"game": PATH_GAME})
        assert status == 200
        assert body["schema"] == RESPONSE_SCHEMA
        assert body["endpoint"] == "solve"
        assert body["cache_hit"] is False
        assert body["result"]["solve"]["kind"] == "pure"

    def test_solve_with_params(self, service):
        _svc, base = service
        status, body = post(base, "/solve", {
            "game": PATH_GAME,
            "params": {"seed": 3, "allow_extensions": False},
        })
        assert status == 200
        assert body["result"]["solve"]["kind"] == "pure"

    def test_double_oracle(self, service):
        _svc, base = service
        status, body = post(base, "/double-oracle", {
            "game": PATH_GAME, "params": {"max_iterations": 50},
        })
        assert status == 200
        assert body["result"]["certified_gap"] <= 1e-6
        assert body["result"]["value"] == pytest.approx(1.0)

    def test_fictitious_play(self, service):
        _svc, base = service
        status, body = post(base, "/fictitious-play", {
            "game": PATH_GAME, "params": {"rounds": 30},
        })
        assert status == 200
        assert body["result"]["rounds"] == 30
        assert body["result"]["lower_bound"] <= body["result"]["upper_bound"]

    def test_ranges_both_sides(self, service):
        _svc, base = service
        status, body = post(base, "/ranges", {"game": PATH_GAME})
        assert status == 200
        result = body["result"]
        assert set(result) == {"attacker", "defender"}
        # P4 with k=2 is fully covered: both cover edges are mandatory.
        assert result["defender"]["required"] == [[1, 2], [3, 4]]
        edge_keys = [key for key, _low, _high in result["defender"]["ranges"]]
        assert edge_keys == [[1, 2], [2, 3], [3, 4]]

    def test_ranges_single_side(self, service):
        _svc, base = service
        status, body = post(base, "/ranges", {
            "game": PATH_GAME, "params": {"side": "attacker"},
        })
        assert status == 200
        assert set(body["result"]) == {"attacker"}


class TestValidationErrors:
    def test_malformed_json(self, service):
        _svc, base = service
        status, body = post_raw(base, "/solve", b"{not json")
        assert status == 400
        assert body["schema"] == ERROR_SCHEMA
        assert body["error"]["code"] == "invalid-json"

    def test_non_object_body(self, service):
        _svc, base = service
        status, body = post_raw(base, "/solve", b"[1, 2, 3]")
        assert status == 400
        assert body["error"]["code"] == "invalid-request"

    def test_missing_game(self, service):
        _svc, base = service
        status, body = post(base, "/solve", {"params": {}})
        assert status == 400
        assert body["error"]["code"] == "invalid-request"

    def test_schema_invalid_game(self, service):
        _svc, base = service
        bad = dict(PATH_GAME, edges=[[1, 9]])  # 9 is not a vertex
        status, body = post(base, "/solve", {"game": bad})
        assert status == 400
        assert body["error"]["code"] == "invalid-game"

    def test_unknown_param(self, service):
        _svc, base = service
        status, body = post(base, "/solve", {
            "game": PATH_GAME, "params": {"bogus": 1},
        })
        assert status == 400
        assert body["error"]["code"] == "invalid-params"
        assert "bogus" in body["error"]["message"]

    def test_param_type_error(self, service):
        _svc, base = service
        status, body = post(base, "/fictitious-play", {
            "game": PATH_GAME, "params": {"rounds": "many"},
        })
        assert status == 400
        assert body["error"]["code"] == "invalid-params"

    def test_degenerate_rounds_rejected_at_the_door(self, service):
        _svc, base = service
        status, body = post(base, "/fictitious-play", {
            "game": PATH_GAME, "params": {"rounds": 0},
        })
        assert status == 400
        assert body["error"]["code"] == "invalid-params"

    def test_no_equilibrium_is_422(self, service):
        _svc, base = service
        status, body = post(base, "/solve", {
            "game": CYCLE5_GAME, "params": {"allow_extensions": False},
        })
        assert status == 422
        assert body["error"]["code"] == "no-equilibrium"
        assert "partition" in body["error"]["message"]

    def test_unknown_endpoint_404(self, service):
        _svc, base = service
        status, body = post(base, "/does-not-exist", {"game": PATH_GAME})
        assert status == 404
        assert body["error"]["code"] == "not-found"

    def test_wrong_method_405(self, service):
        _svc, base = service
        status, text, _headers = get(base, "/solve")
        assert status == 405
        assert json.loads(text)["error"]["code"] == "bad-method"

    def test_body_too_large_413(self):
        config = ServeConfig(workers=1, queue_limit=0, max_body_bytes=64)
        with running_service(config) as (_svc, base):
            status, body = post(base, "/solve", {"game": PATH_GAME})
            assert status == 413
            assert body["error"]["code"] == "body-too-large"


class TestOperationalEndpoints:
    def test_healthz(self, service):
        svc, base = service
        status, text, headers = get(base, "/healthz")
        assert status == 200
        payload = json.loads(text)
        assert payload["status"] == "ok"
        assert payload["capacity"] == svc.pool.capacity
        assert payload["inflight"] >= 0
        assert payload["workers"] == svc.pool.workers
        assert payload["queue_limit"] == svc.pool.queue_limit
        assert payload["queue_depth"] >= 0
        assert isinstance(payload["uptime_s"], float)
        assert payload["uptime_s"] >= 0.0

    def test_slo_endpoint(self, service):
        _svc, base = service
        post(base, "/solve", {"game": PATH_GAME})
        status, text, _headers = get(base, "/slo")
        assert status == 200
        payload = json.loads(text)
        assert payload["schema"] == "repro.obs/slo-report/v1"
        assert {r["name"] for r in payload["results"]} == {
            "availability", "latency"}

    def test_slo_rejects_post(self, service):
        _svc, base = service
        status, body = post(base, "/slo", {"game": PATH_GAME})
        assert status == 405
        assert body["error"]["code"] == "bad-method"

    def test_debug_events_buffer(self, service):
        _svc, base = service
        obs_events.enable_events(sink=False)
        try:
            post(base, "/solve", {"game": PATH_GAME})
            _wait_for(lambda: any(
                e["type"] == "serve.request"
                for e in obs_events.recent()), "serve.request event buffered")
            status, text, _headers = get(base, "/debug/events")
            payload = json.loads(text)
            assert status == 200
            assert payload["schema"] == obs_events.EVENT_SCHEMA
            assert payload["count"] == len(payload["events"]) > 0
            status, text, _headers = get(base, "/debug/events?n=1")
            assert json.loads(text)["count"] <= 1
        finally:
            obs_events.disable_events()

    def test_debug_events_bad_query(self, service):
        _svc, base = service
        for query in ("?n=x", "?n=-1"):
            status, text, _headers = get(base, f"/debug/events{query}")
            assert status == 400
            assert json.loads(text)["error"]["code"] == "bad-query"

    def test_metrics_prometheus(self, service):
        _svc, base = service
        post(base, "/solve", {"game": PATH_GAME})
        status, text, headers = get(base, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "repro_serve_requests_count" in text
        assert "# TYPE" in text


class TestObservability:
    def test_request_writes_ledger_record(self, tmp_path, service):
        _svc, base = service
        obs_ledger.enable_ledger(tmp_path)
        try:
            status, _body = post(base, "/solve", {"game": PATH_GAME})
            assert status == 200
        finally:
            obs_ledger.disable_ledger()
        entry_points = [r["entry_point"] for r in obs_ledger.read_runs(
            directory=tmp_path)]
        assert "serve.solve" in entry_points
        # The library solver's own record nests inside the request's.
        assert "equilibria.solve" in entry_points

    def test_request_publishes_run_events(self, tmp_path, service):
        _svc, base = service
        obs_events.enable_events(tmp_path)
        try:
            status, _body = post(base, "/fictitious-play", {
                "game": PATH_GAME, "params": {"rounds": 5},
            })
            assert status == 200
        finally:
            obs_events.disable_events()
        events = obs_events.read_events(tmp_path / obs_events.SINK_FILENAME)
        starts = [e for e in events if e["type"] == "run.start"
                  and e["payload"]["entry_point"] == "serve.fictitious-play"]
        ends = [e for e in events if e["type"] == "run.end"
                and e["payload"]["entry_point"] == "serve.fictitious-play"]
        assert len(starts) == 1 and len(ends) == 1

    def test_cache_hit_served_inline(self, tmp_path, service):
        _svc, base = service
        result_cache.enable_cache(tmp_path)
        try:
            status1, body1 = post(base, "/solve", {"game": PATH_GAME})
            status2, body2 = post(base, "/solve", {"game": PATH_GAME})
        finally:
            result_cache.disable_cache()
        assert status1 == status2 == 200
        assert body1["cache_hit"] is False
        assert body2["cache_hit"] is True
        assert body1["result"] == body2["result"]

    def test_cache_key_respects_params(self, tmp_path, service):
        _svc, base = service
        result_cache.enable_cache(tmp_path)
        try:
            _s, body1 = post(base, "/fictitious-play", {
                "game": PATH_GAME, "params": {"rounds": 5},
            })
            _s, body2 = post(base, "/fictitious-play", {
                "game": PATH_GAME, "params": {"rounds": 6},
            })
        finally:
            result_cache.disable_cache()
        assert body1["cache_hit"] is False
        assert body2["cache_hit"] is False  # different params, different key


def _wait_for(condition, label, timeout=10.0):
    """Poll until ``condition()`` — the request epilogue (counters,
    access lines, events) runs after the response bytes are written, so
    client-side completion does not imply the sinks are stamped yet."""
    deadline = time.monotonic() + timeout
    while not condition():
        assert time.monotonic() < deadline, f"timed out waiting: {label}"
        time.sleep(0.01)


VALID_TRACEPARENT = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"


def _assert_correlation_headers(headers):
    """Every response carries the correlation header triple."""
    trace_id = headers["X-Request-Id"]
    assert len(trace_id) == 32
    int(trace_id, 16)
    traceparent = headers["traceparent"]
    prefix, span_id, flags = (
        traceparent[:36], traceparent[36:52], traceparent[52:])
    assert prefix == f"00-{trace_id}-"
    assert len(span_id) == 16
    int(span_id, 16)
    assert flags == "-01"
    assert headers["Date"].endswith("GMT")
    return trace_id


class TestCorrelationHeaders:
    def test_success_response_headers(self, service):
        _svc, base = service
        status, _body, headers = post_full(
            base, "/solve", json.dumps({"game": PATH_GAME}).encode())
        assert status == 200
        _assert_correlation_headers(headers)

    def test_error_response_headers(self, service):
        _svc, base = service
        status, _body, headers = post_full(base, "/nope", b"{}")
        assert status == 404
        _assert_correlation_headers(headers)

    def test_fresh_trace_per_request(self, service):
        _svc, base = service
        body = json.dumps({"game": PATH_GAME}).encode()
        _s, _b, first = post_full(base, "/solve", body)
        _s, _b, second = post_full(base, "/solve", body)
        assert first["X-Request-Id"] != second["X-Request-Id"]

    def test_inbound_traceparent_honored(self, service):
        _svc, base = service
        status, _body, headers = post_full(
            base, "/solve", json.dumps({"game": PATH_GAME}).encode(),
            headers={"traceparent": VALID_TRACEPARENT})
        assert status == 200
        trace_id = _assert_correlation_headers(headers)
        assert trace_id == "4bf92f3577b34da6a3ce929d0e0e4736"
        # This hop's span id, not an echo of the client's parent id.
        assert headers["traceparent"] != VALID_TRACEPARENT

    def test_malformed_traceparent_mints_fresh(self, service):
        _svc, base = service
        for bogus in ("garbage", f"00-{'0' * 32}-{'0' * 16}-01"):
            status, _body, headers = post_full(
                base, "/solve", json.dumps({"game": PATH_GAME}).encode(),
                headers={"traceparent": bogus})
            assert status == 200
            trace_id = _assert_correlation_headers(headers)
            assert trace_id != "0" * 32


class TestEndToEndCorrelation:
    def test_one_trace_id_across_every_sink(self, tmp_path, service):
        """The acceptance loop: response header == ledger record ==
        run events == access line == span tree, for one request."""
        _svc, base = service
        obs_ledger.enable_ledger(tmp_path / "ledger")
        obs_events.enable_events(tmp_path / "events")
        obs_access.enable_access_log(tmp_path / "access")
        try:
            status, _body, headers = post_full(
                base, "/solve", json.dumps({"game": PATH_GAME}).encode(),
                headers={"traceparent": VALID_TRACEPARENT})
            assert status == 200
            trace_id = headers["X-Request-Id"]
            assert trace_id == "4bf92f3577b34da6a3ce929d0e0e4736"
            _wait_for(lambda: obs_access.read_access(tmp_path / "access"),
                      "access line written")
        finally:
            obs_access.disable_access_log()
            obs_events.disable_events()
            obs_ledger.disable_ledger()

        records = [r for r in obs_ledger.read_runs(
            directory=tmp_path / "ledger")
            if r["entry_point"] == "serve.solve"]
        assert [r["trace_id"] for r in records] == [trace_id]
        # The span tree in the record carries the same identity.
        assert records[0]["spans"]
        assert all(s["trace_id"] == trace_id for s in records[0]["spans"])

        events = obs_events.read_events(
            tmp_path / "events" / obs_events.SINK_FILENAME)
        run_events = [e for e in events if e["type"] in
                      ("run.start", "run.end")
                      and e["payload"]["entry_point"] == "serve.solve"]
        assert len(run_events) == 2
        assert all(e["payload"]["trace_id"] == trace_id for e in run_events)

        (line,) = obs_access.read_access(tmp_path / "access")
        assert line["trace_id"] == trace_id
        assert line["endpoint"] == "/solve"
        assert line["method"] == "POST"
        assert line["status"] == 200
        assert line["error_code"] is None

    def test_request_latency_histogram(self, service):
        _svc, base = service
        histogram = metrics.histogram("serve.request.seconds")
        before = histogram.count
        post(base, "/solve", {"game": PATH_GAME})
        _wait_for(lambda: histogram.count >= before + 1,
                  "serve.request.seconds observed")


class TestHttpErrorCounters:
    """Regression: responses raised as ``_HttpError`` (HTTP-level
    defects) used to skip the per-code ``serve.errors.<code>.count``
    counters that ``RequestError`` responses always bumped."""

    def test_bad_method_bumps_per_code_counter(self, service):
        _svc, base = service
        per_code = metrics.counter("serve.errors.bad-method.count")
        total = metrics.counter("serve.errors.count")
        before_code, before_total = per_code.value, total.value
        status, _text, _headers = get(base, "/solve")
        assert status == 405
        _wait_for(lambda: per_code.value >= before_code + 1,
                  "bad-method per-code counter")
        assert total.value >= before_total + 1

    def test_body_too_large_bumps_per_code_counter(self):
        per_code = metrics.counter("serve.errors.body-too-large.count")
        before = per_code.value
        config = ServeConfig(workers=1, queue_limit=0, max_body_bytes=64)
        with running_service(config) as (_svc, base):
            status, body = post(base, "/solve", {"game": PATH_GAME})
            assert status == 413
            assert body["error"]["code"] == "body-too-large"
            _wait_for(lambda: per_code.value >= before + 1,
                      "body-too-large per-code counter")


class TestReadRequestDefects:
    """Defects caught inside ``_read_request`` (before routing) still
    produce a correlated error response, bump their per-code counter and
    leave an access-log line."""

    def test_truncated_body(self, tmp_path, service):
        svc, base = service
        per_code = metrics.counter("serve.errors.truncated.count")
        before = per_code.value
        obs_access.enable_access_log(tmp_path)
        try:
            with socket.create_connection(
                    (svc.config.host, svc.port), timeout=10.0) as sock:
                sock.sendall(b"POST /solve HTTP/1.1\r\n"
                             b"Content-Length: 999\r\n\r\nshort")
                sock.shutdown(socket.SHUT_WR)
                response = b""
                while chunk := sock.recv(65536):
                    response += chunk
            assert response.startswith(b"HTTP/1.1 400 ")
            assert b"X-Request-Id: " in response
            assert b'"truncated"' in response
            _wait_for(lambda: obs_access.read_access(tmp_path),
                      "truncated access line")
        finally:
            obs_access.disable_access_log()
        assert per_code.value >= before + 1
        (line,) = obs_access.read_access(tmp_path)
        assert line["status"] == 400
        assert line["error_code"] == "truncated"
        assert line["trace_id"] is not None

    def test_oversized_body(self, tmp_path):
        per_code = metrics.counter("serve.errors.body-too-large.count")
        before = per_code.value
        config = ServeConfig(workers=1, queue_limit=0, max_body_bytes=64)
        obs_access.enable_access_log(tmp_path)
        try:
            with running_service(config) as (_svc, base):
                status, _body, headers = post_full(
                    base, "/solve", json.dumps({"game": PATH_GAME}).encode())
                assert status == 413
                trace_id = _assert_correlation_headers(headers)
                _wait_for(lambda: obs_access.read_access(tmp_path),
                          "oversized access line")
        finally:
            obs_access.disable_access_log()
        assert per_code.value >= before + 1
        (line,) = obs_access.read_access(tmp_path)
        assert line["status"] == 413
        assert line["error_code"] == "body-too-large"
        assert line["trace_id"] == trace_id


def _slow_spec(release: threading.Event) -> EndpointSpec:
    def runner(_game, _params):
        release.wait(timeout=30.0)
        return {"slept": True}
    return EndpointSpec("solve", runner)


class TestBackpressure:
    def test_saturation_returns_429(self, monkeypatch):
        release = threading.Event()
        monkeypatch.setitem(ENDPOINTS, "solve", _slow_spec(release))
        config = ServeConfig(workers=1, queue_limit=0)
        with running_service(config) as (svc, base):
            results = []
            first = threading.Thread(
                target=lambda: results.append(
                    post(base, "/solve", {"game": PATH_GAME})
                ),
            )
            first.start()
            try:
                deadline = time.monotonic() + 10.0
                while svc.pool.inflight < 1:
                    assert time.monotonic() < deadline, "worker never started"
                    time.sleep(0.01)
                status, body = post(base, "/solve", {"game": PATH_GAME})
                assert status == 429
                assert body["error"]["code"] == "saturated"
            finally:
                release.set()
                first.join(timeout=30.0)
            assert results and results[0][0] == 200

    def test_request_timeout_returns_504(self, monkeypatch):
        release = threading.Event()
        monkeypatch.setitem(ENDPOINTS, "solve", _slow_spec(release))
        config = ServeConfig(workers=1, queue_limit=0,
                             request_timeout_s=0.2)
        try:
            with running_service(config) as (_svc, base):
                status, body = post(base, "/solve", {"game": PATH_GAME})
                assert status == 504
                assert body["error"]["code"] == "timeout"
        finally:
            release.set()  # let the abandoned worker thread finish


class TestWorkerPool:
    def test_admission_accounting(self):
        release = threading.Event()
        pool = WorkerPool(workers=1, queue_limit=1)
        try:
            futures = [pool.submit(lambda: release.wait(timeout=30.0))
                       for _ in range(2)]
            assert pool.inflight == 2
            with pytest.raises(RequestError) as excinfo:
                pool.submit(lambda: None)
            assert excinfo.value.status == 429
            assert excinfo.value.code == "saturated"
            release.set()
            for future in futures:
                future.result(timeout=30.0)
            deadline = time.monotonic() + 10.0
            while pool.inflight and time.monotonic() < deadline:
                time.sleep(0.01)
            assert pool.inflight == 0
            # Slots freed: admission works again.
            pool.submit(lambda: None).result(timeout=30.0)
        finally:
            release.set()
            pool.close()

    def test_closed_pool_returns_503(self):
        pool = WorkerPool(workers=1, queue_limit=0)
        pool.close()
        with pytest.raises(RequestError) as excinfo:
            pool.submit(lambda: None)
        assert excinfo.value.status == 503
        assert excinfo.value.code == "shutting-down"

    def test_slot_released_on_worker_error(self):
        pool = WorkerPool(workers=1, queue_limit=0)
        try:
            def boom():
                raise RuntimeError("worker exploded")
            future = pool.submit(boom)
            with pytest.raises(RuntimeError):
                future.result(timeout=30.0)
            deadline = time.monotonic() + 10.0
            while pool.inflight and time.monotonic() < deadline:
                time.sleep(0.01)
            assert pool.inflight == 0
        finally:
            pool.close()

    def test_bad_config_rejected(self):
        with pytest.raises(RequestError):
            WorkerPool(workers=0)
        with pytest.raises(RequestError):
            WorkerPool(workers=1, queue_limit=-1)
