"""Tests for :mod:`repro.serve` — the HTTP solve service.

The happy paths ride a shared module-scoped service; the failure-mode
tests (saturation, timeout, shutdown) spin up dedicated services with
deliberately tiny pools and monkeypatched slow runners so the races are
deterministic.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

import repro.cache as result_cache
from repro.obs import events as obs_events
from repro.obs import ledger as obs_ledger
from repro.serve import (
    ENDPOINTS,
    ERROR_SCHEMA,
    RESPONSE_SCHEMA,
    RequestError,
    ServeConfig,
    WorkerPool,
    running_service,
)
from repro.serve.routes import EndpointSpec

PATH_GAME = {
    "vertices": [1, 2, 3, 4],
    "edges": [[1, 2], [2, 3], [3, 4]],
    "k": 2,
    "nu": 1,
}

#: C5 with k=1: k < rho=3 and no IS/VC partition, so the paper's
#: machinery (extensions disabled) finds no equilibrium.
CYCLE5_GAME = {
    "vertices": [0, 1, 2, 3, 4],
    "edges": [[0, 1], [1, 2], [2, 3], [3, 4], [0, 4]],
    "k": 1,
    "nu": 1,
}


def post_raw(base, path, body: bytes, timeout=30.0):
    """POST raw bytes; return (status, parsed JSON body)."""
    request = urllib.request.Request(
        base + path, data=body,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def post(base, path, document, timeout=30.0):
    return post_raw(base, path, json.dumps(document).encode(), timeout)


def get(base, path, timeout=30.0):
    try:
        with urllib.request.urlopen(base + path, timeout=timeout) as resp:
            return resp.status, resp.read().decode(), resp.headers
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode(), exc.headers


@pytest.fixture(scope="module")
def service():
    with running_service(ServeConfig(workers=2, queue_limit=4)) as pair:
        yield pair


class TestEndpoints:
    def test_solve(self, service):
        _svc, base = service
        status, body = post(base, "/solve", {"game": PATH_GAME})
        assert status == 200
        assert body["schema"] == RESPONSE_SCHEMA
        assert body["endpoint"] == "solve"
        assert body["cache_hit"] is False
        assert body["result"]["solve"]["kind"] == "pure"

    def test_solve_with_params(self, service):
        _svc, base = service
        status, body = post(base, "/solve", {
            "game": PATH_GAME,
            "params": {"seed": 3, "allow_extensions": False},
        })
        assert status == 200
        assert body["result"]["solve"]["kind"] == "pure"

    def test_double_oracle(self, service):
        _svc, base = service
        status, body = post(base, "/double-oracle", {
            "game": PATH_GAME, "params": {"max_iterations": 50},
        })
        assert status == 200
        assert body["result"]["certified_gap"] <= 1e-6
        assert body["result"]["value"] == pytest.approx(1.0)

    def test_fictitious_play(self, service):
        _svc, base = service
        status, body = post(base, "/fictitious-play", {
            "game": PATH_GAME, "params": {"rounds": 30},
        })
        assert status == 200
        assert body["result"]["rounds"] == 30
        assert body["result"]["lower_bound"] <= body["result"]["upper_bound"]

    def test_ranges_both_sides(self, service):
        _svc, base = service
        status, body = post(base, "/ranges", {"game": PATH_GAME})
        assert status == 200
        result = body["result"]
        assert set(result) == {"attacker", "defender"}
        # P4 with k=2 is fully covered: both cover edges are mandatory.
        assert result["defender"]["required"] == [[1, 2], [3, 4]]
        edge_keys = [key for key, _low, _high in result["defender"]["ranges"]]
        assert edge_keys == [[1, 2], [2, 3], [3, 4]]

    def test_ranges_single_side(self, service):
        _svc, base = service
        status, body = post(base, "/ranges", {
            "game": PATH_GAME, "params": {"side": "attacker"},
        })
        assert status == 200
        assert set(body["result"]) == {"attacker"}


class TestValidationErrors:
    def test_malformed_json(self, service):
        _svc, base = service
        status, body = post_raw(base, "/solve", b"{not json")
        assert status == 400
        assert body["schema"] == ERROR_SCHEMA
        assert body["error"]["code"] == "invalid-json"

    def test_non_object_body(self, service):
        _svc, base = service
        status, body = post_raw(base, "/solve", b"[1, 2, 3]")
        assert status == 400
        assert body["error"]["code"] == "invalid-request"

    def test_missing_game(self, service):
        _svc, base = service
        status, body = post(base, "/solve", {"params": {}})
        assert status == 400
        assert body["error"]["code"] == "invalid-request"

    def test_schema_invalid_game(self, service):
        _svc, base = service
        bad = dict(PATH_GAME, edges=[[1, 9]])  # 9 is not a vertex
        status, body = post(base, "/solve", {"game": bad})
        assert status == 400
        assert body["error"]["code"] == "invalid-game"

    def test_unknown_param(self, service):
        _svc, base = service
        status, body = post(base, "/solve", {
            "game": PATH_GAME, "params": {"bogus": 1},
        })
        assert status == 400
        assert body["error"]["code"] == "invalid-params"
        assert "bogus" in body["error"]["message"]

    def test_param_type_error(self, service):
        _svc, base = service
        status, body = post(base, "/fictitious-play", {
            "game": PATH_GAME, "params": {"rounds": "many"},
        })
        assert status == 400
        assert body["error"]["code"] == "invalid-params"

    def test_degenerate_rounds_rejected_at_the_door(self, service):
        _svc, base = service
        status, body = post(base, "/fictitious-play", {
            "game": PATH_GAME, "params": {"rounds": 0},
        })
        assert status == 400
        assert body["error"]["code"] == "invalid-params"

    def test_no_equilibrium_is_422(self, service):
        _svc, base = service
        status, body = post(base, "/solve", {
            "game": CYCLE5_GAME, "params": {"allow_extensions": False},
        })
        assert status == 422
        assert body["error"]["code"] == "no-equilibrium"
        assert "partition" in body["error"]["message"]

    def test_unknown_endpoint_404(self, service):
        _svc, base = service
        status, body = post(base, "/does-not-exist", {"game": PATH_GAME})
        assert status == 404
        assert body["error"]["code"] == "not-found"

    def test_wrong_method_405(self, service):
        _svc, base = service
        status, text, _headers = get(base, "/solve")
        assert status == 405
        assert json.loads(text)["error"]["code"] == "bad-method"

    def test_body_too_large_413(self):
        config = ServeConfig(workers=1, queue_limit=0, max_body_bytes=64)
        with running_service(config) as (_svc, base):
            status, body = post(base, "/solve", {"game": PATH_GAME})
            assert status == 413
            assert body["error"]["code"] == "body-too-large"


class TestOperationalEndpoints:
    def test_healthz(self, service):
        svc, base = service
        status, text, headers = get(base, "/healthz")
        assert status == 200
        payload = json.loads(text)
        assert payload["status"] == "ok"
        assert payload["capacity"] == svc.pool.capacity
        assert payload["inflight"] >= 0

    def test_metrics_prometheus(self, service):
        _svc, base = service
        post(base, "/solve", {"game": PATH_GAME})
        status, text, headers = get(base, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "repro_serve_requests_count" in text
        assert "# TYPE" in text


class TestObservability:
    def test_request_writes_ledger_record(self, tmp_path, service):
        _svc, base = service
        obs_ledger.enable_ledger(tmp_path)
        try:
            status, _body = post(base, "/solve", {"game": PATH_GAME})
            assert status == 200
        finally:
            obs_ledger.disable_ledger()
        entry_points = [r["entry_point"] for r in obs_ledger.read_runs(
            directory=tmp_path)]
        assert "serve.solve" in entry_points
        # The library solver's own record nests inside the request's.
        assert "equilibria.solve" in entry_points

    def test_request_publishes_run_events(self, tmp_path, service):
        _svc, base = service
        obs_events.enable_events(tmp_path)
        try:
            status, _body = post(base, "/fictitious-play", {
                "game": PATH_GAME, "params": {"rounds": 5},
            })
            assert status == 200
        finally:
            obs_events.disable_events()
        events = obs_events.read_events(tmp_path / obs_events.SINK_FILENAME)
        starts = [e for e in events if e["type"] == "run.start"
                  and e["payload"]["entry_point"] == "serve.fictitious-play"]
        ends = [e for e in events if e["type"] == "run.end"
                and e["payload"]["entry_point"] == "serve.fictitious-play"]
        assert len(starts) == 1 and len(ends) == 1

    def test_cache_hit_served_inline(self, tmp_path, service):
        _svc, base = service
        result_cache.enable_cache(tmp_path)
        try:
            status1, body1 = post(base, "/solve", {"game": PATH_GAME})
            status2, body2 = post(base, "/solve", {"game": PATH_GAME})
        finally:
            result_cache.disable_cache()
        assert status1 == status2 == 200
        assert body1["cache_hit"] is False
        assert body2["cache_hit"] is True
        assert body1["result"] == body2["result"]

    def test_cache_key_respects_params(self, tmp_path, service):
        _svc, base = service
        result_cache.enable_cache(tmp_path)
        try:
            _s, body1 = post(base, "/fictitious-play", {
                "game": PATH_GAME, "params": {"rounds": 5},
            })
            _s, body2 = post(base, "/fictitious-play", {
                "game": PATH_GAME, "params": {"rounds": 6},
            })
        finally:
            result_cache.disable_cache()
        assert body1["cache_hit"] is False
        assert body2["cache_hit"] is False  # different params, different key


def _slow_spec(release: threading.Event) -> EndpointSpec:
    def runner(_game, _params):
        release.wait(timeout=30.0)
        return {"slept": True}
    return EndpointSpec("solve", runner)


class TestBackpressure:
    def test_saturation_returns_429(self, monkeypatch):
        release = threading.Event()
        monkeypatch.setitem(ENDPOINTS, "solve", _slow_spec(release))
        config = ServeConfig(workers=1, queue_limit=0)
        with running_service(config) as (svc, base):
            results = []
            first = threading.Thread(
                target=lambda: results.append(
                    post(base, "/solve", {"game": PATH_GAME})
                ),
            )
            first.start()
            try:
                deadline = time.monotonic() + 10.0
                while svc.pool.inflight < 1:
                    assert time.monotonic() < deadline, "worker never started"
                    time.sleep(0.01)
                status, body = post(base, "/solve", {"game": PATH_GAME})
                assert status == 429
                assert body["error"]["code"] == "saturated"
            finally:
                release.set()
                first.join(timeout=30.0)
            assert results and results[0][0] == 200

    def test_request_timeout_returns_504(self, monkeypatch):
        release = threading.Event()
        monkeypatch.setitem(ENDPOINTS, "solve", _slow_spec(release))
        config = ServeConfig(workers=1, queue_limit=0,
                             request_timeout_s=0.2)
        try:
            with running_service(config) as (_svc, base):
                status, body = post(base, "/solve", {"game": PATH_GAME})
                assert status == 504
                assert body["error"]["code"] == "timeout"
        finally:
            release.set()  # let the abandoned worker thread finish


class TestWorkerPool:
    def test_admission_accounting(self):
        release = threading.Event()
        pool = WorkerPool(workers=1, queue_limit=1)
        try:
            futures = [pool.submit(lambda: release.wait(timeout=30.0))
                       for _ in range(2)]
            assert pool.inflight == 2
            with pytest.raises(RequestError) as excinfo:
                pool.submit(lambda: None)
            assert excinfo.value.status == 429
            assert excinfo.value.code == "saturated"
            release.set()
            for future in futures:
                future.result(timeout=30.0)
            deadline = time.monotonic() + 10.0
            while pool.inflight and time.monotonic() < deadline:
                time.sleep(0.01)
            assert pool.inflight == 0
            # Slots freed: admission works again.
            pool.submit(lambda: None).result(timeout=30.0)
        finally:
            release.set()
            pool.close()

    def test_closed_pool_returns_503(self):
        pool = WorkerPool(workers=1, queue_limit=0)
        pool.close()
        with pytest.raises(RequestError) as excinfo:
            pool.submit(lambda: None)
        assert excinfo.value.status == 503
        assert excinfo.value.code == "shutting-down"

    def test_slot_released_on_worker_error(self):
        pool = WorkerPool(workers=1, queue_limit=0)
        try:
            def boom():
                raise RuntimeError("worker exploded")
            future = pool.submit(boom)
            with pytest.raises(RuntimeError):
                future.result(timeout=30.0)
            deadline = time.monotonic() + 10.0
            while pool.inflight and time.monotonic() < deadline:
                time.sleep(0.01)
            assert pool.inflight == 0
        finally:
            pool.close()

    def test_bad_config_rejected(self):
        with pytest.raises(RequestError):
            WorkerPool(workers=0)
        with pytest.raises(RequestError):
            WorkerPool(workers=1, queue_limit=-1)
