"""Meta-tests on API quality: docstring coverage and export hygiene."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
)


def _public_members(module):
    for name in getattr(module, "__all__", []):
        yield name, getattr(module, name)


@pytest.mark.parametrize("module_name", MODULES)
def test_every_public_callable_has_a_docstring(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, member in _public_members(module):
        if inspect.isfunction(member) or inspect.isclass(member):
            if not inspect.getdoc(member):
                undocumented.append(name)
    assert not undocumented, f"{module_name}: missing docstrings: {undocumented}"


@pytest.mark.parametrize("module_name", MODULES)
def test_every_module_has_a_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} has no module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name!r}"


def test_top_level_namespace_is_curated():
    for name in repro.__all__:
        assert hasattr(repro, name)
    # The headline API is reachable from the root.
    for required in ("TupleGame", "solve_game", "check_characterization"):
        assert required in repro.__all__


def test_version_is_a_string():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2
