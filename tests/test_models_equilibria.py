"""Tests for generalized mixed profiles and the uniform-family
construction (repro.models.equilibria)."""

import pytest

from repro.core.game import GameError
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    petersen_graph,
)
from repro.models.equilibria import (
    generalized_defender_profit,
    generalized_hit_probabilities,
    uniform_family_equilibrium,
    verify_generalized_nash,
)
from repro.models.families import KPathFamily, KStarFamily, KTupleFamily
from repro.models.game import GeneralizedGame


class TestRotatingPathPatrol:
    """The structural equilibrium of the [8]-style path defender on
    cycles: uniform rotation over the n k-paths."""

    @pytest.mark.parametrize("n, k", [(6, 2), (8, 3), (10, 2), (7, 3)])
    def test_cycle_rotation_is_nash(self, n, k):
        game = GeneralizedGame(cycle_graph(n), KPathFamily(k), nu=2)
        attacker, defender = uniform_family_equilibrium(game)
        ok, gaps = verify_generalized_nash(game, attacker, defender)
        assert ok, gaps
        # Value = (k+1)/n: a k-path covers k+1 of n symmetric vertices.
        hits = generalized_hit_probabilities(game, defender)
        for v in game.graph.vertices():
            assert hits[v] == pytest.approx((k + 1) / n)

    def test_value_matches_family_lp(self):
        game = GeneralizedGame(cycle_graph(8), KPathFamily(3), nu=1)
        attacker, defender = uniform_family_equilibrium(game)
        lp_value = game.solve_minimax().value
        hits = generalized_hit_probabilities(game, defender)
        assert min(hits.values()) == pytest.approx(lp_value, abs=1e-9)

    def test_defender_profit_scales_with_nu(self):
        game = GeneralizedGame(cycle_graph(6), KPathFamily(2), nu=4)
        attacker, defender = uniform_family_equilibrium(game)
        assert generalized_defender_profit(game, attacker, defender) == (
            pytest.approx(4 * 3 / 6)
        )


class TestUniformFamilyOnOtherGraphs:
    def test_complete_graph_star_family(self):
        # K5 is vertex-transitive: uniform stars equalize hits.
        game = GeneralizedGame(complete_graph(5), KStarFamily(2), nu=1)
        attacker, defender = uniform_family_equilibrium(game)
        ok, _ = verify_generalized_nash(game, attacker, defender)
        assert ok

    def test_petersen_path_family(self):
        # Petersen is vertex- and edge-transitive; path rotation works.
        game = GeneralizedGame(petersen_graph(), KPathFamily(2), nu=1)
        attacker, defender = uniform_family_equilibrium(game)
        ok, gaps = verify_generalized_nash(game, attacker, defender)
        assert ok, gaps

    def test_rejects_asymmetric_graph(self):
        game = GeneralizedGame(path_graph(6), KPathFamily(2), nu=1)
        with pytest.raises(GameError, match="not an NE"):
            uniform_family_equilibrium(game)

    def test_rejects_unequal_coverage_family(self):
        # Star family on a grid: hub stars cover k+1 vertices, corner
        # stars are degree-capped and cover fewer.
        game = GeneralizedGame(grid_graph(3, 3), KStarFamily(3), nu=1)
        with pytest.raises(GameError, match="unequal vertex counts"):
            uniform_family_equilibrium(game)


class TestVerifyGeneralizedNash:
    @pytest.fixture
    def cycle_game(self):
        return GeneralizedGame(cycle_graph(6), KPathFamily(2), nu=1)

    def test_detects_exploitable_defender(self, cycle_game):
        strategies = cycle_game.strategies
        defender = {strategies[0]: 1.0}
        attacker = {v: 1.0 / 6 for v in cycle_game.graph.vertices()}
        ok, gaps = verify_generalized_nash(cycle_game, attacker, defender)
        assert not ok
        assert gaps["attacker"] > 0.1

    def test_detects_exploitable_attacker(self, cycle_game):
        _, defender = uniform_family_equilibrium(cycle_game)
        attacker = {0: 1.0}
        ok, gaps = verify_generalized_nash(cycle_game, attacker, defender)
        # Hits are uniform, so a point attacker is still a best response;
        # but the *defender* now has a better reply than its uniform mix.
        assert not ok
        assert gaps["defender"] > 0.1

    def test_rejects_malformed_distributions(self, cycle_game):
        attacker = {v: 1.0 / 6 for v in cycle_game.graph.vertices()}
        with pytest.raises(GameError, match="empty"):
            verify_generalized_nash(cycle_game, attacker, {})
        with pytest.raises(GameError, match="sums to"):
            verify_generalized_nash(
                cycle_game, attacker, {cycle_game.strategies[0]: 0.4}
            )
        with pytest.raises(GameError, match="not in the family"):
            verify_generalized_nash(
                cycle_game, attacker, {(((0, 1)), ((2, 3)), ((4, 5))): 1.0}
            )

    def test_rejects_foreign_vertex(self, cycle_game):
        _, defender = uniform_family_equilibrium(cycle_game)
        with pytest.raises(GameError, match="not in the graph"):
            verify_generalized_nash(cycle_game, {99: 1.0}, defender)
