"""Unit tests for Hall checks and IS/VC partition search
(repro.matching.hall, repro.matching.partition)."""

from itertools import combinations

import pytest

from repro.graphs.core import Graph
from repro.graphs.generators import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    gnp_random_graph,
    grid_graph,
    path_graph,
    petersen_graph,
    random_bipartite_graph,
    random_tree,
    star_graph,
)
from repro.graphs.properties import is_independent_set
from repro.matching.covers import minimum_edge_cover_size
from repro.matching.hall import check_hall, find_saturating_matching
from repro.matching.partition import (
    bipartite_partition,
    exact_partition_search,
    find_partition,
    greedy_partition,
    is_valid_partition,
)


class TestCheckHall:
    def test_holds(self):
        result = check_hall(["a", "b"], {"a": [1, 2], "b": [2, 3]})
        assert result.holds
        assert result.violator is None
        assert bool(result)

    def test_fails_with_certificate(self):
        adjacency = {"a": [1], "b": [1], "c": [1, 2]}
        result = check_hall(["a", "b", "c"], adjacency)
        assert not result.holds
        violator = result.violator
        # The certificate really violates Hall: |N(X)| < |X|.
        neighborhood = set()
        for v in violator:
            neighborhood.update(adjacency[v])
        assert len(neighborhood) < len(violator)

    def test_find_saturating_matching(self):
        assert find_saturating_matching(["a"], {"a": [1]}) is not None
        assert find_saturating_matching(["a", "b"], {"a": [1], "b": [1]}) is None


class TestIsValidPartition:
    def test_bipartite_standard(self, k23):
        # VC = small side, IS = large side: expander holds.
        assert is_valid_partition(k23, {2, 3, 4})
        # IS = small side: VC (large side) cannot match into 2 vertices.
        assert not is_valid_partition(k23, {0, 1})

    def test_empty_is_invalid(self, path4):
        assert not is_valid_partition(path4, set())

    def test_non_independent_is_invalid(self, path4):
        assert not is_valid_partition(path4, {0, 1})

    def test_path4_valid(self, path4):
        assert is_valid_partition(path4, {0, 3})
        assert is_valid_partition(path4, {0, 2})


class TestBipartitePartition:
    @pytest.mark.parametrize(
        "graph",
        [path_graph(6), cycle_graph(8), grid_graph(3, 4), star_graph(5),
         complete_bipartite_graph(3, 5), random_tree(15, seed=3)],
        ids=["path6", "cycle8", "grid34", "star5", "k35", "tree15"],
    )
    def test_always_valid(self, graph):
        independent, cover = bipartite_partition(graph)
        assert independent | cover == graph.vertices()
        assert not independent & cover
        assert is_valid_partition(graph, independent)

    @pytest.mark.parametrize("seed", range(12))
    def test_random_bipartite(self, seed):
        g = random_bipartite_graph(5, 8, 0.3, seed=seed)
        independent, cover = bipartite_partition(g)
        assert is_valid_partition(g, independent)


class TestExactSearch:
    def test_finds_partition_on_triangle_with_pendant(self):
        g = Graph([("a", "b"), ("b", "c"), ("c", "a"), ("a", "d")])
        partition = exact_partition_search(g)
        assert partition is not None
        assert is_valid_partition(g, partition[0])

    def test_none_on_petersen(self):
        # Petersen: max independent set is 4 < rho = 5, so |IS| = rho is
        # impossible and no valid partition exists.
        assert exact_partition_search(petersen_graph()) is None

    def test_none_on_odd_cycle(self):
        # C5: rho = 3 but the maximum independent set has size 2.
        assert exact_partition_search(cycle_graph(5)) is None

    def test_complete_graph_k2(self):
        partition = exact_partition_search(complete_graph(2))
        assert partition is not None

    def test_complete_graph_k4_none(self):
        # K4: independent sets have size 1, rho = 2.
        assert exact_partition_search(complete_graph(4)) is None

    def test_rejects_large_graphs(self):
        with pytest.raises(ValueError, match="exact search"):
            exact_partition_search(grid_graph(5, 6))


class TestPartitionSizeInvariant:
    """Every valid partition has |IS| = rho(G) (DESIGN.md §2)."""

    @pytest.mark.parametrize(
        "graph",
        [path_graph(5), path_graph(6), cycle_graph(6), star_graph(4),
         grid_graph(2, 4), complete_bipartite_graph(2, 4),
         Graph([("a", "b"), ("b", "c"), ("c", "a"), ("a", "d")])],
        ids=["path5", "path6", "cycle6", "star4", "grid24", "k24", "tri+pendant"],
    )
    def test_all_valid_partitions_have_is_size_rho(self, graph):
        rho = minimum_edge_cover_size(graph)
        vertices = graph.sorted_vertices()
        found_any = False
        for size in range(1, graph.n):
            for subset in combinations(vertices, size):
                if is_valid_partition(graph, subset):
                    found_any = True
                    assert len(subset) == rho
        assert found_any


class TestGreedyAndDispatch:
    def test_greedy_sound(self):
        for seed in range(6):
            g = gnp_random_graph(16, 0.25, seed=seed)
            partition = greedy_partition(g, seed=seed)
            if partition is not None:
                assert is_valid_partition(g, partition[0])

    def test_greedy_deterministic(self):
        g = gnp_random_graph(14, 0.3, seed=4)
        assert greedy_partition(g, seed=1) == greedy_partition(g, seed=1)

    def test_find_partition_prefers_bipartite_construction(self):
        g = grid_graph(4, 5)  # 20 vertices: too big for exact search
        partition = find_partition(g)
        assert partition is not None
        assert is_valid_partition(g, partition[0])

    def test_find_partition_on_small_non_bipartite(self):
        g = Graph([("a", "b"), ("b", "c"), ("c", "a"), ("a", "d")])
        partition = find_partition(g)
        assert partition is not None

    def test_find_partition_none_for_petersen(self):
        assert find_partition(petersen_graph()) is None
