"""Property-based tests (hypothesis) on the library's core invariants.

Each property here is a theorem of the paper (or a structural fact the
design relies on) quantified over random graphs/games rather than a fixed
zoo.
"""

import networkx as nx
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.characterization import is_mixed_nash, verify_best_responses
from repro.core.game import TupleGame
from repro.core.profits import expected_profit_tp, expected_profit_vp, hit_probability
from repro.core.pure import find_pure_nash, is_pure_nash, pure_nash_exists
from repro.core.tuples import canonical_tuple
from repro.equilibria.kmatching import is_kmatching_nash
from repro.equilibria.reduction import edge_to_tuple, tuple_to_edge
from repro.equilibria.solve import solve_game
from repro.graphs.core import Graph
from repro.graphs.generators import gnp_random_graph, random_bipartite_graph, random_tree
from repro.graphs.io import graph_from_json, graph_to_json, parse_edge_list, format_edge_list
from repro.graphs.properties import (
    is_edge_cover,
    is_independent_set,
    is_matching,
    is_vertex_cover,
)
from repro.matching.blossom import matching_number, maximum_matching
from repro.matching.covers import minimum_edge_cover, minimum_edge_cover_size
from repro.matching.konig import konig_vertex_cover
from repro.matching.partition import bipartite_partition, is_valid_partition

# Strategy: random graphs from seeds — keeps shrinking meaningful while
# reusing the deterministic generators.
seeds = st.integers(min_value=0, max_value=10_000)
small_n = st.integers(min_value=2, max_value=24)
densities = st.floats(min_value=0.05, max_value=0.8)

relaxed = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@relaxed
@given(n=small_n, p=densities, seed=seeds)
def test_blossom_matches_networkx_and_is_valid(n, p, seed):
    g = gnp_random_graph(n, p, seed=seed)
    ours = maximum_matching(g)
    assert is_matching(g, ours)
    nxg = nx.Graph(list(g.edges()))
    assert len(ours) == len(nx.max_weight_matching(nxg, maxcardinality=True))


@relaxed
@given(n=small_n, p=densities, seed=seeds)
def test_gallai_identity(n, p, seed):
    g = gnp_random_graph(n, p, seed=seed)
    cover = minimum_edge_cover(g)
    assert is_edge_cover(g, cover)
    assert len(cover) == g.n - matching_number(g)


@relaxed
@given(a=st.integers(2, 8), b=st.integers(2, 8), p=densities, seed=seeds)
def test_konig_cover_is_minimum_and_partition_valid(a, b, p, seed):
    g = random_bipartite_graph(a, b, p, seed=seed)
    result = konig_vertex_cover(g)
    assert is_vertex_cover(g, result.cover)
    assert is_independent_set(g, result.independent_set)
    assert len(result.cover) == matching_number(g)
    assert is_valid_partition(g, result.independent_set)


@relaxed
@given(a=st.integers(2, 8), b=st.integers(2, 8), p=densities, seed=seeds)
def test_valid_partition_is_size_equals_rho(a, b, p, seed):
    """DESIGN.md §2: |IS| = rho(G) for every valid partition we build."""
    g = random_bipartite_graph(a, b, p, seed=seed)
    independent, _ = bipartite_partition(g)
    assert len(independent) == minimum_edge_cover_size(g)


@relaxed
@given(n=small_n, p=densities, seed=seeds, k_offset=st.integers(-2, 3))
def test_theorem_31_pure_ne_iff_k_geq_rho(n, p, seed, k_offset):
    g = gnp_random_graph(n, p, seed=seed)
    rho = minimum_edge_cover_size(g)
    k = max(1, min(g.m, rho + k_offset))
    game = TupleGame(g, k, nu=2)
    exists = pure_nash_exists(game)
    assert exists == (k >= rho)
    config = find_pure_nash(game)
    if exists:
        assert config is not None
        assert is_pure_nash(game, config)
    else:
        assert config is None


@relaxed
@given(a=st.integers(2, 6), b=st.integers(2, 7), p=densities, seed=seeds,
       nu=st.integers(1, 6))
def test_solver_output_is_nash_across_bipartite_instances(a, b, p, seed, nu):
    g = random_bipartite_graph(a, b, p, seed=seed)
    rho = minimum_edge_cover_size(g)
    for k in {1, max(1, rho // 2), max(1, rho - 1)}:
        game = TupleGame(g, k, nu=nu)
        result = solve_game(game)
        assert is_mixed_nash(game, result.mixed)
        if result.kind == "k-matching":
            assert result.defender_gain == (
                __import__("pytest").approx(k * nu / rho)
            )


@relaxed
@given(a=st.integers(2, 6), b=st.integers(2, 7), p=densities, seed=seeds)
def test_reduction_round_trip_preserves_equilibrium(a, b, p, seed):
    g = random_bipartite_graph(a, b, p, seed=seed)
    rho = minimum_edge_cover_size(g)
    if rho < 3:
        return  # no interesting mixed regime
    k = rho - 1
    game = TupleGame(g, k, nu=2)
    config = solve_game(game).mixed
    if solve_game(game).kind != "k-matching":
        return
    edge_config = tuple_to_edge(game, config)
    assert is_mixed_nash(game.edge_game(), edge_config)
    lifted = edge_to_tuple(game.edge_game(), edge_config, k)
    assert is_kmatching_nash(game, lifted)
    # Gain law both ways.
    assert abs(
        expected_profit_tp(config) - k * expected_profit_tp(edge_config)
    ) < 1e-9


@relaxed
@given(a=st.integers(2, 6), b=st.integers(2, 6), p=densities, seed=seeds)
def test_equilibrium_profit_conservation_and_uniform_hits(a, b, p, seed):
    g = random_bipartite_graph(a, b, p, seed=seed)
    rho = minimum_edge_cover_size(g)
    if rho < 2:
        return
    game = TupleGame(g, 1, nu=3)
    config = solve_game(game).mixed
    if solve_game(game).kind != "k-matching":
        return
    hits = {hit_probability(config, v) for v in config.vp_support_union()}
    assert max(hits) - min(hits) < 1e-12
    escapes = sum(expected_profit_vp(config, i) for i in range(3))
    assert abs(expected_profit_tp(config) + escapes - 3) < 1e-9


@relaxed
@given(n=st.integers(2, 30), seed=seeds)
def test_random_tree_solves_everywhere(n, seed):
    """Trees are bipartite: Theorem 5.1 applies for every k."""
    g = random_tree(n, seed=seed)
    rho = minimum_edge_cover_size(g)
    for k in {1, max(1, rho - 1), min(rho, g.m)}:
        game = TupleGame(g, k, nu=1)
        result = solve_game(game)
        ok, gaps = verify_best_responses(game, result.mixed)
        assert ok, gaps


@relaxed
@given(n=small_n, p=densities, seed=seeds)
def test_graph_io_round_trips(n, p, seed):
    g = gnp_random_graph(n, p, seed=seed)
    assert parse_edge_list(format_edge_list(g)) == g
    assert graph_from_json(graph_to_json(g)) == g


@given(
    edges=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)).filter(
            lambda e: e[0] != e[1]
        ),
        min_size=1,
        max_size=12,
        unique_by=lambda e: frozenset(e),
    )
)
def test_canonical_tuple_is_idempotent_and_order_free(edges):
    # Deduplicate by unordered pair already via unique_by.
    canon = canonical_tuple(edges)
    assert canonical_tuple(canon) == canon
    assert canonical_tuple(reversed(list(edges))) == canon
