"""Tests for the Theorem 4.5 reduction (repro.equilibria.reduction)."""

import pytest

from repro.core.characterization import is_mixed_nash
from repro.core.game import GameError, TupleGame
from repro.core.profits import expected_profit_tp
from repro.equilibria.kmatching import is_kmatching_nash
from repro.equilibria.matching_ne import is_matching_configuration, matching_equilibrium
from repro.equilibria.reduction import edge_to_tuple, gain_ratio, tuple_to_edge
from repro.graphs.generators import complete_bipartite_graph, grid_graph
from repro.matching.covers import minimum_edge_cover_size
from tests.conftest import bipartite_zoo, zoo_params


class TestLemma48EdgeToTuple:
    @pytest.mark.parametrize("graph", zoo_params(bipartite_zoo()))
    def test_lifts_to_kmatching_nash(self, graph):
        edge_game = TupleGame(graph, 1, nu=3)
        edge_config = matching_equilibrium(edge_game)
        rho = minimum_edge_cover_size(graph)
        for k in range(2, rho):
            lifted = edge_to_tuple(edge_game, edge_config, k)
            target = TupleGame(graph, k, nu=3)
            assert lifted.game == target
            assert is_kmatching_nash(target, lifted)

    def test_gain_scales_by_k(self):
        graph = grid_graph(3, 4)
        edge_game = TupleGame(graph, 1, nu=5)
        edge_config = matching_equilibrium(edge_game)
        base_gain = expected_profit_tp(edge_config)
        for k in range(2, minimum_edge_cover_size(graph)):
            lifted = edge_to_tuple(edge_game, edge_config, k)
            assert expected_profit_tp(lifted) == pytest.approx(k * base_gain)
            assert gain_ratio(
                TupleGame(graph, k, nu=5), lifted, edge_game, edge_config
            ) == pytest.approx(k)

    def test_rejects_non_edge_model_source(self, k24):
        game = TupleGame(k24, 2, nu=1)
        from repro.equilibria.solve import solve_game

        config = solve_game(game).mixed
        with pytest.raises(GameError, match="k=1"):
            edge_to_tuple(game, config, 3)

    def test_rejects_non_matching_configuration(self, path4):
        from repro.core.configuration import MixedConfiguration

        edge_game = TupleGame(path4, 1, nu=1)
        bad = MixedConfiguration.uniform(edge_game, [0, 1], [[(0, 1)], [(2, 3)]])
        with pytest.raises(GameError, match="Definition 2.2"):
            edge_to_tuple(edge_game, bad, 2)


class TestLemma46TupleToEdge:
    @pytest.mark.parametrize("graph", zoo_params(bipartite_zoo()))
    def test_flattens_to_matching_nash(self, graph):
        from repro.equilibria.solve import solve_game

        rho = minimum_edge_cover_size(graph)
        for k in range(2, rho):
            game = TupleGame(graph, k, nu=2)
            config = solve_game(game).mixed
            flattened = tuple_to_edge(game, config)
            edge_game = game.edge_game()
            assert flattened.game == edge_game
            assert is_matching_configuration(edge_game, flattened)
            assert is_mixed_nash(edge_game, flattened)

    def test_rejects_non_kmatching_input(self, path4):
        from repro.core.configuration import MixedConfiguration

        game = TupleGame(path4, 2, nu=1)
        bad = MixedConfiguration.uniform(game, [0, 1], [[(0, 1), (2, 3)]])
        with pytest.raises(GameError, match="Definition 4.1"):
            tuple_to_edge(game, bad)


class TestRoundTrip:
    @pytest.mark.parametrize("graph", zoo_params(bipartite_zoo()))
    def test_edge_tuple_edge_is_identity_on_supports(self, graph):
        edge_game = TupleGame(graph, 1, nu=2)
        original = matching_equilibrium(edge_game)
        rho = minimum_edge_cover_size(graph)
        for k in range(2, rho):
            lifted = edge_to_tuple(edge_game, original, k)
            back = tuple_to_edge(TupleGame(graph, k, nu=2), lifted)
            assert back.tp_support_edges() == original.tp_support_edges()
            assert back.vp_support_union() == original.vp_support_union()

    def test_gain_relation_both_directions(self):
        graph = complete_bipartite_graph(3, 5)
        edge_game = TupleGame(graph, 1, nu=4)
        original = matching_equilibrium(edge_game)
        k = 3
        lifted = edge_to_tuple(edge_game, original, k)
        back = tuple_to_edge(TupleGame(graph, k, nu=4), lifted)
        assert expected_profit_tp(lifted) == pytest.approx(
            k * expected_profit_tp(back)
        )


class TestGainRatioErrors:
    def test_zero_denominator(self, path4):
        from repro.core.configuration import MixedConfiguration

        edge_game = TupleGame(path4, 1, nu=1)
        # Attacker on 3, defender on (0,1): defender gain is 0.
        silly = MixedConfiguration.uniform(edge_game, [3], [[(0, 1)]])
        game = TupleGame(path4, 2, nu=1)
        config = MixedConfiguration.uniform(game, [0], [[(0, 1), (2, 3)]])
        with pytest.raises(GameError, match="ratio undefined"):
            gain_ratio(game, config, edge_game, silly)
