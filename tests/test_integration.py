"""Integration tests: full pipelines crossing every package boundary.

These scenarios chain graph generation → partition search → equilibrium
construction → characterization → LP/fictitious-play cross-checks →
Monte-Carlo validation, the way a downstream user of the library would.
"""

import pytest

from repro import (
    TupleGame,
    check_characterization,
    expected_profit_tp,
    solve_game,
    verify_best_responses,
)
from repro.analysis.gain import fit_slope_through_origin, gain_curve, max_linearity_residual
from repro.equilibria.reduction import edge_to_tuple, tuple_to_edge
from repro.graphs.core import Graph
from repro.graphs.generators import (
    complete_bipartite_graph,
    grid_graph,
    petersen_graph,
    random_bipartite_graph,
    random_tree,
)
from repro.graphs.io import graph_from_json, graph_to_json
from repro.matching.covers import minimum_edge_cover_size
from repro.simulation.engine import simulate
from repro.solvers.fictitious_play import fictitious_play
from repro.solvers.lp import lp_defender_gain, solve_minimax


class TestFullPipelineOnEnterpriseTopology:
    """A two-tier 'servers vs clients' network (bipartite), the paper's
    motivating shape: solve, verify three independent ways, simulate."""

    @pytest.fixture(scope="class")
    def network(self):
        return random_bipartite_graph(5, 9, 0.35, seed=17)

    def test_solve_verify_simulate(self, network):
        rho = minimum_edge_cover_size(network)
        nu = 6
        k = max(1, rho // 2)
        game = TupleGame(network, k, nu=nu)
        result = solve_game(game)

        # 1. Theorem 3.4 characterization.
        report = check_characterization(game, result.mixed)
        assert report.is_nash, report.failures
        # 2. First-principles best responses.
        ok, gaps = verify_best_responses(game, result.mixed)
        assert ok, gaps
        # 3. Exact LP value agrees.
        if game.tuple_strategy_count() <= 50_000:
            assert lp_defender_gain(game) == pytest.approx(
                result.defender_gain, abs=1e-6
            )
        # 4. Monte-Carlo confirms equation (2).
        sim = simulate(game, result.mixed, trials=30_000, seed=23)
        low, high = sim.defender_profit.confidence_interval()
        assert low <= result.defender_gain <= high

    def test_gain_law_end_to_end(self, network):
        rho = minimum_edge_cover_size(network)
        nu = 4
        points = [p for p in gain_curve(network, nu) if p.kind == "k-matching"]
        slope = fit_slope_through_origin(points)
        assert slope == pytest.approx(nu / rho)
        assert max_linearity_residual(points, slope) < 1e-9


class TestSerializationRoundTripThroughSolver:
    def test_json_round_trip_preserves_equilibrium(self):
        g = grid_graph(3, 3)
        g2 = graph_from_json(graph_to_json(g))
        game1, game2 = TupleGame(g, 2, nu=3), TupleGame(g2, 2, nu=3)
        r1, r2 = solve_game(game1), solve_game(game2)
        assert r1.mixed.tp_support() == r2.mixed.tp_support()
        assert r1.defender_gain == pytest.approx(r2.defender_gain)


class TestThreeSolversAgree:
    """Structural algorithm, exact LP and fictitious play must all land on
    the same defender value."""

    @pytest.mark.parametrize(
        "graph, k",
        [
            (complete_bipartite_graph(2, 4), 2),
            (grid_graph(2, 3), 2),
            (random_tree(9, seed=4), 2),
        ],
        ids=["k24", "grid23", "tree9"],
    )
    def test_agreement(self, graph, k):
        game = TupleGame(graph, k, nu=1)
        structural = solve_game(game).defender_gain
        lp_value = solve_minimax(game).value
        fp = fictitious_play(game, rounds=600)
        assert lp_value == pytest.approx(structural, abs=1e-6)
        assert fp.lower_bound - 1e-9 <= lp_value <= fp.upper_bound + 1e-9


class TestNonBipartiteStory:
    def test_petersen_paper_machinery_vs_extensions_vs_lp(self):
        """The paper's machinery declines Petersen; the perfect-matching
        extension and the LP baseline both solve it, with equal values."""
        from repro.equilibria.solve import NoEquilibriumFoundError
        from repro.solvers.lp import lp_equilibrium

        game = TupleGame(petersen_graph(), 2, nu=3)
        with pytest.raises(NoEquilibriumFoundError):
            solve_game(game, allow_extensions=False)
        result = solve_game(game)
        assert result.kind == "perfect-matching"
        config, solution = lp_equilibrium(game)
        ok, gaps = verify_best_responses(game, config, tol=1e-6)
        assert ok, gaps
        assert solution.value == pytest.approx(2 / 5, abs=1e-7)
        assert result.defender_gain == pytest.approx(3 * solution.value, abs=1e-7)

    def test_triangle_pendant_solves_structurally(self):
        g = Graph([("a", "b"), ("b", "c"), ("c", "a"), ("a", "d")])
        game = TupleGame(g, 1, nu=2)
        result = solve_game(game)
        assert result.kind == "k-matching"
        assert lp_defender_gain(game) == pytest.approx(
            result.defender_gain, abs=1e-6
        )


class TestScalabilitySmoke:
    def test_larger_bipartite_instance_under_a_second(self):
        g = random_bipartite_graph(40, 60, 0.1, seed=5)
        rho = minimum_edge_cover_size(g)
        game = TupleGame(g, rho // 2, nu=10)
        result = solve_game(game)
        assert result.kind == "k-matching"
        # Only structural checks that avoid tuple enumeration.
        from repro.equilibria.kmatching import is_kmatching_nash

        assert is_kmatching_nash(game, result.mixed)
        assert result.defender_gain == pytest.approx((rho // 2) * 10 / rho)

    def test_long_path_many_k(self):
        g = grid_graph(1, 60)
        rho = minimum_edge_cover_size(g)
        for k in (1, 7, rho - 1, rho):
            game = TupleGame(g, k, nu=2)
            result = solve_game(game)
            assert result.defender_gain > 0
