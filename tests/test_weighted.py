"""Tests for the weighted-assets extension (repro.weighted)."""

import pytest

from repro.core.configuration import PureConfiguration
from repro.core.game import GameError, TupleGame
from repro.equilibria.solve import solve_game
from repro.graphs.generators import (
    complete_bipartite_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.matching.covers import minimum_edge_cover_size
from repro.solvers.lp import solve_minimax
from repro.weighted import (
    WeightedTupleGame,
    weighted_lp_equilibrium,
    weighted_minimax,
)


def uniform_weights(graph, value=1.0):
    return {v: value for v in graph.vertices()}


class TestConstruction:
    def test_valid(self):
        g = path_graph(4)
        game = WeightedTupleGame(g, 2, uniform_weights(g), nu=3)
        assert game.total_weight() == pytest.approx(4.0)
        assert game.nu == 3

    def test_rejects_missing_weight(self):
        g = path_graph(4)
        with pytest.raises(GameError, match="no weight"):
            WeightedTupleGame(g, 1, {0: 1.0, 1: 1.0, 2: 1.0})

    def test_rejects_nonpositive_weight(self):
        g = path_graph(3)
        with pytest.raises(GameError, match="positive"):
            WeightedTupleGame(g, 1, {0: 1.0, 1: 0.0, 2: 1.0})

    def test_rejects_extra_weight(self):
        g = path_graph(3)
        weights = uniform_weights(g)
        weights[99] = 2.0
        with pytest.raises(GameError, match="non-vertices"):
            WeightedTupleGame(g, 1, weights)


class TestPureProfits:
    def test_weighted_catch_value(self):
        g = path_graph(4)
        game = WeightedTupleGame(g, 2, {0: 5.0, 1: 1.0, 2: 1.0, 3: 7.0}, nu=2)
        config = PureConfiguration(game.base, [0, 3], [(0, 1), (2, 3)])
        assert game.pure_profit_defender(config) == pytest.approx(12.0)
        assert game.pure_profit_attacker(config, 0) == 0.0

    def test_escape_earns_weight(self):
        g = path_graph(4)
        game = WeightedTupleGame(g, 1, {0: 5.0, 1: 1.0, 2: 1.0, 3: 7.0}, nu=1)
        config = PureConfiguration(game.base, [3], [(0, 1)])
        assert game.pure_profit_attacker(config, 0) == pytest.approx(7.0)
        assert game.pure_profit_defender(config) == 0.0


class TestUnitWeightsReduceToBaseModel:
    @pytest.mark.parametrize(
        "graph, k",
        [(path_graph(5), 2), (complete_bipartite_graph(2, 4), 2),
         (cycle_graph(6), 1)],
        ids=["path5", "k24", "cycle6"],
    )
    def test_escape_value_is_one_minus_base_value(self, graph, k):
        game = WeightedTupleGame(graph, k, uniform_weights(graph), nu=1)
        weighted = weighted_minimax(game)
        base_value = solve_minimax(TupleGame(graph, k, nu=1)).value
        assert weighted.value == pytest.approx(1.0 - base_value, abs=1e-7)

    def test_scaling_weights_scales_value(self):
        graph = grid_graph(2, 3)
        base = weighted_minimax(
            WeightedTupleGame(graph, 2, uniform_weights(graph), nu=1)
        )
        scaled = weighted_minimax(
            WeightedTupleGame(graph, 2, uniform_weights(graph, 3.0), nu=1)
        )
        assert scaled.value == pytest.approx(3.0 * base.value, abs=1e-7)


class TestWeightedEquilibria:
    def test_lp_profile_is_nash(self):
        graph = complete_bipartite_graph(2, 3)
        weights = {0: 1.0, 1: 1.0, 2: 4.0, 3: 1.0, 4: 1.0}
        game = WeightedTupleGame(graph, 1, weights, nu=2)
        config, solution = weighted_lp_equilibrium(game)
        ok, gaps = game.verify_best_responses(config, tol=1e-6)
        assert ok, gaps

    def test_heavy_vertex_gets_scanned_harder(self):
        """On a star with one heavy leaf, every equilibrium scans the
        heavy leaf's edge with higher probability than the light ones."""
        graph = star_graph(3)
        weights = {0: 1.0, 1: 10.0, 2: 1.0, 3: 1.0}
        game = WeightedTupleGame(graph, 1, weights, nu=1)
        config, solution = weighted_lp_equilibrium(game)
        from repro.core.profits import hit_probability

        assert hit_probability(config, 1) > hit_probability(config, 2) + 0.1

    def test_equalized_escape_profit_on_attacker_support(self):
        """At equilibrium, w(v)(1 − hit(v)) is constant on the attacker's
        support — the weighted analogue of Theorem 3.4's condition 2(a)."""
        graph = path_graph(5)
        weights = {0: 2.0, 1: 1.0, 2: 3.0, 3: 1.0, 4: 2.0}
        game = WeightedTupleGame(graph, 2, weights, nu=1)
        config, solution = weighted_lp_equilibrium(game)
        from repro.core.profits import hit_probability

        profits = {
            round(weights[v] * (1 - hit_probability(config, v)), 6)
            for v in config.vp_support_union()
        }
        assert len(profits) == 1
        assert profits.pop() == pytest.approx(solution.value, abs=1e-6)

    def test_uniform_kmatching_profile_fails_under_weights(self):
        """The paper's uniform construction stops being an NE once
        weights differ — the motivation for the weighted LP."""
        graph = complete_bipartite_graph(2, 4)
        result = solve_game(TupleGame(graph, 2, nu=1))
        weights = uniform_weights(graph)
        weights[2] = 9.0  # one workstation becomes a crown jewel
        game = WeightedTupleGame(graph, 2, weights, nu=1)
        ok, gaps = game.verify_best_responses(result.mixed, tol=1e-9)
        assert not ok
        assert gaps["vp_0"] > 0.5

    def test_defender_gain_bounded_by_total_weight(self):
        graph = grid_graph(2, 3)
        weights = {v: 1.0 + (hash(v) % 3) for v in graph.vertices()}
        game = WeightedTupleGame(graph, 2, weights, nu=2)
        config, _ = weighted_lp_equilibrium(game)
        assert 0 < game.expected_profit_defender(config) <= game.total_weight() * 2

    def test_tuple_limit_guard(self):
        graph = complete_bipartite_graph(4, 5)
        game = WeightedTupleGame(graph, 8, uniform_weights(graph))
        with pytest.raises(GameError, match="LP limit"):
            weighted_minimax(game, tuple_limit=5)


class TestWeightedDoubleOracle:
    @pytest.mark.parametrize(
        "graph, k, heavy_weight",
        [
            (complete_bipartite_graph(2, 4), 2, 1.0),
            (complete_bipartite_graph(2, 4), 2, 6.0),
            (path_graph(6), 2, 3.0),
            (grid_graph(2, 3), 2, 2.5),
        ],
        ids=["k24-unit", "k24-heavy", "path6", "grid23"],
    )
    def test_matches_full_weighted_lp(self, graph, k, heavy_weight):
        from repro.weighted import weighted_double_oracle

        weights = uniform_weights(graph)
        weights[graph.sorted_vertices()[1]] = heavy_weight
        game = WeightedTupleGame(graph, k, weights, nu=1)
        full = weighted_minimax(game).value
        config, value = weighted_double_oracle(game)
        assert value == pytest.approx(full, abs=1e-7)
        ok, gaps = game.verify_best_responses(config, tol=1e-6)
        assert ok, gaps

    def test_beyond_enumeration_limit(self):
        from repro.graphs.generators import random_bipartite_graph
        from repro.weighted import weighted_double_oracle

        graph = random_bipartite_graph(12, 20, 0.15, seed=3)
        weights = {v: 1.0 + (v % 4) for v in graph.vertices()}
        game = WeightedTupleGame(graph, 4, weights, nu=2)
        config, value = weighted_double_oracle(game)
        ok, gaps = game.verify_best_responses(config, tol=1e-6)
        assert ok, gaps
        assert value > 0

    def test_deterministic(self):
        from repro.weighted import weighted_double_oracle

        graph = grid_graph(2, 3)
        weights = uniform_weights(graph)
        weights[0] = 4.0
        game = WeightedTupleGame(graph, 2, weights, nu=1)
        a_config, a_value = weighted_double_oracle(game)
        b_config, b_value = weighted_double_oracle(game)
        assert a_value == b_value
        assert a_config.tp_distribution() == b_config.tp_distribution()
