"""Unit tests for the Graph data structure (repro.graphs.core)."""

import pytest

from repro.graphs.core import Graph, GraphError, canonical_edge


class TestCanonicalEdge:
    def test_orders_endpoints(self):
        assert canonical_edge(2, 1) == (1, 2)
        assert canonical_edge(1, 2) == (1, 2)

    def test_strings(self):
        assert canonical_edge("b", "a") == ("a", "b")

    def test_mixed_types_are_deterministic(self):
        assert canonical_edge(1, "a") == canonical_edge("a", 1)

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError, match="self-loop"):
            canonical_edge(3, 3)


class TestConstruction:
    def test_basic_counts(self):
        g = Graph([(1, 2), (2, 3)])
        assert g.n == 3
        assert g.m == 2

    def test_duplicate_edges_collapse(self):
        g = Graph([(1, 2), (2, 1), (1, 2)])
        assert g.m == 1

    def test_rejects_isolated_vertices_by_default(self):
        with pytest.raises(GraphError, match="isolated"):
            Graph([(1, 2)], vertices=[5])

    def test_allow_isolated_flag(self):
        g = Graph([(1, 2)], vertices=[5], allow_isolated=True)
        assert g.n == 3
        assert g.degree(5) == 0

    def test_rejects_non_pair_edge(self):
        with pytest.raises(GraphError, match="not a 2-tuple"):
            Graph([(1, 2, 3)])

    def test_empty_graph(self):
        g = Graph()
        assert g.n == 0
        assert g.m == 0

    def test_from_edge_list(self):
        g = Graph.from_edge_list([[1, 2], [2, 3]])
        assert g.has_edge(1, 2)
        assert g.has_edge(3, 2)


class TestAccessors:
    def test_neighbors(self):
        g = Graph([(1, 2), (2, 3), (2, 4)])
        assert g.neighbors(2) == frozenset({1, 3, 4})
        assert g.neighbors(1) == frozenset({2})

    def test_neighbors_of_missing_vertex(self):
        g = Graph([(1, 2)])
        with pytest.raises(GraphError, match="not in the graph"):
            g.neighbors(9)

    def test_degree(self):
        g = Graph([(1, 2), (2, 3)])
        assert g.degree(2) == 2
        assert g.degree(1) == 1

    def test_has_edge_both_orientations(self):
        g = Graph([(1, 2)])
        assert g.has_edge(1, 2)
        assert g.has_edge(2, 1)
        assert not g.has_edge(1, 3)

    def test_has_edge_self_pair_is_false(self):
        g = Graph([(1, 2)])
        assert not g.has_edge(1, 1)

    def test_sorted_vertices_and_edges_are_deterministic(self):
        g = Graph([(3, 1), (2, 3)])
        assert g.sorted_vertices() == [1, 2, 3]
        assert g.sorted_edges() == [(1, 3), (2, 3)]

    def test_incident_edges(self):
        g = Graph([(2, 1), (2, 3), (4, 2)])
        assert g.incident_edges(2) == [(1, 2), (2, 3), (2, 4)]

    def test_neighborhood_of_set(self):
        g = Graph([(1, 2), (2, 3), (3, 4)])
        assert g.neighborhood({1, 4}) == frozenset({2, 3})
        # paper semantics: open neighborhood union
        assert g.neighborhood({2, 3}) == frozenset({1, 2, 3, 4})

    def test_contains_iter_len(self):
        g = Graph([(1, 2), (2, 3)])
        assert 1 in g
        assert 9 not in g
        assert list(g) == [1, 2, 3]
        assert len(g) == 3


class TestDerivedGraphs:
    def test_subgraph_from_edges_vertex_set_is_endpoints_only(self):
        g = Graph([(1, 2), (2, 3), (3, 4)])
        sub = g.subgraph_from_edges([(1, 2)])
        assert sub.vertices() == frozenset({1, 2})
        assert sub.m == 1

    def test_subgraph_from_edges_rejects_foreign_edge(self):
        g = Graph([(1, 2), (2, 3)])
        with pytest.raises(GraphError, match="not an edge"):
            g.subgraph_from_edges([(1, 3)])

    def test_induced_subgraph_keeps_isolated(self):
        g = Graph([(1, 2), (2, 3), (3, 4)])
        sub = g.induced_subgraph({1, 3, 4})
        assert sub.vertices() == frozenset({1, 3, 4})
        assert sub.edges() == frozenset({(3, 4)})
        assert sub.degree(1) == 0

    def test_induced_subgraph_rejects_missing(self):
        g = Graph([(1, 2)])
        with pytest.raises(GraphError, match="not in graph"):
            g.induced_subgraph({1, 7})


class TestEqualityAndHash:
    def test_equal_graphs(self):
        assert Graph([(1, 2), (2, 3)]) == Graph([(3, 2), (1, 2)])

    def test_unequal_graphs(self):
        assert Graph([(1, 2)]) != Graph([(1, 3)])

    def test_hash_consistency(self):
        a = Graph([(1, 2), (2, 3)])
        b = Graph([(2, 3), (2, 1)])
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_not_equal_to_other_types(self):
        assert Graph([(1, 2)]) != "graph"


class TestValidateForGame:
    def test_accepts_valid_graph(self):
        Graph([(1, 2)]).validate_for_game()

    def test_rejects_edgeless(self):
        with pytest.raises(GraphError, match="at least one edge"):
            Graph().validate_for_game()

    def test_rejects_isolated(self):
        g = Graph([(1, 2)], vertices=[9], allow_isolated=True)
        with pytest.raises(GraphError, match="isolated"):
            g.validate_for_game()

    def test_repr(self):
        assert repr(Graph([(1, 2)])) == "Graph(n=2, m=1)"
