"""Tests for repro.obs v3: event bus, resource sampler, ledger analytics."""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.game import TupleGame
from repro.graphs.generators import complete_bipartite_graph, cycle_graph
from repro.obs import events, ledger, report, resources
from repro.obs import metrics as obs_metrics


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts and ends with the bus/ledger/sampler off."""
    events.disable_events()
    events.clear_events()
    ledger.disable_ledger()
    while resources.sampler_running():
        resources.stop_sampler()
    yield
    events.disable_events()
    events.clear_events()
    ledger.disable_ledger()
    while resources.sampler_running():
        resources.stop_sampler()


def _counter(name):
    return obs_metrics.get_registry().snapshot()["counters"].get(name, 0)


# --------------------------------------------------------------------------
# event bus


class TestEventBus:
    def test_disabled_publish_is_noop(self):
        assert events.publish("solver.iteration", x=1) is None
        assert events.recent() == []

    def test_publish_and_recent(self):
        events.enable_events(sink=False)
        first = events.publish("solver.iteration", gap=0.5)
        second = events.publish("lp.solve", value=1.0)
        buffered = events.recent()
        assert buffered[-2:] == [first, second]
        assert first["schema"] == events.EVENT_SCHEMA
        assert first["type"] == "solver.iteration"
        assert first["payload"] == {"gap": 0.5}
        assert second["seq"] == first["seq"] + 1
        assert second["ts"] >= first["ts"]

    def test_recent_filters_and_caps(self):
        events.enable_events(sink=False)
        for index in range(5):
            events.publish("solver.iteration", i=index)
        events.publish("lp.solve", value=0.0)
        iterations = events.recent(types=["solver.iteration"])
        assert [e["payload"]["i"] for e in iterations] == [0, 1, 2, 3, 4]
        assert [e["payload"]["i"]
                for e in events.recent(2, types=["solver.iteration"])] == [3, 4]

    def test_ring_buffer_is_bounded(self):
        events.enable_events(sink=False)
        for index in range(events.DEFAULT_CAPACITY + 50):
            events.publish("bench.case", i=index)
        buffered = events.recent(types=["bench.case"])
        assert len(buffered) <= events.DEFAULT_CAPACITY
        assert buffered[-1]["payload"]["i"] == events.DEFAULT_CAPACITY + 49

    def test_subscribe_and_unsubscribe(self):
        events.enable_events(sink=False)
        seen = []
        token = events.subscribe(seen.append)
        events.publish("fuzz.case", ok=True)
        assert events.unsubscribe(token)
        events.publish("fuzz.case", ok=False)
        assert [e["payload"]["ok"] for e in seen] == [True]
        assert not events.unsubscribe(token)

    def test_bad_subscriber_never_breaks_publish(self):
        events.enable_events(sink=False)
        before = _counter("events.subscriber_errors.count")

        def explode(event):
            raise RuntimeError("bad subscriber")

        token = events.subscribe(explode)
        try:
            event = events.publish("run.start", entry_point="x")
        finally:
            events.unsubscribe(token)
        assert event is not None
        assert _counter("events.subscriber_errors.count") == before + 1

    def test_unknown_type_counted_but_delivered(self):
        events.enable_events(sink=False)
        before = _counter("events.unknown_type.count")
        event = events.publish("made.up.type", x=1)
        assert event["type"] == "made.up.type"
        assert _counter("events.unknown_type.count") == before + 1

    def test_clear_events(self):
        events.enable_events(sink=False)
        events.publish("bench.case", i=0)
        events.clear_events()
        assert events.recent() == []

    def test_sink_round_trips(self, tmp_path):
        events.enable_events(tmp_path)
        events.publish("run.start", entry_point="demo")
        events.publish("run.end", entry_point="demo", status="ok")
        sink = events.events_sink_path()
        assert sink == tmp_path / events.SINK_FILENAME
        events.disable_events()
        replayed = events.read_events(sink)
        assert [e["type"] for e in replayed] == ["run.start", "run.end"]
        assert replayed[0]["payload"] == {"entry_point": "demo"}

    def test_read_events_tolerates_corrupt_line(self, tmp_path):
        sink = tmp_path / "events.jsonl"
        good = {"schema": events.EVENT_SCHEMA, "seq": 1, "ts": 0.0,
                "type": "lp.solve", "payload": {}}
        sink.write_text(json.dumps(good) + "\n{torn-jso")
        before = _counter("events.read.corrupt_lines.count")
        replayed = events.read_events(sink)
        assert len(replayed) == 1
        assert _counter("events.read.corrupt_lines.count") == before + 1

    def test_read_events_missing_file_is_empty(self, tmp_path):
        assert events.read_events(tmp_path / "nope.jsonl") == []

    def test_tail_without_follow_reads_whole_lines_only(self, tmp_path):
        sink = tmp_path / "events.jsonl"
        good = {"schema": events.EVENT_SCHEMA, "seq": 1, "ts": 0.0,
                "type": "run.start", "payload": {}}
        sink.write_text(json.dumps(good) + "\n" + '{"torn": ')
        got = list(events.tail_events(sink))
        assert [e["type"] for e in got] == ["run.start"]

    def test_tail_follow_picks_up_appends(self, tmp_path):
        sink = tmp_path / "events.jsonl"
        sink.write_text("")
        done = threading.Event()

        def writer():
            line = json.dumps({"schema": events.EVENT_SCHEMA, "seq": 1,
                               "ts": 0.0, "type": "run.end", "payload": {}})
            with open(sink, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")

        got = []
        thread = threading.Thread(target=writer)
        thread.start()
        for event in events.tail_events(sink, follow=True,
                                        poll_interval=0.01,
                                        stop=done.is_set):
            got.append(event)
            done.set()
        thread.join()
        assert [e["type"] for e in got] == ["run.end"]


class TestSolverInstrumentation:
    def test_double_oracle_iteration_stream(self):
        from repro.solvers.double_oracle import double_oracle

        events.enable_events(sink=False)
        result = double_oracle(TupleGame(cycle_graph(9), 2, 5))
        steps = [
            e["payload"] for e in events.recent(types=["solver.iteration"])
            if e["payload"].get("solver") == "double_oracle"
        ]
        assert len(steps) >= 2
        assert [s["iteration"] for s in steps[:-1]] == \
            list(range(1, len(steps)))
        for step in steps:
            assert {"gap", "defender_pool", "attacker_pool"} <= set(step)
        final = steps[-1]
        assert final["converged"] is True
        assert final["certified"] == result.exact
        assert final["gap"] <= 1e-9

    def test_fictitious_play_residual_stream(self):
        from repro.solvers.fictitious_play import fictitious_play

        events.enable_events(sink=False)
        fictitious_play(TupleGame(cycle_graph(6), 2, 1), rounds=10)
        steps = [
            e["payload"] for e in events.recent(types=["solver.iteration"])
            if e["payload"].get("solver") == "fictitious_play"
        ]
        assert steps
        for step in steps:
            assert step["residual"] == \
                pytest.approx(step["upper"] - step["lower"])

    def test_lp_solve_events(self):
        from repro.solvers.double_oracle import double_oracle

        events.enable_events(sink=False)
        double_oracle(TupleGame(complete_bipartite_graph(2, 4), 2, 3))
        lp = events.recent(types=["lp.solve"])
        assert lp
        payload = lp[-1]["payload"]
        assert payload["seconds"] >= 0.0
        assert payload["strategies"] >= 1
        assert payload["vertices"] >= 1

    def test_fuzz_case_events(self):
        from repro.fuzz.runner import run_fuzz

        events.enable_events(sink=False)
        report_obj = run_fuzz(count=3, seed=11, shrink=False)
        cases = events.recent(types=["fuzz.case"])
        assert len(cases) == report_obj.games == 3
        assert {c["payload"]["mode"] for c in cases} == {"batch"}


# --------------------------------------------------------------------------
# resource sampler


class TestResourceSampler:
    def test_sample_once_shape(self):
        sample = resources.sample_once()
        assert sample["rss_bytes"] > 0
        assert sample["cpu_user_s"] >= 0.0
        assert sample["cpu_system_s"] >= 0.0
        assert sample["gc_collections"] >= 0
        assert sample["threads"] >= 1

    def test_sampler_lifecycle_is_reentrant(self):
        resources.start_sampler(interval=0.01)
        resources.start_sampler(interval=0.01)
        assert resources.sampler_running()
        resources.stop_sampler()
        assert resources.sampler_running()  # outer holder still active
        resources.stop_sampler()
        assert not resources.sampler_running()

    def test_stop_without_start_is_safe(self):
        resources.stop_sampler()
        assert not resources.sampler_running()

    def test_snapshot_after_sampling(self):
        resources.start_sampler(interval=0.01)
        try:
            snapshot = resources.snapshot()
        finally:
            resources.stop_sampler()
        assert snapshot["samples"] >= 1
        assert snapshot["rss_peak_bytes"] >= snapshot["rss_bytes"] > 0
        assert snapshot["sampler_running"] is True

    def test_sampler_feeds_registry_gauges(self):
        resources.start_sampler(interval=0.01)
        resources.stop_sampler()
        gauges = obs_metrics.get_registry().snapshot()["gauges"]
        assert gauges.get("process.rss_bytes", 0) > 0
        assert gauges.get("process.threads", 0) >= 1


# --------------------------------------------------------------------------
# ledger v2 integration


class TestLedgerV2:
    def test_record_carries_resources_block(self, tmp_path):
        ledger.enable_ledger(tmp_path)
        with ledger.run("demo.run"):
            pass
        record = ledger.read_runs(directory=tmp_path)[-1]
        assert record["schema"] == ledger.RECORD_SCHEMA
        assert record["schema"] != ledger.RECORD_SCHEMA_V1
        block = record["resources"]
        assert block["samples"] >= 1
        assert block["rss_bytes"] > 0
        assert block["rss_peak_bytes"] >= block["rss_bytes"]

    def test_run_publishes_boundary_events(self, tmp_path):
        ledger.enable_ledger(tmp_path)
        events.enable_events(sink=False)
        with ledger.run("demo.run"):
            pass
        types = [e["type"] for e in events.recent()]
        assert "run.start" in types
        assert "run.end" in types
        end = events.recent(types=["run.end"])[-1]["payload"]
        assert end["entry_point"] == "demo.run"
        assert end["status"] == "ok"
        assert end["duration_s"] >= 0.0

    def test_events_only_mode_skips_the_ledger(self, tmp_path):
        events.enable_events(sink=False)
        with ledger.run("demo.run"):
            pass
        assert ledger.read_runs(directory=tmp_path) == []
        assert not list(tmp_path.glob("*.jsonl"))
        types = [e["type"] for e in events.recent()]
        assert types.count("run.start") == 1
        assert types.count("run.end") == 1

    def test_events_only_mode_skips_sampler(self):
        events.enable_events(sink=False)
        with ledger.run("demo.run"):
            assert not resources.sampler_running()

    def test_error_run_publishes_error_status(self, tmp_path):
        events.enable_events(sink=False)
        ledger.enable_ledger(tmp_path)
        with pytest.raises(RuntimeError):
            with ledger.run("demo.run"):
                raise RuntimeError("boom")
        end = events.recent(types=["run.end"])[-1]["payload"]
        assert end["status"] == "error"
        assert not resources.sampler_running()


# --------------------------------------------------------------------------
# ledger reader edge cases (satellites)


class TestLedgerReaderEdgeCases:
    def test_empty_directory_reads_empty(self, tmp_path):
        assert ledger.read_runs(directory=tmp_path / "none") == []

    def test_corrupt_trailing_line_tolerated_and_counted(self, tmp_path):
        ledger.enable_ledger(tmp_path)
        with ledger.run("demo.run"):
            pass
        ledger.disable_ledger()
        path = next(tmp_path.glob("*.jsonl"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"torn": ')
        before = _counter("ledger.read.corrupt_lines.count")
        records = ledger.read_runs(directory=tmp_path)
        assert len(records) == 1
        assert _counter("ledger.read.corrupt_lines.count") == before + 1

    def test_find_run_ambiguous_prefix_raises(self, tmp_path):
        record = {"entry_point": "demo", "started_at": 1.0}
        lines = []
        for rid in ("aaaa1111bbbb2222", "aaaa9999cccc3333"):
            lines.append(json.dumps(dict(record, run_id=rid)))
        (tmp_path / "demo.jsonl").write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="ambiguous"):
            ledger.find_run("aaaa", directory=tmp_path)
        found = ledger.find_run("aaaa1111", directory=tmp_path)
        assert found["run_id"] == "aaaa1111bbbb2222"
        assert ledger.find_run("ffff", directory=tmp_path) is None


# --------------------------------------------------------------------------
# ledger analytics + report


def _fake_records():
    records = []
    for index, (ep, rev, status, duration) in enumerate([
        ("equilibria.solve", "aaa1111", "ok", 0.10),
        ("equilibria.solve", "aaa1111", "ok", 0.12),
        ("equilibria.solve", "bbb2222", "ok", 0.20),
        ("equilibria.solve", "bbb2222", "error", 0.30),
        ("solvers.double_oracle", "aaa1111", "ok", 0.50),
        ("solvers.double_oracle", "bbb2222", "ok", 0.25),
    ]):
        records.append({
            "schema": ledger.RECORD_SCHEMA,
            "run_id": f"rid{index:013d}",
            "entry_point": ep,
            "started_at": 1000.0 + index,
            "duration_s": duration,
            "status": status,
            "fingerprint": {"sha256": "f" * 64},
            "attributes": {},
            "env": {"git_rev": rev},
            "metrics": {"counters": {}, "gauges": {
                "double_oracle.gap": 0.01 * index,
            }, "histograms": {}},
            "resources": {},
            "spans": [],
        })
    return records


class TestAnalytics:
    def test_aggregate_by_entry_point(self):
        rows = report.aggregate_runs(_fake_records(), group_by="entry_point")
        assert [r["key"] for r in rows] == \
            ["equilibria.solve", "solvers.double_oracle"]
        solve = rows[0]
        assert solve["count"] == 4
        assert solve["errors"] == 1
        assert solve["error_rate"] == pytest.approx(0.25)
        assert solve["duration_s"]["min"] == pytest.approx(0.10)
        assert solve["duration_s"]["max"] == pytest.approx(0.30)
        assert solve["duration_s"]["p50"] <= solve["duration_s"]["p95"]

    def test_aggregate_by_git_rev(self):
        rows = report.aggregate_runs(_fake_records(), group_by="git_rev")
        assert {r["key"] for r in rows} == {"aaa1111", "bbb2222"}

    def test_aggregate_rejects_unknown_group(self):
        with pytest.raises(ValueError):
            report.aggregate_runs(_fake_records(), group_by="nope")

    def test_metric_trends_ordered_by_start(self):
        trends = report.metric_trends(_fake_records())
        solve = trends["equilibria.solve"]
        assert solve["duration_s"] == \
            pytest.approx([0.10, 0.12, 0.20, 0.30])
        assert solve["double_oracle.gap"] == \
            pytest.approx([0.0, 0.01, 0.02, 0.03])

    def test_rev_deltas_cross_revision(self):
        deltas = report.rev_deltas(_fake_records())
        do = [d for d in deltas
              if d["entry_point"] == "solvers.double_oracle"]
        assert len(do) == 1
        assert (do[0]["rev_a"], do[0]["rev_b"]) == ("aaa1111", "bbb2222")
        assert do[0]["delta_s"] == pytest.approx(-0.25)
        assert do[0]["ratio"] == pytest.approx(0.5)


class TestReportRendering:
    def test_html_is_self_contained(self):
        html = report.render_report_html(_fake_records())
        assert html.startswith("<!DOCTYPE html>")
        assert html.rstrip().endswith("</html>")
        assert "<svg" in html
        assert "var(--series-1)" in html
        assert "prefers-color-scheme: dark" in html
        for marker in ('src="http', 'href="http', "<script src"):
            assert marker not in html

    def test_html_handles_empty_ledger(self):
        html = report.render_report_html([])
        assert html.startswith("<!DOCTYPE html>")
        assert "0" in html

    def test_html_folds_in_watchdog_history(self):
        doc = {
            "schema": "repro.kernels/bench-smoke/v2",
            "cases": {},
            "history": [
                {"git_rev": "aaa1111", "timestamp": None,
                 "cases": {"double_oracle.medium_a": 0.10}},
                {"git_rev": "bbb2222", "timestamp": None,
                 "cases": {"double_oracle.medium_a": 0.11}},
            ],
        }
        html = report.render_report_html(_fake_records(), watchdog_doc=doc)
        assert "double_oracle.medium_a" in html
        assert "Benchmark watchdog" in html

    def test_markdown_summary(self):
        md = report.render_report_markdown(_fake_records())
        assert md.startswith("#")
        assert "equilibria.solve" in md

    def test_write_report_from_fixture(self, tmp_path):
        out = tmp_path / "report.html"
        md = tmp_path / "report.md"
        summary = report.write_report("tests/fixtures/ledger", out,
                                      output_md=md)
        assert summary["records"] == 10
        assert out.read_text(encoding="utf-8").startswith("<!DOCTYPE html>")
        assert md.read_text(encoding="utf-8").startswith("#")

    def test_fixture_run_ids_are_content_addressed(self):
        records = ledger.read_runs(directory="tests/fixtures/ledger")
        assert records
        for record in records:
            body = {k: v for k, v in record.items() if k != "run_id"}
            assert ledger._canonical_sha256(body)[:16] == record["run_id"]


# --------------------------------------------------------------------------
# CLI faces (tail, ledger subcommands, watch --format json)


class TestCliFaces:
    def _events_fixture(self, tmp_path):
        sink_dir = tmp_path / "events"
        events.enable_events(sink_dir)
        events.publish("solver.iteration", solver="double_oracle",
                       iteration=1, gap=0.5)
        events.publish("lp.solve", value=1.0)
        events.disable_events()
        return sink_dir

    def test_tail_reads_sink(self, tmp_path, capsys):
        from repro.cli import main

        sink_dir = self._events_fixture(tmp_path)
        assert main(["tail", "--dir", str(sink_dir)]) == 0
        out = capsys.readouterr().out
        assert "solver.iteration" in out
        assert "gap=0.5" in out

    def test_tail_type_filter_and_count(self, tmp_path, capsys):
        from repro.cli import main

        sink_dir = self._events_fixture(tmp_path)
        assert main(["tail", "--dir", str(sink_dir),
                     "--type", "lp.solve", "--count", "1"]) == 0
        out = capsys.readouterr().out
        assert "lp.solve" in out
        assert "solver.iteration" not in out

    def test_tail_missing_sink_errors(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["tail", "--dir", str(tmp_path / "none")]) == 1

    def test_ledger_stats_json(self, capsys):
        from repro.cli import main

        assert main(["ledger", "stats", "--dir", "tests/fixtures/ledger",
                     "--format", "json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert {r["key"] for r in rows} >= \
            {"equilibria.solve", "solvers.double_oracle"}

    def test_ledger_query_filters(self, capsys):
        from repro.cli import main

        assert main(["ledger", "query", "--dir", "tests/fixtures/ledger",
                     "--status", "error", "--format", "json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 1
        assert records[0]["status"] == "error"

    def test_ledger_report_cli(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "r.html"
        assert main(["ledger", "report", "--dir", "tests/fixtures/ledger",
                     "-o", str(out)]) == 0
        assert out.read_text(encoding="utf-8").startswith("<!DOCTYPE html>")

    def test_ledger_diff_cli(self, capsys):
        from repro.cli import main

        records = ledger.read_runs(directory="tests/fixtures/ledger")
        a, b = records[0]["run_id"], records[-1]["run_id"]
        assert main(["ledger", "diff", a, b,
                     "--dir", "tests/fixtures/ledger",
                     "--format", "json"]) == 0
        diff = json.loads(capsys.readouterr().out)
        assert diff["run_a"] == a
        assert diff["run_b"] == b

    def test_ledger_diff_missing_run_exits_2(self, capsys):
        from repro.cli import main

        assert main(["ledger", "diff", "0000dead", "0000beef",
                     "--dir", "tests/fixtures/ledger"]) == 2

    def test_watch_format_json(self, tmp_path, capsys):
        import argparse

        from repro.obs.watchdog import run_watch_from_args

        doc = {
            "schema": "repro.kernels/bench-smoke/v2",
            "slack": {},
            "cases": {},
            "history": [
                {"git_rev": "aaa", "timestamp": None,
                 "cases": {"case.x": 0.10}},
                {"git_rev": "bbb", "timestamp": None,
                 "cases": {"case.x": 0.50}},
            ],
        }
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps(doc))
        args = argparse.Namespace(file=str(path), against=None, ratio=1.5,
                                  window=20, strict=False, fmt="json")
        lines = []
        assert run_watch_from_args(args, emit=lines.append) == 0
        verdict = json.loads("\n".join(lines))
        assert verdict["schema"] == "repro.obs/watch-report/v1"
        assert verdict["ok"] is False
        assert verdict["regressions"][0]["case"] == "case.x"

    def test_watch_cli_format_json_missing_file(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["watch", "--file", str(tmp_path / "none.json"),
                     "--format", "json"]) == 0
        verdict = json.loads(capsys.readouterr().out)
        assert verdict["ok"] is True
        assert "error" in verdict
