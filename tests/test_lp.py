"""Tests for the exact LP minimax baseline (repro.solvers.lp)."""

import pytest

from repro.core.characterization import verify_best_responses
from repro.core.game import GameError, TupleGame
from repro.core.profits import expected_profit_tp
from repro.equilibria.solve import solve_game
from repro.graphs.generators import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    petersen_graph,
    star_graph,
)
from repro.matching.covers import minimum_edge_cover_size
from repro.solvers.lp import lp_defender_gain, lp_equilibrium, solve_minimax


class TestGameValues:
    @pytest.mark.parametrize(
        "graph",
        [path_graph(4), path_graph(6), star_graph(4), cycle_graph(6),
         complete_bipartite_graph(2, 4), grid_graph(2, 3)],
        ids=["path4", "path6", "star4", "cycle6", "k24", "grid23"],
    )
    def test_value_is_k_over_rho_on_partitionable_graphs(self, graph):
        """Where a k-matching NE exists the duel value must match Claim
        4.3's k/rho(G)."""
        rho = minimum_edge_cover_size(graph)
        for k in range(1, rho):
            solution = solve_minimax(TupleGame(graph, k, nu=1))
            assert solution.value == pytest.approx(k / rho, abs=1e-7)

    def test_value_at_and_above_rho_is_one(self):
        graph = path_graph(4)
        rho = minimum_edge_cover_size(graph)
        for k in range(rho, graph.m + 1):
            solution = solve_minimax(TupleGame(graph, k, nu=1))
            assert solution.value == pytest.approx(1.0, abs=1e-9)

    def test_petersen_value_without_structural_ne(self):
        """Petersen admits no k-matching NE, yet the minimax value still
        equals k/rho — the gain law extends beyond the structural class."""
        graph = petersen_graph()
        for k in (1, 2, 3):
            solution = solve_minimax(TupleGame(graph, k, nu=1))
            assert solution.value == pytest.approx(k / 5, abs=1e-7)

    def test_odd_cycle_value_breaks_the_k_over_rho_law(self):
        """C5, k=1: the value is 2/5 (uniform defender over the 5 edges
        hits every vertex w.p. deg/m = 2/5), *not* k/rho = 1/3.  Outside
        the k-matching class the gain law genuinely fails — Petersen only
        matched k/rho because it has a perfect matching (rho = n/2, so
        k·2/n = k/rho).  Recorded as a boundary finding in EXPERIMENTS.md."""
        solution = solve_minimax(TupleGame(cycle_graph(5), 1, nu=1))
        assert solution.value == pytest.approx(2 / 5, abs=1e-7)
        assert solution.value > 1 / minimum_edge_cover_size(cycle_graph(5))

    def test_complete_graph_value(self):
        # K4, k=1: by symmetry the defender hits any vertex w.p. 1/2
        # (3 perfect-matching pairs); value = 1/2.
        solution = solve_minimax(TupleGame(complete_graph(4), 1, nu=1))
        assert solution.value == pytest.approx(0.5, abs=1e-7)


class TestLPEquilibrium:
    @pytest.mark.parametrize(
        "graph, k, nu",
        [(path_graph(5), 2, 3), (complete_bipartite_graph(2, 3), 1, 2),
         (petersen_graph(), 2, 2), (cycle_graph(5), 1, 4)],
        ids=["path5", "k23", "petersen", "cycle5"],
    )
    def test_lp_profile_is_nash(self, graph, k, nu):
        game = TupleGame(graph, k, nu)
        config, solution = lp_equilibrium(game)
        ok, gaps = verify_best_responses(game, config, tol=1e-6)
        assert ok, gaps
        assert expected_profit_tp(config) == pytest.approx(
            nu * solution.value, abs=1e-6
        )

    def test_agrees_with_structural_gain(self):
        graph = grid_graph(2, 4)
        rho = minimum_edge_cover_size(graph)
        for k in range(1, rho):
            game = TupleGame(graph, k, nu=6)
            structural = solve_game(game).defender_gain
            assert lp_defender_gain(game) == pytest.approx(structural, abs=1e-6)

    def test_distributions_are_normalized(self):
        game = TupleGame(path_graph(5), 2, nu=1)
        solution = solve_minimax(game)
        assert sum(solution.defender.values()) == pytest.approx(1.0)
        assert sum(solution.attacker.values()) == pytest.approx(1.0)
        assert all(p > 0 for p in solution.defender.values())
        assert all(p > 0 for p in solution.attacker.values())

    def test_tuple_limit_guard(self):
        game = TupleGame(complete_bipartite_graph(5, 6), 10, nu=1)
        with pytest.raises(GameError, match="exceed the LP limit"):
            solve_minimax(game, tuple_limit=100)

    def test_repr(self):
        solution = solve_minimax(TupleGame(path_graph(4), 1, nu=1))
        assert "value=" in repr(solution)
