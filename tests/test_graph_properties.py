"""Unit tests for structural predicates (repro.graphs.properties)."""

import pytest

from repro.graphs.core import Graph, GraphError
from repro.graphs.generators import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    path_graph,
    petersen_graph,
    star_graph,
)
from repro.graphs.properties import (
    bipartition,
    connected_components,
    is_bipartite,
    is_connected,
    is_edge_cover,
    is_expander,
    is_expander_into,
    is_independent_set,
    is_matched_in,
    is_matching,
    is_vertex_cover,
    uncovered_vertices,
    vertices_covered_by_edges,
)


class TestIndependentSet:
    def test_positive(self, path4):
        assert is_independent_set(path4, {0, 2})
        assert is_independent_set(path4, {0, 3})

    def test_negative(self, path4):
        assert not is_independent_set(path4, {0, 1})

    def test_empty_set_is_independent(self, path4):
        assert is_independent_set(path4, set())

    def test_rejects_foreign_vertex(self, path4):
        with pytest.raises(GraphError):
            is_independent_set(path4, {99})

    def test_complement_of_vertex_cover(self, cycle6):
        # For C6, {0, 2, 4} is independent and {1, 3, 5} covers.
        assert is_independent_set(cycle6, {0, 2, 4})
        assert is_vertex_cover(cycle6, {1, 3, 5})


class TestVertexCover:
    def test_positive(self, path4):
        assert is_vertex_cover(path4, {1, 2})

    def test_negative(self, path4):
        assert not is_vertex_cover(path4, {0, 3})

    def test_full_vertex_set_always_covers(self, k4):
        assert is_vertex_cover(k4, k4.vertices())


class TestEdgeCover:
    def test_positive(self, path4):
        assert is_edge_cover(path4, [(0, 1), (2, 3)])

    def test_negative(self, path4):
        assert not is_edge_cover(path4, [(1, 2)])

    def test_uncovered_vertices(self, path4):
        assert uncovered_vertices(path4, [(1, 2)]) == frozenset({0, 3})

    def test_vertices_covered_by_edges(self):
        assert vertices_covered_by_edges([(1, 2), (2, 3)]) == frozenset({1, 2, 3})

    def test_rejects_foreign_edge(self, path4):
        with pytest.raises(GraphError):
            is_edge_cover(path4, [(0, 3)])


class TestMatching:
    def test_positive(self, path4):
        assert is_matching(path4, [(0, 1), (2, 3)])

    def test_negative_shared_endpoint(self, path4):
        assert not is_matching(path4, [(0, 1), (1, 2)])

    def test_is_matched_in(self, path4):
        assert is_matched_in(path4, {0, 1}, [(0, 1)])
        assert not is_matched_in(path4, {0, 2}, [(0, 1)])

    def test_is_matched_in_rejects_non_matching(self, path4):
        with pytest.raises(GraphError, match="not a matching"):
            is_matched_in(path4, {0}, [(0, 1), (1, 2)])


class TestConnectivity:
    def test_connected(self, path7):
        assert is_connected(path7)
        assert len(connected_components(path7)) == 1

    def test_disconnected(self):
        g = Graph([(1, 2), (3, 4)])
        comps = connected_components(g)
        assert len(comps) == 2
        assert frozenset({1, 2}) in comps
        assert frozenset({3, 4}) in comps

    def test_empty_graph_is_connected(self):
        assert is_connected(Graph())


class TestBipartition:
    def test_even_cycle(self, cycle6):
        left, right = bipartition(cycle6)
        assert left | right == cycle6.vertices()
        assert is_independent_set(cycle6, left)
        assert is_independent_set(cycle6, right)

    def test_odd_cycle_has_none(self, cycle5):
        assert bipartition(cycle5) is None
        assert not is_bipartite(cycle5)

    def test_triangle(self):
        assert bipartition(Graph([(1, 2), (2, 3), (1, 3)])) is None

    def test_star(self):
        left, right = bipartition(star_graph(4))
        assert {0} in (set(left), set(right))

    def test_disconnected_bipartite(self):
        g = Graph([(1, 2), (3, 4)])
        left, right = bipartition(g)
        assert is_independent_set(g, left)
        assert is_independent_set(g, right)


class TestExpanders:
    def test_complete_bipartite_expands(self, k23):
        left = {0, 1}
        right = {2, 3, 4}
        assert is_expander_into(k23, left, right)
        # The bigger side cannot be matched into the smaller one.
        assert not is_expander_into(k23, right, left)

    def test_literal_vs_into_distinction(self):
        """Triangle + pendant: IS={d} passes the *literal* VC-expander
        reading but fails the effective into-IS condition (DESIGN.md §2) —
        and indeed admits no matching configuration."""
        g = Graph([("a", "b"), ("b", "c"), ("c", "a"), ("a", "d")])
        vc = {"a", "b", "c"}
        independent = {"d"}
        assert is_expander(g, vc)  # literal reading: holds
        assert not is_expander_into(g, vc, independent)  # effective: fails

    def test_violator_certificate(self, k23):
        right = {2, 3, 4}
        result = is_expander_into(k23, right, {0, 1})
        assert not result.holds
        violator = result.violator
        assert violator is not None
        neighborhood = k23.neighborhood(violator) & {0, 1}
        assert len(neighborhood) < len(violator)

    def test_expander_on_petersen(self, petersen):
        # Petersen is vertex-transitive and 3-regular: any 5-subset of an
        # independent side expands in the literal sense.
        result = is_expander(petersen, {0, 1, 2, 3, 4})
        assert result.holds
