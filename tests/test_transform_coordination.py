"""Tests for graph transforms and coordination analysis
(repro.graphs.transform, repro.analysis.coordination)."""

import pytest

from repro.analysis.coordination import (
    coordinated_hit_probability,
    coordination_gap,
    simulate_uncoordinated,
    uncoordinated_hit_probability,
)
from repro.core.game import GameError, TupleGame
from repro.equilibria.solve import solve_game
from repro.graphs.core import Graph, GraphError
from repro.graphs.generators import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    path_graph,
    petersen_graph,
    star_graph,
)
from repro.graphs.properties import is_bipartite, is_connected
from repro.graphs.transform import complement, disjoint_union, relabel, subdivide
from repro.matching.covers import minimum_edge_cover_size


class TestRelabel:
    def test_shifts_labels(self):
        g = relabel(path_graph(3), lambda v: v + 10)
        assert g.has_edge(10, 11)
        assert g.has_edge(11, 12)

    def test_preserves_structure(self):
        g = relabel(petersen_graph(), str)
        assert (g.n, g.m) == (10, 15)
        assert not is_bipartite(g)

    def test_rejects_non_injective(self):
        with pytest.raises(GraphError, match="injective"):
            relabel(path_graph(4), lambda v: v % 2)


class TestDisjointUnion:
    def test_counts_add(self):
        g = disjoint_union(cycle_graph(4), path_graph(3))
        assert g.n == 7
        assert g.m == 6
        assert not is_connected(g)

    def test_overlapping_labels_are_separated(self):
        g = disjoint_union(path_graph(3), path_graph(3))
        assert g.n == 6

    def test_union_solves_componentwise(self):
        g = disjoint_union(complete_bipartite_graph(2, 3), path_graph(4))
        rho = minimum_edge_cover_size(g)
        game = TupleGame(g, rho, nu=2)
        assert solve_game(game).kind == "pure"


class TestSubdivide:
    @pytest.mark.parametrize(
        "graph",
        [cycle_graph(5), petersen_graph(), complete_graph(4), star_graph(3)],
        ids=["c5", "petersen", "k4", "star3"],
    )
    def test_result_is_bipartite(self, graph):
        divided = subdivide(graph)
        assert divided.n == graph.n + graph.m
        assert divided.m == 2 * graph.m
        assert is_bipartite(divided)

    def test_relay_vertices_have_degree_two(self):
        divided = subdivide(cycle_graph(5))
        for v in divided.vertices():
            if isinstance(v, tuple):
                assert divided.degree(v) == 2

    def test_rejects_edgeless(self):
        with pytest.raises(GraphError):
            subdivide(Graph())

    def test_subdivided_topology_always_solves(self):
        """The mitigation story: Petersen resists the paper's machinery,
        but its subdivision is bipartite and solves with k-matching NE for
        every k below threshold (Theorem 5.1)."""
        from repro.core.characterization import is_mixed_nash

        divided = subdivide(petersen_graph())
        rho = minimum_edge_cover_size(divided)
        for k in (1, rho // 2, rho - 1):
            game = TupleGame(divided, k, nu=2)
            result = solve_game(game, allow_extensions=False)
            assert result.kind == "k-matching"
            assert is_mixed_nash(game, result.mixed)


class TestComplement:
    def test_path_complement(self):
        g = complement(path_graph(4))
        assert g.has_edge(0, 2)
        assert g.has_edge(0, 3)
        assert g.has_edge(1, 3)
        assert not g.has_edge(0, 1)
        assert g.m == 6 - 3

    def test_complement_of_complete_is_edgeless(self):
        g = complement(complete_graph(4))
        assert g.m == 0
        assert g.n == 4

    def test_double_complement_is_identity(self):
        g = cycle_graph(6)
        assert complement(complement(g)) == g


class TestCoordination:
    def test_k1_no_gap(self):
        g = complete_bipartite_graph(2, 4)
        assert coordination_gap(g, 1) == pytest.approx(0.0)

    def test_gap_positive_for_k2_and_up(self):
        g = complete_bipartite_graph(2, 5)
        rho = minimum_edge_cover_size(g)
        for k in range(2, rho + 1):
            assert coordination_gap(g, k) > 0

    def test_closed_forms(self):
        g = complete_bipartite_graph(2, 4)  # rho = 4
        assert coordinated_hit_probability(g, 2) == pytest.approx(0.5)
        assert uncoordinated_hit_probability(g, 2) == pytest.approx(
            1 - (3 / 4) ** 2
        )

    def test_coordinated_caps_at_one(self):
        g = path_graph(4)
        assert coordinated_hit_probability(g, 99) == 1.0

    def test_simulation_matches_closed_form(self):
        g = complete_bipartite_graph(2, 5)
        k = 3
        simulated = simulate_uncoordinated(g, k, trials=40_000, seed=5)
        assert simulated == pytest.approx(
            uncoordinated_hit_probability(g, k), abs=0.02
        )

    def test_simulation_rejects_bad_trials(self):
        with pytest.raises(GameError):
            simulate_uncoordinated(path_graph(4), 1, trials=0)

    def test_gap_grows_with_k(self):
        g = complete_bipartite_graph(2, 8)  # rho = 8
        gaps = [coordination_gap(g, k) for k in range(1, 8)]
        assert gaps == sorted(gaps)
