"""Unit tests for Hopcroft–Karp (repro.matching.hopcroft_karp).

Cross-validated against networkx (test-only oracle) on random bipartite
instances.
"""

import random

import networkx as nx
import pytest

from repro.graphs.generators import random_bipartite_graph
from repro.graphs.properties import bipartition
from repro.matching.hopcroft_karp import (
    hopcroft_karp,
    maximum_bipartite_matching,
)


def matching_is_valid(pairs, adjacency):
    """Each left vertex matched along an actual edge, partners distinct."""
    seen_right = set()
    for left, right in pairs.items():
        assert right in adjacency[left]
        assert right not in seen_right
        seen_right.add(right)


class TestSmallCases:
    def test_perfect_matching(self):
        adjacency = {"a": [1, 2], "b": [1], "c": [2, 3]}
        result = hopcroft_karp(["a", "b", "c"], adjacency)
        assert result.size == 3
        matching_is_valid(result.pairs, adjacency)
        assert result.is_saturating(["a", "b", "c"])

    def test_deficient_instance(self):
        # Two left vertices compete for one right vertex.
        adjacency = {"a": [1], "b": [1]}
        result = hopcroft_karp(["a", "b"], adjacency)
        assert result.size == 1
        assert len(result.unmatched_left(["a", "b"])) == 1

    def test_requires_augmenting_path_flip(self):
        # Greedy a->1 must be undone via the augmenting path b-1-a-2.
        adjacency = {"a": [1, 2], "b": [1]}
        result = hopcroft_karp(["a", "b"], adjacency)
        assert result.size == 2
        assert result.pairs["b"] == 1
        assert result.pairs["a"] == 2

    def test_empty_adjacency(self):
        result = hopcroft_karp(["a"], {})
        assert result.size == 0
        assert result.unmatched_left(["a"]) == ["a"]

    def test_pairs_right_is_inverse(self):
        adjacency = {"a": [1], "b": [2]}
        result = hopcroft_karp(["a", "b"], adjacency)
        assert result.pairs_right == {1: "a", 2: "b"}

    def test_deterministic(self):
        adjacency = {i: [10, 11, 12] for i in range(3)}
        first = hopcroft_karp(range(3), adjacency).pairs
        second = hopcroft_karp(range(3), adjacency).pairs
        assert first == second


class TestEdgeListWrapper:
    def test_basic(self):
        result = maximum_bipartite_matching(
            ["a", "b"], [1, 2], [("a", 1), ("a", 2), ("b", 1)]
        )
        assert result.size == 2

    def test_rejects_edge_violating_bipartition(self):
        with pytest.raises(ValueError, match="bipartition"):
            maximum_bipartite_matching(["a"], [1], [(1, "a")])


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(25))
    def test_matches_networkx_size(self, seed):
        rng = random.Random(seed)
        a, b = rng.randrange(2, 12), rng.randrange(2, 12)
        g = random_bipartite_graph(a, b, rng.uniform(0.1, 0.7), seed=seed)
        left, right = bipartition(g)
        adjacency = {v: sorted(g.neighbors(v), key=repr) for v in left}
        ours = hopcroft_karp(sorted(left, key=repr), adjacency)
        nxg = nx.Graph(list(g.edges()))
        theirs = nx.bipartite.maximum_matching(nxg, top_nodes=left)
        assert ours.size == len(theirs) // 2
        matching_is_valid(ours.pairs, adjacency)


class TestDeepAugmentingPaths:
    def test_long_path_graph_no_recursion_error(self):
        """A 3000-vertex path forces augmenting paths of Θ(n); the
        iterative DFS must handle it (a naive recursive one would not)."""
        n = 3000
        from repro.graphs.generators import path_graph
        from repro.graphs.properties import bipartition as bp

        g = path_graph(n)
        left, right = bp(g)
        # Feed vertices in an adversarial order: ends first.
        order = sorted(left)
        adjacency = {v: sorted(g.neighbors(v)) for v in order}
        result = hopcroft_karp(order, adjacency)
        assert result.size == n // 2
