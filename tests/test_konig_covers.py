"""Unit tests for König covers and Gallai edge covers
(repro.matching.konig, repro.matching.covers)."""

from itertools import combinations

import pytest

from repro.graphs.core import Graph, GraphError
from repro.graphs.generators import (
    complete_bipartite_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    petersen_graph,
    random_bipartite_graph,
    random_tree,
    star_graph,
)
from repro.graphs.properties import (
    is_edge_cover,
    is_independent_set,
    is_matching,
    is_vertex_cover,
)
from repro.matching.blossom import matching_number, maximum_matching
from repro.matching.covers import (
    extend_matching_to_edge_cover,
    has_edge_cover_of_size,
    minimum_edge_cover,
    minimum_edge_cover_size,
)
from repro.matching.konig import konig_vertex_cover, minimum_vertex_cover_bipartite


def brute_force_min_vertex_cover(graph):
    vertices = graph.sorted_vertices()
    for size in range(graph.n + 1):
        for subset in combinations(vertices, size):
            if is_vertex_cover(graph, subset):
                return set(subset)
    raise AssertionError("unreachable")


def brute_force_min_edge_cover_size(graph):
    edges = graph.sorted_edges()
    for size in range(1, graph.m + 1):
        for subset in combinations(edges, size):
            if is_edge_cover(graph, subset):
                return size
    raise AssertionError("no edge cover exists")


class TestKonig:
    def test_star(self):
        result = konig_vertex_cover(star_graph(5))
        assert result.cover == frozenset({0})

    def test_cover_size_equals_matching(self):
        for seed in range(10):
            g = random_bipartite_graph(5, 6, 0.35, seed=seed)
            result = konig_vertex_cover(g)
            assert is_vertex_cover(g, result.cover)
            assert is_independent_set(g, result.independent_set)
            assert len(result.cover) == matching_number(g)
            assert result.cover | result.independent_set == g.vertices()

    @pytest.mark.parametrize(
        "graph",
        [path_graph(6), cycle_graph(8), grid_graph(2, 4),
         complete_bipartite_graph(3, 3), random_tree(9, seed=1)],
        ids=["path6", "cycle8", "grid24", "k33", "tree9"],
    )
    def test_minimum_against_brute_force(self, graph):
        cover = minimum_vertex_cover_bipartite(graph)
        assert is_vertex_cover(graph, cover)
        assert len(cover) == len(brute_force_min_vertex_cover(graph))

    def test_rejects_non_bipartite(self):
        with pytest.raises(GraphError, match="bipartite"):
            konig_vertex_cover(cycle_graph(5))

    def test_matching_saturates_cover_into_complement(self):
        """The property Algorithm A relies on: the König matching gives
        every cover vertex a partner in the independent set."""
        for seed in range(10):
            g = random_bipartite_graph(6, 7, 0.3, seed=seed)
            result = konig_vertex_cover(g)
            pairs = dict(result.matching.pairs)
            pairs.update({r: l for l, r in result.matching.pairs.items()})
            for v in result.cover:
                assert v in pairs
                assert pairs[v] in result.independent_set


class TestEdgeCovers:
    @pytest.mark.parametrize(
        "graph",
        [path_graph(5), cycle_graph(5), cycle_graph(6), star_graph(4),
         petersen_graph(), grid_graph(3, 3), random_tree(8, seed=2)],
        ids=["path5", "cycle5", "cycle6", "star4", "petersen", "grid33", "tree8"],
    )
    def test_gallai_identity(self, graph):
        cover = minimum_edge_cover(graph)
        assert is_edge_cover(graph, cover)
        assert len(cover) == graph.n - matching_number(graph)
        assert minimum_edge_cover_size(graph) == len(cover)

    @pytest.mark.parametrize(
        "graph",
        [path_graph(4), cycle_graph(5), star_graph(3), grid_graph(2, 3)],
        ids=["path4", "cycle5", "star3", "grid23"],
    )
    def test_minimum_against_brute_force(self, graph):
        assert minimum_edge_cover_size(graph) == brute_force_min_edge_cover_size(graph)

    def test_extend_preserves_matching_edges(self):
        g = path_graph(6)
        matching = maximum_matching(g)
        cover = extend_matching_to_edge_cover(g, matching)
        assert matching <= cover

    def test_star_cover_takes_all_leaves(self):
        cover = minimum_edge_cover(star_graph(4))
        assert len(cover) == 4

    def test_rejects_graph_with_isolated_vertex(self):
        g = Graph([(1, 2)], vertices=[9], allow_isolated=True)
        with pytest.raises(GraphError):
            minimum_edge_cover(g)


class TestHasEdgeCoverOfSize:
    def test_monotone_window(self):
        g = path_graph(5)  # rho = 5 - 2 = 3, m = 4
        assert not has_edge_cover_of_size(g, 2)
        assert has_edge_cover_of_size(g, 3)
        assert has_edge_cover_of_size(g, 4)
        assert not has_edge_cover_of_size(g, 5)  # only 4 distinct edges

    def test_rejects_nonpositive(self):
        assert not has_edge_cover_of_size(path_graph(4), 0)
        assert not has_edge_cover_of_size(path_graph(4), -1)

    def test_single_edge_graph(self):
        g = Graph([(1, 2)])
        assert has_edge_cover_of_size(g, 1)
        assert not has_edge_cover_of_size(g, 2)
