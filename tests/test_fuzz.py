"""Tests for the differential fuzzing subsystem (repro.fuzz)."""

import json
import random

import pytest

from repro.core.game import GameError, TupleGame
from repro.fuzz.corpus import case_id, iter_corpus, load_case, save_case
from repro.fuzz.generators import (
    FAMILIES,
    LABEL_MODES,
    GameSpec,
    random_spec,
)
from repro.fuzz.invariants import INVARIANTS, Violation, check_game
from repro.fuzz.runner import replay_corpus, run_fuzz
from repro.fuzz.shrink import shrink_spec
from repro.graphs.core import Graph


def _spec(edges, k=1, nu=1, **kwargs):
    return GameSpec(edges, k, nu, **kwargs)


class TestGameSpec:
    def test_to_game_materializes(self):
        spec = _spec([(0, 1), (1, 2)], k=2, nu=3)
        game = spec.to_game()
        assert (game.n, game.m, game.k, game.nu) == (3, 2, 2, 3)

    def test_edges_are_canonically_sorted(self):
        a = _spec([(2, 1), (1, 0)])
        b = _spec([(0, 1), (2, 1)])
        assert a.edges == b.edges
        assert a == b and hash(a) == hash(b)

    def test_payload_round_trip(self):
        spec = _spec(
            [(0, "s1"), ("s1", 2)], k=2, nu=2,
            family="mixed-demo", label_mode="mixed", seed=99,
        )
        restored = GameSpec.from_payload(
            json.loads(json.dumps(spec.to_payload()))
        )
        assert restored == spec
        assert restored.family == "mixed-demo"
        assert restored.label_mode == "mixed"
        assert restored.seed == 99

    def test_from_payload_rejects_wrong_format(self):
        with pytest.raises(GameError, match="format"):
            GameSpec.from_payload({"format": "nope", "edges": []})

    def test_from_payload_rejects_non_pair_edge(self):
        payload = _spec([(0, 1)]).to_payload()
        payload["edges"] = [[0, 1, 2]]
        with pytest.raises(GameError, match="not a pair"):
            GameSpec.from_payload(payload)


class TestRandomSpec:
    def test_deterministic_for_a_seed(self):
        a = random_spec(random.Random(7), seed=7)
        b = random_spec(random.Random(7), seed=7)
        assert a == b and a.family == b.family

    def test_every_sample_is_a_valid_game(self):
        for i in range(40):
            spec = random_spec(random.Random(i), seed=i)
            game = spec.to_game()  # constructor re-validates
            assert 1 <= game.k <= min(3, game.m)
            assert 1 <= game.nu <= 3
            assert game.tuple_strategy_count() <= 500

    def test_covers_families_and_label_modes(self):
        families, modes = set(), set()
        for i in range(60):
            spec = random_spec(random.Random(i), seed=i)
            families.add(spec.family.split(":", 1)[0])
            modes.add(spec.label_mode)
        assert len(families) >= 3
        assert modes == set(LABEL_MODES)
        assert "odd-boundary" in families
        assert any(f.startswith("union") for f in families) or "union" in families

    def test_odd_boundary_sits_on_the_c33_edge(self):
        """The adversarial family must hit n = 2k+1 exactly."""
        seen = False
        for i in range(80):
            spec = random_spec(random.Random(i), seed=i)
            if spec.family == "odd-boundary":
                game = spec.to_game()
                assert game.n == 2 * spec.k + 1 or spec.k < game.n // 2
                seen = True
        assert seen

    def test_registry_families_all_buildable(self):
        for name, builder in FAMILIES.items():
            graph = builder(random.Random(0))
            graph.validate_for_game()


class TestInvariants:
    def test_clean_on_known_good_games(self):
        for game in (
            TupleGame(Graph([(0, 1), (1, 2), (2, 3)]), 2, nu=1),
            TupleGame(
                Graph([(0, "s1"), ("s1", 2), (2, "s3"), ("s3", 0)]), 2, nu=2
            ),
        ):
            assert check_game(game) == []

    def test_unknown_invariant_name_rejected(self):
        game = TupleGame(Graph([(0, 1)]), 1, nu=1)
        with pytest.raises(ValueError, match="unknown invariant"):
            check_game(game, checks=["no-such-check"])

    def test_crashing_check_becomes_violation(self, monkeypatch):
        def boom(game, tol):
            raise RuntimeError("injected")

        monkeypatch.setitem(INVARIANTS, "test-boom", boom)
        game = TupleGame(Graph([(0, 1)]), 1, nu=1)
        violations = check_game(game, checks=["test-boom"])
        assert len(violations) == 1
        assert violations[0].check == "test-boom"
        assert "injected" in violations[0].message

    def test_violation_payload(self):
        v = Violation("pure-threshold", "msg", theorem="Theorem 3.1")
        assert v.to_payload() == {
            "check": "pure-threshold",
            "theorem": "Theorem 3.1",
            "message": "msg",
        }


class TestShrink:
    def test_reduces_injected_fault_to_minimal_counterexample(self):
        """An injected 'solver fault' that fires whenever the game has at
        least 3 edges must shrink to exactly 3 edges and k = ν = 1."""
        spec = random_spec(random.Random(12345), seed=12345)
        big = GameSpec(spec.edges, spec.k, spec.nu, family="big")
        assert len(big.edges) > 3 or True  # some samples are already tiny

        def fails(candidate):
            return len(candidate.edges) >= 3

        # Use a sample that is actually big enough to exercise ddmin.
        wide = _spec(
            [(i, i + 1) for i in range(12)] + [(0, 5), (2, 9)], k=3, nu=3,
        )
        shrunk = shrink_spec(wide, fails)
        assert len(shrunk.edges) == 3
        assert shrunk.k == 1 and shrunk.nu == 1
        assert fails(shrunk)
        assert shrunk.family.startswith("shrunk:")

    def test_shrinks_structural_fault_to_smallest_star(self):
        """Fault: 'any vertex of degree >= 3' → minimal graph is K_{1,3}."""
        wide = _spec(
            [(0, i) for i in range(1, 7)] + [(1, 2), (3, 4)], k=2, nu=2,
        )

        def fails(candidate):
            graph = Graph(candidate.edges)
            return any(len(graph.neighbors(v)) >= 3 for v in graph.vertices())

        shrunk = shrink_spec(wide, fails)
        assert len(shrunk.edges) == 3
        assert shrunk.k == 1 and shrunk.nu == 1

    def test_input_not_failing_is_returned_unchanged(self):
        spec = _spec([(0, 1), (1, 2)], k=2, nu=2)
        assert shrink_spec(spec, lambda s: False) == spec

    def test_never_produces_an_invalid_game(self):
        wide = _spec([(i, i + 1) for i in range(10)], k=3, nu=2)
        probed = []

        def fails(candidate):
            candidate.to_game()  # raises if the shrinker broke validity
            probed.append(candidate)
            return candidate.k >= 2

        shrunk = shrink_spec(wide, fails)
        assert shrunk.k == 2
        assert len(shrunk.edges) == 2  # k=2 needs only two edges
        assert probed  # the predicate really ran


class TestCorpus:
    def test_save_load_round_trip(self, tmp_path):
        spec = _spec([(0, "s1"), ("s1", 2)], k=1, nu=2, family="demo")
        path = save_case(tmp_path, spec, [Violation("value-agreement", "x")])
        assert load_case(path) == spec
        payload = json.loads(path.read_text())
        assert payload["violations"][0]["check"] == "value-agreement"

    def test_content_addressing_is_idempotent(self, tmp_path):
        spec = _spec([(0, 1), (1, 2)], k=1, nu=1)
        p1 = save_case(tmp_path, spec)
        p2 = save_case(tmp_path, spec)
        assert p1 == p2
        assert len(list(tmp_path.glob("case-*.json"))) == 1

    def test_case_id_ignores_provenance(self):
        a = _spec([(0, 1)], family="x", label_mode="int", seed=1)
        b = _spec([(0, 1)], family="y", label_mode="str", seed=2)
        assert case_id(a) == case_id(b)

    def test_iter_corpus_missing_directory_is_empty(self, tmp_path):
        assert list(iter_corpus(tmp_path / "nope")) == []

    def test_load_case_rejects_corrupt_file(self, tmp_path):
        path = tmp_path / "case-bad.json"
        path.write_text("{not json")
        with pytest.raises(GameError, match="corrupt"):
            load_case(path)

    def test_committed_corpus_replays_green(self):
        """The persisted counterexamples must stay fixed forever."""
        report = replay_corpus("tests/corpus")
        assert report.games >= 3
        assert report.ok, report.summary()


class TestRunner:
    def test_batch_is_deterministic(self):
        a = run_fuzz(count=4, seed=11)
        b = run_fuzz(count=4, seed=11)
        assert [r.spec for r in a.results] == [r.spec for r in b.results]
        assert a.ok and b.ok

    def test_report_families_histogram(self):
        report = run_fuzz(count=6, seed=2)
        assert sum(report.families().values()) == 6

    def test_injected_fault_is_shrunk_and_persisted(self, tmp_path, monkeypatch):
        """End to end: a buggy 'solver' divergence is found, delta-debugged
        and lands in the corpus as a minimal replayable case."""

        def buggy(game, tol):
            if game.m >= 3:
                return [Violation("test-fault", f"m={game.m} >= 3")]
            return []

        monkeypatch.setitem(INVARIANTS, "test-fault", buggy)
        report = run_fuzz(
            count=6, seed=0, corpus_dir=str(tmp_path), checks=["test-fault"],
        )
        assert not report.ok
        failing = report.failures[0]
        assert failing.shrunk is not None
        assert len(failing.shrunk.edges) == 3
        assert failing.shrunk.k == 1 and failing.shrunk.nu == 1
        saved = list(iter_corpus(tmp_path))
        assert saved
        _, spec = saved[0]
        assert len(spec.edges) == 3

    def test_replay_flags_regressions(self, tmp_path, monkeypatch):
        spec = _spec([(0, 1), (1, 2), (2, 3)], k=1, nu=1)
        save_case(tmp_path, spec)

        def buggy(game, tol):
            return [Violation("test-fault", "still broken")]

        monkeypatch.setitem(INVARIANTS, "test-fault", buggy)
        report = replay_corpus(str(tmp_path), checks=["test-fault"])
        assert not report.ok
        assert "test-fault" in report.summary()


class TestCli:
    def test_fuzz_subcommand_green(self, capsys):
        from repro.cli import main

        assert main(["fuzz", "--count", "3", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "3 games, 0 failing" in out

    def test_list_invariants(self, capsys):
        from repro.cli import main

        assert main(["fuzz", "--list-invariants"]) == 0
        out = capsys.readouterr().out
        for name in INVARIANTS:
            assert name in out

    def test_replay_requires_corpus(self, capsys):
        from repro.cli import main

        assert main(["fuzz", "--count", "0", "--replay"]) == 2

    def test_module_entry_point(self, capsys):
        from repro.fuzz.__main__ import main as fuzz_main

        assert fuzz_main(["--count", "2", "--seed", "3"]) == 0

    def test_metrics_flow(self):
        from repro.obs import metrics

        before = metrics.counter("fuzz.games.count").value
        run_fuzz(count=2, seed=1)
        assert metrics.counter("fuzz.games.count").value == before + 2
