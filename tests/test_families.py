"""Tests for the extension equilibrium families
(repro.equilibria.families) — beyond the paper, each verified against the
Theorem 3.4 machinery and the exact LP."""

import pytest

from repro.core.characterization import check_characterization, is_mixed_nash
from repro.core.game import GameError, TupleGame
from repro.core.profits import expected_profit_tp, hit_probability
from repro.equilibria.families import (
    enumerate_k_matchings,
    perfect_matching_equilibrium,
    regular_edge_equilibrium,
    uniform_kmatching_equilibrium,
)
from repro.graphs.core import Graph
from repro.graphs.generators import (
    circulant_graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    hypercube_graph,
    path_graph,
    petersen_graph,
    star_graph,
)
from repro.solvers.lp import solve_minimax


class TestEnumerateKMatchings:
    def test_c5_pairs(self):
        # Each of the 5 edges of C5 has exactly 2 disjoint partners.
        matchings = list(enumerate_k_matchings(cycle_graph(5), 2))
        assert len(matchings) == 5

    def test_k1_is_all_edges(self):
        g = petersen_graph()
        assert len(list(enumerate_k_matchings(g, 1))) == g.m

    def test_perfect_matchings_of_k4(self):
        assert len(list(enumerate_k_matchings(complete_graph(4), 2))) == 3

    def test_none_beyond_matching_number(self):
        assert list(enumerate_k_matchings(star_graph(3), 2)) == []


class TestPerfectMatchingEquilibrium:
    @pytest.mark.parametrize(
        "graph",
        [petersen_graph(), cycle_graph(6), cycle_graph(8), complete_graph(4),
         complete_graph(6), hypercube_graph(3), grid_graph(2, 4)],
        ids=["petersen", "cycle6", "cycle8", "k4", "k6", "cube3", "grid24"],
    )
    def test_is_nash_for_every_k(self, graph):
        half = graph.n // 2
        for k in range(1, half + 1):
            game = TupleGame(graph, k, nu=3)
            config = perfect_matching_equilibrium(game)
            assert is_mixed_nash(game, config), (graph, k)
            # Gain law extends: 2k*nu/n.
            assert expected_profit_tp(config) == pytest.approx(
                2 * k * 3 / graph.n
            )

    def test_hit_probability_uniform(self):
        game = TupleGame(petersen_graph(), 2, nu=1)
        config = perfect_matching_equilibrium(game)
        hits = {hit_probability(config, v) for v in game.graph.vertices()}
        assert len({round(h, 12) for h in hits}) == 1
        assert hits.pop() == pytest.approx(2 / 5)

    def test_agrees_with_lp(self):
        game = TupleGame(petersen_graph(), 2, nu=1)
        config = perfect_matching_equilibrium(game)
        lp_value = solve_minimax(game).value
        assert expected_profit_tp(config) == pytest.approx(lp_value, abs=1e-7)

    def test_rejects_odd_graph(self):
        with pytest.raises(GameError, match="no perfect matching"):
            perfect_matching_equilibrium(TupleGame(cycle_graph(5), 1, nu=1))

    def test_rejects_matchable_but_imperfect(self):
        with pytest.raises(GameError, match="no perfect matching"):
            perfect_matching_equilibrium(TupleGame(star_graph(3), 1, nu=1))

    def test_rejects_k_beyond_matching(self):
        game = TupleGame(cycle_graph(6), 4, nu=1)
        with pytest.raises(GameError, match="pure NE"):
            perfect_matching_equilibrium(game)


class TestRegularEdgeEquilibrium:
    @pytest.mark.parametrize(
        "graph",
        [cycle_graph(5), cycle_graph(7), petersen_graph(), complete_graph(5),
         circulant_graph(9, (1, 2))],
        ids=["cycle5", "cycle7", "petersen", "k5", "circulant9"],
    )
    def test_is_nash_on_regular_graphs(self, graph):
        game = TupleGame(graph, 1, nu=2)
        config = regular_edge_equilibrium(game)
        assert is_mixed_nash(game, config)
        # value per attacker = 2/n.
        assert expected_profit_tp(config) == pytest.approx(2 * 2 / graph.n)

    def test_rejects_irregular(self):
        with pytest.raises(GameError, match="not regular"):
            regular_edge_equilibrium(TupleGame(path_graph(4), 1, nu=1))

    def test_rejects_k_above_one(self):
        with pytest.raises(GameError, match="Edge-model"):
            regular_edge_equilibrium(TupleGame(cycle_graph(6), 2, nu=1))


class TestUniformKMatchingEquilibrium:
    @pytest.mark.parametrize(
        "graph, k",
        [(cycle_graph(5), 1), (cycle_graph(5), 2), (cycle_graph(7), 2),
         (cycle_graph(7), 3), (petersen_graph(), 2), (complete_graph(5), 2),
         (complete_graph(4), 2)],
        ids=["c5-k1", "c5-k2", "c7-k2", "c7-k3", "petersen-k2", "k5-k2", "k4-k2"],
    )
    def test_is_nash_on_symmetric_graphs(self, graph, k):
        game = TupleGame(graph, k, nu=2)
        config = uniform_kmatching_equilibrium(game)
        report = check_characterization(game, config)
        if report.properly_mixed:
            assert report.is_nash, report.failures
        assert is_mixed_nash(game, config)

    def test_c5_value_matches_lp(self):
        """The construction recovers the 2k/5 value the LP found — the
        one the k-matching theory cannot reach on C5."""
        for k in (1, 2):
            game = TupleGame(cycle_graph(5), k, nu=1)
            config = uniform_kmatching_equilibrium(game)
            assert expected_profit_tp(config) == pytest.approx(
                solve_minimax(game).value, abs=1e-9
            )

    def test_rejects_asymmetric_graph(self):
        house = Graph([(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)])
        with pytest.raises(GameError, match="not an NE"):
            uniform_kmatching_equilibrium(TupleGame(house, 1, nu=1))

    def test_rejects_when_no_k_matching(self):
        with pytest.raises(GameError, match="no matching of size"):
            uniform_kmatching_equilibrium(TupleGame(star_graph(4), 2, nu=1))

    def test_enumeration_guard(self):
        game = TupleGame(complete_graph(10), 5, nu=1)
        with pytest.raises(GameError, match="enumeration limit"):
            uniform_kmatching_equilibrium(game, enumeration_limit=10)
