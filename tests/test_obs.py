"""Tests for repro.obs: metrics math, span semantics, exports, overhead."""

from __future__ import annotations

import io
import json
import timeit

import pytest

from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs import tracing
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_snapshot,
)


@pytest.fixture(autouse=True)
def _clean_tracing_state():
    """Every test starts and ends with tracing off and an empty buffer."""
    tracing.enable_tracing(False)
    tracing.clear_trace()
    yield
    tracing.enable_tracing(False)
    tracing.clear_trace()


class TestCounterAndGauge:
    def test_counter_accumulates(self):
        c = Counter("x.count")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("x.count").inc(-1)

    def test_gauge_last_value_wins(self):
        g = Gauge("x")
        g.set(1)
        g.set(42.5)
        assert g.value == 42.5


class TestHistogram:
    def test_percentile_nearest_rank(self):
        h = Histogram("t.seconds")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(50) == 50.0
        assert h.percentile(95) == 95.0
        assert h.percentile(100) == 100.0
        assert h.percentile(0) == 1.0
        assert h.max == 100.0
        assert h.min == 1.0
        assert h.count == 100
        assert h.mean == pytest.approx(50.5)

    def test_empty_histogram_is_safe(self):
        h = Histogram("t.seconds")
        assert h.percentile(50) == 0.0
        assert h.mean == 0.0

    def test_percentile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram("t").percentile(101)

    def test_decimation_keeps_exact_aggregates(self):
        h = Histogram("t")
        total = Histogram.MAX_SAMPLES * 3
        for v in range(total):
            h.observe(float(v))
        # Exact statistics survive decimation...
        assert h.count == total
        assert h.max == float(total - 1)
        assert h.total == pytest.approx(total * (total - 1) / 2)
        # ...while the sample buffer stays bounded and still representative.
        assert len(h._samples) < Histogram.MAX_SAMPLES
        assert h.percentile(50) == pytest.approx(total / 2, rel=0.05)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        r = MetricsRegistry()
        assert r.counter("a.count") is r.counter("a.count")
        assert r.gauge("g") is r.gauge("g")
        assert r.histogram("h") is r.histogram("h")

    def test_snapshot_structure(self):
        r = MetricsRegistry()
        r.counter("c.count").inc(3)
        r.gauge("g").set(1.5)
        with r.timer("t.seconds"):
            pass
        snap = r.snapshot()
        assert snap["counters"] == {"c.count": 3.0}
        assert snap["gauges"] == {"g": 1.5}
        stats = snap["histograms"]["t.seconds"]
        assert stats["count"] == 1
        assert stats["max"] >= 0.0
        assert set(stats) == {"count", "total", "mean", "min", "max", "p50", "p95"}

    def test_json_export_round_trips(self):
        r = MetricsRegistry()
        r.counter("c.count").inc()
        r.histogram("h.seconds").observe(0.25)
        assert json.loads(r.to_json()) == r.snapshot()

    def test_prometheus_export(self):
        r = MetricsRegistry()
        r.counter("lp.solve.count").inc(7)
        r.gauge("simulation.trials_per_sec").set(100.0)
        r.histogram("lp.solve.seconds").observe(0.5)
        text = r.to_prometheus()
        assert "# TYPE repro_lp_solve_count counter" in text
        assert "repro_lp_solve_count 7" in text
        assert "repro_simulation_trials_per_sec 100" in text
        assert 'repro_lp_solve_seconds{quantile="0.95"} 0.5' in text
        assert "repro_lp_solve_seconds_count 1" in text
        assert "repro_lp_solve_seconds_sum 0.5" in text

    def test_reset_and_len(self):
        r = MetricsRegistry()
        r.counter("a").inc()
        r.gauge("b").set(1)
        assert len(r) == 2
        r.reset()
        assert len(r) == 0
        assert r.snapshot()["counters"] == {}

    def test_render_snapshot_lists_every_instrument(self):
        r = MetricsRegistry()
        r.counter("z.count").inc(2)
        r.histogram("a.seconds").observe(1.0)
        text = render_snapshot(r.snapshot())
        assert "z.count" in text and "counter" in text
        assert "a.seconds" in text and "p95=" in text

    def test_render_snapshot_empty(self):
        assert render_snapshot(MetricsRegistry().snapshot()) == "(no metrics recorded)"

    def test_global_helpers_share_registry(self):
        obs_metrics.counter("obs.test.shared.count").inc()
        snap = obs_metrics.get_registry().snapshot()
        assert snap["counters"]["obs.test.shared.count"] >= 1.0


class TestSpans:
    def test_disabled_span_yields_none(self):
        with tracing.span("x") as s:
            assert s is None
        assert tracing.get_trace() == []

    def test_nesting_builds_a_tree(self):
        tracing.enable_tracing(True)
        with tracing.span("outer", n=5):
            with tracing.span("inner.a"):
                pass
            with tracing.span("inner.b"):
                pass
        roots = tracing.get_trace()
        assert len(roots) == 1
        outer = roots[0]
        assert outer.name == "outer"
        assert outer.attributes == {"n": 5}
        assert [c.name for c in outer.children] == ["inner.a", "inner.b"]
        assert outer.duration_s >= sum(c.duration_s for c in outer.children)

    def test_exception_marks_error_and_unwinds(self):
        tracing.enable_tracing(True)
        with pytest.raises(ValueError):
            with tracing.span("outer"):
                with tracing.span("inner"):
                    raise ValueError("boom")
        roots = tracing.get_trace()
        assert len(roots) == 1
        outer = roots[0]
        assert outer.status == "error"
        assert outer.children[0].status == "error"
        # The stack fully unwound: a new span is again a root.
        with tracing.span("after"):
            pass
        assert [s.name for s in tracing.get_trace()] == ["outer", "after"]

    def test_spans_feed_the_registry(self):
        tracing.enable_tracing(True)
        before = obs_metrics.histogram("span.obs.fed.seconds").count
        with tracing.span("obs.fed"):
            pass
        assert obs_metrics.histogram("span.obs.fed.seconds").count == before + 1

    def test_render_trace(self):
        tracing.enable_tracing(True)
        with tracing.span("outer", k=2):
            with tracing.span("inner"):
                pass
        text = tracing.render_trace()
        lines = text.splitlines()
        assert lines[0].startswith("outer")
        assert "k=2" in lines[0]
        assert lines[1].startswith("  inner")
        assert "ms" in lines[0]

    def test_render_trace_empty(self):
        assert tracing.render_trace() == "(no spans recorded)"


class TestTraced:
    def test_traced_records_span_when_enabled(self):
        tracing.enable_tracing(True)

        @tracing.traced("obs.fn", layer="test")
        def f(x):
            return x * 2

        assert f(21) == 42
        roots = tracing.get_trace()
        assert roots[-1].name == "obs.fn"
        assert roots[-1].attributes == {"layer": "test"}

    def test_traced_bare_uses_qualname(self):
        tracing.enable_tracing(True)

        @tracing.traced
        def plain():
            return 1

        assert plain() == 1
        assert "plain" in tracing.get_trace()[-1].name

    def test_traced_propagates_exceptions(self):
        tracing.enable_tracing(True)

        @tracing.traced("obs.raises")
        def bad():
            raise RuntimeError("nope")

        with pytest.raises(RuntimeError):
            bad()
        assert tracing.get_trace()[-1].status == "error"

    def test_disabled_overhead_is_negligible(self):
        """@traced in disabled mode must stay within a few µs per call."""
        tracing.enable_tracing(False)

        @tracing.traced("obs.overhead")
        def f(x):
            return x + 1

        n = 20_000
        per_call = timeit.timeit(lambda: f(1), number=n) / n
        assert per_call < 2e-5, f"disabled @traced costs {per_call * 1e6:.1f} µs/call"


class TestStructuredLogger:
    @pytest.fixture(autouse=True)
    def _restore_config(self):
        saved = obs_log.logging_config()
        yield
        obs_log.configure(level=str(saved["level"]), json_mode=bool(saved["json"]))

    def test_key_value_format(self):
        stream = io.StringIO()
        obs_log.configure(level="info", json_mode=False, stream=stream)
        obs_log.get_logger("repro.test").info("converged", iterations=3, gap=0.0)
        line = stream.getvalue().strip()
        assert line.startswith("level=info logger=repro.test event=converged")
        assert "iterations=3" in line and "gap=0" in line

    def test_values_with_spaces_are_quoted(self):
        stream = io.StringIO()
        obs_log.configure(level="info", json_mode=False, stream=stream)
        obs_log.get_logger("repro.test").info("msg", note="two words")
        assert 'note="two words"' in stream.getvalue()

    def test_json_format(self):
        stream = io.StringIO()
        obs_log.configure(level="info", json_mode=True, stream=stream)
        obs_log.get_logger("repro.test").info("fired", k=2)
        record = json.loads(stream.getvalue())
        assert record == {
            "level": "info", "logger": "repro.test", "event": "fired", "k": 2,
        }

    def test_level_filtering(self):
        stream = io.StringIO()
        obs_log.configure(level="warning", json_mode=False, stream=stream)
        logger = obs_log.get_logger("repro.test")
        logger.debug("hidden")
        logger.info("hidden")
        logger.warning("shown")
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 1 and "event=shown" in lines[0]
        assert not logger.is_enabled_for("debug")
        assert logger.is_enabled_for("error")

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            obs_log.configure(level="loud")

    def test_get_logger_caches(self):
        assert obs_log.get_logger("repro.same") is obs_log.get_logger("repro.same")


class TestSolverTelemetry:
    """The instrumented hot paths populate the registry and result objects."""

    def test_double_oracle_gap_history(self, k24_game):
        from repro.solvers.double_oracle import double_oracle

        result = double_oracle(k24_game)
        assert len(result.gap_history) == result.iterations
        assert result.gap_history[-1] == pytest.approx(result.certified_gap)

    def test_fictitious_play_residual_history(self, k24_game):
        from repro.solvers.fictitious_play import fictitious_play

        result = fictitious_play(k24_game, rounds=40)
        assert len(result.residual_history) == result.rounds
        assert all(r >= -1e-12 for r in result.residual_history)
        assert result.residual_history[-1] == pytest.approx(
            result.history[-1][1] - result.history[-1][0]
        )

    def test_solve_cascade_kind_counter(self, k24_game):
        from repro.equilibria.solve import solve_game

        counter = obs_metrics.counter("equilibria.solve.kind.k-matching.count")
        before = counter.value
        solve_game(k24_game)
        assert counter.value == before + 1

    def test_simulation_throughput_metrics(self, k24_game):
        from repro.equilibria.solve import solve_game
        from repro.simulation.engine import simulate

        result = solve_game(k24_game)
        trials_before = obs_metrics.counter("simulation.trials.count").value
        draws_before = obs_metrics.counter("simulation.draws.count").value
        simulate(k24_game, result.mixed, trials=500, seed=1)
        assert obs_metrics.counter("simulation.trials.count").value == trials_before + 500
        # nu=5 attackers + 1 defender draw per trial.
        assert obs_metrics.counter("simulation.draws.count").value == draws_before + 3000
        assert obs_metrics.gauge("simulation.trials_per_sec").value > 0


class TestBenchmarkTableJson:
    def test_record_table_writes_json_twin(self, tmp_path, monkeypatch, capsys):
        import benchmarks.conftest as bench_conftest
        from repro.analysis.tables import Table

        monkeypatch.setattr(bench_conftest, "RESULTS_DIR", tmp_path)
        table = Table(["k", "gain"])
        table.add_row([1, 0.5])
        bench_conftest.record_table("T0_demo", table, title="demo table")
        capsys.readouterr()

        assert (tmp_path / "T0_demo.txt").exists()
        document = json.loads((tmp_path / "T0_demo.json").read_text())
        assert document["schema"] == "repro.obs/experiment-table/v1"
        assert document["name"] == "T0_demo"
        assert document["title"] == "demo table"
        assert document["headers"] == ["k", "gain"]
        assert document["rows"] == [["1", "0.5000"]]


class TestSpanExceptionPaths:
    """Regression coverage for raising bodies and abandoned spans."""

    def test_error_type_recorded_on_raise(self):
        tracing.enable_tracing(True)
        with pytest.raises(KeyError):
            with tracing.span("boom"):
                raise KeyError("gone")
        root = tracing.get_trace()[0]
        assert root.status == "error"
        assert root.error_type == "KeyError"
        assert "[ERROR KeyError]" in tracing.render_trace()

    def test_raising_span_feeds_histogram(self):
        tracing.enable_tracing(True)
        h = obs_metrics.histogram("span.obs.err.seconds")
        before = h.count
        with pytest.raises(RuntimeError):
            with tracing.span("obs.err"):
                raise RuntimeError("nope")
        assert h.count == before + 1

    def test_abandoned_span_closed_during_exception_unwind(self):
        """A span entered but never exited (e.g. a generator that died)
        must not be silently dropped when the enclosing span exits."""
        tracing.enable_tracing(True)
        h = obs_metrics.histogram("span.abandoned.inner.seconds")
        before = h.count
        with pytest.raises(ValueError):
            with tracing.span("outer"):
                tracing.span("abandoned.inner").__enter__()
                raise ValueError("boom")
        outer = tracing.get_trace()[0]
        assert [c.name for c in outer.children] == ["abandoned.inner"]
        abandoned = outer.children[0]
        assert abandoned.status == "error"
        assert abandoned.error_type == "ValueError"
        assert abandoned.duration_s >= 0.0
        assert h.count == before + 1
        # The stack fully unwound despite the abandonment.
        with tracing.span("after"):
            pass
        assert [s.name for s in tracing.get_trace()] == ["outer", "after"]

    def test_abandoned_span_on_clean_exit_marked_abandoned(self):
        tracing.enable_tracing(True)
        with tracing.span("outer"):
            tracing.span("leaked").__enter__()
        outer = tracing.get_trace()[0]
        leaked = outer.children[0]
        assert leaked.status == "error"
        assert leaked.error_type == "AbandonedSpan"

    def test_span_to_dict_serializes_tree_and_error(self):
        tracing.enable_tracing(True)
        with pytest.raises(ValueError):
            with tracing.span("outer", k=2):
                with tracing.span("inner"):
                    raise ValueError("x")
        payload = tracing.get_trace()[0].to_dict()
        assert payload["name"] == "outer"
        assert payload["status"] == "error"
        assert payload["error_type"] == "ValueError"
        assert payload["attributes"] == {"k": 2}
        assert payload["children"][0]["name"] == "inner"
        assert payload["children"][0]["error_type"] == "ValueError"
        # JSON-ready: a round-trip must not lose anything.
        assert json.loads(json.dumps(payload)) == payload


class TestHistogramEdgeCases:
    def test_empty_percentiles_all_zero(self):
        h = Histogram("t.seconds")
        for q in (0, 50, 99, 100):
            assert h.percentile(q) == 0.0
        assert h.count == 0
        assert h.mean == 0.0

    def test_single_sample_every_percentile(self):
        h = Histogram("t.seconds")
        h.observe(3.25)
        for q in (0, 1, 50, 99, 100):
            assert h.percentile(q) == 3.25
        assert h.min == 3.25
        assert h.max == 3.25
        assert h.mean == 3.25

    def test_decimation_deterministic_across_identical_feeds(self):
        """Two histograms fed the same stream must agree exactly —
        decimation uses a fixed stride, never randomness."""
        a, b = Histogram("a"), Histogram("b")
        total = Histogram.MAX_SAMPLES * 3 + 17
        for v in range(total):
            a.observe(float(v))
            b.observe(float(v))
        assert a.count == b.count == total
        assert a._samples == b._samples
        for q in (0, 25, 50, 75, 90, 99, 100):
            assert a.percentile(q) == b.percentile(q)

    def test_timer_records_on_raising_body(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.timer("t.seconds"):
                raise RuntimeError("boom")
        h = registry.histogram("t.seconds")
        assert h.count == 1
        assert h.max >= 0.0
