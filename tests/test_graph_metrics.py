"""Unit tests for graph metrics (repro.graphs.metrics)."""

import pytest

from repro.graphs.core import Graph, GraphError
from repro.graphs.generators import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    hypercube_graph,
    path_graph,
    petersen_graph,
    random_tree,
    star_graph,
)
from repro.graphs.metrics import (
    average_degree,
    bfs_distances,
    degree_histogram,
    density,
    diameter,
    eccentricity,
    girth,
    radius,
)


class TestDistances:
    def test_bfs_on_path(self):
        distances = bfs_distances(path_graph(5), 0)
        assert distances == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_bfs_missing_source(self):
        with pytest.raises(GraphError):
            bfs_distances(path_graph(3), 9)

    def test_bfs_on_disconnected_component(self):
        g = Graph([(0, 1), (2, 3)])
        assert bfs_distances(g, 0) == {0: 0, 1: 1}

    def test_eccentricity_center_vs_end(self):
        g = path_graph(5)
        assert eccentricity(g, 2) == 2
        assert eccentricity(g, 0) == 4

    def test_eccentricity_disconnected_raises(self):
        with pytest.raises(GraphError, match="disconnected"):
            eccentricity(Graph([(0, 1), (2, 3)]), 0)

    @pytest.mark.parametrize(
        "graph, expected_diameter, expected_radius",
        [
            (path_graph(6), 5, 3),
            (cycle_graph(8), 4, 4),
            (complete_graph(5), 1, 1),
            (star_graph(4), 2, 1),
            (petersen_graph(), 2, 2),
            (hypercube_graph(3), 3, 3),
            (grid_graph(3, 4), 5, 3),
        ],
        ids=["path6", "cycle8", "k5", "star4", "petersen", "cube3", "grid34"],
    )
    def test_diameter_and_radius(self, graph, expected_diameter, expected_radius):
        assert diameter(graph) == expected_diameter
        assert radius(graph) == expected_radius


class TestGirth:
    @pytest.mark.parametrize(
        "graph, expected",
        [
            (cycle_graph(5), 5),
            (cycle_graph(6), 6),
            (complete_graph(4), 3),
            (petersen_graph(), 5),
            (complete_bipartite_graph(2, 3), 4),
            (grid_graph(3, 3), 4),
            (hypercube_graph(3), 4),
        ],
        ids=["c5", "c6", "k4", "petersen", "k23", "grid33", "cube3"],
    )
    def test_known_girths(self, graph, expected):
        assert girth(graph) == expected

    def test_forest_has_none(self):
        assert girth(path_graph(6)) is None
        assert girth(random_tree(10, seed=1)) is None

    def test_triangle_with_long_cycle(self):
        # A triangle attached to a C6: girth is 3, not 6.
        g = Graph(
            [(0, 1), (1, 2), (2, 0),
             (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 2)]
        )
        assert girth(g) == 3


class TestDegreeStatistics:
    def test_density_extremes(self):
        assert density(complete_graph(5)) == pytest.approx(1.0)
        assert density(path_graph(5)) == pytest.approx(2 * 4 / 20)

    def test_density_undefined_tiny(self):
        with pytest.raises(GraphError):
            density(Graph([], vertices=[1], allow_isolated=True))

    def test_degree_histogram(self):
        assert degree_histogram(star_graph(4)) == {1: 4, 4: 1}
        assert degree_histogram(cycle_graph(5)) == {2: 5}

    def test_average_degree(self):
        assert average_degree(cycle_graph(7)) == pytest.approx(2.0)
        assert average_degree(star_graph(5)) == pytest.approx(2 * 5 / 6)
