"""Targeted tests for members the main suites exercise only indirectly:
result-object ergonomics, the generic minimax engine, weighted attacker
profits, and the DefenderFamily base contract."""

import pytest

from repro.core.game import GameError, TupleGame
from repro.equilibria.solve import solve_game
from repro.graphs.core import GraphError
from repro.graphs.generators import (
    complete_bipartite_graph,
    cycle_graph,
    path_graph,
)
from repro.models.families import DefenderFamily, KTupleFamily
from repro.solvers.lp import minimax_over_strategies
from repro.weighted import WeightedTupleGame, weighted_lp_equilibrium


class TestGenericMinimaxEngine:
    def test_tiny_hand_built_duel(self):
        """Defender strategies {a,b} / {b,c} over vertices {a,b,c}:
        vertex b is always hit, so the attacker mixes a/c and the value is
        1/2 (each strategy covers exactly one of them)."""
        strategies = ["left", "right"]
        coverage = {"left": {"a", "b"}, "right": {"b", "c"}}
        solution = minimax_over_strategies(
            ["a", "b", "c"], strategies, lambda s: coverage[s]
        )
        assert solution.value == pytest.approx(0.5)
        assert solution.defender["left"] == pytest.approx(0.5)
        assert solution.attacker.get("b", 0.0) == pytest.approx(0.0)

    def test_rejects_empty_sides(self):
        with pytest.raises(GameError, match="non-empty"):
            minimax_over_strategies([], ["s"], lambda s: set())
        with pytest.raises(GameError, match="non-empty"):
            minimax_over_strategies(["v"], [], lambda s: set())

    def test_strategies_covering_everything_give_value_one(self):
        solution = minimax_over_strategies(
            ["a", "b"], ["all"], lambda s: {"a", "b"}
        )
        assert solution.value == pytest.approx(1.0)


class TestWeightedAttackerProfit:
    def test_conservation_of_weighted_value(self):
        """Each attacker's escape profit plus the defender's catch value
        from that attacker equals its expected staked weight."""
        graph = complete_bipartite_graph(2, 3)
        weights = {0: 2.0, 1: 1.0, 2: 3.0, 3: 1.0, 4: 2.0}
        game = WeightedTupleGame(graph, 1, weights, nu=3)
        config, _ = weighted_lp_equilibrium(game)
        total_staked = sum(
            sum(p * weights[v] for v, p in config.vp_distribution(i).items())
            for i in range(game.nu)
        )
        escapes = sum(
            game.expected_profit_attacker(config, i) for i in range(game.nu)
        )
        assert escapes + game.expected_profit_defender(config) == pytest.approx(
            total_staked
        )

    def test_repr(self):
        graph = path_graph(3)
        game = WeightedTupleGame(graph, 1, {0: 1.0, 1: 1.0, 2: 1.0})
        assert "WeightedTupleGame" in repr(game)


class TestDefenderFamilyContract:
    def test_base_is_abstract(self):
        family = DefenderFamily(2)
        with pytest.raises(NotImplementedError):
            list(family.strategies(path_graph(3)))

    def test_rejects_bad_k(self):
        with pytest.raises(GraphError, match="positive integer"):
            DefenderFamily(0)
        with pytest.raises(GraphError):
            DefenderFamily("two")

    def test_validate_passes_when_non_empty(self):
        KTupleFamily(2).validate(cycle_graph(4))

    def test_validate_raises_when_empty(self):
        with pytest.raises(GraphError, match="empty"):
            KTupleFamily(9).validate(path_graph(3))

    def test_repr(self):
        assert repr(KTupleFamily(3)) == "KTupleFamily(k=3)"


class TestResultObjectErgonomics:
    def test_reprs_do_not_crash_and_carry_key_facts(self):
        from repro.matching.konig import konig_vertex_cover
        from repro.matching.hall import is_expander_into
        from repro.solvers.double_oracle import double_oracle
        from repro.solvers.ranges import attacker_vertex_ranges
        from repro.simulation.engine import simulate

        graph = complete_bipartite_graph(2, 3)
        game = TupleGame(graph, 1, nu=2)
        config = solve_game(game).mixed

        assert "cover_size=2" in repr(konig_vertex_cover(graph))
        assert "holds=True" in repr(
            is_expander_into(graph, {0, 1}, {2, 3, 4})
        )
        assert "pools=" in repr(double_oracle(game))
        assert "coordinates=5" in repr(attacker_vertex_ranges(game))
        assert "trials=50" in repr(simulate(game, config, trials=50, seed=1))
