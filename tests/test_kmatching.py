"""Tests for k-matching configurations and Lemma 4.1
(repro.equilibria.kmatching)."""

import pytest

from repro.core.characterization import is_mixed_nash
from repro.core.configuration import MixedConfiguration
from repro.core.game import GameError, TupleGame
from repro.core.profits import expected_profit_tp, hit_probability
from repro.equilibria.kmatching import (
    is_kmatching_configuration,
    is_kmatching_nash,
    kmatching_profile,
    predicted_defender_gain,
    predicted_hit_probability,
    satisfies_cover_conditions,
    tuple_multiplicity,
)
from repro.equilibria.solve import solve_game
from repro.graphs.generators import complete_bipartite_graph, grid_graph, path_graph
from repro.matching.covers import minimum_edge_cover_size
from tests.conftest import bipartite_zoo, zoo_params


class TestTupleMultiplicity:
    def test_balanced(self):
        tuples = [((0, 1), (2, 3)), ((0, 1), (4, 5)), ((2, 3), (4, 5))]
        assert tuple_multiplicity(tuples) == 2

    def test_unbalanced(self):
        tuples = [((0, 1), (2, 3)), ((0, 1), (4, 5))]
        assert tuple_multiplicity(tuples) is None

    def test_single_tuple(self):
        assert tuple_multiplicity([((0, 1), (2, 3))]) == 1

    def test_empty(self):
        assert tuple_multiplicity([]) is None


class TestDefinition41Clauses:
    """Each clause of Definition 4.1 is rejected independently."""

    @pytest.fixture
    def game(self):
        return TupleGame(path_graph(6), k=2, nu=2)

    def test_clause_1_dependent_support(self, game):
        # {0, 1} adjacent: clause (1) fails.
        config = MixedConfiguration.uniform(
            game, [0, 1], [[(0, 1), (2, 3)], [(2, 3), (4, 5)], [(0, 1), (4, 5)]]
        )
        assert not is_kmatching_configuration(game, config)

    def test_clause_2_vertex_with_two_cover_edges(self, game):
        # Vertex 2 is incident to both (1,2) and (2,3) in E(D(tp)).
        config = MixedConfiguration.uniform(
            game, [2, 5], [[(1, 2), (4, 5)], [(2, 3), (4, 5)], [(1, 2), (2, 3)]]
        )
        assert not is_kmatching_configuration(game, config)

    def test_clause_3_unbalanced_tuples(self, game):
        # Edge (0,1) appears twice, (2,3) twice, (4,5) twice? Build a
        # genuinely unbalanced set: (0,1) twice, others once.
        config = MixedConfiguration.uniform(
            game, [0, 3], [[(0, 1), (2, 3)], [(0, 1), (4, 5)]]
        )
        # support vertices 0,3 independent; vertex 0 in edge (0,1) only,
        # vertex 3 in (2,3) only -> clauses 1-2 hold, clause 3 fails.
        assert tuple_multiplicity(config.tp_support()) is None
        assert not is_kmatching_configuration(game, config)

    def test_all_clauses_hold(self, game):
        config = MixedConfiguration.uniform(
            game, [0, 2, 4], [[(0, 1), (2, 3)], [(2, 3), (4, 5)], [(0, 1), (4, 5)]]
        )
        assert is_kmatching_configuration(game, config)


class TestLemma41:
    @pytest.mark.parametrize("graph", zoo_params(bipartite_zoo()))
    def test_solver_output_is_kmatching_nash(self, graph):
        rho = minimum_edge_cover_size(graph)
        for k in range(1, rho):
            game = TupleGame(graph, k, nu=3)
            config = solve_game(game).mixed
            assert is_kmatching_configuration(game, config)
            assert satisfies_cover_conditions(game, config)
            assert is_kmatching_nash(game, config)
            assert is_mixed_nash(game, config)

    def test_claim_43_hit_probability(self):
        graph = complete_bipartite_graph(3, 5)
        rho = minimum_edge_cover_size(graph)
        for k in range(1, rho):
            game = TupleGame(graph, k, nu=2)
            config = solve_game(game).mixed
            predicted = predicted_hit_probability(game, config)
            assert predicted == pytest.approx(k / rho)
            for v in config.vp_support_union():
                assert hit_probability(config, v) == pytest.approx(predicted)

    def test_corollary_47_gain(self):
        graph = grid_graph(3, 3)
        rho = minimum_edge_cover_size(graph)
        for k in range(1, rho):
            game = TupleGame(graph, k, nu=7)
            config = solve_game(game).mixed
            assert expected_profit_tp(config) == pytest.approx(
                predicted_defender_gain(game, config)
            )
            assert predicted_defender_gain(game, config) == pytest.approx(
                k * 7 / rho
            )


class TestKMatchingProfile:
    def test_validates_and_builds(self):
        game = TupleGame(path_graph(4), k=1, nu=2)
        config = kmatching_profile(game, [0, 2], [[(0, 1)], [(2, 3)]])
        assert is_kmatching_nash(game, config)

    def test_rejects_bad_configuration(self):
        game = TupleGame(path_graph(4), k=1, nu=1)
        with pytest.raises(GameError, match="Definition 4.1"):
            kmatching_profile(game, [0, 1], [[(0, 1)], [(2, 3)]])

    def test_rejects_cover_violation(self):
        game = TupleGame(path_graph(4), k=1, nu=1)
        # {0}: independent, one edge — but (0,1) covers nothing at 2,3.
        with pytest.raises(GameError, match="cover"):
            kmatching_profile(game, [0], [[(0, 1)]])

    def test_validate_false_skips_checks(self):
        game = TupleGame(path_graph(4), k=1, nu=1)
        config = kmatching_profile(game, [0], [[(0, 1)]], validate=False)
        assert config.prob_vp(0, 0) == 1.0


class TestIsKMatchingNashUniformity:
    def test_rejects_non_uniform_defender(self):
        game = TupleGame(path_graph(4), k=1, nu=1)
        config = MixedConfiguration(
            game, [{0: 0.5, 2: 0.5}], {((0, 1),): 0.6, ((2, 3),): 0.4}
        )
        assert is_kmatching_configuration(game, config)
        assert not is_kmatching_nash(game, config)

    def test_rejects_attacker_on_partial_support(self):
        game = TupleGame(path_graph(4), k=1, nu=2)
        config = MixedConfiguration(
            game,
            [{0: 1.0}, {0: 0.5, 2: 0.5}],
            {((0, 1),): 0.5, ((2, 3),): 0.5},
        )
        # Union support is {0, 2} but player 0 only plays 0: equation (4)
        # of Lemma 4.1 requires all players uniform on the same support.
        assert not is_kmatching_nash(game, config)
