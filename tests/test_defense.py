"""Tests for the Price of Defense analysis (repro.analysis.defense)."""

import pytest

from repro.analysis.defense import (
    defense_profile,
    predicted_price_of_defense,
    price_of_defense,
)
from repro.core.game import TupleGame
from repro.equilibria.solve import solve_game
from repro.graphs.generators import (
    complete_bipartite_graph,
    cycle_graph,
    grid_graph,
    petersen_graph,
)
from repro.matching.covers import minimum_edge_cover_size


class TestPriceOfDefense:
    def test_closed_form_at_kmatching(self):
        graph = grid_graph(2, 4)
        rho = minimum_edge_cover_size(graph)
        for k in range(1, rho):
            game = TupleGame(graph, k, nu=5)
            result = solve_game(game)
            assert price_of_defense(game, result) == pytest.approx(rho / k)

    def test_pure_regime_price_is_one(self):
        graph = complete_bipartite_graph(2, 3)
        rho = minimum_edge_cover_size(graph)
        game = TupleGame(graph, rho, nu=3)
        assert price_of_defense(game, solve_game(game)) == pytest.approx(1.0)

    def test_independent_of_nu(self):
        graph = grid_graph(3, 3)
        prices = set()
        for nu in (1, 4, 9):
            game = TupleGame(graph, 2, nu=nu)
            prices.add(round(price_of_defense(game, solve_game(game)), 10))
        assert len(prices) == 1

    def test_rejects_zero_gain(self):
        with pytest.raises(ValueError, match="undefined"):
            game = TupleGame(grid_graph(2, 2), 1, nu=1)
            result = solve_game(game)
            result.defender_gain = 0.0
            price_of_defense(game, result)


class TestPredictedPrice:
    def test_formula(self):
        graph = complete_bipartite_graph(2, 5)
        rho = minimum_edge_cover_size(graph)
        assert predicted_price_of_defense(graph, 2) == pytest.approx(rho / 2)

    def test_floored_at_one(self):
        graph = complete_bipartite_graph(2, 5)
        assert predicted_price_of_defense(graph, 99) == 1.0


class TestDefenseProfile:
    def test_default_sweep(self):
        graph = grid_graph(2, 3)
        rho = minimum_edge_cover_size(graph)
        points = defense_profile(graph, nu=4)
        assert [p.k for p in points] == list(range(1, rho + 1))
        assert points[-1].kind == "pure"
        assert points[-1].price == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        points = defense_profile(grid_graph(3, 3), nu=2)
        prices = [p.price for p in points]
        assert prices == sorted(prices, reverse=True)

    def test_petersen_via_extension(self):
        points = defense_profile(petersen_graph(), nu=2)
        kinds = {p.kind for p in points}
        assert "perfect-matching" in kinds
        for p in points:
            if p.kind == "perfect-matching":
                assert p.price == pytest.approx(p.predicted)

    def test_odd_cycle_beats_the_closed_form(self):
        """On C7 the uniform-k-matching value 2k/n beats k/rho, so the
        measured price is *below* the rho/k prediction."""
        points = defense_profile(cycle_graph(7), nu=3, ks=[1, 2])
        for p in points:
            assert p.kind == "uniform-k-matching"
            assert p.price < p.predicted

    def test_explicit_ks_and_repr(self):
        points = defense_profile(grid_graph(2, 3), nu=1, ks=[2])
        assert len(points) == 1
        assert "DefensePoint" in repr(points[0])
