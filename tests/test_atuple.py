"""Tests for Algorithm A_tuple and the cyclic construction
(repro.equilibria.atuple) — Lemma 4.8, Claim 4.9, Theorems 4.12/5.1."""

from collections import Counter
from math import gcd

import pytest

from repro.core.characterization import is_mixed_nash
from repro.core.game import GameError, TupleGame
from repro.equilibria.atuple import (
    algorithm_a_tuple,
    cyclic_tuples,
    expected_tuple_count,
)
from repro.equilibria.kmatching import is_kmatching_nash
from repro.graphs.generators import complete_bipartite_graph, random_bipartite_graph
from repro.matching.covers import minimum_edge_cover_size
from repro.matching.partition import bipartite_partition
from tests.conftest import bipartite_zoo, zoo_params


def fake_edges(count):
    return [(2 * i, 2 * i + 1) for i in range(count)]


class TestCyclicTuples:
    @pytest.mark.parametrize(
        "e_num, k",
        [(6, 2), (6, 3), (6, 4), (5, 2), (5, 3), (7, 3), (8, 6), (9, 6), (4, 4), (1, 1)],
    )
    def test_claim_49_delta_and_alpha(self, e_num, k):
        edges = fake_edges(e_num)
        tuples = cyclic_tuples(edges, k)
        delta = e_num // gcd(e_num, k)
        alpha = k // gcd(e_num, k)
        assert len(tuples) == delta == expected_tuple_count(e_num, k)
        counts = Counter(e for t in tuples for e in t)
        # Every edge appears, each exactly alpha times.
        assert set(counts) == set(edges)
        assert set(counts.values()) == {alpha}

    @pytest.mark.parametrize("e_num, k", [(6, 2), (5, 3), (7, 4), (9, 6)])
    def test_each_window_has_k_distinct_edges(self, e_num, k):
        for window in cyclic_tuples(fake_edges(e_num), k):
            assert len(window) == k
            assert len(set(window)) == k

    def test_windows_are_distinct_tuples(self):
        tuples = cyclic_tuples(fake_edges(9), 6)
        as_sets = {frozenset(t) for t in tuples}
        assert len(as_sets) == len(tuples)

    def test_k_equals_enum_single_window(self):
        tuples = cyclic_tuples(fake_edges(4), 4)
        assert len(tuples) == 1

    def test_divisible_case_is_a_partition(self):
        # k | E_num: windows tile the edges exactly once (alpha = 1).
        tuples = cyclic_tuples(fake_edges(8), 4)
        assert len(tuples) == 2
        counts = Counter(e for t in tuples for e in t)
        assert set(counts.values()) == {1}

    def test_rejects_k_above_enum(self):
        with pytest.raises(GameError, match="pure NE"):
            cyclic_tuples(fake_edges(3), 4)

    def test_rejects_empty_edges(self):
        with pytest.raises(GameError, match="at least one edge"):
            cyclic_tuples([], 1)

    def test_construction_order_matches_figure_1(self):
        """Figure 1 walks labels 0,1,...: the i-th window starts at
        (i-1)k mod E_num."""
        edges = fake_edges(5)
        tuples = cyclic_tuples(edges, 2)
        assert tuples[0][0] == edges[0]
        assert tuples[1][0] == edges[2]
        assert tuples[2][0] == edges[4]
        assert tuples[2][1] == edges[0]  # wraps around


class TestAlgorithmATuple:
    @pytest.mark.parametrize("graph", zoo_params(bipartite_zoo()))
    def test_theorem_412_correctness(self, graph):
        independent, cover_side = bipartite_partition(graph)
        rho = minimum_edge_cover_size(graph)
        for k in range(1, rho):
            game = TupleGame(graph, k, nu=2)
            config = algorithm_a_tuple(game, independent, cover_side)
            assert is_kmatching_nash(game, config)
            assert is_mixed_nash(game, config)

    def test_k1_coincides_with_algorithm_a(self, k24):
        from repro.equilibria.matching_ne import algorithm_a

        game = TupleGame(k24, k=1, nu=2)
        independent, cover_side = bipartite_partition(k24)
        via_tuple = algorithm_a_tuple(game, independent, cover_side)
        via_edge = algorithm_a(game, independent, cover_side)
        assert via_tuple.tp_support() == via_edge.tp_support()
        assert via_tuple.vp_support_union() == via_edge.vp_support_union()

    def test_support_size_is_delta(self):
        graph = complete_bipartite_graph(2, 6)
        independent, cover_side = bipartite_partition(graph)
        rho = minimum_edge_cover_size(graph)  # 6
        for k in range(1, rho):
            game = TupleGame(graph, k, nu=1)
            config = algorithm_a_tuple(game, independent, cover_side)
            assert len(config.tp_support()) == expected_tuple_count(rho, k)

    def test_k_equals_rho_degenerates_to_full_cover(self):
        """At k = rho the walk emits a single window covering all of V —
        a degenerate (pure-like) equilibrium, same as Theorem 3.1's."""
        graph = complete_bipartite_graph(2, 4)
        independent, cover_side = bipartite_partition(graph)
        rho = minimum_edge_cover_size(graph)
        game = TupleGame(graph, rho, nu=1)
        config = algorithm_a_tuple(game, independent, cover_side)
        assert len(config.tp_support()) == 1
        assert is_mixed_nash(game, config)

    def test_rejects_k_above_rho(self):
        graph = complete_bipartite_graph(2, 4)
        independent, cover_side = bipartite_partition(graph)
        rho = minimum_edge_cover_size(graph)
        game = TupleGame(graph, rho + 1, nu=1)
        with pytest.raises(GameError, match="pure NE"):
            algorithm_a_tuple(game, independent, cover_side)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_bipartite_full_sweep(self, seed):
        graph = random_bipartite_graph(4, 6, 0.35, seed=seed)
        independent, cover_side = bipartite_partition(graph)
        rho = minimum_edge_cover_size(graph)
        for k in range(1, rho):
            game = TupleGame(graph, k, nu=3)
            config = algorithm_a_tuple(game, independent, cover_side)
            assert is_kmatching_nash(game, config)
