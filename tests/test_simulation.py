"""Tests for the Monte-Carlo engine and estimators (repro.simulation)."""

import math
import random

import pytest

from repro.core.configuration import MixedConfiguration
from repro.core.game import GameError, TupleGame
from repro.core.profits import (
    expected_profit_tp,
    expected_profit_vp,
    hit_probability,
)
from repro.equilibria.solve import solve_game
from repro.graphs.generators import complete_bipartite_graph, grid_graph, path_graph
from repro.simulation.engine import Sampler, simulate
from repro.simulation.estimators import RunningStat, wilson_interval


class TestRunningStat:
    def test_mean_and_variance(self):
        stat = RunningStat()
        data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        for x in data:
            stat.push(x)
        assert stat.count == 8
        assert stat.mean == pytest.approx(5.0)
        # Unbiased sample variance of the classic dataset.
        assert stat.variance == pytest.approx(32.0 / 7.0)
        assert stat.stddev == pytest.approx(math.sqrt(32.0 / 7.0))

    def test_matches_numpy(self):
        import numpy as np

        rng = random.Random(3)
        data = [rng.gauss(0, 2) for _ in range(500)]
        stat = RunningStat()
        for x in data:
            stat.push(x)
        assert stat.mean == pytest.approx(float(np.mean(data)), abs=1e-12)
        assert stat.variance == pytest.approx(float(np.var(data, ddof=1)), abs=1e-9)

    def test_degenerate_cases(self):
        stat = RunningStat()
        assert stat.variance == 0.0
        assert stat.stderr == float("inf")
        stat.push(1.5)
        assert stat.variance == 0.0
        assert stat.mean == 1.5

    def test_confidence_interval_contains_mean(self):
        stat = RunningStat()
        for x in [1.0, 2.0, 3.0]:
            stat.push(x)
        low, high = stat.confidence_interval()
        assert low <= stat.mean <= high


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(30, 100)
        assert low <= 0.3 <= high
        assert 0.0 <= low < high <= 1.0

    def test_extremes_stay_in_unit_interval(self):
        low, high = wilson_interval(0, 50)
        assert low == pytest.approx(0.0, abs=1e-12) and high < 0.2
        low, high = wilson_interval(50, 50)
        assert low > 0.8 and high == pytest.approx(1.0, abs=1e-12)

    def test_narrows_with_trials(self):
        narrow = wilson_interval(500, 1000)
        wide = wilson_interval(5, 10)
        assert narrow[1] - narrow[0] < wide[1] - wide[0]

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)


class TestSampler:
    def test_frequencies_approach_distribution(self):
        sampler = Sampler({"a": 0.2, "b": 0.8})
        rng = random.Random(0)
        draws = [sampler.sample(rng) for _ in range(20_000)]
        assert draws.count("b") / len(draws) == pytest.approx(0.8, abs=0.02)

    def test_degenerate_distribution(self):
        sampler = Sampler({"only": 1.0})
        rng = random.Random(1)
        assert all(sampler.sample(rng) == "only" for _ in range(10))

    def test_rejects_empty(self):
        with pytest.raises(GameError):
            Sampler({})


class TestSimulate:
    def test_deterministic_per_seed(self, k24_game):
        config = solve_game(k24_game).mixed
        a = simulate(k24_game, config, trials=500, seed=42)
        b = simulate(k24_game, config, trials=500, seed=42)
        assert a.defender_profit.mean == b.defender_profit.mean
        assert a.catches == b.catches

    def test_seed_changes_outcome(self, k24_game):
        config = solve_game(k24_game).mixed
        a = simulate(k24_game, config, trials=500, seed=1)
        b = simulate(k24_game, config, trials=500, seed=2)
        assert a.defender_profit.mean != b.defender_profit.mean

    def test_defender_mean_matches_equation_2(self, k24_game):
        config = solve_game(k24_game).mixed
        report = simulate(k24_game, config, trials=40_000, seed=11)
        low, high = report.defender_profit.confidence_interval()
        assert low <= expected_profit_tp(config) <= high

    def test_attacker_means_match_equation_1(self):
        game = TupleGame(grid_graph(2, 3), 2, nu=3)
        config = solve_game(game).mixed
        report = simulate(game, config, trials=30_000, seed=5)
        for i in range(game.nu):
            low, high = report.attacker_profit[i].confidence_interval()
            assert low <= expected_profit_vp(config, i) <= high

    def test_empirical_hit_probabilities(self):
        game = TupleGame(path_graph(6), 2, nu=1)
        config = solve_game(game).mixed
        report = simulate(game, config, trials=30_000, seed=9)
        for v in config.vp_support_union():
            assert report.empirical_hit_probability(v) == pytest.approx(
                hit_probability(config, v), abs=0.02
            )

    def test_catch_rate_and_interval(self, k24_game):
        config = solve_game(k24_game).mixed
        report = simulate(k24_game, config, trials=10_000, seed=3)
        for i in range(k24_game.nu):
            rate = report.catch_rate(i)
            low, high = report.catch_rate_interval(i)
            assert low <= rate <= high
            # At the equilibrium each attacker is caught w.p. k/rho = 0.5.
            assert rate == pytest.approx(0.5, abs=0.03)

    def test_non_uniform_profile(self):
        game = TupleGame(path_graph(4), 1, nu=1)
        config = MixedConfiguration(
            game, [{0: 0.25, 3: 0.75}], {((0, 1),): 0.1, ((2, 3),): 0.9}
        )
        report = simulate(game, config, trials=40_000, seed=13)
        low, high = report.defender_profit.confidence_interval()
        assert low <= expected_profit_tp(config) <= high

    def test_rejects_zero_trials(self, k24_game):
        config = solve_game(k24_game).mixed
        with pytest.raises(GameError, match="at least one trial"):
            simulate(k24_game, config, trials=0)

    def test_rejects_foreign_config(self, k24_game):
        other = TupleGame(path_graph(4), 1, nu=1)
        config = solve_game(other).mixed
        with pytest.raises(GameError, match="different game"):
            simulate(k24_game, config, trials=10)


class TestEstimatorBoundaries:
    """Pinned boundary behavior for the interval helpers."""

    def test_confidence_interval_empty_is_vacuous(self):
        low, high = RunningStat().confidence_interval()
        assert low == float("-inf") and high == float("inf")

    def test_confidence_interval_single_sample_is_zero_width(self):
        stat = RunningStat()
        stat.push(2.5)
        assert stat.confidence_interval() == (2.5, 2.5)

    def test_wilson_at_zero_successes(self):
        low, high = wilson_interval(0, 20)
        assert low == 0.0
        assert 0.0 < high < 1.0

    def test_wilson_at_all_successes(self):
        low, high = wilson_interval(20, 20)
        assert high == 1.0
        assert 0.0 < low < 1.0

    def test_wilson_single_trial_boundaries(self):
        assert wilson_interval(0, 1)[0] == 0.0
        assert wilson_interval(1, 1)[1] == 1.0
