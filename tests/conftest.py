"""Shared fixtures: a zoo of graphs and ready-made game instances."""

from __future__ import annotations

import pytest

from repro.core.game import TupleGame
from repro.graphs.generators import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    double_star_graph,
    grid_graph,
    gnp_random_graph,
    hypercube_graph,
    path_graph,
    petersen_graph,
    random_bipartite_graph,
    random_tree,
    star_graph,
)


@pytest.fixture
def path4():
    return path_graph(4)


@pytest.fixture
def path7():
    return path_graph(7)


@pytest.fixture
def cycle6():
    return cycle_graph(6)


@pytest.fixture
def cycle5():
    return cycle_graph(5)


@pytest.fixture
def k4():
    return complete_graph(4)


@pytest.fixture
def k23():
    return complete_bipartite_graph(2, 3)


@pytest.fixture
def k24():
    return complete_bipartite_graph(2, 4)


@pytest.fixture
def star5():
    return star_graph(5)


@pytest.fixture
def grid34():
    return grid_graph(3, 4)


@pytest.fixture
def petersen():
    return petersen_graph()


@pytest.fixture
def cube3():
    return hypercube_graph(3)


def bipartite_zoo():
    """Deterministic bipartite instances used across parametrized tests."""
    return [
        ("path4", path_graph(4)),
        ("path7", path_graph(7)),
        ("cycle6", cycle_graph(6)),
        ("star5", star_graph(5)),
        ("k23", complete_bipartite_graph(2, 3)),
        ("k34", complete_bipartite_graph(3, 4)),
        ("grid33", grid_graph(3, 3)),
        ("grid34", grid_graph(3, 4)),
        ("cube3", hypercube_graph(3)),
        ("tree12", random_tree(12, seed=5)),
        ("tree20", random_tree(20, seed=9)),
        ("rb57", random_bipartite_graph(5, 7, 0.3, seed=3)),
        ("rb66", random_bipartite_graph(6, 6, 0.4, seed=11)),
        ("dstar34", double_star_graph(3, 4)),
    ]


def general_zoo():
    """Instances including non-bipartite graphs."""
    return bipartite_zoo() + [
        ("cycle5", cycle_graph(5)),
        ("k4", complete_graph(4)),
        ("k5", complete_graph(5)),
        ("petersen", petersen_graph()),
        ("gnp12", gnp_random_graph(12, 0.3, seed=2)),
        ("gnp15", gnp_random_graph(15, 0.25, seed=8)),
    ]


def zoo_params(zoo):
    """Turn a zoo into pytest.param entries with readable ids."""
    return [pytest.param(graph, id=name) for name, graph in zoo]


@pytest.fixture
def k24_game():
    """K_{2,4} with k=2 and five attackers: the running example."""
    return TupleGame(complete_bipartite_graph(2, 4), k=2, nu=5)
