"""Tests for fictitious play (repro.solvers.fictitious_play)."""

import pytest

from repro.core.game import TupleGame
from repro.graphs.generators import (
    complete_bipartite_graph,
    cycle_graph,
    path_graph,
    petersen_graph,
)
from repro.matching.covers import minimum_edge_cover_size
from repro.solvers.fictitious_play import fictitious_play
from repro.solvers.lp import solve_minimax


class TestValueBounds:
    @pytest.mark.parametrize(
        "graph, k",
        [(path_graph(5), 1), (path_graph(5), 2), (complete_bipartite_graph(2, 4), 2),
         (cycle_graph(6), 1), (petersen_graph(), 2)],
        ids=["path5-k1", "path5-k2", "k24-k2", "cycle6-k1", "petersen-k2"],
    )
    def test_bounds_sandwich_true_value(self, graph, k):
        game = TupleGame(graph, k, nu=1)
        true_value = solve_minimax(game).value
        result = fictitious_play(game, rounds=400)
        assert result.lower_bound <= true_value + 1e-9
        assert result.upper_bound >= true_value - 1e-9

    def test_bounds_tighten_with_rounds(self):
        game = TupleGame(complete_bipartite_graph(2, 4), 2, nu=1)
        short = fictitious_play(game, rounds=50)
        long = fictitious_play(game, rounds=800)
        assert long.gap <= short.gap + 1e-9

    def test_converges_near_value(self):
        game = TupleGame(path_graph(5), 2, nu=1)
        true_value = solve_minimax(game).value
        result = fictitious_play(game, rounds=1500)
        assert result.value_estimate == pytest.approx(true_value, abs=0.05)


class TestMechanics:
    def test_deterministic(self):
        game = TupleGame(path_graph(6), 2, nu=1)
        a = fictitious_play(game, rounds=100)
        b = fictitious_play(game, rounds=100)
        assert a.attacker_strategy == b.attacker_strategy
        assert a.defender_strategy == b.defender_strategy

    def test_strategies_are_distributions(self):
        game = TupleGame(cycle_graph(6), 2, nu=1)
        result = fictitious_play(game, rounds=120)
        assert sum(result.attacker_strategy.values()) == pytest.approx(1.0)
        assert sum(result.defender_strategy.values()) == pytest.approx(1.0)

    def test_history_length_matches_rounds(self):
        game = TupleGame(path_graph(4), 1, nu=1)
        result = fictitious_play(game, rounds=37)
        assert result.rounds == 37
        assert len(result.history) == 37

    def test_early_stop_on_tolerance(self):
        game = TupleGame(path_graph(4), 2, nu=1)
        result = fictitious_play(game, rounds=10_000, tolerance=0.2)
        assert result.rounds < 10_000
        assert result.gap <= 0.2

    def test_defender_gain_estimate_scales_with_nu(self):
        game = TupleGame(path_graph(5), 2, nu=4)
        result = fictitious_play(game, rounds=200)
        assert result.defender_gain_estimate(4) == pytest.approx(
            4 * result.value_estimate
        )

    def test_repr(self):
        game = TupleGame(path_graph(4), 1, nu=1)
        assert "value≈" in repr(fictitious_play(game, rounds=20))


class TestDegenerateParameters:
    """Regression: rounds=0 used to surface as a bare ValueError from
    ``max()`` over the empty history (and a zero division building the
    empirical strategies) instead of a GameError — and the invalid call
    still minted a cache key."""

    def test_zero_rounds_raises_game_error(self):
        from repro.core.game import GameError

        game = TupleGame(path_graph(4), 1, nu=1)
        with pytest.raises(GameError, match="rounds >= 1"):
            fictitious_play(game, rounds=0)

    def test_negative_rounds_raises_game_error(self):
        from repro.core.game import GameError

        game = TupleGame(path_graph(4), 1, nu=1)
        with pytest.raises(GameError, match="rounds >= 1"):
            fictitious_play(game, rounds=-3)

    @pytest.mark.parametrize("tolerance", [0.0, -1e-6, -5.0])
    def test_non_positive_tolerance_raises_game_error(self, tolerance):
        from repro.core.game import GameError

        game = TupleGame(path_graph(4), 1, nu=1)
        with pytest.raises(GameError, match="positive tolerance"):
            fictitious_play(game, rounds=10, tolerance=tolerance)

    def test_invalid_params_never_mint_a_cache_key(self, tmp_path):
        import repro.cache as result_cache
        from repro.core.game import GameError

        game = TupleGame(path_graph(4), 1, nu=1)
        result_cache.enable_cache(tmp_path)
        try:
            with pytest.raises(GameError):
                fictitious_play(game, rounds=0)
            assert result_cache.open_store(tmp_path).stats()["entries"] == 0
        finally:
            result_cache.disable_cache()

    def test_single_round_is_valid(self):
        game = TupleGame(path_graph(4), 1, nu=1)
        result = fictitious_play(game, rounds=1)
        assert result.rounds == 1
        assert len(result.history) == 1
