"""Setup shim.

Kept alongside pyproject.toml so the package installs in offline
environments whose setuptools predates bundled bdist_wheel support
(legacy ``pip install -e . --no-build-isolation`` / ``setup.py develop``).
"""

from setuptools import setup

setup()
