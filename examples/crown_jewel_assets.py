"""Crown jewels: when hosts are not equally valuable.

The paper's model treats all hosts alike.  This scenario adds asset
values: a small finance network where one database holds the payroll.
As the database's value grows, the weighted equilibrium (an extension of
this library; see repro.weighted) shifts the scan schedule toward its
links — quantifying the intuition "protect what matters" — while the
paper's uniform schedule becomes exploitable.

Run:  python examples/crown_jewel_assets.py
"""

from repro import TupleGame, solve_game
from repro.analysis.tables import Table
from repro.core.profits import hit_probability
from repro.graphs.core import Graph
from repro.weighted import WeightedTupleGame, weighted_lp_equilibrium

# Finance subnet: two gateways, four hosts; 'db' is the payroll database.
network = Graph(
    (gw, host)
    for gw in ("gw1", "gw2")
    for host in ("db", "web", "mail", "files")
)
K = 2

print("network: 2 gateways x 4 hosts; defender scans k = 2 links\n")

table = Table(["db value (others = 1)", "escape value", "P(scan hits db)",
               "P(scan hits web)", "paper's uniform schedule still optimal"])
unweighted_config = solve_game(TupleGame(network, K, nu=1)).mixed
for db_value in (1, 3, 9, 27):
    weights = {v: 1.0 for v in network.vertices()}
    weights["db"] = float(db_value)
    game = WeightedTupleGame(network, K, weights, nu=1)
    config, solution = weighted_lp_equilibrium(game)
    still_optimal, _ = game.verify_best_responses(unweighted_config, tol=1e-9)
    table.add_row([
        db_value,
        solution.value,
        hit_probability(config, "db"),
        hit_probability(config, "web"),
        still_optimal,
    ])
print(table.render(title="weighted equilibria as the database value grows"))

print("\nreading the table: at equal values the defender scans uniformly")
print("(the paper's equilibrium); as the database dominates, its links end")
print("up scanned almost always, ordinary hosts almost never — and the")
print("attacker's equilibrium profit approaches the value of one ordinary")
print("host, because the database becomes too hot to touch.")
