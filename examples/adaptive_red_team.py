"""Red-team drill: can a learning attacker beat the scan schedule?

The equilibria of the paper promise an interception probability against a
*rational* attacker.  A sharper operational question: what happens when a
red team probes the network repeatedly, watching which probes get caught,
and adapts?  We pit a no-regret learner (regret matching) against three
schedules on the same fabric and budget:

1. the Lemma 4.1 equilibrium rotation,
2. a tempting-but-wrong skewed rotation ("scan the busy links more"),
3. a fixed schedule (what an unrandomized cron job would do).

Run:  python examples/adaptive_red_team.py
"""

from repro import TupleGame, solve_game
from repro.analysis.tables import Table
from repro.core.configuration import MixedConfiguration
from repro.graphs.generators import grid_graph
from repro.matching.covers import minimum_edge_cover_size
from repro.simulation.adaptive import exploit_gap, regret_matching_attack

K = 2
ROUNDS = 10_000

fabric = grid_graph(3, 3)
rho = minimum_edge_cover_size(fabric)
game = TupleGame(fabric, K, nu=1)
value = K / rho
print(f"fabric: 3x3 grid, rho = {rho}; defender scans k = {K} links")
print(f"equilibrium guarantee: any attacker escapes at most "
      f"{1 - value:.0%} of rounds, however it adapts\n")

equilibrium = solve_game(game).mixed
tuples = sorted(equilibrium.tp_support())
skewed = MixedConfiguration(
    game, [{0: 1.0}],
    {t: (0.6 if i == 0 else 0.4 / (len(tuples) - 1)) for i, t in enumerate(tuples)},
)
static = MixedConfiguration(game, [{0: 1.0}], {tuples[0]: 1.0})

table = Table(["schedule", "red-team escape rate", "exploit gap", "verdict"])
for label, schedule in [
    ("equilibrium rotation", equilibrium),
    ("skewed rotation 60/40", skewed),
    ("fixed schedule", static),
]:
    result = regret_matching_attack(game, schedule, rounds=ROUNDS, seed=42)
    gap = exploit_gap(result, value)
    verdict = "holds the line" if gap < 0.03 else "EXPLOITED"
    table.add_row([label, f"{result.escape_rate:.1%}", f"{gap:+.3f}", verdict])
print(table.render(title=f"{ROUNDS} probing rounds, regret-matching red team"))

print("\ntakeaway: only the equilibrium randomization of Lemma 4.1 keeps the")
print("adaptive red team at the theoretical escape cap — any skew is found")
print("and farmed within a few thousand probes.")
