"""When the structural machinery declines: a peer-to-peer mesh.

The Petersen graph is the classic peer-to-peer mesh testbed — 3-regular
and non-bipartite.  Its maximum independent set (4) is smaller than its
minimum edge cover (5), so no IS/VC partition exists and the paper's
k-matching construction does not apply (Corollary 4.11).  The library's
baselines still solve it:

* the exact LP minimax gives the equilibrium and the defender's value;
* fictitious play converges to the same value without enumerating tuples;
* the value still turns out to be k·2/n — Petersen has a perfect matching,
  so the "linear in k" law survives with slope 2ν/n = ν/ρ.

Run:  python examples/nonbipartite_peer_network.py
"""

from repro import NoEquilibriumFoundError, TupleGame, solve_game, verify_best_responses
from repro.analysis.tables import Table
from repro.graphs.generators import petersen_graph
from repro.matching.covers import minimum_edge_cover_size
from repro.solvers.fictitious_play import fictitious_play
from repro.solvers.lp import lp_equilibrium

ATTACKERS = 3

mesh = petersen_graph()
rho = minimum_edge_cover_size(mesh)
print(f"mesh: Petersen graph, n = {mesh.n}, m = {mesh.m}, rho = {rho}")

# 1. The paper's machinery honestly declines (no IS/VC partition).
try:
    solve_game(TupleGame(mesh, 2, nu=ATTACKERS), allow_extensions=False)
except NoEquilibriumFoundError as exc:
    print(f"\npaper machinery: {exc}")

# 2. The library's perfect-matching extension steps in (Petersen has a
#    perfect matching, so the cyclic-window construction applies to it).
result = solve_game(TupleGame(mesh, 2, nu=ATTACKERS))
print(f"extension solver: kind={result.kind}, "
      f"gain={result.defender_gain:.4f} (= 2k*nu/n)")

# 3. The exact LP baseline confirms the value independently.
table = Table(["k", "LP value (per attacker)", "k/rho", "defender gain",
               "fictitious-play bracket"])
for k in (1, 2, 3, 4):
    game = TupleGame(mesh, k, nu=ATTACKERS)
    config, solution = lp_equilibrium(game)
    ok, gaps = verify_best_responses(game, config, tol=1e-6)
    assert ok, gaps
    fp = fictitious_play(game, rounds=300)
    table.add_row([
        k, solution.value, k / rho, ATTACKERS * solution.value,
        f"[{fp.lower_bound:.3f}, {fp.upper_bound:.3f}]",
    ])
print()
print(table.render(title=f"Petersen mesh, nu = {ATTACKERS} attackers"))

print("\nthe gain is still linear in k (slope 2*nu/n = nu/rho): the law of")
print("Theorem 4.5 extends here because the Petersen graph has a perfect")
print("matching — see EXPERIMENTS.md E6 for a graph (C5) where it fails.")
