"""Topology mitigation: subdividing links makes any network defensible.

Some topologies resist the paper's constructive machinery entirely —
the "house" network below (a 5-ring with one chord) has no IS/VC
partition, no perfect matching, and no usable symmetry, so none of the
library's structural constructions produce an equilibrium.

An architectural fix: put a relay (a bastion or inline monitor) on every
link.  Subdivision makes any graph bipartite, and bipartite networks
always admit k-matching equilibria computable in polynomial time
(Theorem 5.1).  This script shows the before/after, including what the
defender's guarantee becomes on the relayed network.

Run:  python examples/topology_mitigation.py
"""

from repro import NoEquilibriumFoundError, TupleGame, solve_game
from repro.analysis.tables import Table
from repro.graphs.core import Graph
from repro.graphs.properties import is_bipartite
from repro.graphs.transform import subdivide
from repro.matching.covers import minimum_edge_cover_size
from repro.solvers.lp import solve_minimax

house = Graph([(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)])
print(f"original network: n={house.n}, m={house.m}, "
      f"bipartite={is_bipartite(house)}")

# --- Before: the structural machinery declines --------------------------
for k in (1, 2):
    try:
        solve_game(TupleGame(house, k, nu=1))
        print(f"  k={k}: solved (unexpected)")
    except NoEquilibriumFoundError:
        value = solve_minimax(TupleGame(house, k, nu=1)).value
        print(f"  k={k}: no structural equilibrium; LP-only value = {value:.4f}")

# --- After: relay every link --------------------------------------------
relayed = subdivide(house)
rho = minimum_edge_cover_size(relayed)
print(f"\nrelayed network: n={relayed.n}, m={relayed.m}, "
      f"bipartite={is_bipartite(relayed)}, rho={rho}")

table = Table(["k", "equilibrium", "interception per attacker"])
for k in range(1, rho + 1):
    result = solve_game(TupleGame(relayed, k, nu=1), allow_extensions=False)
    table.add_row([k, result.kind, result.defender_gain])
print(table.render(title="defense profile of the relayed network "
                         "(paper machinery only)"))

print("\ntakeaway: adding relays trades a larger attack surface "
      f"(rho grows to {rho})")
print("for *constructive, polynomial-time* defense schedules on every")
print("budget k — Theorem 5.1 applies to any subdivided topology.")
