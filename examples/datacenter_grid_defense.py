"""Defending a data-center grid fabric: pure vs mixed regimes.

Scenario: a 4x6 grid of racks (a standard fabric topology, bipartite).
We walk the full defender-power spectrum: below rho(G) the defender must
randomize (k-matching NE, Theorem 4.12); at k = rho(G) it can lock the
whole fabric down deterministically (pure NE, Theorem 3.1).  For one
operating point we show the actual deployment artifact — the randomized
scan schedule — and validate it by simulation.

Run:  python examples/datacenter_grid_defense.py
"""

from repro import TupleGame, solve_game
from repro.analysis.tables import Table
from repro.core.profits import hit_probability
from repro.graphs.generators import grid_graph
from repro.matching.covers import minimum_edge_cover_size
from repro.simulation.engine import simulate

ROWS, COLS = 4, 6
ATTACKERS = 4

fabric = grid_graph(ROWS, COLS)
rho = minimum_edge_cover_size(fabric)
print(f"fabric: {ROWS}x{COLS} grid, {fabric.n} racks, {fabric.m} links, "
      f"rho = {rho}\n")

# --- Regime sweep ------------------------------------------------------
table = Table(["k", "regime", "expected catches", "attacker escape prob"])
for k in range(1, rho + 1):
    result = solve_game(TupleGame(fabric, k, nu=ATTACKERS))
    escape = 1.0 - result.defender_gain / ATTACKERS
    table.add_row([k, result.kind, result.defender_gain, escape])
print(table.render(title=f"regime sweep (nu = {ATTACKERS})"))

# --- Deployment artifact at k = 4 --------------------------------------
K = 4
game = TupleGame(fabric, K, nu=ATTACKERS)
result = solve_game(game)
config = result.mixed

print(f"\nscan schedule at k = {K} (play one line per round, "
       "chosen uniformly):")
for t, prob in sorted(config.tp_distribution().items()):
    links = ", ".join(f"{u}-{v}" for u, v in t)
    print(f"  p = {prob:.4f}:  scan links {links}")

support = sorted(config.vp_support_union())
print(f"\nrational attackers restrict themselves to racks {support}")
print(f"every one of them is intercepted with probability "
      f"{hit_probability(config, support[0]):.4f} = k/rho = {K}/{rho}")

# --- Validation by playout ---------------------------------------------
sim = simulate(game, config, trials=50_000, seed=7)
low, high = sim.defender_profit.confidence_interval()
print(f"\n50,000 simulated rounds: {sim.defender_profit.mean:.4f} catches "
      f"per round (95% CI [{low:.4f}, {high:.4f}], "
      f"analytic {result.defender_gain:.4f})")
assert low <= result.defender_gain <= high
