"""A guided tour of the paper, theorem by theorem, on one running example.

Every main result of *The Power of the Defender* demonstrated on a single
network (a random bipartite "clients and servers" graph), in the order
the paper presents them.  Each step prints what the theorem claims and
what this library measures.

Run:  python examples/paper_walkthrough.py
"""

from repro import (
    TupleGame,
    check_characterization,
    expected_profit_tp,
    find_pure_nash,
    is_pure_nash,
    pure_nash_exists,
    solve_game,
)
from repro.equilibria import (
    edge_to_tuple,
    is_kmatching_nash,
    matching_equilibrium,
    tuple_to_edge,
)
from repro.graphs.generators import random_bipartite_graph
from repro.matching.covers import minimum_edge_cover_size
from repro.matching.partition import bipartite_partition, is_valid_partition
from repro.solvers.lp import solve_minimax

NU = 4

graph = random_bipartite_graph(4, 7, 0.35, seed=11)
rho = minimum_edge_cover_size(graph)
print(f"running example: bipartite network, n={graph.n}, m={graph.m}, "
      f"rho(G)={rho}, nu={NU} attackers\n")

# --- Theorem 3.1: pure NE iff an edge cover of size k exists ------------
print("Theorem 3.1 / Corollaries 3.2-3.3 — pure equilibria")
for k in (rho - 1, rho):
    game = TupleGame(graph, k, nu=NU)
    exists = pure_nash_exists(game)
    print(f"  k={k}: pure NE exists = {exists} (threshold is rho={rho})")
    if exists:
        config = find_pure_nash(game)
        assert is_pure_nash(game, config)
        print(f"         constructed and verified; defender catches all {NU}")

# --- Corollary 4.11 / Theorem 2.2: the IS/VC partition -------------------
print("\nCorollary 4.11 — the IS/VC characterization")
independent, cover = bipartite_partition(graph)
assert is_valid_partition(graph, independent)
print(f"  Koenig partition: |IS|={len(independent)} (= rho, always), "
      f"|VC|={len(cover)}")

# --- Theorem 4.12/5.1: Algorithm A_tuple ---------------------------------
K = max(2, rho // 2)
print(f"\nTheorems 4.12 + 5.1 — Algorithm A_tuple at k={K}")
game = TupleGame(graph, K, nu=NU)
result = solve_game(game)
assert result.kind == "k-matching"
assert is_kmatching_nash(game, result.mixed)
report = check_characterization(game, result.mixed)
assert report.is_nash
print(f"  k-matching NE computed; all six Theorem 3.4 clauses verified")
print(f"  defender gain = {result.defender_gain:.4f} = k*nu/rho "
      f"= {K}*{NU}/{rho}")

# --- Theorem 4.5: the reduction and the gain law --------------------------
print("\nTheorem 4.5 — reduction to and from the Edge model")
edge_game = TupleGame(graph, 1, nu=NU)
edge_ne = matching_equilibrium(edge_game)
lifted = edge_to_tuple(edge_game, edge_ne, K)
flattened = tuple_to_edge(game, result.mixed)
ratio = expected_profit_tp(lifted) / expected_profit_tp(edge_ne)
print(f"  IP_tp(Pi_k) / IP_tp(Pi_1) = {ratio:.4f} (= k = {K})")
assert abs(ratio - K) < 1e-9
print(f"  round trip recovers the Edge-model supports: "
      f"{flattened.tp_support_edges() == edge_ne.tp_support_edges()}")

# --- The headline: linear gain, cross-checked by LP ----------------------
print("\nSection 1.2 headline — the power of the defender is linear in k")
for k in range(1, rho + 1):
    g = TupleGame(graph, k, nu=NU)
    structural = solve_game(g).defender_gain
    lp = (NU * solve_minimax(g).value
          if g.tuple_strategy_count() <= 30_000 else None)
    lp_text = f"  LP agrees: {lp:.4f}" if lp is not None else ""
    print(f"  k={k}: gain = {structural:.4f}{lp_text}")
print(f"\nslope: {NU}/{rho} = {NU / rho:.4f} extra expected catches per "
      "unit of defender power — every link the scanner can watch buys "
      "the same protection.")
