"""Quickstart: solve the Tuple-model security game on a small network.

The scenario of the paper: attackers (viruses) pick network hosts, one
defender (the system security software) scans k communication links and
catches every attacker sitting on an endpoint of a scanned link.

Run:  python examples/quickstart.py
"""

from repro import TupleGame, check_characterization, solve_game
from repro.core.profits import expected_profit_tp, hit_probability
from repro.graphs.core import Graph
from repro.simulation.engine import simulate

# A small office network: two servers (s1, s2) and five workstations,
# every workstation wired to both servers.
network = Graph(
    (server, workstation)
    for server in ("s1", "s2")
    for workstation in ("w1", "w2", "w3", "w4", "w5")
)

# Five attackers are loose; the defender can scan k = 2 links at a time.
game = TupleGame(network, k=2, nu=5)

result = solve_game(game)
print(f"equilibrium kind      : {result.kind}")
print(f"defender gain (IP_tp) : {result.defender_gain:.4f} attackers caught "
      "per round (expected)")

config = result.mixed
attacker_support = sorted(config.vp_support_union())
print(f"attackers hide on     : {attacker_support}")
print(f"defender mixes over   : {len(config.tp_support())} link pairs")
print(f"hit probability       : {hit_probability(config, attacker_support[0]):.4f} "
      "(equal on every attacker position — Theorem 3.4)")

# Verify the equilibrium against the paper's characterization...
report = check_characterization(game, config)
print(f"Theorem 3.4 verified  : {report.is_nash}")

# ...and against 20,000 simulated rounds of actual play.
sim = simulate(game, config, trials=20_000, seed=2)
low, high = sim.defender_profit.confidence_interval()
print(f"simulated gain        : {sim.defender_profit.mean:.4f} "
      f"(95% CI [{low:.4f}, {high:.4f}]; "
      f"analytic {expected_profit_tp(config):.4f})")
