"""Sizing a security budget with the linear gain law.

Scenario: an enterprise runs a two-tier network (application servers on
one side, client subnets on the other).  The security team can license a
scanner for k concurrent links; each increment of k costs the same, and
the paper's headline result says each increment buys the same amount of
protection (Corollaries 4.7/4.10: gain = k·ν/ρ(G)).  This script sweeps k,
reproduces the linear law, cross-checks small instances against the exact
LP optimum, and answers a concrete planning question: what is the smallest
k that intercepts at least half the expected attacks?

Run:  python examples/enterprise_security_budget.py
"""

from repro import TupleGame, solve_game
from repro.analysis.gain import fit_slope_through_origin, gain_curve
from repro.analysis.tables import Table
from repro.graphs.generators import random_bipartite_graph
from repro.matching.covers import minimum_edge_cover_size

SERVERS = 6
SUBNETS = 14
ATTACKERS = 10

network = random_bipartite_graph(SERVERS, SUBNETS, 0.35, seed=2026)
rho = minimum_edge_cover_size(network)
print(f"network: {network.n} hosts, {network.m} links, "
      f"minimum edge cover rho = {rho}")
print(f"threat model: nu = {ATTACKERS} concurrent attackers\n")

points = gain_curve(network, ATTACKERS, include_lp=True, lp_tuple_limit=20_000)

table = Table(["k (links scanned)", "equilibrium", "expected catches",
               "catch rate", "LP optimum"])
target_k = None
for p in points:
    rate = p.gain / ATTACKERS
    if target_k is None and rate >= 0.5:
        target_k = p.k
    table.add_row([
        p.k, p.kind, p.gain, f"{100 * rate:.1f}%",
        "-" if p.lp_gain is None else f"{p.lp_gain:.4f}",
    ])
print(table.render(title="defender gain vs scanner capacity"))

mixed = [p for p in points if p.kind == "k-matching"]
slope = fit_slope_through_origin(mixed)
print(f"\nmarginal value of one extra scanned link: "
      f"{slope:.4f} catches/round (= nu/rho = {ATTACKERS / rho:.4f})")
print(f"smallest k intercepting >= 50% of attacks: k = {target_k}")
print(f"full protection (pure NE, every attack intercepted): k = {rho}")

# Sanity: the solver agrees with the sweep at the recommendation point.
result = solve_game(TupleGame(network, target_k, nu=ATTACKERS))
assert result.defender_gain >= ATTACKERS / 2
