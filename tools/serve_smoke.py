#!/usr/bin/env python
"""Solve-service lifecycle gate (``make serve-smoke``).

Boots the HTTP service on an ephemeral port with the provenance ledger,
the event bus and the access log pointed at throwaway directories, then
walks the whole wire contract once:

1. ``GET /healthz`` reports liveness and the pool shape (``inflight``,
   ``capacity``, ``workers``, ``queue_limit``, ``queue_depth``,
   ``uptime_s``);
2. one ``POST`` per solver endpoint (``/solve``, ``/double-oracle``,
   ``/fictitious-play``, ``/ranges``) answers 200 with a
   ``repro.serve/response/v1`` envelope and the correlation headers
   (``Date``, ``X-Request-Id``, ``traceparent``);
3. an invalid request is refused with a structured
   ``repro.serve/error/v1`` body and never reaches a worker;
4. ``GET /metrics`` exposes the ``repro_serve_*`` counters the requests
   just incremented, ``GET /slo`` the live burn-rate report;
5. every successful request left a ``serve.*`` ledger record;
6. **correlation**: one request's ``X-Request-Id`` matches the
   ``trace_id`` of its ledger record, its ``run.start``/``run.end``
   events and its access-log line — the end-to-end trace contract.

Deterministic, self-contained, a few seconds end to end.
"""

from __future__ import annotations

import json
import sys
import tempfile
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

GAME = {
    "vertices": [1, 2, 3, 4, 5, 6],
    "edges": [[1, 2], [2, 3], [3, 4], [4, 5], [5, 6], [1, 6]],
    "k": 2,
    "nu": 2,
}

ENDPOINT_PARAMS = {
    "solve": {"seed": 0},
    "double-oracle": {"max_iterations": 60},
    "fictitious-play": {"rounds": 40},
    "ranges": {"side": "both"},
}


def post(base: str, path: str, body: bytes):
    request = urllib.request.Request(
        base + path, data=body, headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=60.0) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


def fetch(base: str, path: str):
    with urllib.request.urlopen(base + path, timeout=30.0) as resp:
        return resp.status, resp.read().decode()


def check(condition: bool, label: str) -> None:
    if not condition:
        raise AssertionError(label)
    print(f"  ok: {label}")


def main() -> int:
    from repro.obs import access as obs_access
    from repro.obs import events as obs_events
    from repro.obs import ledger as obs_ledger
    from repro.serve import ERROR_SCHEMA, RESPONSE_SCHEMA, ServeConfig, \
        running_service

    tmp_dir = Path(tempfile.mkdtemp(prefix="repro-serve-smoke-"))
    ledger_dir = tmp_dir / "ledger"
    events_dir = tmp_dir / "events"
    access_dir = tmp_dir / "access"
    obs_ledger.enable_ledger(ledger_dir)
    obs_events.enable_events(events_dir)
    obs_access.enable_access_log(access_dir)
    try:
        with running_service(ServeConfig(workers=2, queue_limit=4)) \
                as (service, base):
            print(f"service up at {base}")

            status, text = fetch(base, "/healthz")
            health = json.loads(text)
            check(status == 200 and health["status"] == "ok",
                  "healthz answers ok")
            check(health["capacity"] == service.pool.capacity,
                  "healthz reports pool capacity")
            check(health["workers"] == 2 and health["queue_limit"] == 4,
                  "healthz reports workers and queue_limit")
            check(health["queue_depth"] == 0,
                  "healthz reports an idle queue_depth")
            check(isinstance(health["uptime_s"], float)
                  and health["uptime_s"] >= 0.0,
                  "healthz reports uptime_s")

            trace_ids = {}
            for endpoint, params in ENDPOINT_PARAMS.items():
                body = json.dumps({"game": GAME, "params": params}).encode()
                status, payload, headers = post(base, f"/{endpoint}", body)
                check(status == 200, f"/{endpoint} answers 200")
                check(payload["schema"] == RESPONSE_SCHEMA,
                      f"/{endpoint} wraps the response envelope")
                trace_id = headers.get("X-Request-Id", "")
                check(len(trace_id) == 32
                      and all(c in "0123456789abcdef" for c in trace_id),
                      f"/{endpoint} echoes a 32-hex X-Request-Id")
                check(headers.get("traceparent", "").startswith(
                          f"00-{trace_id}-"),
                      f"/{endpoint} echoes a matching traceparent")
                check("Date" in headers, f"/{endpoint} carries a Date header")
                trace_ids[endpoint] = trace_id

            status, payload, headers = post(base, "/solve", b"{broken json")
            check(status == 400 and payload["schema"] == ERROR_SCHEMA,
                  "malformed JSON is a structured 400")
            check(payload["error"]["code"] == "invalid-json",
                  "error code is invalid-json")
            check(len(headers.get("X-Request-Id", "")) == 32,
                  "error responses carry X-Request-Id too")

            status, text = fetch(base, "/metrics")
            check(status == 200, "/metrics answers 200")
            check("repro_serve_requests_count" in text,
                  "metrics expose the request counter")
            check("repro_serve_errors_count" in text,
                  "metrics expose the error counter")

            status, text = fetch(base, "/slo")
            slo_doc = json.loads(text)
            check(status == 200
                  and slo_doc["schema"] == "repro.obs/slo-report/v1",
                  "/slo answers the slo-report document")
            check(any(r["requests"] > 0 for r in slo_doc["results"]),
                  "slo engine observed the requests")
    finally:
        obs_access.disable_access_log()
        obs_events.disable_events()
        obs_ledger.disable_ledger()

    records = obs_ledger.read_runs(directory=ledger_dir)
    entry_points = {record["entry_point"] for record in records}
    for endpoint in ENDPOINT_PARAMS:
        check(f"serve.{endpoint}" in entry_points,
              f"ledger recorded serve.{endpoint}")
    statuses = {record["entry_point"]: record.get("status")
                for record in records}
    check(all(statuses[f"serve.{e}"] == "ok" for e in ENDPOINT_PARAMS),
          "all serve records finished ok")

    # The correlation contract: the trace id the /solve response echoed
    # is the trace id of its ledger record, run events and access line.
    solve_trace = trace_ids["solve"]
    solve_records = [r for r in records
                     if r["entry_point"] == "serve.solve"]
    check(any(r.get("trace_id") == solve_trace for r in solve_records),
          "ledger record carries the response's trace id")
    events = obs_events.read_events(events_dir / obs_events.SINK_FILENAME)
    run_events = [e for e in events
                  if e.get("type") in ("run.start", "run.end")
                  and e.get("payload", {}).get("entry_point")
                  == "serve.solve"]
    check(len(run_events) >= 2 and all(
              e["payload"].get("trace_id") == solve_trace
              for e in run_events),
          "run.start/run.end events carry the response's trace id")
    access_lines = obs_access.read_access(access_dir)
    check(any(line.get("trace_id") == solve_trace
              and line.get("endpoint") == "/solve"
              and line.get("status") == 200
              for line in access_lines),
          "access log line carries the response's trace id")
    check(any(line.get("status") == 400
              and line.get("error_code") == "invalid-json"
              for line in access_lines),
          "access log recorded the rejected request")

    print("serve-smoke OK: endpoints, error contract, metrics, slo, "
          "ledger records and end-to-end trace correlation all verified")
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except AssertionError as exc:
        print(f"serve-smoke FAILED: {exc}", file=sys.stderr)
        raise SystemExit(1)
