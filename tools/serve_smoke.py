#!/usr/bin/env python
"""Solve-service lifecycle gate (``make serve-smoke``).

Boots the HTTP service on an ephemeral port with the provenance ledger
pointed at a throwaway directory, then walks the whole wire contract
once:

1. ``GET /healthz`` reports liveness and pool capacity;
2. one ``POST`` per solver endpoint (``/solve``, ``/double-oracle``,
   ``/fictitious-play``, ``/ranges``) answers 200 with a
   ``repro.serve/response/v1`` envelope;
3. an invalid request is refused with a structured
   ``repro.serve/error/v1`` body and never reaches a worker;
4. ``GET /metrics`` exposes the ``repro_serve_*`` counters the requests
   just incremented;
5. every successful request left a ``serve.*`` ledger record.

Deterministic, self-contained, a few seconds end to end.
"""

from __future__ import annotations

import json
import sys
import tempfile
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

GAME = {
    "vertices": [1, 2, 3, 4, 5, 6],
    "edges": [[1, 2], [2, 3], [3, 4], [4, 5], [5, 6], [1, 6]],
    "k": 2,
    "nu": 2,
}

ENDPOINT_PARAMS = {
    "solve": {"seed": 0},
    "double-oracle": {"max_iterations": 60},
    "fictitious-play": {"rounds": 40},
    "ranges": {"side": "both"},
}


def post(base: str, path: str, body: bytes):
    request = urllib.request.Request(
        base + path, data=body, headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=60.0) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def fetch(base: str, path: str):
    with urllib.request.urlopen(base + path, timeout=30.0) as resp:
        return resp.status, resp.read().decode()


def check(condition: bool, label: str) -> None:
    if not condition:
        raise AssertionError(label)
    print(f"  ok: {label}")


def main() -> int:
    from repro.obs import ledger as obs_ledger
    from repro.serve import ERROR_SCHEMA, RESPONSE_SCHEMA, ServeConfig, \
        running_service

    ledger_dir = Path(tempfile.mkdtemp(prefix="repro-serve-smoke-"))
    obs_ledger.enable_ledger(ledger_dir)
    try:
        with running_service(ServeConfig(workers=2, queue_limit=4)) \
                as (service, base):
            print(f"service up at {base}")

            status, text = fetch(base, "/healthz")
            health = json.loads(text)
            check(status == 200 and health["status"] == "ok",
                  "healthz answers ok")
            check(health["capacity"] == service.pool.capacity,
                  "healthz reports pool capacity")

            for endpoint, params in ENDPOINT_PARAMS.items():
                body = json.dumps({"game": GAME, "params": params}).encode()
                status, payload = post(base, f"/{endpoint}", body)
                check(status == 200, f"/{endpoint} answers 200")
                check(payload["schema"] == RESPONSE_SCHEMA,
                      f"/{endpoint} wraps the response envelope")

            status, payload = post(base, "/solve", b"{broken json")
            check(status == 400 and payload["schema"] == ERROR_SCHEMA,
                  "malformed JSON is a structured 400")
            check(payload["error"]["code"] == "invalid-json",
                  "error code is invalid-json")

            status, text = fetch(base, "/metrics")
            check(status == 200, "/metrics answers 200")
            check("repro_serve_requests_count" in text,
                  "metrics expose the request counter")
            check("repro_serve_errors_count" in text,
                  "metrics expose the error counter")
    finally:
        obs_ledger.disable_ledger()

    records = obs_ledger.read_runs(directory=ledger_dir)
    entry_points = {record["entry_point"] for record in records}
    for endpoint in ENDPOINT_PARAMS:
        check(f"serve.{endpoint}" in entry_points,
              f"ledger recorded serve.{endpoint}")
    statuses = {record["entry_point"]: record.get("status")
                for record in records}
    check(all(statuses[f"serve.{e}"] == "ok" for e in ENDPOINT_PARAMS),
          "all serve records finished ok")

    print("serve-smoke OK: endpoints, error contract, metrics and "
          "ledger records all verified")
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except AssertionError as exc:
        print(f"serve-smoke FAILED: {exc}", file=sys.stderr)
        raise SystemExit(1)
