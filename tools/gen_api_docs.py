"""Generate docs/api.md from the package's docstrings.

Walks every module under ``repro``, lists the ``__all__`` exports with the
first line of their docstrings, and writes a deterministic markdown index.

Usage::

    python tools/gen_api_docs.py           # rewrite docs/api.md
    python tools/gen_api_docs.py --check   # exit 1 if docs/api.md is stale

The test suite runs the ``--check`` mode, so the committed API index can
never drift from the code.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import sys
from pathlib import Path

import repro

OUTPUT = Path(__file__).resolve().parent.parent / "docs" / "api.md"

HEADER = """# API reference

One line per public symbol, generated from docstrings by
`tools/gen_api_docs.py` (regenerate after changing any public API;
`tests/test_api_docs.py` fails if this file is stale).
"""


def first_line(obj) -> str:
    doc = inspect.getdoc(obj) or ""
    line = doc.strip().splitlines()[0] if doc.strip() else "(undocumented)"
    return line.rstrip(".")


def iter_modules():
    yield "repro", repro
    names = sorted(
        name for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    )
    for name in names:
        yield name, importlib.import_module(name)


def render() -> str:
    sections = [HEADER]
    for name, module in iter_modules():
        exports = list(getattr(module, "__all__", []))
        if not exports:
            continue
        sections.append(f"\n## `{name}`\n")
        module_line = first_line(module)
        sections.append(f"{module_line}.\n")
        for export in exports:
            member = getattr(module, export)
            if inspect.isfunction(member):
                kind = "function"
            elif inspect.isclass(member):
                kind = "class"
            else:
                kind = "value"
            sections.append(f"- **`{export}`** ({kind}) — {first_line(member)}.")
        sections.append("")
    return "\n".join(sections).rstrip() + "\n"


def main() -> int:
    content = render()
    if "--check" in sys.argv:
        if not OUTPUT.exists() or OUTPUT.read_text() != content:
            print(f"{OUTPUT} is stale; run python tools/gen_api_docs.py",
                  file=sys.stderr)
            return 1
        print(f"{OUTPUT} is up to date")
        return 0
    OUTPUT.parent.mkdir(exist_ok=True)
    OUTPUT.write_text(content)
    print(f"wrote {OUTPUT} ({len(content.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
