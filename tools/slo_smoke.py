#!/usr/bin/env python
"""SLO exit-code gate (``make slo-smoke``).

Runs ``repro-defender slo check`` twice against the committed access-log
fixtures under ``tests/fixtures/slo/`` and asserts the contract CI
relies on:

* healthy traffic (``access_ok.jsonl``) exits 0;
* breaching traffic (``access_breach.jsonl`` — 5xx burn above budget
  and a blown p95) exits non-zero and names the breached objectives on
  stderr;
* ``slo report --format json`` over the breach fixture emits a valid
  ``repro.obs/slo-report/v1`` document listing the same breaches.

The fixtures carry fixed timestamps and ``evaluate_slos`` anchors its
windows at the newest record, so the verdicts are deterministic.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

FIXTURE_DIR = REPO_ROOT / "tests" / "fixtures" / "slo"
CONFIG = FIXTURE_DIR / "slo.json"
ACCESS_OK = FIXTURE_DIR / "access_ok.jsonl"
ACCESS_BREACH = FIXTURE_DIR / "access_breach.jsonl"


def check(condition: bool, label: str) -> None:
    if not condition:
        raise AssertionError(label)
    print(f"  ok: {label}")


def run_cli(argv):
    """Run the CLI in-process, capturing stdout/stderr and exit code."""
    import contextlib
    import io

    from repro.cli import main

    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        code = main(argv)
    return code, out.getvalue(), err.getvalue()


def main() -> int:
    for path in (CONFIG, ACCESS_OK, ACCESS_BREACH):
        check(path.is_file(), f"fixture {path.name} is committed")

    code, out, err = run_cli([
        "slo", "check", "--config", str(CONFIG),
        "--access-path", str(ACCESS_OK),
    ])
    check(code == 0, "healthy fixture: slo check exits 0")
    check("all objectives within budget" in out,
          "healthy fixture: verdict line printed")

    code, out, err = run_cli([
        "slo", "check", "--config", str(CONFIG),
        "--access-path", str(ACCESS_BREACH),
    ])
    check(code != 0, "breach fixture: slo check exits non-zero")
    check("SLO breach:" in err and "availability" in err
          and "solve-latency" in err,
          "breach fixture: breached objectives named on stderr")

    code, out, err = run_cli([
        "slo", "report", "--format", "json", "--config", str(CONFIG),
        "--access-path", str(ACCESS_BREACH),
    ])
    check(code == 0, "slo report exits 0 even in breach")
    document = json.loads(out)
    check(document["schema"] == "repro.obs/slo-report/v1",
          "report document carries the slo-report schema")
    check(sorted(document["breaches"]) == ["availability", "solve-latency"],
          "report lists both breached objectives")

    print("slo-smoke OK: exit codes, breach naming and the report "
          "document all verified against the committed fixtures")
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except AssertionError as exc:
        print(f"slo-smoke FAILED: {exc}", file=sys.stderr)
        raise SystemExit(1)
