#!/usr/bin/env python
"""Hot-path benchmark smoke test (``make bench-smoke``).

Times the tracked solver hot paths — double oracle, fictitious play, and
the Monte-Carlo engines — on small fixed instances, best-of-3, and

* ``--write``   refreshes the committed ``BENCH_KERNELS.json`` trajectory
  file: updates the latest-snapshot ``cases`` block *and appends* one
  history entry keyed by the current git revision (schema v2; a v1 file
  is migrated in place, its old snapshot preserved as the
  ``pre-history`` entry);
* ``--check``   (default) re-times the same cases and fails when any
  tracked path regressed more than 20% (plus a 50 ms absolute slack for
  scheduler noise) against the committed latest snapshot;
* ``--watch``   re-times the cases and compares them against the
  trailing-median history via :mod:`repro.obs.watchdog` — report-only
  unless ``--strict`` (the ``make bench-watch`` CI step).

The ``REFERENCE`` timings below were measured on the pre-kernel code path
(the BENCH_OBS.json-era solvers, commit 38fe232) on the same instances,
best-of-3, and are embedded so the trajectory file always evidences the
speedup against a fixed origin rather than a moving one.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

BENCH_FILE = REPO_ROOT / "BENCH_KERNELS.json"

#: History entries kept in the trajectory file (oldest dropped first).
MAX_HISTORY = 100

#: Pre-kernel (seed) wall-clock seconds for the tracked cases, best-of-3.
REFERENCE = {
    "double_oracle.medium_a": 0.2078,
    "double_oracle.medium_b": 0.4345,
    "double_oracle.cached": None,  # added with the result cache; hit path
    "fictitious_play.medium": 0.9336,
    "simulation.engine.small": None,  # added with the kernel; no seed datum
    "simulation.fast.medium": None,
    "fuzz.batch.small": None,  # added with repro.fuzz; no seed datum
    "events.publish.off": None,  # added with the event bus; no seed datum
    "events.publish.on": None,
    "trace_context.off": None,  # added with request correlation; no seed datum
    "access_log.off": None,
}

#: Publishes per event-bus micro-bench repetition.
_BUS_PUBLISHES = 50_000

#: Disabled-path calls per correlation micro-bench repetition.
_CORRELATION_CALLS = 50_000

#: Regression gate: fail when current > baseline * (1 + SLACK_REL) + SLACK_ABS.
SLACK_REL = 0.20
SLACK_ABS = 0.05


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        ).stdout.strip() or "unknown"
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _cases():
    from repro.core.game import TupleGame
    from repro.equilibria.solve import solve_game
    from repro.fuzz.runner import run_fuzz
    from repro.graphs.generators import random_bipartite_graph
    from repro.kernels import clear_shared_oracles
    from repro.simulation.engine import simulate
    from repro.simulation.fast import simulate_fast
    from repro.solvers.double_oracle import double_oracle
    from repro.solvers.fictitious_play import fictitious_play

    import repro.cache as result_cache
    from repro.obs import events as obs_events
    from repro.obs import access as obs_access
    from repro.obs import tracing as obs_tracing

    def publish_off() -> None:
        # The disabled fast path: one attribute check per publish.  The
        # watchdog history of this case is the proof that leaving the bus
        # off keeps instrumented hot loops effectively free.
        obs_events.disable_events()
        for index in range(_BUS_PUBLISHES):
            obs_events.publish("bench.case", case="bus-off", index=index)

    def publish_on() -> None:
        # Ring buffer + lock, no sink: the marginal cost a live `tail`
        # subscriber imposes on an instrumented solver loop.
        obs_events.enable_events(sink=False)
        try:
            for index in range(_BUS_PUBLISHES):
                obs_events.publish("bench.case", case="bus-on", index=index)
        finally:
            obs_events.disable_events()

    def trace_context_off() -> None:
        # Disabled tracing with the contextvars-backed trace context:
        # span() must stay a single boolean check even now that the
        # span stack lives on a per-context object.  The history of
        # this case guards the correlation layer's off-cost.
        obs_tracing.enable_tracing(False)
        for _ in range(_CORRELATION_CALLS):
            with obs_tracing.span("bench.case"):
                pass

    def access_log_off() -> None:
        # The disabled access log: log_request() falls through on one
        # attribute load, so a service run without --access-log pays
        # nothing per request for the sink.
        obs_access.disable_access_log()
        for index in range(_CORRELATION_CALLS):
            obs_access.log_request(
                None, "POST", "/solve", 200, None, 0.0, inflight=index
            )

    do_a = TupleGame(random_bipartite_graph(15, 25, 0.15, seed=60), 4, nu=1)
    do_b = TupleGame(random_bipartite_graph(25, 40, 0.10, seed=1000), 5, nu=1)

    # Result-cache hit path: populate a throwaway store once here, then
    # every timed repetition replays from it (clear_shared_oracles wipes
    # the coverage kernel between reps, not the result cache).  The case
    # enables the cache only inside its own closure so the other cases
    # keep timing the uncached paths.
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    result_cache.enable_cache(cache_dir)
    try:
        double_oracle(do_b)
    finally:
        result_cache.disable_cache()

    def cached_double_oracle() -> None:
        result_cache.enable_cache(cache_dir)
        try:
            double_oracle(do_b)
        finally:
            result_cache.disable_cache()
    fp = TupleGame(random_bipartite_graph(10, 15, 0.2, seed=150), 3, nu=1)
    sim_game = TupleGame(random_bipartite_graph(8, 12, 0.25, seed=9), 3, nu=4)
    sim_config = solve_game(sim_game).mixed

    return {
        "double_oracle.medium_a": lambda: double_oracle(do_a),
        "double_oracle.medium_b": lambda: double_oracle(do_b),
        "double_oracle.cached": cached_double_oracle,
        "fictitious_play.medium": lambda: fictitious_play(fp, rounds=60),
        "simulation.engine.small": lambda: simulate(
            sim_game, sim_config, trials=20_000, seed=0
        ),
        "simulation.fast.medium": lambda: simulate_fast(
            sim_game, sim_config, trials=400_000, seed=0
        ),
        # A small differential-fuzz batch: every solver path end to end.
        # Same fixed seed as the `make fuzz-smoke` gate, one fifth of its
        # game count, so the telemetry tracks the per-game cost drift.
        "fuzz.batch.small": lambda: run_fuzz(count=10, seed=20060707),
        # Telemetry-bus overhead, disabled vs enabled (50k publishes).
        "events.publish.off": publish_off,
        "events.publish.on": publish_on,
        # Correlation-layer off-cost (50k disabled calls each).
        "trace_context.off": trace_context_off,
        "access_log.off": access_log_off,
    }, clear_shared_oracles


def run_cases():
    cases, clear_shared_oracles = _cases()
    timings = {}
    for name, fn in cases.items():
        best = float("inf")
        for _ in range(3):
            # Each repetition pays the oracle build again — the tracked
            # number is a cold solve, comparable to the reference runs.
            clear_shared_oracles()
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        timings[name] = best
        print(f"  {name:28s} {best * 1000:8.1f} ms")
    return timings


def _load_document():
    """The committed trajectory as a schema-v2 document (migrating v1)."""
    from repro.obs.watchdog import SCHEMA_V2, load_history_document

    if not BENCH_FILE.exists():
        return {
            "schema": SCHEMA_V2,
            "slack": {"relative": SLACK_REL, "absolute_s": SLACK_ABS},
            "cases": {},
            "history": [],
        }
    return load_history_document(BENCH_FILE)


def write(timings) -> None:
    document = _load_document()
    document["slack"] = {"relative": SLACK_REL, "absolute_s": SLACK_ABS}
    document["cases"] = {
        name: {
            "wall_clock_s": timings[name],
            "reference_s": REFERENCE.get(name),
            "speedup_vs_reference": (
                round(REFERENCE[name] / timings[name], 2)
                if REFERENCE.get(name)
                else None
            ),
        }
        for name in sorted(timings)
    }
    rev = _git_rev()
    entry = {
        "git_rev": rev,
        "timestamp": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "cases": {name: timings[name] for name in sorted(timings)},
    }
    # Re-running --write at the same revision replaces its entry instead
    # of stacking duplicates that would bias the trailing median.
    history = [e for e in document.get("history", [])
               if e.get("git_rev") != rev]
    history.append(entry)
    document["history"] = history[-MAX_HISTORY:]
    BENCH_FILE.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {BENCH_FILE} "
          f"({len(document['history'])} history entries, newest {rev})")


def check(timings) -> int:
    if not BENCH_FILE.exists():
        print(f"{BENCH_FILE} missing; run python tools/bench_smoke.py --write",
              file=sys.stderr)
        return 1
    baseline = _load_document()["cases"]
    failures = []
    for name, seconds in timings.items():
        base = baseline.get(name, {}).get("wall_clock_s")
        if base is None:
            failures.append(f"{name}: not in committed baseline")
            continue
        limit = base * (1.0 + SLACK_REL) + SLACK_ABS
        if seconds > limit:
            failures.append(
                f"{name}: {seconds:.3f}s exceeds {limit:.3f}s "
                f"(baseline {base:.3f}s + 20% + {SLACK_ABS * 1000:.0f}ms)"
            )
    if failures:
        print("bench-smoke REGRESSION:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"bench-smoke OK: {len(timings)} hot paths within budget")
    return 0


def watch(timings, against=None, ratio=None, strict=False) -> int:
    """Live timings vs the trailing-median history (the watchdog face)."""
    from repro.obs.watchdog import DEFAULT_RATIO, watch_file

    if not BENCH_FILE.exists():
        print(f"{BENCH_FILE} missing; run python tools/bench_smoke.py "
              "--write first", file=sys.stderr)
        return 1 if strict else 0
    try:
        report = watch_file(
            BENCH_FILE, current=timings, against=against,
            ratio=DEFAULT_RATIO if ratio is None else ratio,
        )
    except ValueError as exc:
        print(f"bench-watch: {exc}", file=sys.stderr)
        return 1
    print(report.summary())
    return 1 if (strict and not report.ok) else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--write", action="store_true",
                      help="refresh BENCH_KERNELS.json and append a history "
                           "entry for the current git revision")
    mode.add_argument("--check", action="store_true",
                      help="fail on >20%% regression vs the baseline (default)")
    mode.add_argument("--watch", action="store_true",
                      help="compare live timings to the trailing-median "
                           "history (report-only unless --strict)")
    parser.add_argument("--against", default=None, metavar="REV",
                        help="with --watch: pin the baseline to one git "
                             "revision's history entry")
    parser.add_argument("--ratio", type=float, default=None,
                        help="with --watch: slowdown ratio that trips the "
                             "alarm (default: 1.5)")
    parser.add_argument("--strict", action="store_true",
                        help="with --watch: exit non-zero on regressions")
    args = parser.parse_args()
    timings = run_cases()
    if args.write:
        write(timings)
        return 0
    if args.watch:
        return watch(timings, against=args.against, ratio=args.ratio,
                     strict=args.strict)
    return check(timings)


if __name__ == "__main__":
    raise SystemExit(main())
