"""End-to-end smoke test for the result cache (``make cache-smoke``).

Replays the full cache lifecycle on the committed fixture games in
``tests/fixtures/cache/``:

1. solve the plain fixture with the cache **disabled** — the reference
   bytes the cached path must reproduce exactly;
2. enable a throwaway store, solve **cold** (miss + store), then solve
   again and require a **hit** whose serialized result is byte-identical
   to both the cold run and the cache-disabled reference, with
   ``cache.hits.count == 1``;
3. solve the two weighted fixtures (differing only in vertex weights)
   and require distinct fingerprints *and* distinct cache entries —
   the regression this PR-line exists to prevent;
4. ``gc`` the store empty and require the next solve to **miss** again.

Exits non-zero on any failure, so the ``ci`` Makefile target catches a
cache that returns stale or wrong-identity results the moment it rots.

Usage::

    python tools/cache_smoke.py        # or: make cache-smoke
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # no editable install: use the in-tree sources
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

FIXTURE_DIR = (
    Path(__file__).resolve().parent.parent / "tests" / "fixtures" / "cache"
)


def _counter(name: str) -> int:
    from repro.obs import get_registry

    return int(get_registry().snapshot()["counters"].get(name, 0))


def run_smoke() -> list:
    """Return a list of failure messages (empty = healthy)."""
    import repro.cache as result_cache
    from repro.cache.keys import game_sha256
    from repro.core.serialize import game_from_json, solve_result_to_json
    from repro.equilibria.solve import solve_game
    from repro.obs import get_registry
    from repro.weighted.game import weighted_lp_equilibrium

    failures = []
    game = game_from_json(
        (FIXTURE_DIR / "tuple_game.json").read_text(encoding="utf-8"))
    weighted_a = game_from_json(
        (FIXTURE_DIR / "weighted_game_a.json").read_text(encoding="utf-8"))
    weighted_b = game_from_json(
        (FIXTURE_DIR / "weighted_game_b.json").read_text(encoding="utf-8"))

    # Weighted identity: weights are part of the content address.
    if game_sha256(weighted_a) == game_sha256(weighted_b):
        failures.append(
            "weighted fixtures differing only in weights share a "
            "fingerprint — the content address is weight-blind again")

    get_registry().reset()
    reference = solve_result_to_json(solve_game(game))
    if _counter("cache.hits.count") or _counter("cache.misses.count"):
        failures.append("cache counters fired while the cache was disabled")

    with tempfile.TemporaryDirectory(prefix="repro-cache-smoke-") as tmp:
        result_cache.enable_cache(tmp)
        try:
            cold = solve_result_to_json(solve_game(game))
            if cold != reference:
                failures.append("cold cached solve is not byte-identical "
                                "to the cache-disabled solve")
            hot = solve_result_to_json(solve_game(game))
            if hot != cold:
                failures.append("cache hit replayed a result that is not "
                                "byte-identical to the cold solve")
            if _counter("cache.hits.count") != 1:
                failures.append(
                    f"expected exactly 1 cache hit after the replay, got "
                    f"{_counter('cache.hits.count')}")

            weighted_lp_equilibrium(weighted_a)
            weighted_lp_equilibrium(weighted_b)
            store = result_cache.get_cache()
            entries = store.stats()["entries"]
            if entries != 3:
                failures.append(
                    f"expected 3 cache entries (1 solve + 2 weighted "
                    f"games), found {entries} — distinct weights must "
                    "yield distinct entries")

            removed = store.gc(max_age_s=0.0)
            if store.stats()["entries"] != 0:
                failures.append(
                    f"gc(max_age_s=0) left {store.stats()['entries']} "
                    f"entries (removed {removed})")
            misses_before = _counter("cache.misses.count")
            after_gc = solve_result_to_json(solve_game(game))
            if _counter("cache.misses.count") != misses_before + 1:
                failures.append("solve after gc did not miss the cache")
            if after_gc != reference:
                failures.append("solve after gc is not byte-identical to "
                                "the reference")
        finally:
            result_cache.disable_cache()
    return failures


def main() -> int:
    if not FIXTURE_DIR.is_dir():
        print(f"FAIL: fixture directory {FIXTURE_DIR} is missing",
              file=sys.stderr)
        return 1
    failures = run_smoke()
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("cache smoke OK: cold/hit byte-identical, weighted identities "
          "distinct, gc returns the store to cold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
