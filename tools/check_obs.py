"""Smoke-check the observability layer end to end.

Runs a small solve cascade, double-oracle run and Monte-Carlo simulation
with tracing, the provenance ledger *and the telemetry event bus*
enabled, then asserts that the instrumentation actually fired: a
non-empty metrics snapshot with the expected solver counters, a JSON
export that round-trips, a Prometheus export that mentions the LP
histogram, a collected span tree, ledger records that satisfy the
``repro.obs/ledger-record/v3`` schema (content-addressed run ids, a
``trace_id``, a ``resources`` block from the sampler), an event sink whose
``solver.iteration`` stream replays the double-oracle gap/pool
trajectory, and profiler + HTML-report exports that match their formats.
Exits non-zero on any failure, so CI (the ``ci`` Makefile target)
catches instrumentation rot the moment a refactor severs a hot path
from the registry.

Usage::

    python tools/check_obs.py                # or: make obs-check
    python tools/check_obs.py --report-smoke # or: make report-smoke
                                             # (committed ledger fixture
                                             #  -> validated HTML report)
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # no editable install: use the in-tree sources
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

REQUIRED_COUNTERS = (
    "equilibria.solve.count",
    "double_oracle.runs.count",
    "double_oracle.iterations.count",
    "lp.solve.count",
    "simulation.trials.count",
    "hopcroft_karp.matchings.count",
    "blossom.matchings.count",
    # The workload solves the same game twice with the result cache
    # enabled, so both faces of the cache must have fired.
    "cache.misses.count",
    "cache.hits.count",
)

#: Ledger entry points that must stamp a boolean ``cache_hit`` attribute.
CACHED_ENTRY_POINTS = (
    "equilibria.solve",
    "solvers.double_oracle",
    "solvers.fictitious_play",
)


#: Record fields the ledger-record/v3 schema requires on every line.
LEDGER_REQUIRED_KEYS = (
    "schema", "run_id", "entry_point", "started_at", "duration_s",
    "status", "trace_id", "fingerprint", "attributes", "env", "metrics",
    "resources", "spans",
)

#: Fields the resource sampler contributes to every v3 record.
RESOURCES_REQUIRED_KEYS = (
    "rss_bytes", "rss_peak_bytes", "cpu_user_s", "cpu_system_s",
    "gc_collections", "threads", "samples", "sampler_running",
)

#: The committed multi-revision ledger fixture behind `make report-smoke`.
FIXTURE_LEDGER_DIR = (
    Path(__file__).resolve().parent.parent / "tests" / "fixtures" / "ledger"
)


def run_workload(ledger_dir: Path, events_dir: Path,
                 cache_dir: Path) -> None:
    """Exercise every instrumented layer once: tracing + ledger + events.

    The result cache is enabled for the whole workload, and the solve
    cascade runs twice — once cold (populating the store) and once as a
    replay — so the ledger carries both ``cache_hit`` polarities and the
    hit/miss counters both fire.
    """
    import repro.cache as result_cache
    from repro.core.game import TupleGame
    from repro.equilibria.solve import solve_game
    from repro.graphs.generators import complete_bipartite_graph
    from repro.obs import clear_trace, enable_tracing, get_registry
    from repro.obs import events as obs_events
    from repro.obs import ledger as obs_ledger
    from repro.simulation.engine import simulate
    from repro.solvers.double_oracle import double_oracle
    from repro.solvers.fictitious_play import fictitious_play

    get_registry().reset()
    enable_tracing(True)
    clear_trace()
    obs_ledger.enable_ledger(ledger_dir)
    obs_events.enable_events(events_dir)
    result_cache.enable_cache(cache_dir)
    try:
        game = TupleGame(complete_bipartite_graph(2, 4), k=2, nu=3)
        result = solve_game(game)
        solve_game(game)  # replayed from the cache: cache_hit=True
        simulate(game, result.mixed, trials=2_000, seed=0)
        double_oracle(game)
        fictitious_play(game, rounds=30)
    finally:
        result_cache.disable_cache()
        obs_events.disable_events()
        obs_ledger.disable_ledger()
        enable_tracing(False)


def check() -> list:
    """Return a list of failure messages (empty = healthy)."""
    from repro.obs import get_registry, get_trace, render_trace

    failures = []
    registry = get_registry()
    snapshot = registry.snapshot()

    if not snapshot["counters"]:
        failures.append("metrics snapshot has no counters at all")
    for name in REQUIRED_COUNTERS:
        if snapshot["counters"].get(name, 0) <= 0:
            failures.append(f"counter {name!r} did not fire")
    if snapshot["histograms"].get("lp.solve.seconds", {}).get("count", 0) <= 0:
        failures.append("histogram 'lp.solve.seconds' did not fire")
    if snapshot["gauges"].get("simulation.trials_per_sec", 0) <= 0:
        failures.append("gauge 'simulation.trials_per_sec' not set")

    try:
        if json.loads(registry.to_json()) != snapshot:
            failures.append("JSON export does not round-trip the snapshot")
    except json.JSONDecodeError as exc:
        failures.append(f"JSON export is not valid JSON: {exc}")
    if "repro_lp_solve_seconds" not in registry.to_prometheus():
        failures.append("Prometheus export is missing the LP solve histogram")

    spans = get_trace()
    if not spans:
        failures.append("tracing collected no spans")
    elif "equilibria.solve" not in render_trace(spans):
        failures.append("trace is missing the equilibria.solve root span")
    return failures


def check_ledger(ledger_dir: Path) -> list:
    """Validate the live ledger records against ledger-record/v3."""
    from repro.obs.ledger import RECORD_SCHEMA, _canonical_sha256, read_runs

    failures = []
    records = read_runs(directory=ledger_dir)
    if not records:
        failures.append("ledger recorded no runs")
        return failures
    entry_points = {r.get("entry_point") for r in records}
    for expected in ("equilibria.solve", "solvers.double_oracle",
                     "solvers.fictitious_play"):
        if expected not in entry_points:
            failures.append(f"ledger is missing an {expected!r} record")
    for record in records:
        rid = record.get("run_id", "?")
        for key in LEDGER_REQUIRED_KEYS:
            if key not in record:
                failures.append(f"ledger record {rid}: missing key {key!r}")
        if record.get("schema") != RECORD_SCHEMA:
            failures.append(
                f"ledger record {rid}: schema {record.get('schema')!r} "
                f"!= {RECORD_SCHEMA!r}"
            )
        if record.get("status") not in ("ok", "error"):
            failures.append(f"ledger record {rid}: bad status "
                            f"{record.get('status')!r}")
        # The run id is content-addressed: recompute it from the record.
        body = {k: v for k, v in record.items() if k != "run_id"}
        if _canonical_sha256(body)[:16] != record.get("run_id"):
            failures.append(
                f"ledger record {rid}: run_id does not match the sha256 "
                "of the record body"
            )
    for record in records:
        rid = record.get("run_id", "?")
        resources = record.get("resources") or {}
        for key in RESOURCES_REQUIRED_KEYS:
            if key not in resources:
                failures.append(
                    f"ledger record {rid}: resources block missing {key!r}"
                )
        if resources.get("samples", 0) < 1:
            failures.append(
                f"ledger record {rid}: resource sampler took no samples"
            )
        if resources.get("rss_bytes", 0) <= 0:
            failures.append(f"ledger record {rid}: rss_bytes not positive")
    # Every solver entry point probes the result cache before opening
    # its ledger run, so the record must stamp a boolean ``cache_hit``
    # — and the twice-solved workload must show both polarities.
    cache_hits = []
    for record in records:
        if record.get("entry_point") not in CACHED_ENTRY_POINTS:
            continue
        rid = record.get("run_id", "?")
        hit = (record.get("attributes") or {}).get("cache_hit")
        if not isinstance(hit, bool):
            failures.append(
                f"ledger record {rid}: attributes.cache_hit is {hit!r}, "
                "expected a boolean"
            )
            continue
        cache_hits.append(hit)
    if True not in cache_hits:
        failures.append("no ledger record stamped cache_hit=true (the "
                        "replayed solve should have hit the cache)")
    if False not in cache_hits:
        failures.append("no ledger record stamped cache_hit=false")
    solve = next(r for r in records
                 if r.get("entry_point") == "equilibria.solve")
    fp = solve.get("fingerprint") or {}
    sha = fp.get("sha256", "")
    if len(sha) != 64 or any(c not in "0123456789abcdef" for c in sha):
        failures.append("equilibria.solve fingerprint sha256 is not a "
                        "64-char hex digest")
    if not solve.get("spans"):
        failures.append("equilibria.solve ledger record carries no spans")
    if not (solve.get("metrics") or {}).get("counters"):
        failures.append("equilibria.solve ledger record carries no metrics")
    return failures


def check_events(events_dir: Path) -> list:
    """Replay the event sink the way ``repro-defender tail`` does."""
    from repro.obs.events import EVENT_SCHEMA, EVENT_TYPES, SINK_FILENAME
    from repro.obs.events import read_events

    failures = []
    sink = events_dir / SINK_FILENAME
    if not sink.is_file():
        return [f"event sink {sink} was never written"]
    events = read_events(sink)
    if not events:
        return ["event sink replayed no events"]
    last_seq = 0
    for event in events:
        if event.get("schema") != EVENT_SCHEMA:
            failures.append(f"event schema {event.get('schema')!r} != "
                            f"{EVENT_SCHEMA!r}")
            break
        seq = event.get("seq", 0)
        if not isinstance(seq, int) or seq <= last_seq:
            failures.append(f"event seq {seq!r} is not strictly increasing")
            break
        last_seq = seq
        if event.get("type") not in EVENT_TYPES:
            failures.append(f"unknown event type {event.get('type')!r} "
                            "in the workload stream")
            break
    types = {e.get("type") for e in events}
    for expected in ("run.start", "run.end", "lp.solve", "solver.iteration"):
        if expected not in types:
            failures.append(f"workload published no {expected!r} event")
    do_steps = [
        e["payload"] for e in read_events(sink, types=["solver.iteration"])
        if e.get("payload", {}).get("solver") == "double_oracle"
    ]
    if not do_steps:
        failures.append("no double_oracle solver.iteration events to replay")
    for step in do_steps:
        if not all(k in step for k in ("iteration", "gap", "defender_pool",
                                       "attacker_pool")):
            failures.append("double_oracle iteration event lacks "
                            "gap/pool fields")
            break
    if do_steps and not any(step.get("converged") for step in do_steps):
        failures.append("double_oracle stream never announced convergence")
    fp_steps = [
        e["payload"] for e in read_events(sink, types=["solver.iteration"])
        if e.get("payload", {}).get("solver") == "fictitious_play"
    ]
    if not fp_steps or any("residual" not in s for s in fp_steps):
        failures.append("fictitious_play residual events missing")
    return failures


def check_report(ledger_dir: Path, tmp_dir: Path,
                 bench_file=None) -> list:
    """Render the HTML/markdown report and prove it is self-contained."""
    from repro.obs.report import write_report

    failures = []
    html_path = tmp_dir / "report.html"
    md_path = tmp_dir / "report.md"
    summary = write_report(ledger_dir, html_path, output_md=md_path,
                           bench_file=bench_file)
    if summary["records"] <= 0:
        failures.append(f"report covered no runs from {ledger_dir}")
    html = html_path.read_text(encoding="utf-8")
    if not html.startswith("<!DOCTYPE html>"):
        failures.append("report HTML does not start with <!DOCTYPE html>")
    if "</html>" not in html:
        failures.append("report HTML is truncated (no closing </html>)")
    if "<svg" not in html:
        failures.append("report HTML carries no inline SVG sparklines")
    if "var(--series-1)" not in html:
        failures.append("report sparklines do not use the palette token")
    if "prefers-color-scheme: dark" not in html:
        failures.append("report HTML lacks the dark-mode palette")
    for marker in ('src="http', "src='http", 'href="http', "href='http",
                   "<script src", "@import", "url(http"):
        if marker in html:
            failures.append(
                f"report HTML references an external resource ({marker!r}) "
                "— it must be self-contained"
            )
    md = md_path.read_text(encoding="utf-8")
    if not md.startswith("#"):
        failures.append("markdown report does not start with a heading")
    return failures


def report_smoke() -> int:
    """`make report-smoke`: committed fixture ledger -> validated report."""
    failures = []
    if not FIXTURE_LEDGER_DIR.is_dir():
        failures.append(f"fixture ledger {FIXTURE_LEDGER_DIR} is missing")
    bench = FIXTURE_LEDGER_DIR.parent.parent.parent / "BENCH_KERNELS.json"
    with tempfile.TemporaryDirectory(prefix="repro-report-smoke-") as tmp:
        if not failures:
            failures = check_report(
                FIXTURE_LEDGER_DIR, Path(tmp),
                bench_file=bench if bench.is_file() else None,
            )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("report smoke OK: fixture ledger rendered to self-contained "
          "HTML + markdown")
    return 0


def check_profiler(tmp_dir: Path) -> list:
    """Validate the Chrome-trace and folded-stack exports of the trace."""
    from repro.obs import get_trace
    from repro.obs.prof import write_chrome_trace, write_folded_stacks

    failures = []
    spans = get_trace()
    chrome_path = tmp_dir / "trace.json"
    folded_path = tmp_dir / "stacks.folded"
    write_chrome_trace(chrome_path, spans)
    write_folded_stacks(folded_path, spans)

    try:
        document = json.loads(chrome_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        return [f"Chrome trace is not valid JSON: {exc}"]
    events = document.get("traceEvents")
    if not isinstance(events, list) or not events:
        failures.append("Chrome trace has no traceEvents")
        events = []
    for event in events:
        if event.get("ph") != "X":
            failures.append(f"Chrome trace event {event.get('name')!r} is "
                            "not a complete ('X') event")
            break
        if not isinstance(event.get("ts"), (int, float)) \
                or not isinstance(event.get("dur"), (int, float)):
            failures.append(f"Chrome trace event {event.get('name')!r} "
                            "lacks numeric ts/dur")
            break
    if events and not any(e.get("name") == "equilibria.solve"
                          for e in events):
        failures.append("Chrome trace is missing the equilibria.solve event")

    folded = folded_path.read_text(encoding="utf-8").splitlines()
    if not folded:
        failures.append("folded-stack export is empty")
    for line in folded:
        stack, _, count = line.rpartition(" ")
        if not stack or not count.isdigit():
            failures.append(f"folded-stack line {line!r} is not "
                            "'frame;frame <count>'")
            break
    if folded and not any(line.startswith("equilibria.solve")
                          for line in folded):
        failures.append("folded stacks are missing the equilibria.solve root")
    return failures


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if "--report-smoke" in argv:
        return report_smoke()
    with tempfile.TemporaryDirectory(prefix="repro-obs-check-") as tmp:
        tmp_dir = Path(tmp)
        run_workload(tmp_dir / "ledger", tmp_dir / "events",
                     tmp_dir / "cache")
        failures = check()
        failures += check_ledger(tmp_dir / "ledger")
        failures += check_events(tmp_dir / "events")
        failures += check_profiler(tmp_dir)
        failures += check_report(tmp_dir / "ledger", tmp_dir)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    from repro.obs import get_registry

    snapshot = get_registry().snapshot()
    print(
        "observability OK: "
        f"{len(snapshot['counters'])} counters, "
        f"{len(snapshot['gauges'])} gauges, "
        f"{len(snapshot['histograms'])} histograms recorded; "
        "ledger records, event stream, Chrome trace, folded stacks "
        "and the HTML report validated"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
