"""Smoke-check the observability layer end to end.

Runs a small solve cascade, double-oracle run and Monte-Carlo simulation
with tracing enabled, then asserts that the instrumentation actually
fired: a non-empty metrics snapshot with the expected solver counters, a
JSON export that round-trips, a Prometheus export that mentions the LP
histogram, and a collected span tree.  Exits non-zero on any failure, so
CI (the ``ci`` Makefile target) catches instrumentation rot the moment a
refactor severs a hot path from the registry.

Usage::

    python tools/check_obs.py            # or: make obs-check
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # no editable install: use the in-tree sources
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

REQUIRED_COUNTERS = (
    "equilibria.solve.count",
    "double_oracle.runs.count",
    "double_oracle.iterations.count",
    "lp.solve.count",
    "simulation.trials.count",
    "hopcroft_karp.matchings.count",
    "blossom.matchings.count",
)


def run_workload() -> None:
    """Exercise every instrumented layer once, with tracing on."""
    from repro.core.game import TupleGame
    from repro.equilibria.solve import solve_game
    from repro.graphs.generators import complete_bipartite_graph
    from repro.obs import clear_trace, enable_tracing, get_registry
    from repro.simulation.engine import simulate
    from repro.solvers.double_oracle import double_oracle
    from repro.solvers.fictitious_play import fictitious_play

    get_registry().reset()
    enable_tracing(True)
    clear_trace()
    game = TupleGame(complete_bipartite_graph(2, 4), k=2, nu=3)
    result = solve_game(game)
    simulate(game, result.mixed, trials=2_000, seed=0)
    double_oracle(game)
    fictitious_play(game, rounds=30)
    enable_tracing(False)


def check() -> list:
    """Return a list of failure messages (empty = healthy)."""
    from repro.obs import get_registry, get_trace, render_trace

    failures = []
    registry = get_registry()
    snapshot = registry.snapshot()

    if not snapshot["counters"]:
        failures.append("metrics snapshot has no counters at all")
    for name in REQUIRED_COUNTERS:
        if snapshot["counters"].get(name, 0) <= 0:
            failures.append(f"counter {name!r} did not fire")
    if snapshot["histograms"].get("lp.solve.seconds", {}).get("count", 0) <= 0:
        failures.append("histogram 'lp.solve.seconds' did not fire")
    if snapshot["gauges"].get("simulation.trials_per_sec", 0) <= 0:
        failures.append("gauge 'simulation.trials_per_sec' not set")

    try:
        if json.loads(registry.to_json()) != snapshot:
            failures.append("JSON export does not round-trip the snapshot")
    except json.JSONDecodeError as exc:
        failures.append(f"JSON export is not valid JSON: {exc}")
    if "repro_lp_solve_seconds" not in registry.to_prometheus():
        failures.append("Prometheus export is missing the LP solve histogram")

    spans = get_trace()
    if not spans:
        failures.append("tracing collected no spans")
    elif "equilibria.solve" not in render_trace(spans):
        failures.append("trace is missing the equilibria.solve root span")
    return failures


def main() -> int:
    run_workload()
    failures = check()
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    from repro.obs import get_registry

    snapshot = get_registry().snapshot()
    print(
        "observability OK: "
        f"{len(snapshot['counters'])} counters, "
        f"{len(snapshot['gauges'])} gauges, "
        f"{len(snapshot['histograms'])} histograms recorded"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
