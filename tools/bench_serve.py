#!/usr/bin/env python
"""HTTP solve-service load generator (``make bench-serve``).

Boots the service on an ephemeral port and measures four request
profiles end to end — TCP connect to parsed response body:

* ``serve.solve.cold`` — sequential ``POST /solve`` latency with the
  result cache disabled (full validate → worker → solver path);
* ``serve.solve.cache_hit`` — the same request against a primed result
  cache: validate → probe → inline reply, no worker slot;
* ``serve.reject.invalid`` — a schema-invalid request: the cost of
  shedding garbage at the door;
* ``serve.solve.correlated`` — the cache-hit request with a client
  ``traceparent`` header: parse + adopt + echo of the inbound trace
  context on the cheapest path, where correlation overhead would show;
* ``serve.mixed.concurrent`` — 8 client threads hammering ``/solve`` +
  ``/fictitious-play``, for sustained throughput.

``--write`` refreshes the committed ``BENCH_SERVE.json``: a rich
latest-snapshot ``cases`` block (p50/p95/req_s) plus one history entry
per git revision in the :mod:`repro.obs.watchdog` schema — the history
scalar is each case's **p95 seconds** (seconds-per-request for the
throughput case), so ``watch_file``'s trailing-median alarm applies
as-is.  ``--check`` (default) fails on a large p95 regression against
the committed snapshot; ``--watch`` consults the history median.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

BENCH_FILE = REPO_ROOT / "BENCH_SERVE.json"
MAX_HISTORY = 100

#: Regression gate versus the committed snapshot: HTTP round-trips are
#: noisier than in-process kernels, so the slack is wider than
#: bench_smoke's (50% + 100 ms).
SLACK_REL = 0.50
SLACK_ABS = 0.10

_SEQUENTIAL_REQUESTS = 30
_CONCURRENT_CLIENTS = 8
_REQUESTS_PER_CLIENT = 8

GAME = {
    "vertices": [1, 2, 3, 4, 5, 6],
    "edges": [[1, 2], [2, 3], [3, 4], [4, 5], [5, 6], [1, 6]],
    "k": 2,
    "nu": 1,
}


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        ).stdout.strip() or "unknown"
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _post(base: str, path: str, body: bytes, headers=None) -> int:
    request = urllib.request.Request(
        base + path, data=body,
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=60.0) as resp:
            resp.read()
            return resp.status
    except urllib.error.HTTPError as exc:
        exc.read()
        return exc.code


def _quantile(sorted_values, q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def _profile(latencies, wall_clock_s: float) -> dict:
    ordered = sorted(latencies)
    return {
        "requests": len(ordered),
        "p50_s": round(_quantile(ordered, 0.50), 6),
        "p95_s": round(_quantile(ordered, 0.95), 6),
        "req_per_s": round(len(ordered) / wall_clock_s, 2)
        if wall_clock_s > 0 else None,
        "wall_clock_s": round(wall_clock_s, 6),
    }


def _timed_sequence(base: str, path: str, body: bytes, count: int,
                    expect_status: int = 200, headers=None):
    latencies = []
    start = time.perf_counter()
    for _ in range(count):
        t0 = time.perf_counter()
        status = _post(base, path, body, headers=headers)
        latencies.append(time.perf_counter() - t0)
        if status != expect_status:
            raise RuntimeError(
                f"bench request to {path} answered {status}, "
                f"expected {expect_status}"
            )
    return latencies, time.perf_counter() - start


def run_cases() -> dict:
    import repro.cache as result_cache
    from repro.serve import ServeConfig, running_service

    solve_body = json.dumps({"game": GAME}).encode()
    fp_body = json.dumps(
        {"game": GAME, "params": {"rounds": 30}}
    ).encode()
    invalid_body = json.dumps(
        {"game": dict(GAME, edges=[[1, 99]])}
    ).encode()

    cases: dict = {}
    with running_service(ServeConfig(workers=2, queue_limit=16)) \
            as (_service, base):
        # Warm the shared coverage oracle so the cold case times the
        # steady-state request path, not the first-touch build.
        _post(base, "/solve", solve_body)

        latencies, wall = _timed_sequence(
            base, "/solve", solve_body, _SEQUENTIAL_REQUESTS)
        cases["serve.solve.cold"] = _profile(latencies, wall)

        cache_dir = tempfile.mkdtemp(prefix="repro-bench-serve-")
        result_cache.enable_cache(cache_dir)
        try:
            _post(base, "/solve", solve_body)  # prime the store
            latencies, wall = _timed_sequence(
                base, "/solve", solve_body, _SEQUENTIAL_REQUESTS)
            cases["serve.solve.cache_hit"] = _profile(latencies, wall)
            # Same primed path with an inbound traceparent: the delta
            # against cache_hit is the cost of parsing, adopting and
            # echoing a client-supplied trace context.
            traceparent = ("00-4bf92f3577b34da6a3ce929d0e0e4736"
                           "-00f067aa0ba902b7-01")
            latencies, wall = _timed_sequence(
                base, "/solve", solve_body, _SEQUENTIAL_REQUESTS,
                headers={"traceparent": traceparent})
            cases["serve.solve.correlated"] = _profile(latencies, wall)
        finally:
            result_cache.disable_cache()

        latencies, wall = _timed_sequence(
            base, "/solve", invalid_body, _SEQUENTIAL_REQUESTS,
            expect_status=400)
        cases["serve.reject.invalid"] = _profile(latencies, wall)

        all_latencies = []
        lock = threading.Lock()

        def client(index: int) -> None:
            body = solve_body if index % 2 == 0 else fp_body
            path = "/solve" if index % 2 == 0 else "/fictitious-play"
            mine = []
            for _ in range(_REQUESTS_PER_CLIENT):
                t0 = time.perf_counter()
                status = _post(base, path, body)
                mine.append(time.perf_counter() - t0)
                if status != 200:
                    raise RuntimeError(f"concurrent {path} answered {status}")
            with lock:
                all_latencies.extend(mine)

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(_CONCURRENT_CLIENTS)]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        cases["serve.mixed.concurrent"] = _profile(
            all_latencies, time.perf_counter() - start)

    for name, profile in sorted(cases.items()):
        print(f"  {name:26s} p50 {profile['p50_s'] * 1000:7.1f} ms   "
              f"p95 {profile['p95_s'] * 1000:7.1f} ms   "
              f"{profile['req_per_s']:8.1f} req/s")
    return cases


def _history_scalar(name: str, profile: dict) -> float:
    """The per-case seconds value tracked in the watchdog history."""
    if name == "serve.mixed.concurrent":
        # Throughput case: seconds-per-request, so "bigger is worse"
        # holds for the watchdog exactly like the latency cases.
        return round(1.0 / profile["req_per_s"], 6)
    return profile["p95_s"]


def _load_document() -> dict:
    from repro.obs.watchdog import SCHEMA_V2, load_history_document

    if not BENCH_FILE.exists():
        return {
            "schema": SCHEMA_V2,
            "slack": {"relative": SLACK_REL, "absolute_s": SLACK_ABS},
            "cases": {},
            "history": [],
        }
    return load_history_document(BENCH_FILE)


def write(cases: dict) -> None:
    document = _load_document()
    document["slack"] = {"relative": SLACK_REL, "absolute_s": SLACK_ABS}
    document["cases"] = {name: cases[name] for name in sorted(cases)}
    rev = _git_rev()
    entry = {
        "git_rev": rev,
        "timestamp": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "cases": {name: _history_scalar(name, profile)
                  for name, profile in sorted(cases.items())},
    }
    history = [e for e in document.get("history", [])
               if e.get("git_rev") != rev]
    history.append(entry)
    document["history"] = history[-MAX_HISTORY:]
    BENCH_FILE.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {BENCH_FILE} "
          f"({len(document['history'])} history entries, newest {rev})")


def check(cases: dict) -> int:
    if not BENCH_FILE.exists():
        print(f"{BENCH_FILE} missing; run python tools/bench_serve.py "
              "--write", file=sys.stderr)
        return 1
    baseline = _load_document()["cases"]
    failures = []
    for name, profile in cases.items():
        base = baseline.get(name, {}).get("p95_s")
        if base is None:
            failures.append(f"{name}: not in committed baseline")
            continue
        limit = base * (1.0 + SLACK_REL) + SLACK_ABS
        if profile["p95_s"] > limit:
            failures.append(
                f"{name}: p95 {profile['p95_s']:.3f}s exceeds {limit:.3f}s "
                f"(baseline {base:.3f}s + {SLACK_REL:.0%} "
                f"+ {SLACK_ABS * 1000:.0f}ms)"
            )
    if failures:
        print("bench-serve REGRESSION:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"bench-serve OK: {len(cases)} request profiles within budget")
    return 0


def watch(cases: dict, against=None, ratio=None, strict=False) -> int:
    from repro.obs.watchdog import DEFAULT_RATIO, watch_file

    if not BENCH_FILE.exists():
        print(f"{BENCH_FILE} missing; run python tools/bench_serve.py "
              "--write first", file=sys.stderr)
        return 1 if strict else 0
    current = {name: _history_scalar(name, profile)
               for name, profile in cases.items()}
    try:
        report = watch_file(
            BENCH_FILE, current=current, against=against,
            ratio=DEFAULT_RATIO if ratio is None else ratio,
        )
    except ValueError as exc:
        print(f"bench-serve --watch: {exc}", file=sys.stderr)
        return 1
    print(report.summary())
    return 1 if (strict and not report.ok) else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--write", action="store_true",
                      help="refresh BENCH_SERVE.json and append a history "
                           "entry for the current git revision")
    mode.add_argument("--check", action="store_true",
                      help="fail on a p95 regression vs the committed "
                           "snapshot (default)")
    mode.add_argument("--watch", action="store_true",
                      help="compare against the trailing-median history "
                           "(report-only unless --strict)")
    parser.add_argument("--against", default=None, metavar="REV",
                        help="with --watch: pin the baseline to one git "
                             "revision's history entry")
    parser.add_argument("--ratio", type=float, default=None,
                        help="with --watch: slowdown ratio that trips the "
                             "alarm (default: 1.5)")
    parser.add_argument("--strict", action="store_true",
                        help="with --watch: exit non-zero on regressions")
    args = parser.parse_args()
    cases = run_cases()
    if args.write:
        write(cases)
        return 0
    if args.watch:
        return watch(cases, against=args.against, ratio=args.ratio,
                     strict=args.strict)
    return check(cases)


if __name__ == "__main__":
    raise SystemExit(main())
