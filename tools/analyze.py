"""Run the repro.lint static analyzer from the command line.

Thin entry script around :mod:`repro.lint` for CI and editors — the same
engine the ``repro-defender lint`` subcommand drives.  Typical runs::

    python tools/analyze.py --strict --baseline     # the `make lint` gate
    python tools/analyze.py --format sarif > lint.sarif
    python tools/analyze.py --write-baseline        # re-snapshot debt
    python tools/analyze.py src/repro/core          # one subtree

Exit codes: 0 clean, 1 findings (errors, or anything with ``--strict``),
2 unparseable source.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # no editable install: use the in-tree sources
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.lint import add_lint_arguments, run_from_args


def main() -> int:
    parser = argparse.ArgumentParser(
        prog="analyze.py",
        description="AST-based domain-invariant analyzer (see docs/static_analysis.md).",
    )
    add_lint_arguments(parser)
    return run_from_args(parser.parse_args())


if __name__ == "__main__":
    sys.exit(main())
