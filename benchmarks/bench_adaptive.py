"""Experiment E11 — robustness of the equilibrium schedule to adaptive
attackers (extension).

The paper's guarantees are static; this experiment plays the repeated
game.  A regret-matching attacker (no-regret learner) faces three defender
schedules on the same network and budget:

* the Lemma 4.1 equilibrium mixture — the learner's escape rate converges
  to the equilibrium escape probability ``1 − k/ρ`` and no further
  (exploit gap ≈ 0);
* a skewed mixture over the same support — the learner finds and farms
  the under-scanned vertices (positive exploit gap);
* a static schedule — the learner escapes almost always.

That contrast is the operational content of the paper's randomization:
the value guarantee holds against *arbitrary adaptive* attackers, not
just the equilibrium attacker.

Benchmarks: learner throughput against the equilibrium defender.
"""

import pytest

from benchmarks.conftest import record_table
from repro.analysis.tables import Table
from repro.core.configuration import MixedConfiguration
from repro.core.game import TupleGame
from repro.equilibria.solve import solve_game
from repro.graphs.generators import complete_bipartite_graph, grid_graph
from repro.matching.covers import minimum_edge_cover_size
from repro.simulation.adaptive import exploit_gap, regret_matching_attack

ROUNDS = 8_000


def _schedules(game):
    equilibrium = solve_game(game).mixed
    tuples = sorted(equilibrium.tp_support())
    skew_weights = [0.55] + [0.45 / (len(tuples) - 1)] * (len(tuples) - 1)
    anchor = game.graph.sorted_vertices()[0]
    skewed = MixedConfiguration(
        game, [{anchor: 1.0}] * game.nu, dict(zip(tuples, skew_weights))
    )
    static = MixedConfiguration(
        game, [{anchor: 1.0}] * game.nu, {tuples[0]: 1.0}
    )
    return [("equilibrium (Lemma 4.1)", equilibrium),
            ("skewed 55/45", skewed),
            ("static single tuple", static)]


def _build_e11_table():
    table = Table(["network", "schedule", "escape rate",
                   "guarantee 1-k/rho", "exploit gap", "learner regret"],
                  precision=4)
    for name, graph, k in [
        ("grid3x3", grid_graph(3, 3), 2),
        ("K_{2,5}", complete_bipartite_graph(2, 5), 2),
    ]:
        rho = minimum_edge_cover_size(graph)
        value = k / rho
        game = TupleGame(graph, k, nu=1)
        for label, schedule in _schedules(game):
            result = regret_matching_attack(game, schedule, rounds=ROUNDS, seed=13)
            gap = exploit_gap(result, value)
            if label.startswith("equilibrium"):
                assert abs(gap) < 0.03, (name, gap)
            else:
                assert gap > 0.05, (name, label, gap)
            table.add_row([name, label, result.escape_rate, 1 - value, gap,
                           result.regret])
    record_table("E11_adaptive_robustness", table,
                 title="E11 (extension): no-regret attacker vs defender "
                       "schedules")


def test_e11_adaptive_table(benchmark):
    benchmark.pedantic(_build_e11_table, rounds=1, iterations=1)


def test_e11_bench_learner_throughput(benchmark):
    game = TupleGame(grid_graph(3, 3), 2, nu=1)
    defender = solve_game(game).mixed
    result = benchmark(regret_matching_attack, game, defender, 1_000, 3)
    assert result.rounds == 1_000
