"""Experiment E4 — Algorithm A_tuple runs in O(k·n) (Theorem 4.13).

Theorem 4.13 bounds the work *after* the Edge-model subroutine: labelling
the support edges and cutting the cyclic k-windows (steps 2–5 of Figure 1).
This experiment precomputes step 1 once, times the post-subroutine stage
over an (n, k) sweep, and regenerates the scaling table of time / (k·n).
Per-unit cost must not grow with instance size — small instances carry
fixed Python call overhead, so the check is one-sided: the largest
instances may not be costlier per unit of k·n than the smallest.

Benchmarks: A_tuple end-to-end and the cyclic construction alone.
"""

import time
from math import gcd

import pytest

from benchmarks.conftest import record_table
from repro.analysis.tables import Table
from repro.core.configuration import MixedConfiguration
from repro.core.game import TupleGame
from repro.equilibria.atuple import algorithm_a_tuple, cyclic_tuples
from repro.equilibria.matching_ne import algorithm_a
from repro.graphs.generators import complete_bipartite_graph
from repro.matching.covers import minimum_edge_cover_size
from repro.matching.partition import bipartite_partition


def _instance(b_side):
    """K_{2,b}: rho = b, so the mixed regime is wide and n grows with b."""
    graph = complete_bipartite_graph(2, b_side)
    independent, cover_side = bipartite_partition(graph)
    return graph, independent, cover_side


def _post_subroutine(game, independent, labelled_edges):
    """Steps 2-5 of Figure 1, given step 1's matching NE support."""
    tuples = cyclic_tuples(labelled_edges, game.k)
    return MixedConfiguration.uniform(game, independent, tuples)


def _time_post_subroutine(game, independent, labelled_edges, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        _post_subroutine(game, independent, labelled_edges)
        best = min(best, time.perf_counter() - start)
    return best


def _build_e4_table():
    table = Table(["n", "k", "delta (tuples)", "time (ms)",
                   "time/(k*n) (µs)"], precision=3)
    per_size = {}
    for b in (16, 32, 64, 128, 256):
        graph, independent, cover_side = _instance(b)
        rho = minimum_edge_cover_size(graph)
        edge_config = algorithm_a(TupleGame(graph, 1, nu=2),
                                  independent, cover_side)
        labelled = sorted(edge_config.tp_support_edges())
        normalized = []
        for k in sorted({2, rho // 4, rho // 2, rho - 1}):
            k = max(2, k)
            game = TupleGame(graph, k, nu=2)
            elapsed = _time_post_subroutine(game, independent, labelled)
            per_unit = elapsed / (k * graph.n) * 1e6
            normalized.append(per_unit)
            table.add_row([graph.n, k, rho // gcd(rho, k),
                           elapsed * 1e3, per_unit])
        per_size[graph.n] = sum(normalized) / len(normalized)
    sizes = sorted(per_size)
    # One-sided O(k·n) check: per-unit cost at the largest size must not
    # exceed the small-instance cost (which includes all the fixed
    # overhead) by more than a small factor.
    assert per_size[sizes[-1]] <= per_size[sizes[0]] * 3.0, per_size
    record_table("E4_atuple_scaling", table,
                 title="E4: A_tuple post-subroutine cost, bounded in "
                       "time/(k*n) (Theorem 4.13)")


def test_e4_scaling_table(benchmark):
    benchmark.pedantic(_build_e4_table, rounds=1, iterations=1)


@pytest.mark.parametrize("b", [32, 128])
def test_e4_bench_atuple(benchmark, b):
    graph, independent, cover_side = _instance(b)
    k = minimum_edge_cover_size(graph) // 2
    game = TupleGame(graph, k, nu=2)
    config = benchmark(algorithm_a_tuple, game, independent, cover_side)
    assert config.game is game


@pytest.mark.parametrize("e_num,k", [(128, 3), (128, 64), (1024, 31)])
def test_e4_bench_cyclic_construction(benchmark, e_num, k):
    edges = [(2 * i, 2 * i + 1) for i in range(e_num)]
    tuples = benchmark(cyclic_tuples, edges, k)
    assert len(tuples) >= 1
