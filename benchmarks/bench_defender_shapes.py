"""Experiment E9 — the power of the defender's *shape* (extension).

The paper's defender scans any k links; its related work [8] constrains
the defender to a path.  This experiment quantifies the constraint: for
each topology and budget k, the exact duel value under the tuple, path
and star families.  Containment (paths and full-size stars are special
k-tuples) forces value(path), value(star) ≤ value(tuple); the table shows
where the gap is zero (cycles: a k-path covers k+1 < 2k vertices, stars
at high-degree hubs recover most of the value) and where contiguity is
expensive (long paths, grids).

Benchmarks: the generic minimax LP across families.
"""

import pytest

from benchmarks.conftest import record_table
from repro.analysis.tables import Table
from repro.graphs.generators import (
    complete_bipartite_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    petersen_graph,
)
from repro.models.families import KPathFamily, KStarFamily, KTupleFamily
from repro.models.game import GeneralizedGame, pure_nash_exists_generalized

TOPOLOGIES = [
    ("path10", path_graph(10)),
    ("cycle10", cycle_graph(10)),
    ("grid3x3", grid_graph(3, 3)),
    ("K_{2,5}", complete_bipartite_graph(2, 5)),
    ("petersen", petersen_graph()),
]

KS = (2, 3)


def _value(graph, family):
    return GeneralizedGame(graph, family, nu=1).solve_minimax().value


def _build_e9_table():
    table = Table(["graph", "k", "value(tuple)", "value(star)", "value(path)",
                   "star/tuple", "path/tuple"], precision=4)
    for name, graph in TOPOLOGIES:
        for k in KS:
            tuple_value = _value(graph, KTupleFamily(k))
            star_value = _value(graph, KStarFamily(k))
            try:
                path_value = _value(graph, KPathFamily(k))
            except Exception:
                path_value = None
            assert star_value <= tuple_value + 1e-9
            if path_value is not None:
                assert path_value <= tuple_value + 1e-9
            table.add_row([
                name, k, tuple_value, star_value,
                "-" if path_value is None else path_value,
                star_value / tuple_value,
                "-" if path_value is None else path_value / tuple_value,
            ])
    record_table("E9_defender_shapes", table,
                 title="E9 (extension): duel value by defender shape")


def _build_e9_pure_table():
    table = Table(["graph", "family", "smallest k with a pure NE"])
    for name, graph in TOPOLOGIES:
        for family_cls in (KTupleFamily, KPathFamily, KStarFamily):
            threshold = None
            for k in range(1, graph.m + 1):
                try:
                    game = GeneralizedGame(graph, family_cls(k), nu=1)
                except Exception:
                    continue
                if pure_nash_exists_generalized(game):
                    threshold = k
                    break
            table.add_row([name, family_cls.name, threshold if threshold else "never"])
    record_table("E9_pure_thresholds_by_shape", table,
                 title="E9 addendum: generalized Theorem 3.1 thresholds")


def test_e9_shape_value_table(benchmark):
    benchmark.pedantic(_build_e9_table, rounds=1, iterations=1)


def test_e9_pure_threshold_table(benchmark):
    benchmark.pedantic(_build_e9_pure_table, rounds=1, iterations=1)


@pytest.mark.parametrize("family_cls", [KTupleFamily, KPathFamily, KStarFamily],
                         ids=["tuple", "path", "star"])
def test_e9_bench_family_minimax(benchmark, family_cls):
    graph = grid_graph(3, 3)
    game = GeneralizedGame(graph, family_cls(2), nu=1)
    solution = benchmark(game.solve_minimax)
    assert solution.value > 0
