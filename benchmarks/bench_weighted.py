"""Experiment E12 — weighted assets (extension).

Unit weights reduce the weighted model exactly to the paper's game; as
value concentrates on a few "crown jewel" hosts, the equilibrium defender
reallocates scanning probability toward them and the attacker's escape
profit is equalized at the LP value.  The table sweeps a concentration
parameter on one topology and records:

* the per-attacker escape value (weighted LP);
* the hit probability on the heavy host vs a light host;
* verification that the paper's (unweighted) uniform equilibrium stops
  being a best response once weights diverge.

Benchmarks: the weighted LP.
"""

import pytest

from benchmarks.conftest import record_table
from repro.analysis.tables import Table
from repro.core.game import TupleGame
from repro.core.profits import hit_probability
from repro.equilibria.solve import solve_game
from repro.graphs.generators import complete_bipartite_graph
from repro.weighted import WeightedTupleGame, weighted_lp_equilibrium

GRAPH = complete_bipartite_graph(2, 5)
HEAVY = 2  # first workstation (right side starts at vertex 2)
LIGHT = 3
K = 2


def _weights(concentration: float):
    weights = {v: 1.0 for v in GRAPH.vertices()}
    weights[HEAVY] = concentration
    return weights


def _build_e12_table():
    table = Table(["w(heavy)", "escape value", "hit(heavy)", "hit(light)",
                   "hit ratio", "unweighted NE still best response"],
                  precision=4)
    unweighted = solve_game(TupleGame(GRAPH, K, nu=1)).mixed
    for concentration in (1.0, 2.0, 4.0, 8.0, 16.0):
        game = WeightedTupleGame(GRAPH, K, _weights(concentration), nu=1)
        config, solution = weighted_lp_equilibrium(game)
        heavy_hit = hit_probability(config, HEAVY)
        light_hit = hit_probability(config, LIGHT)
        still_ok, _ = game.verify_best_responses(unweighted, tol=1e-9)
        # Exact: `concentration` is the literal loop constant above.
        if concentration == 1.0:  # repro: noqa[FLT001]
            assert still_ok
            assert abs(heavy_hit - light_hit) < 1e-6
        else:
            assert not still_ok
            assert heavy_hit > light_hit
        table.add_row([
            concentration, solution.value, heavy_hit, light_hit,
            heavy_hit / max(light_hit, 1e-12), still_ok,
        ])
    record_table("E12_weighted_assets", table,
                 title="E12 (extension): crown-jewel concentration on "
                       "K_{2,5}, k=2")


def test_e12_weighted_table(benchmark):
    benchmark.pedantic(_build_e12_table, rounds=1, iterations=1)


@pytest.mark.parametrize("concentration", [1.0, 8.0])
def test_e12_bench_weighted_lp(benchmark, concentration):
    game = WeightedTupleGame(GRAPH, K, _weights(concentration), nu=1)
    config, solution = benchmark(weighted_lp_equilibrium, game)
    assert solution.value > 0
