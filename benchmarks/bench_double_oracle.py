"""Experiment E13 — double oracle vs full enumeration (extension).

Regenerates the scaling table: instances where the full LP over
``C(m, k)`` tuples is feasible show the double oracle reaching the exact
same value with pools of a couple dozen strategies; beyond the
enumeration horizon (hundreds of thousands to millions of tuples) the
double oracle keeps solving in fractions of a second, and on
partitionable graphs its value still lands on the theory's ``k/ρ(G)``.

Benchmarks: double oracle vs full LP on a shared instance, plus double
oracle alone beyond the horizon.
"""

import pytest

from benchmarks.conftest import record_table
from repro.analysis.tables import Table
from repro.core.game import TupleGame
from repro.graphs.generators import random_bipartite_graph
from repro.matching.covers import minimum_edge_cover_size
from repro.solvers.double_oracle import double_oracle
from repro.solvers.lp import solve_minimax

INSTANCES = [
    # (a, b, p-scale, k) — strategy counts spanning 5 orders of magnitude.
    (4, 6, 0.35, 2),
    (6, 9, 0.30, 3),
    (10, 15, 0.20, 3),
    (15, 25, 0.15, 4),
    (25, 40, 0.10, 5),
]

_FULL_LP_LIMIT = 100_000


def _build_e13_table():
    table = Table(["n", "m", "C(m,k)", "k", "DO value", "k/rho", "full LP",
                   "DO iters", "DO pool"], precision=6)
    for a, b, p, k in INSTANCES:
        graph = random_bipartite_graph(a, b, p, seed=a * b)
        game = TupleGame(graph, k, nu=1)
        total = game.tuple_strategy_count()
        result = double_oracle(game)
        rho = minimum_edge_cover_size(graph)
        assert result.value == pytest.approx(k / rho, abs=1e-7)
        if total <= _FULL_LP_LIMIT:
            full = solve_minimax(game).value
            assert result.value == pytest.approx(full, abs=1e-7)
            full_cell = full
        else:
            full_cell = "(skipped)"
        table.add_row([
            graph.n, graph.m, total, k, result.value, k / rho, full_cell,
            result.iterations, result.defender_pool_size,
        ])
    record_table("E13_double_oracle", table,
                 title="E13 (extension): double oracle matches the exact "
                       "value with tiny pools")


def test_e13_double_oracle_table(benchmark):
    benchmark.pedantic(_build_e13_table, rounds=1, iterations=1)


def test_e13_bench_double_oracle_small(benchmark):
    graph = random_bipartite_graph(6, 9, 0.3, seed=54)
    game = TupleGame(graph, 3, nu=1)
    result = benchmark(double_oracle, game)
    assert result.certified_gap <= 1e-7


def test_e13_bench_full_lp_small(benchmark):
    graph = random_bipartite_graph(6, 9, 0.3, seed=54)
    game = TupleGame(graph, 3, nu=1)
    solution = benchmark(solve_minimax, game)
    assert solution.value > 0


def test_e13_bench_double_oracle_beyond_enumeration(benchmark):
    graph = random_bipartite_graph(25, 40, 0.10, seed=1000)
    game = TupleGame(graph, 5, nu=1)
    assert game.tuple_strategy_count() > 10_000_000
    result = benchmark(double_oracle, game)
    assert result.certified_gap <= 1e-7
