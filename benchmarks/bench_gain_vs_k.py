"""Experiment E6 — the headline figure: defender gain is linear in k.

Section 1.2's "power of the defender" claim, quantified by Corollaries
4.7/4.10: at the structural equilibria the defender's expected catch count
is (ν/ρ(G))·k.  This experiment regenerates the gain-vs-k series on several
topologies, fits the through-origin slope, checks the residual is zero, and
cross-validates every point against the exact LP minimax value where the
defender's strategy set is enumerable.

It also records the boundary findings outside the structural class:
Petersen (no k-matching NE) still follows k/ρ because it has a perfect
matching, while C5 departs from it (value 2k/5 > k/3) — the linearity in k
survives, but the slope is no longer ν/ρ.

Benchmarks: the full sweep on the largest instance.
"""

import pytest

from benchmarks.conftest import record_table
from repro.analysis.gain import (
    fit_slope_through_origin,
    gain_curve,
    max_linearity_residual,
)
from repro.analysis.tables import Table
from repro.core.game import TupleGame
from repro.graphs.generators import (
    complete_bipartite_graph,
    cycle_graph,
    grid_graph,
    petersen_graph,
    random_bipartite_graph,
)
from repro.matching.covers import minimum_edge_cover_size
from repro.solvers.lp import solve_minimax

NU = 6

INSTANCES = [
    ("K_{2,6}", complete_bipartite_graph(2, 6)),
    ("grid3x4", grid_graph(3, 4)),
    ("rand-bip-5x8", random_bipartite_graph(5, 8, 0.3, seed=9)),
]


def _build_e6_series():
    table = Table(["graph", "k", "kind", "gain", "lp gain", "slope*k"])
    slope_table = Table(["graph", "rho(G)", "fitted slope", "nu/rho",
                         "max residual"], precision=6)
    for name, graph in INSTANCES:
        rho = minimum_edge_cover_size(graph)
        points = gain_curve(graph, NU, include_lp=True, lp_tuple_limit=30_000)
        mixed_points = [p for p in points if p.kind == "k-matching"]
        slope = fit_slope_through_origin(mixed_points)
        residual = max_linearity_residual(mixed_points, slope)
        assert abs(slope - NU / rho) < 1e-9
        assert residual < 1e-9
        for p in points:
            if p.lp_gain is not None and p.kind == "k-matching":
                assert abs(p.lp_gain - p.gain) < 1e-6
            table.add_row([
                name, p.k, p.kind, p.gain,
                "-" if p.lp_gain is None else p.lp_gain, slope * p.k,
            ])
        slope_table.add_row([name, rho, slope, NU / rho, residual])
    record_table("E6_gain_vs_k_series", table,
                 title="E6: defender gain vs k (figure data; slope = nu/rho)")
    record_table("E6_gain_slopes", slope_table,
                 title="E6: fitted slopes vs theory")


def _build_e6_boundary():
    table = Table(["graph", "k", "LP value", "k/rho", "k * 2/n",
                   "matches k/rho"], precision=6)
    for name, graph, ks in [
        ("petersen", petersen_graph(), (1, 2, 3)),
        ("C5", cycle_graph(5), (1, 2)),
    ]:
        rho = minimum_edge_cover_size(graph)
        for k in ks:
            value = solve_minimax(TupleGame(graph, k, nu=1)).value
            table.add_row([
                name, k, value, k / rho, k * 2 / graph.n,
                abs(value - k / rho) < 1e-7,
            ])
    record_table("E6_boundary_non_structural", table,
                 title="E6 addendum: LP values outside the k-matching class")


def test_e6_gain_series(benchmark):
    benchmark.pedantic(_build_e6_series, rounds=1, iterations=1)


def test_e6_boundary_table(benchmark):
    benchmark.pedantic(_build_e6_boundary, rounds=1, iterations=1)


def test_e6_bench_full_sweep(benchmark):
    graph = random_bipartite_graph(12, 18, 0.2, seed=21)
    points = benchmark(gain_curve, graph, NU)
    assert len(points) >= 2
