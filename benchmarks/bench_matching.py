"""Experiment E8 — substrate microbenchmarks.

The paper's complexity bounds (Corollary 3.2, Theorems 4.13 and 5.1)
bottom out in matching computations; this module regenerates a timing
table for Hopcroft–Karp, the blossom algorithm, König covers and Gallai
edge covers across instance sizes, and benchmarks each kernel with
pytest-benchmark.
"""

import time

import pytest

from benchmarks.conftest import record_table
from repro.analysis.tables import Table
from repro.graphs.generators import gnp_random_graph, random_bipartite_graph
from repro.graphs.properties import bipartition
from repro.matching.blossom import maximum_matching
from repro.matching.covers import minimum_edge_cover
from repro.matching.hopcroft_karp import hopcroft_karp
from repro.matching.konig import konig_vertex_cover


def _bipartite_instance(side):
    graph = random_bipartite_graph(side, side, min(0.9, 8.0 / side), seed=side)
    left, _ = bipartition(graph)
    order = sorted(left, key=repr)
    adjacency = {v: sorted(graph.neighbors(v), key=repr) for v in order}
    return graph, order, adjacency


def _general_instance(n):
    return gnp_random_graph(n, min(0.9, 8.0 / n), seed=n)


def _best_of(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _build_e8_table():
    table = Table(["kernel", "n", "m", "output size", "time (ms)"], precision=3)
    for side in (50, 100, 200, 400):
        graph, order, adjacency = _bipartite_instance(side)
        elapsed, matching = _best_of(lambda: hopcroft_karp(order, adjacency))
        table.add_row(["hopcroft-karp", graph.n, graph.m, matching.size,
                       elapsed * 1e3])
        elapsed, result = _best_of(lambda: konig_vertex_cover(graph))
        table.add_row(["konig-cover", graph.n, graph.m, len(result.cover),
                       elapsed * 1e3])
    for n in (50, 100, 200):
        graph = _general_instance(n)
        elapsed, matching = _best_of(lambda: maximum_matching(graph))
        table.add_row(["blossom", graph.n, graph.m, len(matching),
                       elapsed * 1e3])
        elapsed, cover = _best_of(lambda: minimum_edge_cover(graph))
        table.add_row(["gallai-edge-cover", graph.n, graph.m, len(cover),
                       elapsed * 1e3])
    record_table("E8_matching_kernels", table,
                 title="E8: matching-substrate kernel timings")


def test_e8_kernel_table(benchmark):
    benchmark.pedantic(_build_e8_table, rounds=1, iterations=1)


@pytest.mark.parametrize("side", [100, 400])
def test_e8_bench_hopcroft_karp(benchmark, side):
    _, order, adjacency = _bipartite_instance(side)
    result = benchmark(hopcroft_karp, order, adjacency)
    assert result.size > 0


@pytest.mark.parametrize("n", [60, 150])
def test_e8_bench_blossom(benchmark, n):
    graph = _general_instance(n)
    result = benchmark(maximum_matching, graph)
    assert len(result) > 0


def test_e8_bench_konig(benchmark):
    graph, _, _ = _bipartite_instance(200)
    result = benchmark(konig_vertex_cover, graph)
    assert result.cover


def test_e8_bench_edge_cover(benchmark):
    graph = _general_instance(150)
    result = benchmark(minimum_edge_cover, graph)
    assert result
