"""Experiment E3 — the Theorem 4.5 reduction and the gain law.

Regenerates the reduction table: for each instance and each k in the mixed
regime, lifting a matching NE of Π_1(G) yields a k-matching NE of Π_k(G)
whose defender gain is exactly k times larger (Corollaries 4.7/4.10), and
flattening it back recovers the original supports.

Benchmarks: both reduction directions, isolated from equilibrium search.
"""

import pytest

from benchmarks.conftest import record_table
from repro.analysis.tables import Table
from repro.core.game import TupleGame
from repro.core.profits import expected_profit_tp
from repro.equilibria.matching_ne import matching_equilibrium
from repro.equilibria.reduction import edge_to_tuple, tuple_to_edge
from repro.graphs.generators import (
    complete_bipartite_graph,
    grid_graph,
    random_bipartite_graph,
    random_tree,
)
from repro.matching.covers import minimum_edge_cover_size

INSTANCES = [
    ("K_{3,5}", complete_bipartite_graph(3, 5)),
    ("grid3x4", grid_graph(3, 4)),
    ("tree14", random_tree(14, seed=6)),
    ("rand-bip-5x8", random_bipartite_graph(5, 8, 0.3, seed=4)),
]

NU = 4


def _build_e3_table():
    table = Table(["graph", "k", "IP_tp(edge NE)", "IP_tp(k-matching NE)",
                   "ratio", "ratio == k", "round-trip supports equal"])
    for name, graph in INSTANCES:
        edge_game = TupleGame(graph, 1, nu=NU)
        edge_config = matching_equilibrium(edge_game)
        base_gain = expected_profit_tp(edge_config)
        rho = minimum_edge_cover_size(graph)
        for k in range(2, rho):
            lifted = edge_to_tuple(edge_game, edge_config, k)
            lifted_gain = expected_profit_tp(lifted)
            ratio = lifted_gain / base_gain
            back = tuple_to_edge(TupleGame(graph, k, nu=NU), lifted)
            round_trip = (
                back.tp_support_edges() == edge_config.tp_support_edges()
                and back.vp_support_union() == edge_config.vp_support_union()
            )
            assert abs(ratio - k) < 1e-9
            assert round_trip
            table.add_row([name, k, base_gain, lifted_gain, ratio,
                           abs(ratio - k) < 1e-9, round_trip])
    record_table("E3_reduction", table,
                 title="E3: Theorem 4.5 reduction, IP_tp scales by exactly k")


def test_e3_reduction_table(benchmark):
    benchmark.pedantic(_build_e3_table, rounds=1, iterations=1)


@pytest.fixture(scope="module")
def lifted_instance():
    graph = random_bipartite_graph(20, 30, 0.15, seed=12)
    edge_game = TupleGame(graph, 1, nu=5)
    edge_config = matching_equilibrium(edge_game)
    k = minimum_edge_cover_size(graph) - 1
    return graph, edge_game, edge_config, k


def test_e3_bench_edge_to_tuple(benchmark, lifted_instance):
    graph, edge_game, edge_config, k = lifted_instance
    lifted = benchmark(edge_to_tuple, edge_game, edge_config, k)
    assert lifted.game.k == k


def test_e3_bench_tuple_to_edge(benchmark, lifted_instance):
    graph, edge_game, edge_config, k = lifted_instance
    game = TupleGame(graph, k, nu=5)
    lifted = edge_to_tuple(edge_game, edge_config, k)
    back = benchmark(tuple_to_edge, game, lifted)
    assert back.game.k == 1
