"""Experiment E5 — the bipartite pipeline end-to-end (Theorem 5.1).

Regenerates the table: random bipartite instances of growing size, solved
end-to-end (König partition → Algorithm A → cyclic lift → uniform
profile), with the equilibrium's structural validity asserted and the
defender gain equal to k·ν/ρ(G) throughout.

Benchmarks: solve_game across sizes — the max{O(kn), O(m√n)} pipeline.
"""

import pytest

from benchmarks.conftest import record_table
from repro.analysis.tables import Table
from repro.core.game import TupleGame
from repro.equilibria.kmatching import is_kmatching_nash
from repro.equilibria.solve import solve_game
from repro.graphs.generators import random_bipartite_graph
from repro.matching.covers import minimum_edge_cover_size

SIZES = [(10, 15), (20, 30), (40, 60), (80, 120), (160, 240)]
NU = 8


def _build_e5_table():
    table = Table(["a x b", "n", "m", "rho(G)", "k", "kind",
                   "defender gain", "k*nu/rho", "valid k-matching NE"])
    for a, b in SIZES:
        graph = random_bipartite_graph(a, b, min(0.9, 6.0 / a), seed=a)
        rho = minimum_edge_cover_size(graph)
        k = max(1, rho // 2)
        game = TupleGame(graph, k, nu=NU)
        result = solve_game(game)
        predicted = k * NU / rho
        valid = is_kmatching_nash(game, result.mixed)
        assert valid
        assert abs(result.defender_gain - predicted) < 1e-9
        table.add_row([f"{a}x{b}", graph.n, graph.m, rho, k, result.kind,
                       result.defender_gain, predicted, valid])
    record_table("E5_bipartite_pipeline", table,
                 title="E5: bipartite end-to-end solve (Theorem 5.1)")


def test_e5_bipartite_table(benchmark):
    benchmark.pedantic(_build_e5_table, rounds=1, iterations=1)


@pytest.mark.parametrize("a,b", SIZES)
def test_e5_bench_solve(benchmark, a, b):
    graph = random_bipartite_graph(a, b, min(0.9, 6.0 / a), seed=a)
    k = max(1, minimum_edge_cover_size(graph) // 2)
    game = TupleGame(graph, k, nu=NU)
    result = benchmark(solve_game, game)
    assert result.kind == "k-matching"
