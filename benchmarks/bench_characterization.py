"""Experiment E2 — the mixed-NE characterization (Theorem 3.4).

Regenerates a verification matrix: every structural equilibrium passes all
six clauses; targeted perturbations (skewed defender, misplaced attacker,
broken cover) each trip the specific clause the theorem predicts.

Benchmarks: the full characterization check (including the NP-hard clause
3(a) coverage maximum) at increasing instance sizes.
"""

import pytest

from benchmarks.conftest import record_table
from repro.analysis.tables import Table
from repro.core.characterization import check_characterization
from repro.core.configuration import MixedConfiguration
from repro.core.game import TupleGame
from repro.equilibria.solve import solve_game
from repro.graphs.generators import (
    complete_bipartite_graph,
    grid_graph,
    path_graph,
    random_bipartite_graph,
    star_graph,
)

CASES = [
    ("path8-k2", path_graph(8), 2, 3),
    ("star6-k3", star_graph(6), 3, 2),
    ("grid3x3-k2", grid_graph(3, 3), 2, 4),
    ("K_{2,5}-k3", complete_bipartite_graph(2, 5), 3, 5),
    ("rand-bip-4x6-k2", random_bipartite_graph(4, 6, 0.4, seed=7), 2, 3),
]


def _skewed_defender(game, config):
    tuples = sorted(config.tp_support())
    if len(tuples) < 2:
        return None
    weights = [0.6] + [0.4 / (len(tuples) - 1)] * (len(tuples) - 1)
    return MixedConfiguration(
        game,
        [config.vp_distribution(i) for i in range(game.nu)],
        dict(zip(tuples, weights)),
    )


def _misplaced_attacker(game, config):
    off_support = sorted(
        game.graph.vertices() - config.vp_support_union(), key=repr
    )
    if not off_support:
        return None
    dists = [config.vp_distribution(i) for i in range(game.nu)]
    dists[0] = {off_support[0]: 1.0}
    return MixedConfiguration(game, dists, config.tp_distribution())


def _build_e2_table():
    table = Table([
        "instance", "equilibrium passes", "skewed defender fails 2(a)",
        "misplaced attacker fails", "properly mixed",
    ])
    for name, graph, k, nu in CASES:
        game = TupleGame(graph, k, nu)
        config = solve_game(game).mixed
        report = check_characterization(game, config)
        assert report.is_nash, (name, report.failures)

        skewed = _skewed_defender(game, config)
        skew_fails = (
            not check_characterization(game, skewed).condition_2a_uniform_min_hit
            if skewed is not None
            else "-"
        )
        if skewed is not None:
            assert skew_fails

        moved = _misplaced_attacker(game, config)
        move_fails = (
            not check_characterization(game, moved).is_nash
            if moved is not None
            else "-"
        )
        if moved is not None:
            assert move_fails

        table.add_row([name, report.is_nash, skew_fails, move_fails,
                       report.properly_mixed])
    record_table("E2_characterization", table,
                 title="E2: Theorem 3.4 clause-level verification matrix")


def test_e2_characterization_table(benchmark):
    benchmark.pedantic(_build_e2_table, rounds=1, iterations=1)


@pytest.mark.parametrize("side", [4, 6, 8])
def test_e2_bench_full_check(benchmark, side):
    graph = random_bipartite_graph(side, side + 2, 0.4, seed=side)
    game = TupleGame(graph, 2, nu=3)
    config = solve_game(game).mixed
    report = benchmark(check_characterization, game, config)
    assert report.is_nash
