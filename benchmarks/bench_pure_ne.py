"""Experiment E1 — pure Nash equilibria (Theorem 3.1, Corollaries 3.2/3.3).

Regenerates the existence table: for each graph family, the minimum edge
cover ρ(G) is the exact threshold — no pure NE for k < ρ, pure NE (which we
construct and verify) for k ≥ ρ — and whenever n ≥ 2k+1 existence is
impossible, confirming Corollary 3.3.

Benchmarks: the polynomial existence decision + construction of
Corollary 3.2 on instances of increasing size.
"""

import pytest

from benchmarks.conftest import record_table
from repro.analysis.tables import Table
from repro.core.game import TupleGame
from repro.core.pure import find_pure_nash, is_pure_nash, pure_nash_exists
from repro.graphs.generators import (
    complete_bipartite_graph,
    cycle_graph,
    double_star_graph,
    gnp_random_graph,
    grid_graph,
    path_graph,
    petersen_graph,
    random_bipartite_graph,
    star_graph,
)
from repro.matching.covers import minimum_edge_cover_size

FAMILIES = [
    ("path16", path_graph(16)),
    ("cycle12", cycle_graph(12)),
    ("cycle13", cycle_graph(13)),
    ("star9", star_graph(9)),
    ("double-star-4-5", double_star_graph(4, 5)),
    ("grid4x5", grid_graph(4, 5)),
    ("K_{3,6}", complete_bipartite_graph(3, 6)),
    ("petersen", petersen_graph()),
    ("gnp20", gnp_random_graph(20, 0.2, seed=1)),
    ("rand-bip-8x10", random_bipartite_graph(8, 10, 0.25, seed=2)),
]


def test_e1_pure_ne_existence_table(benchmark):
    benchmark.pedantic(_build_e1_table, rounds=1, iterations=1)


def _build_e1_table():
    table = Table(["graph", "n", "m", "rho(G)", "pure NE @ k=rho-1",
                   "pure NE @ k=rho", "corollary 3.3 bound 2k+1<=n holds"])
    for name, graph in FAMILIES:
        rho = minimum_edge_cover_size(graph)
        below = (
            pure_nash_exists(TupleGame(graph, rho - 1, nu=1)) if rho > 1 else "-"
        )
        game = TupleGame(graph, rho, nu=1)
        at = pure_nash_exists(game)
        config = find_pure_nash(game)
        assert at and config is not None and is_pure_nash(game, config)
        if rho > 1:
            assert below is False
        # Corollary 3.3 sanity: for every k < ceil(n/2), n >= 2k+1 and
        # indeed no pure NE (equivalent to rho >= n/2).
        c33 = all(
            not pure_nash_exists(TupleGame(graph, k, nu=1))
            for k in range(1, (graph.n - 1) // 2 + 1)
        )
        assert c33
        table.add_row([name, graph.n, graph.m, rho, below, at, c33])
    record_table("E1_pure_ne_existence", table,
                 title="E1: pure NE existence threshold = rho(G) (Theorem 3.1)")


@pytest.mark.parametrize("size", [20, 50, 100])
def test_e1_bench_existence_decision(benchmark, size):
    graph = random_bipartite_graph(size, size, 4.0 / size, seed=size)
    game = TupleGame(graph, minimum_edge_cover_size(graph), nu=1)
    result = benchmark(find_pure_nash, game)
    assert result is not None


def test_e1_bench_threshold_on_gnp(benchmark):
    graph = gnp_random_graph(60, 0.1, seed=3)
    benchmark(minimum_edge_cover_size, graph)
