"""Shared helpers for the benchmark/experiment harness.

Every experiment module (E1–E8, see DESIGN.md §5) regenerates its table
through :func:`record_table`, which both prints it (visible with ``-s``)
and persists it under ``benchmarks/results/`` so EXPERIMENTS.md can be
diffed against fresh runs.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.tables import Table

RESULTS_DIR = Path(__file__).parent / "results"


def record_table(name: str, table: Table, title: str = "") -> str:
    """Render, print and persist an experiment table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = table.render(title=title)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}")
    return text


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
