"""Shared helpers for the benchmark/experiment harness.

Every experiment module (E1–E8, see DESIGN.md §5) regenerates its table
through :func:`record_table`, which both prints it (visible with ``-s``)
and persists it under ``benchmarks/results/`` — as the human-readable
``<name>.txt`` *and* a machine-readable ``<name>.json`` (headers + rows,
timestamp-free) so experiment tables can be diffed programmatically.

The session fixture :func:`_obs_session_telemetry` additionally collects
per-experiment wall-clock and the process-global metrics registry
(double-oracle iterations, LP solve-time histograms, simulation
throughput, …) and writes ``benchmarks/results/bench_summary.json`` plus
the repo-root ``BENCH_OBS.json`` — the perf trajectory that optimisation
PRs diff against.  Schema documented in ``docs/observability.md``.
"""

from __future__ import annotations

import json
from pathlib import Path
from time import perf_counter
from typing import Dict

import pytest

from repro.analysis.tables import Table
from repro.obs import events as obs_events
from repro.obs import ledger as obs_ledger
from repro.obs import metrics as obs_metrics

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent

BENCH_SUMMARY_SCHEMA = "repro.obs/bench-summary/v1"

_experiment_seconds: Dict[str, float] = {}


def record_table(name: str, table: Table, title: str = "") -> str:
    """Render, print and persist an experiment table (.txt + .json)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = table.render(title=title)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    document = {
        "schema": "repro.obs/experiment-table/v1",
        "name": name,
        "title": title,
        "headers": list(table.headers),
        "rows": [list(row) for row in table.rows],
    }
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n"
    )
    print(f"\n{text}")
    return text


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(autouse=True)
def _obs_experiment_timer(request):
    """Record wall-clock seconds per experiment into the session summary."""
    start = perf_counter()
    yield
    seconds = perf_counter() - start
    _experiment_seconds[request.node.nodeid] = seconds
    obs_events.publish(
        "bench.case", case=request.node.nodeid, wall_clock_s=seconds
    )


@pytest.fixture(scope="session", autouse=True)
def _obs_session_telemetry():
    """Write bench_summary.json + BENCH_OBS.json after the benchmark run."""
    registry = obs_metrics.get_registry()
    registry.reset()
    _experiment_seconds.clear()
    session_start = perf_counter()
    with obs_ledger.run(
        "benchmarks.session",
        fingerprint={"kind": "benchmark-session"},
    ):
        yield
    summary = {
        "schema": BENCH_SUMMARY_SCHEMA,
        "total_wall_clock_s": perf_counter() - session_start,
        "experiments": {
            nodeid: {"wall_clock_s": seconds}
            for nodeid, seconds in sorted(_experiment_seconds.items())
        },
        "metrics": registry.snapshot(),
    }
    text = json.dumps(summary, indent=2, sort_keys=True) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "bench_summary.json").write_text(text)
    (REPO_ROOT / "BENCH_OBS.json").write_text(text)
