"""Experiment E7 — Monte-Carlo validation of equations (1)–(2).

Regenerates the table comparing analytic expected profits against 10⁵-trial
simulation: the analytic value must land inside the 95% confidence interval
for the defender and every attacker, across equilibrium and deliberately
non-equilibrium profiles alike (the formulas hold for *any* mixed
configuration).

Benchmarks: the playout engine's throughput.
"""

import pytest

from benchmarks.conftest import record_table
from repro.analysis.tables import Table
from repro.core.configuration import MixedConfiguration
from repro.core.game import TupleGame
from repro.core.profits import expected_profit_tp, expected_profit_vp
from repro.equilibria.solve import solve_game
from repro.graphs.generators import (
    complete_bipartite_graph,
    grid_graph,
    path_graph,
)
from repro.simulation.engine import simulate

TRIALS = 100_000


def _profiles():
    """(name, game, config) triples: equilibria plus arbitrary profiles."""
    cases = []
    for name, graph, k, nu in [
        ("grid3x3-eq", grid_graph(3, 3), 2, 3),
        ("K_{2,4}-eq", complete_bipartite_graph(2, 4), 2, 5),
    ]:
        game = TupleGame(graph, k, nu)
        cases.append((name, game, solve_game(game).mixed))
    # A deliberately non-equilibrium profile: formulas still apply.
    game = TupleGame(path_graph(5), 2, nu=2)
    config = MixedConfiguration(
        game,
        [{0: 0.2, 2: 0.8}, {1: 0.5, 4: 0.5}],
        {((0, 1), (1, 2)): 0.3, ((2, 3), (3, 4)): 0.7},
    )
    cases.append(("path5-arbitrary", game, config))
    return cases


def _build_e7_table():
    table = Table(["profile", "player", "analytic", "simulated mean",
                   "CI low", "CI high", "analytic in CI"], precision=4)
    for name, game, config in _profiles():
        report = simulate(game, config, trials=TRIALS, seed=2026)
        analytic_tp = expected_profit_tp(config)
        low, high = report.defender_profit.confidence_interval()
        inside = low <= analytic_tp <= high
        assert inside, (name, analytic_tp, low, high)
        table.add_row([name, "defender", analytic_tp,
                       report.defender_profit.mean, low, high, inside])
        for i in range(game.nu):
            analytic_vp = expected_profit_vp(config, i)
            vlow, vhigh = report.attacker_profit[i].confidence_interval()
            v_inside = vlow <= analytic_vp <= vhigh
            assert v_inside, (name, i, analytic_vp, vlow, vhigh)
            table.add_row([name, f"attacker {i}", analytic_vp,
                           report.attacker_profit[i].mean, vlow, vhigh,
                           v_inside])
    record_table("E7_simulation_validation", table,
                 title=f"E7: analytic vs {TRIALS}-trial Monte-Carlo "
                       "(equations (1)-(2))")


def test_e7_simulation_table(benchmark):
    benchmark.pedantic(_build_e7_table, rounds=1, iterations=1)


@pytest.mark.parametrize("nu", [1, 8])
def test_e7_bench_playout_throughput(benchmark, nu):
    game = TupleGame(grid_graph(3, 3), 2, nu=nu)
    config = solve_game(game).mixed
    report = benchmark(simulate, game, config, 2_000, 7)
    assert report.trials == 2_000


@pytest.mark.parametrize("nu", [1, 8])
def test_e7_bench_vectorized_playout_throughput(benchmark, nu):
    """The numpy fast path at the same trial count — typically two orders
    of magnitude more trials per second than the reference engine."""
    from repro.simulation.fast import simulate_fast

    game = TupleGame(grid_graph(3, 3), 2, nu=nu)
    config = solve_game(game).mixed
    result = benchmark(simulate_fast, game, config, 2_000, 7)
    assert result.trials == 2_000
