"""Experiment E14 — the value of coordination (extension).

Another reading of "the power of the defender": is one defender scanning
``k`` links per round worth more than ``k`` independent lone scanners
drawing from the same marginals?  Closed forms (see
:mod:`repro.analysis.coordination`): coordinated ``k/ρ`` vs uncoordinated
``1 − (1 − 1/ρ)^k``.  The table sweeps ``k`` on two topologies, asserts
the coordinated defender dominates strictly from ``k = 2``, and confirms
the uncoordinated closed form by simulation.

Benchmarks: the uncoordinated playout.
"""

import pytest

from benchmarks.conftest import record_table
from repro.analysis.coordination import (
    coordinated_hit_probability,
    coordination_gap,
    simulate_uncoordinated,
    uncoordinated_hit_probability,
)
from repro.analysis.tables import Table
from repro.graphs.generators import complete_bipartite_graph, grid_graph
from repro.matching.covers import minimum_edge_cover_size

TOPOLOGIES = [
    ("K_{2,6}", complete_bipartite_graph(2, 6)),
    ("grid3x4", grid_graph(3, 4)),
]


def _build_e14_table():
    table = Table(["graph", "k", "coordinated k/rho", "uncoordinated",
                   "simulated uncoordinated", "coordination gap"],
                  precision=4)
    for name, graph in TOPOLOGIES:
        rho = minimum_edge_cover_size(graph)
        for k in range(1, rho + 1):
            coordinated = coordinated_hit_probability(graph, k)
            uncoordinated = uncoordinated_hit_probability(graph, k)
            gap = coordination_gap(graph, k)
            simulated = simulate_uncoordinated(graph, k, trials=30_000, seed=k)
            assert abs(simulated - uncoordinated) < 0.02, (name, k)
            if k == 1:
                assert gap == pytest.approx(0.0)
            else:
                assert gap > 0.0
            table.add_row([name, k, coordinated, uncoordinated, simulated, gap])
    record_table("E14_coordination", table,
                 title="E14 (extension): one k-link defender vs k lone "
                       "scanners")


def test_e14_coordination_table(benchmark):
    benchmark.pedantic(_build_e14_table, rounds=1, iterations=1)


def test_e14_bench_uncoordinated_simulation(benchmark):
    graph = grid_graph(3, 4)
    rate = benchmark(simulate_uncoordinated, graph, 3, 5_000, 9)
    assert 0.0 < rate < 1.0
