"""Experiment E10 — the Price of Defense (extension).

The dual reading of the paper's headline law: at the structural
equilibria the fraction of attacks that succeed is governed by the price
of defense ``ν / IP_tp = ρ(G)/k``, independent of ν.  This experiment
regenerates the price profile across topologies — including the
non-bipartite graphs solved by the extension families — and asserts the
closed form wherever the gain law applies.

Benchmarks: the sweep on a mid-size instance.
"""

import pytest

from benchmarks.conftest import record_table
from repro.analysis.defense import defense_profile, predicted_price_of_defense
from repro.analysis.tables import Table
from repro.graphs.generators import (
    complete_bipartite_graph,
    cycle_graph,
    grid_graph,
    petersen_graph,
    random_bipartite_graph,
)
from repro.matching.covers import minimum_edge_cover_size

TOPOLOGIES = [
    ("grid3x4", grid_graph(3, 4)),
    ("K_{3,5}", complete_bipartite_graph(3, 5)),
    ("petersen", petersen_graph()),
    ("cycle7", cycle_graph(7)),
    ("rand-bip-5x8", random_bipartite_graph(5, 8, 0.3, seed=3)),
]

NU = 6


def _build_e10_table():
    table = Table(["graph", "rho(G)", "k", "kind", "price nu/IP_tp",
                   "rho/k closed form", "matches"], precision=4)
    for name, graph in TOPOLOGIES:
        rho = minimum_edge_cover_size(graph)
        for point in defense_profile(graph, NU):
            predicted = predicted_price_of_defense(graph, point.k)
            matches = abs(point.price - predicted) < 1e-9
            # The rho/k law holds for the paper's equilibria and the
            # perfect-matching extension; uniform-k-matching equilibria
            # (e.g. odd cycles) legitimately depart from it.
            if point.kind in ("pure", "k-matching", "perfect-matching"):
                assert matches, (name, point.k, point.price, predicted)
            table.add_row([name, rho, point.k, point.kind, point.price,
                           predicted, matches])
    record_table("E10_price_of_defense", table,
                 title="E10 (extension): price of defense = rho(G)/k")


def test_e10_price_table(benchmark):
    benchmark.pedantic(_build_e10_table, rounds=1, iterations=1)


def test_e10_bench_profile(benchmark):
    graph = random_bipartite_graph(10, 14, 0.25, seed=9)
    points = benchmark(defense_profile, graph, NU)
    assert len(points) >= 3
