# Developer/CI entry points.  Everything runs from the repo root with the
# in-tree sources on PYTHONPATH, so no editable install is required.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-smoke bench-smoke-baseline bench-watch bench-serve bench-serve-baseline cache-smoke fuzz-smoke obs-check report-smoke serve-smoke slo-smoke api-docs api-docs-check lint lint-changed lint-sarif lint-baseline mypy ci

## tier-1 test suite (the gate every PR must keep green)
test:
	$(PYTHON) -m pytest -x -q

## regenerate the experiment tables + benchmark telemetry
## (writes benchmarks/results/*.{txt,json}, bench_summary.json, BENCH_OBS.json)
bench:
	$(PYTHON) -m pytest -q benchmarks

## time the solver hot paths and fail on >20% regression versus the
## committed BENCH_KERNELS.json (skips cleanly when scipy is absent)
bench-smoke:
	@if $(PYTHON) -c "import numpy, scipy" >/dev/null 2>&1; then \
		$(PYTHON) tools/bench_smoke.py --check; \
	else \
		echo "numpy/scipy not installed -- skipping bench smoke"; \
	fi

## re-baseline BENCH_KERNELS.json from the current hot-path timings
## (appends one history entry keyed by the current git revision)
bench-smoke-baseline:
	$(PYTHON) tools/bench_smoke.py --write

## perf-regression watchdog: newest committed history entry versus the
## trailing-median history (report-only; run bench_smoke.py --watch
## --strict to gate on it)
bench-watch:
	$(PYTHON) -c "from repro.obs.watchdog import _main; raise SystemExit(_main())" --file BENCH_KERNELS.json

## result-cache lifecycle gate: cold solve -> byte-identical hit ->
## distinct weighted identities -> gc -> miss, on the committed fixtures
cache-smoke:
	$(PYTHON) tools/cache_smoke.py

## HTTP solve-service gate: ephemeral-port boot, one request per
## endpoint plus one invalid, then metrics + ledger-record assertions
## and the end-to-end trace-correlation check (headers = ledger =
## events = access log)
serve-smoke:
	$(PYTHON) tools/serve_smoke.py

## SLO exit-code gate: `slo check` must pass the committed healthy
## access-log fixture and fail the breaching one
slo-smoke:
	$(PYTHON) tools/slo_smoke.py

## load-generate against the service and fail on a p95 regression versus
## the committed BENCH_SERVE.json snapshot
bench-serve:
	$(PYTHON) tools/bench_serve.py --check

## re-baseline BENCH_SERVE.json from the current request profiles
## (appends one history entry keyed by the current git revision)
bench-serve-baseline:
	$(PYTHON) tools/bench_serve.py --write

## differential fuzz gate: replay the counterexample corpus, then a
## fixed-seed fresh batch across every solver path (deterministic, <60s)
fuzz-smoke:
	$(PYTHON) -m repro.fuzz --count 50 --seed 20060707 --corpus tests/corpus --replay

## smoke-check the observability layer (tracing + metrics + events +
## ledger + report exports)
obs-check:
	$(PYTHON) tools/check_obs.py

## render the HTML/markdown run report from the committed ledger fixture
## and fail unless it is valid and self-contained
report-smoke:
	$(PYTHON) tools/check_obs.py --report-smoke

## regenerate docs/api.md from docstrings
api-docs:
	$(PYTHON) tools/gen_api_docs.py

## fail if docs/api.md is stale
api-docs-check:
	$(PYTHON) tools/gen_api_docs.py --check

## two-phase static analysis over src/repro, tools/ and benchmarks/
## (rules in docs/static_analysis.md); fails on any finding not in the
## committed lint_baseline.json
lint:
	$(PYTHON) tools/analyze.py --strict --baseline

## fast pre-push loop: whole-project index, findings reported only for
## files changed vs HEAD (LINT_REF overrides the ref)
lint-changed:
	$(PYTHON) tools/analyze.py --strict --baseline --changed $(or $(LINT_REF),HEAD)

## machine-readable findings for code-scanning upload; always writes
## lint.sarif (per-rule helpUris into docs/static_analysis.md) and
## keeps the lint exit status
lint-sarif:
	$(PYTHON) tools/analyze.py --strict --baseline --format sarif --output lint.sarif

## re-snapshot the current findings into lint_baseline.json
lint-baseline:
	$(PYTHON) tools/analyze.py --write-baseline

## static types: strict on core/matching, permissive elsewhere
## (configured in pyproject.toml; skips cleanly when mypy is absent)
mypy:
	@if $(PYTHON) -c "import mypy" >/dev/null 2>&1; then \
		$(PYTHON) -m mypy src/repro; \
	else \
		echo "mypy not installed -- skipping type check"; \
	fi

## the full CI gate: static analysis, types, instrumentation smoke test,
## report rendering, docs freshness, tier-1 tests, hot-path perf smoke,
## perf watchdog, result-cache lifecycle, solve-service lifecycle,
## differential fuzz
ci: lint lint-sarif mypy obs-check report-smoke api-docs-check test bench-smoke bench-watch cache-smoke serve-smoke slo-smoke fuzz-smoke
