# Developer/CI entry points.  Everything runs from the repo root with the
# in-tree sources on PYTHONPATH, so no editable install is required.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench obs-check api-docs api-docs-check ci

## tier-1 test suite (the gate every PR must keep green)
test:
	$(PYTHON) -m pytest -x -q

## regenerate the experiment tables + benchmark telemetry
## (writes benchmarks/results/*.{txt,json}, bench_summary.json, BENCH_OBS.json)
bench:
	$(PYTHON) -m pytest -q benchmarks

## smoke-check the observability layer (tracing + metrics + exports)
obs-check:
	$(PYTHON) tools/check_obs.py

## regenerate docs/api.md from docstrings
api-docs:
	$(PYTHON) tools/gen_api_docs.py

## fail if docs/api.md is stale
api-docs-check:
	$(PYTHON) tools/gen_api_docs.py --check

## the full CI gate: instrumentation smoke test, docs freshness, tier-1 tests
ci: obs-check api-docs-check test
