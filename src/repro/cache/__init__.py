"""Persistent, content-addressed solve-result cache.

The solver stack's workload profile is *heavy repeated traffic*: sweeps,
fuzz sessions and analysis pipelines solve the same ``(game, solver,
params)`` triple over and over.  This package memoizes those solves
across processes and sessions: results are stored by content address —
``(game fingerprint, solver name, canonical params)`` — in an
LRU-over-SQLite store (:mod:`repro.cache.store`), so a repeated solve
replays the serialized result instead of recomputing it.

Correctness rests on the identity layer: the game fingerprint is the
sha256 of the canonical :func:`repro.core.serialize.game_to_json`
document, which serializes the weight vector of weighted games — two
games differing only in weights therefore occupy *different* cache
entries (the bug this package's PR fixed before building on it).

Like the ledger, the cache is **opt-in and near-free when off** (the
default): instrumented solvers call :func:`lookup`, which returns a
shared no-op miss unless caching was enabled via :func:`enable_cache`,
the CLI ``--cache`` flag, or ``REPRO_CACHE=1`` (``REPRO_CACHE_DIR``
overrides the directory, default ``.repro/cache``).  The disabled path
is a single attribute load — no fingerprinting, no I/O — and the
solver's output is byte-identical with the cache on or off (hits replay
the exact serialized payload a cold solve produced).

Failures never break a solve: a probe or store that raises (corrupt
file, full disk) is logged, counted in ``cache.errors.count`` and
treated as a miss.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Any, Dict, Optional

from repro.obs import get_logger, metrics

from repro.cache.keys import game_sha256
from repro.cache.store import ResultCache

__all__ = [
    "DEFAULT_CACHE_DIR",
    "CacheProbe",
    "ResultCache",
    "enable_cache",
    "disable_cache",
    "cache_enabled",
    "cache_directory",
    "get_cache",
    "open_store",
    "lookup",
]

_log = get_logger("repro.cache")

DEFAULT_CACHE_DIR = ".repro/cache"
_STORE_FILENAME = "results.sqlite3"


class _CacheState:
    """Process-global on/off switch, target directory and open store."""

    __slots__ = ("enabled", "directory", "store", "lock")

    def __init__(self) -> None:
        self.enabled = False  # repro: lock(lock)
        self.directory = Path(  # repro: lock(lock)
            os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        )
        self.store: Optional[ResultCache] = None  # repro: lock(lock)
        self.lock = threading.Lock()
        if os.environ.get("REPRO_CACHE", "") not in ("", "0", "false", "no"):
            self.enabled = True


_STATE = _CacheState()


def enable_cache(directory: Optional[os.PathLike] = None) -> None:
    """Start caching wrapped solves (optionally under ``directory``)."""
    with _STATE.lock:
        if directory is not None and Path(directory) != _STATE.directory:
            if _STATE.store is not None:
                _STATE.store.close()
                _STATE.store = None
            _STATE.directory = Path(directory)
        _STATE.enabled = True


def disable_cache() -> None:
    """Stop caching (the store file stays on disk for the next enable)."""
    with _STATE.lock:
        _STATE.enabled = False
        if _STATE.store is not None:
            _STATE.store.close()
            _STATE.store = None


def cache_enabled() -> bool:
    """True when instrumented solvers currently consult the cache."""
    with _STATE.lock:
        return _STATE.enabled


def cache_directory() -> Path:
    """The directory the store file lives under."""
    with _STATE.lock:
        return _STATE.directory


def get_cache() -> ResultCache:
    """The process-wide store at the configured directory (lazily opened)."""
    with _STATE.lock:
        if _STATE.store is None:
            _STATE.store = ResultCache(_STATE.directory / _STORE_FILENAME)
        return _STATE.store


def open_store(directory: Optional[os.PathLike] = None) -> ResultCache:
    """A standalone store handle (CLI inspection), no global state touched."""
    root = Path(directory) if directory is not None else cache_directory()
    return ResultCache(root / _STORE_FILENAME)


class CacheProbe:
    """Outcome of one cache lookup, and the handle to fill a miss.

    ``hit`` / ``payload`` report the lookup; on a miss the solver calls
    :meth:`store` with the serialized result it just computed.  The
    shared no-op instance (returned while caching is off) ignores
    :meth:`store`, so solver code is identical either way::

        probe = result_cache.lookup(game, "equilibria.solve", params)
        result = probe.replay(solve_result_from_json)
        if result is None:
            result = ...compute...
            probe.store(solve_result_to_json(result))
    """

    __slots__ = ("hit", "payload", "_fingerprint", "_solver", "_params",
                 "_active")

    def __init__(self, hit: bool = False, payload: Optional[str] = None,
                 fingerprint: str = "", solver: str = "",
                 params: Optional[Dict[str, Any]] = None,
                 active: bool = False) -> None:
        self.hit = hit
        self.payload = payload
        self._fingerprint = fingerprint
        self._solver = solver
        self._params = params or {}
        self._active = active

    def store(self, payload: str) -> None:
        """Record the freshly computed payload (no-op when caching is off)."""
        if not self._active or self.hit:
            return
        try:
            get_cache().store(self._fingerprint, self._solver,
                              self._params, payload)
        except Exception as exc:  # caching must never break the solve
            metrics.counter("cache.errors.count").inc()
            _log.warning("cache.store.failed", solver=self._solver,
                         error=type(exc).__name__)

    def replay(self, decoder: Any) -> Any:
        """Decode the hit payload via ``decoder``, or ``None`` on failure.

        A payload that no longer parses — a corrupt row, or a format tag
        from an older library version — is demoted to a miss: the error
        is counted on ``cache.errors.count``, ``hit`` flips to ``False``
        so the caller's compute path runs and its :meth:`store` call
        overwrites the bad entry with a fresh payload.  (The ledger
        record keeps the ``cache_hit`` stamped at probe time; the error
        counter and warning log carry the demotion.)
        """
        if not self.hit:
            return None
        try:
            return decoder(self.payload)
        except Exception as exc:  # caching must never break the solve
            metrics.counter("cache.errors.count").inc()
            _log.warning("cache.replay.failed", solver=self._solver,
                         error=type(exc).__name__)
            self.hit = False
            self.payload = None
            return None

    def __repr__(self) -> str:
        return f"CacheProbe(hit={self.hit}, solver={self._solver!r})"


#: Shared miss returned while the cache is disabled.
_MISS = CacheProbe()


def _active_probe(game: Any, solver: str,
                  params: Dict[str, Any]) -> CacheProbe:
    try:
        fingerprint = game_sha256(game)
        payload = get_cache().probe(fingerprint, solver, params)
    except Exception as exc:  # caching must never break the solve
        metrics.counter("cache.errors.count").inc()
        _log.warning("cache.lookup.failed", solver=solver,
                     error=type(exc).__name__)
        return _MISS
    return CacheProbe(hit=payload is not None, payload=payload,
                      fingerprint=fingerprint, solver=solver,
                      params=params, active=True)


def lookup(game: Any, solver: str, params: Dict[str, Any]) -> CacheProbe:
    """Probe the cache for ``(game, solver, params)``.

    The instrumented-solver entry point: returns the shared no-op miss
    (one attribute load, no fingerprinting or I/O) while caching is
    disabled, otherwise a live :class:`CacheProbe`.
    """
    # Deliberate benign race (same pattern as the ledger switch): a stale
    # read misclassifies one solve around enable/disable and keeps the
    # disabled path free of locking.
    if not _STATE.enabled:  # repro: noqa[LCK001]
        return _MISS
    return _active_probe(game, solver, params)
