"""Schema-versioned migrations for the result-cache SQLite store.

The cache database must survive upgrades of this library: a store
created by an older version is *migrated in place* the first time a
newer version opens it, never silently recreated (recreating would throw
away every cached solve).  The mechanism is the standard SQLite hygiene:

* ``PRAGMA user_version`` records the schema version the file is at;
* :data:`MIGRATIONS` is an ordered list of ``(version, statements)``
  steps, each bringing the schema from ``version - 1`` to ``version``;
* :func:`apply_migrations` replays exactly the missing suffix, each step
  inside its own transaction, and stamps ``user_version`` as part of
  that transaction — a crash mid-migration leaves the file at the last
  completed version, and the next open resumes from there;
* a file *newer* than this library raises :class:`CacheSchemaError`
  instead of being touched: downgrading code must not corrupt a store it
  does not understand.

Adding a migration means appending one step — never editing an existing
one, because deployed stores have already run it.
"""

from __future__ import annotations

import sqlite3
from typing import List, Sequence, Tuple

from repro.obs import metrics

__all__ = [
    "SCHEMA_VERSION",
    "MIGRATIONS",
    "CacheSchemaError",
    "apply_migrations",
]


class CacheSchemaError(RuntimeError):
    """The store's schema cannot be brought to this library's version."""


#: Ordered migration steps; each entry is ``(target_version, statements)``.
MIGRATIONS: Sequence[Tuple[int, Sequence[str]]] = (
    (
        1,
        (
            """
            CREATE TABLE IF NOT EXISTS cache_entries (
                key          TEXT PRIMARY KEY,
                fingerprint  TEXT NOT NULL,
                solver       TEXT NOT NULL,
                params       TEXT NOT NULL,
                payload      TEXT NOT NULL,
                size_bytes   INTEGER NOT NULL,
                created_at   REAL NOT NULL,
                last_access  REAL NOT NULL
            )
            """,
            # Eviction scans in LRU order.
            "CREATE INDEX IF NOT EXISTS idx_cache_entries_last_access "
            "ON cache_entries (last_access)",
        ),
    ),
    (
        2,
        (
            # Per-entry hit tally (``stats``/``lookup`` report it; eviction
            # does not use it — LRU stays purely recency-based).
            "ALTER TABLE cache_entries ADD COLUMN hits INTEGER NOT NULL "
            "DEFAULT 0",
            # ``stats`` groups by solver; ``gc`` can target one solver.
            "CREATE INDEX IF NOT EXISTS idx_cache_entries_solver "
            "ON cache_entries (solver)",
        ),
    ),
)

#: The schema version this library writes.
SCHEMA_VERSION = MIGRATIONS[-1][0]


def schema_version(conn: sqlite3.Connection) -> int:
    """The ``PRAGMA user_version`` of an open store."""
    return int(conn.execute("PRAGMA user_version").fetchone()[0])


def apply_migrations(conn: sqlite3.Connection) -> List[int]:
    """Bring ``conn`` to :data:`SCHEMA_VERSION`; return the steps applied.

    Idempotent: an up-to-date store applies nothing.  Raises
    :class:`CacheSchemaError` when the store is *ahead* of this library.
    """
    with metrics.timer("cache.migrate.seconds"):
        current = schema_version(conn)
        if current > SCHEMA_VERSION:
            raise CacheSchemaError(
                f"cache store is at schema v{current} but this library "
                f"only knows v{SCHEMA_VERSION}; refusing to touch a newer "
                "store"
            )
        applied: List[int] = []
        for version, statements in MIGRATIONS:
            if version <= current:
                continue
            # One transaction per step: the version stamp commits
            # atomically with the DDL it describes.
            with conn:
                for statement in statements:
                    conn.execute(statement)
                conn.execute(f"PRAGMA user_version = {int(version)}")
            applied.append(version)
        return applied
