"""Content-addressed key derivation for the result cache.

A cache entry is addressed by the triple

    (game fingerprint, solver name, canonical solve parameters)

hashed into a single hex key.  Every component is content-derived:

* the **game fingerprint** is the sha256 of the canonical
  :func:`repro.core.serialize.game_to_json` document — the same hash the
  provenance ledger records, so ledger records and cache entries for one
  game carry one identity.  Weighted games serialize their weight
  vector, so two games differing only in weights never share a key;
* the **solver name** is the ledger entry-point string
  (``equilibria.solve``, ``solvers.double_oracle``, ...);
* the **params** dict is reduced to canonical JSON by
  :func:`repro.obs.ledger.canonical_json` — key-sorted, hash-seed
  independent, rejecting anything without a deterministic encoding, so
  semantically equal parameter sets always derive the same key.

Nothing here touches the store: key derivation is pure, and the solvers
only pay for it when the cache is enabled.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict

from repro.obs import metrics
from repro.obs.ledger import canonical_json

__all__ = ["game_sha256", "params_json", "cache_key"]


def game_sha256(game: Any) -> str:
    """The content fingerprint of a plain or weighted game.

    Identical (by construction) to the ``sha256`` field of
    :func:`repro.obs.ledger.fingerprint_game`.
    """
    from repro.core.serialize import game_to_json

    return hashlib.sha256(game_to_json(game).encode("utf-8")).hexdigest()


def params_json(params: Dict[str, Any]) -> str:
    """Canonical JSON text of a solver's parameter dict.

    Raises ``TypeError`` if a parameter has no canonical encoding — a
    solver passing an exotic object as a cache parameter is a bug, not
    something to stringify into a near-miss key.
    """
    return canonical_json(params)


def cache_key(fingerprint: str, solver: str, params_text: str) -> str:
    """The store key for ``(game fingerprint, solver, canonical params)``.

    The three components are length-prefixed before hashing so no pair of
    distinct triples can collide by concatenation ambiguity.
    """
    with metrics.timer("cache.key.seconds"):
        h = hashlib.sha256()
        for part in (fingerprint, solver, params_text):
            data = part.encode("utf-8")
            h.update(str(len(data)).encode("ascii"))
            h.update(b":")
            h.update(data)
        return h.hexdigest()
