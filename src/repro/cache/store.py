"""LRU-over-SQLite store for content-addressed solve results.

One :class:`ResultCache` wraps one SQLite file (default
``.repro/cache/results.sqlite3``) holding serialized solve payloads
keyed by :func:`repro.cache.keys.cache_key`.  SQLite gives the three
properties a persistent cache actually needs for free: atomic writes
(a crashed process never leaves a torn payload), concurrent readers
across processes, and indexed eviction scans — all stdlib, no services.

Policy
------
* **LRU over ``last_access``**: every hit bumps the entry's
  ``last_access`` (and ``hits`` tally); when the store exceeds
  ``max_entries`` or ``max_bytes`` after an insert, the least recently
  used entries are evicted until it fits.
* **Age**: :meth:`ResultCache.gc` (and the ``repro-defender cache gc``
  CLI) drops entries whose ``last_access`` is older than a cutoff.
* **Schema versioning**: the file carries ``PRAGMA user_version``;
  :mod:`repro.cache.migrations` upgrades old stores in place and refuses
  to touch stores newer than this library.

Telemetry
---------
Probes run under a ``cache.lookup`` span and count into
``cache.hits.count`` / ``cache.misses.count``; inserts into
``cache.stores.count``; every eviction into ``cache.evictions.count``.
``cache.entries`` / ``cache.bytes`` gauges track the store size.  All of
it lands in ledger records via the usual metrics snapshot, so a recorded
run shows exactly how the cache behaved.

Thread safety: one connection guarded by one lock; SQLite-level locking
covers cross-process use.
"""

from __future__ import annotations

import sqlite3
import threading
from pathlib import Path
from time import time
from typing import Any, Dict, List, Optional

from repro.obs import get_logger, metrics, tracing

from repro.cache.keys import cache_key, params_json
from repro.cache.migrations import apply_migrations

__all__ = ["ResultCache", "DEFAULT_MAX_ENTRIES", "DEFAULT_MAX_BYTES"]

_log = get_logger("repro.cache.store")

DEFAULT_MAX_ENTRIES = 4096
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


class ResultCache:
    """A persistent, content-addressed solve-result cache.

    Parameters
    ----------
    path:
        The SQLite file (parent directories are created).
    max_entries / max_bytes:
        LRU eviction thresholds, enforced after every insert.
    """

    def __init__(
        self,
        path: Path,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ) -> None:
        self.path = Path(path)
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # One connection shared across threads, serialized by our lock
        # (sqlite3's own check is per-thread-affinity, stricter than
        # needed once every access is lock-guarded).
        self._conn = sqlite3.connect(  # repro: lock(_lock)
            str(self.path), check_same_thread=False
        )
        with self._lock:
            self._conn.execute("PRAGMA journal_mode = WAL")
            applied = apply_migrations(self._conn)
        if applied:
            _log.info("cache.migrated", path=str(self.path),
                      steps=",".join(str(v) for v in applied))

    # ------------------------------------------------------------------
    # lookup / store
    # ------------------------------------------------------------------

    def probe(self, fingerprint: str, solver: str,
              params: Dict[str, Any]) -> Optional[str]:
        """The cached payload for ``(fingerprint, solver, params)``, or None.

        A hit bumps the entry's LRU clock and hit tally.
        """
        key = cache_key(fingerprint, solver, params_json(params))
        with tracing.span("cache.lookup", solver=solver), \
                metrics.timer("cache.lookup.seconds"):
            with self._lock:
                row = self._conn.execute(
                    "SELECT payload FROM cache_entries WHERE key = ?",
                    (key,),
                ).fetchone()
                if row is not None:
                    with self._conn:
                        self._conn.execute(
                            "UPDATE cache_entries SET last_access = ?, "
                            "hits = hits + 1 WHERE key = ?",
                            (time(), key),
                        )
            if row is None:
                metrics.counter("cache.misses.count").inc()
                return None
            metrics.counter("cache.hits.count").inc()
            return str(row[0])

    def store(self, fingerprint: str, solver: str,
              params: Dict[str, Any], payload: str) -> str:
        """Insert (or refresh) one payload; returns its key.

        Enforces the LRU size policy after the insert.
        """
        key = cache_key(fingerprint, solver, params_json(params))
        now = time()
        size = len(payload.encode("utf-8"))
        with metrics.timer("cache.store.seconds"):
            with self._lock:
                with self._conn:
                    self._conn.execute(
                        "INSERT INTO cache_entries (key, fingerprint, "
                        "solver, params, payload, size_bytes, created_at, "
                        "last_access, hits) VALUES (?,?,?,?,?,?,?,?,0) "
                        "ON CONFLICT(key) DO UPDATE SET payload = ?, "
                        "size_bytes = ?, last_access = ?",
                        (key, fingerprint, solver, params_json(params),
                         payload, size, now, now, payload, size, now),
                    )
                evicted = self._evict_lru_locked()
            metrics.counter("cache.stores.count").inc()
            if evicted:
                metrics.counter("cache.evictions.count").inc(evicted)
            self._publish_size_gauges()
        return key

    def _evict_lru_locked(self) -> int:
        """Drop least-recently-used entries until the policy holds."""
        evicted = 0
        while True:
            count, total = self._conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(size_bytes), 0) "
                "FROM cache_entries"
            ).fetchone()
            if count <= self.max_entries and total <= self.max_bytes:
                return evicted
            with self._conn:
                cur = self._conn.execute(
                    "DELETE FROM cache_entries WHERE key IN ("
                    "SELECT key FROM cache_entries "
                    "ORDER BY last_access ASC LIMIT 1)"
                )
            if cur.rowcount <= 0:
                return evicted
            evicted += cur.rowcount

    # ------------------------------------------------------------------
    # maintenance / inspection
    # ------------------------------------------------------------------

    def gc(self, max_age_s: Optional[float] = None,
           solver: Optional[str] = None) -> int:
        """Evict entries not accessed within ``max_age_s`` seconds.

        ``max_age_s=None`` only re-enforces the size policy;
        ``max_age_s=0`` empties the store (optionally one solver's
        slice).  Returns the number of entries evicted.
        """
        with metrics.timer("cache.gc.seconds"):
            evicted = 0
            with self._lock:
                if max_age_s is not None:
                    cutoff = time() - float(max_age_s)
                    sql = ("DELETE FROM cache_entries "
                           "WHERE last_access <= ?")
                    args: List[Any] = [cutoff]
                    if solver is not None:
                        sql += " AND solver = ?"
                        args.append(solver)
                    with self._conn:
                        evicted += self._conn.execute(sql, args).rowcount
                evicted += self._evict_lru_locked()
            if evicted:
                metrics.counter("cache.evictions.count").inc(evicted)
            self._publish_size_gauges()
            _log.info("cache.gc", evicted=evicted,
                      max_age_s=max_age_s, solver=solver or "*")
        return evicted

    def stats(self) -> Dict[str, Any]:
        """Store totals and a per-solver breakdown (for the CLI)."""
        with self._lock:
            count, total = self._conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(size_bytes), 0) "
                "FROM cache_entries"
            ).fetchone()
            per_solver = {
                solver: {"entries": entries, "bytes": nbytes, "hits": hits}
                for solver, entries, nbytes, hits in self._conn.execute(
                    "SELECT solver, COUNT(*), COALESCE(SUM(size_bytes),0), "
                    "COALESCE(SUM(hits),0) FROM cache_entries "
                    "GROUP BY solver ORDER BY solver"
                )
            }
            version = int(self._conn.execute(
                "PRAGMA user_version").fetchone()[0])
        return {
            "path": str(self.path),
            "schema_version": version,
            "entries": int(count),
            "bytes": int(total),
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
            "solvers": per_solver,
        }

    def entries(self, key_prefix: Optional[str] = None,
                solver: Optional[str] = None,
                limit: int = 50) -> List[Dict[str, Any]]:
        """Entry metadata (no payloads), newest access first."""
        sql = ("SELECT key, fingerprint, solver, params, size_bytes, "
               "created_at, last_access, hits FROM cache_entries")
        clauses: List[str] = []
        args: List[Any] = []
        if key_prefix:
            clauses.append("key LIKE ?")
            args.append(key_prefix + "%")
        if solver:
            clauses.append("solver = ?")
            args.append(solver)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY last_access DESC LIMIT ?"
        args.append(int(limit))
        with self._lock:
            rows = self._conn.execute(sql, args).fetchall()
        return [
            {
                "key": key,
                "fingerprint": fingerprint,
                "solver": solver_name,
                "params": params,
                "size_bytes": int(size),
                "created_at": float(created),
                "last_access": float(accessed),
                "hits": int(hits),
            }
            for key, fingerprint, solver_name, params, size,
            created, accessed, hits in rows
        ]

    def _publish_size_gauges(self) -> None:
        with self._lock:
            count, total = self._conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(size_bytes), 0) "
                "FROM cache_entries"
            ).fetchone()
        metrics.gauge("cache.entries").set(float(count))
        metrics.gauge("cache.bytes").set(float(total))

    def close(self) -> None:
        """Close the underlying connection (the store stays on disk)."""
        with self._lock:
            self._conn.close()

    def __repr__(self) -> str:
        return f"ResultCache(path={str(self.path)!r})"
