"""Mixed profiles and structural equilibria for generalized defenders.

The Tuple model's profile containers assume k-edge tuples, so the
family-restricted games of :mod:`repro.models.game` carry their own
lightweight mixed-profile representation: one shared attacker distribution
over vertices (attackers are symmetric) and one defender distribution over
family strategies.

Two pieces of machinery:

* :func:`verify_generalized_nash` — first-principles NE check by scanning
  both strategy sets for profitable deviations (the generic analogue of
  conditions 2(a)/3(a) of Theorem 3.4);
* :func:`uniform_family_equilibrium` — candidate-and-verify lift of the
  paper's uniform constructions: defender uniform over the *whole* family,
  attackers uniform over ``V``.  It is an NE exactly when (i) every
  family strategy covers the same number of vertices (so condition 3
  holds with the uniform attacker) and (ii) the uniform defender hits all
  vertices equally (a symmetry property, checked numerically).  On
  vertex-/edge-transitive graphs this recovers e.g. the *rotating path
  patrol* on cycles — the structural equilibrium of the path-defender
  variation the paper's related work [8] raises.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.game import GameError
from repro.core.tuples import EdgeTuple, tuple_vertices
from repro.graphs.core import Vertex
from repro.models.game import GeneralizedGame

__all__ = [
    "generalized_hit_probabilities",
    "generalized_defender_profit",
    "verify_generalized_nash",
    "uniform_family_equilibrium",
]


def _validate_distribution(dist: Dict, kind: str, tol: float = 1e-9) -> None:
    if not dist:
        raise GameError(f"{kind} distribution has empty support")
    if any(p < 0 for p in dist.values()):
        raise GameError(f"{kind} distribution has negative probabilities")
    total = sum(dist.values())
    if abs(total - 1.0) > tol * max(1, len(dist)):
        raise GameError(f"{kind} distribution sums to {total!r}, not 1")


def generalized_hit_probabilities(
    game: GeneralizedGame, defender: Dict[EdgeTuple, float]
) -> Dict[Vertex, float]:
    """``P(Hit(v))`` under a defender mixture over family strategies."""
    hits: Dict[Vertex, float] = {v: 0.0 for v in game.graph.vertices()}
    for strategy, p in defender.items():
        for v in tuple_vertices(strategy):
            hits[v] += p
    return hits


def generalized_defender_profit(
    game: GeneralizedGame,
    attacker: Dict[Vertex, float],
    defender: Dict[EdgeTuple, float],
) -> float:
    """Expected attackers caught: ``ν · Σ_v q_v · Hit(v)``."""
    hits = generalized_hit_probabilities(game, defender)
    return game.nu * sum(p * hits[v] for v, p in attacker.items())


def verify_generalized_nash(
    game: GeneralizedGame,
    attacker: Dict[Vertex, float],
    defender: Dict[EdgeTuple, float],
    tol: float = 1e-9,
) -> Tuple[bool, Dict[str, float]]:
    """First-principles NE check for a family-restricted profile.

    Returns ``(is_nash, gaps)`` with the attacker's and defender's
    best-response regrets (per attacker, and for the defender in expected
    catches respectively).
    """
    _validate_distribution(attacker, "attacker")
    _validate_distribution(defender, "defender")
    for strategy in defender:
        if strategy not in set(game.strategies):
            raise GameError(f"defender strategy {strategy!r} is not in the family")
    for v in attacker:
        if not game.graph.has_vertex(v):
            raise GameError(f"attacker vertex {v!r} is not in the graph")

    hits = generalized_hit_probabilities(game, defender)
    # Attacker: expected escape vs best single vertex.
    expected_escape = sum(p * (1.0 - hits[v]) for v, p in attacker.items())
    best_escape = max(1.0 - hits[v] for v in game.graph.vertices())
    attacker_regret = best_escape - expected_escape

    # Defender: expected coverage of attacker mass vs best strategy.
    expected_catch = sum(
        p * sum(attacker.get(v, 0.0) for v in tuple_vertices(strategy))
        for strategy, p in defender.items()
    )
    best_catch = max(
        sum(attacker.get(v, 0.0) for v in tuple_vertices(strategy))
        for strategy in game.strategies
    )
    defender_regret = best_catch - expected_catch

    gaps = {"attacker": attacker_regret, "defender": defender_regret}
    return attacker_regret <= tol and defender_regret <= tol, gaps


def uniform_family_equilibrium(
    game: GeneralizedGame, tol: float = 1e-12
) -> Tuple[Dict[Vertex, float], Dict[EdgeTuple, float]]:
    """Candidate-and-verify: both sides uniform.

    Returns ``(attacker, defender)`` distributions when the candidate is
    an NE; raises :class:`~repro.core.game.GameError` with the violated
    property otherwise.  Sound, not complete — the generalized analogue
    of :func:`repro.equilibria.families.uniform_kmatching_equilibrium`.
    """
    coverage_sizes = {len(tuple_vertices(s)) for s in game.strategies}
    if len(coverage_sizes) != 1:
        raise GameError(
            "family strategies cover unequal vertex counts "
            f"({sorted(coverage_sizes)}); the uniform defender cannot make "
            "every support strategy a best response"
        )
    vertices = game.graph.sorted_vertices()
    attacker = {v: 1.0 / len(vertices) for v in vertices}
    defender = {s: 1.0 / len(game.strategies) for s in game.strategies}
    hits = generalized_hit_probabilities(game, defender)
    spread = max(hits.values()) - min(hits.values())
    if spread > tol:
        raise GameError(
            f"the uniform family does not equalize hit probabilities "
            f"(spread {spread:.3e}); the candidate is not an NE"
        )
    ok, gaps = verify_generalized_nash(game, attacker, defender, tol=1e-9)
    assert ok, gaps  # implied by the two checks above; belt and braces
    return attacker, defender
