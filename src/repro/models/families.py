"""Defender strategy families: tuples, paths, stars.

The paper gives the defender *any* ``k`` distinct edges; its companion
work (reference [8]: "a generalized variation of the Edge model, where the
defender is able to clean a path of the graph") constrains the shape.
This module abstracts the defender's strategy space as a *family* so the
generalized game of :mod:`repro.models.game` can quantify what the shape
constraint costs the defender:

* :class:`KTupleFamily` — the paper's Tuple model: all ``C(m, k)`` sets of
  ``k`` distinct edges;
* :class:`KPathFamily` — the [8] variation: simple paths with exactly
  ``k`` edges (``k+1`` distinct vertices), enumerated by DFS;
* :class:`KStarFamily` — a deployment-friendly shape (one scanner placed
  at a host watching ``k`` of its links): for every vertex ``v``, every
  ``min(k, deg(v))``-subset of ``v``'s incident edges.

Every family yields strategies as canonical edge tuples, so all the
library's profit/coverage machinery applies unchanged.  Note the
containments ``paths ⊆ tuples`` and (for constant strategy size) stars
with exactly ``k`` edges ``⊆ tuples``, which force
``value(path) ≤ value(tuple)`` — the inequality experiment E9 measures.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, List, Set

from repro.core.tuples import EdgeTuple, canonical_tuple
from repro.graphs.core import Edge, Graph, GraphError, Vertex, canonical_edge, vertex_sort_key

__all__ = [
    "DefenderFamily",
    "KTupleFamily",
    "KPathFamily",
    "KStarFamily",
    "enumerate_k_edge_paths",
]


class DefenderFamily:
    """Base class: a named, enumerable defender strategy space."""

    name: str = "abstract"

    def __init__(self, k: int) -> None:
        if not isinstance(k, int) or k < 1:
            raise GraphError(f"family size k must be a positive integer; got {k!r}")
        self.k = k

    def strategies(self, graph: Graph) -> Iterator[EdgeTuple]:
        """Yield every strategy as a canonical edge tuple."""
        raise NotImplementedError

    def validate(self, graph: Graph) -> None:
        """Raise :class:`GraphError` when the family is empty on ``graph``."""
        for _ in self.strategies(graph):
            return
        raise GraphError(
            f"the {self.name} family with k={self.k} is empty on this graph"
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(k={self.k})"


class KTupleFamily(DefenderFamily):
    """The paper's Tuple model: any ``k`` distinct edges."""

    name = "tuple"

    def strategies(self, graph: Graph) -> Iterator[EdgeTuple]:
        if self.k > graph.m:
            return
        yield from combinations(graph.sorted_edges(), self.k)


def enumerate_k_edge_paths(graph: Graph, k: int) -> Iterator[EdgeTuple]:
    """All simple paths with exactly ``k`` edges, as canonical tuples.

    A path visits ``k + 1`` distinct vertices.  Each path is found twice
    (once per direction); deduplication keeps the canonical copy by only
    emitting walks whose start vertex precedes the end vertex in the
    library's deterministic order.  ``k = 1`` degenerates to single edges.
    """
    order = {v: i for i, v in enumerate(graph.sorted_vertices())}

    def extend(current: Vertex, visited: List[Vertex], edges: List[Edge]):
        if len(edges) == k:
            if order[visited[0]] <= order[current]:
                yield canonical_tuple(edges)
            return
        for neighbor in sorted(graph.neighbors(current), key=vertex_sort_key):
            if neighbor in seen:
                continue
            seen.add(neighbor)
            edges.append(canonical_edge(current, neighbor))
            visited.append(neighbor)
            yield from extend(neighbor, visited, edges)
            visited.pop()
            edges.pop()
            seen.discard(neighbor)

    for start in graph.sorted_vertices():
        seen: Set[Vertex] = {start}
        yield from extend(start, [start], [])


class KPathFamily(DefenderFamily):
    """The [8] variation: the defender cleans a simple path of ``k`` edges."""

    name = "path"

    def strategies(self, graph: Graph) -> Iterator[EdgeTuple]:
        yield from enumerate_k_edge_paths(graph, self.k)


class KStarFamily(DefenderFamily):
    """One scanner at a host, watching ``min(k, deg)`` of its links.

    Capping at the degree keeps the family non-empty on low-degree
    vertices; strategies of fewer than ``k`` edges are weaker, mirroring
    the deployment reality that a leaf host cannot watch ``k`` links.
    """

    name = "star"

    def strategies(self, graph: Graph) -> Iterator[EdgeTuple]:
        emitted = set()
        for v in graph.sorted_vertices():
            incident = graph.incident_edges(v)
            size = min(self.k, len(incident))
            for combo in combinations(incident, size):
                strategy = canonical_tuple(combo)
                # Two adjacent vertices can generate the same single-edge
                # strategy; deduplicate across centers.
                if strategy not in emitted:
                    emitted.add(strategy)
                    yield strategy
