"""Generalized defender models: tuple, path and star strategy families.

Extension of the paper motivated by its related work ([8]'s path-cleaning
defender): the same game with a shape-constrained defender, solved by the
generic minimax engine, to quantify the *power of the defender's shape*.
"""

from repro.models.equilibria import (
    generalized_defender_profit,
    generalized_hit_probabilities,
    uniform_family_equilibrium,
    verify_generalized_nash,
)
from repro.models.families import (
    DefenderFamily,
    KPathFamily,
    KStarFamily,
    KTupleFamily,
    enumerate_k_edge_paths,
)
from repro.models.game import (
    GeneralizedGame,
    covering_strategy,
    pure_nash_exists_generalized,
)

__all__ = [
    "generalized_defender_profit",
    "generalized_hit_probabilities",
    "uniform_family_equilibrium",
    "verify_generalized_nash",
    "DefenderFamily",
    "KPathFamily",
    "KStarFamily",
    "KTupleFamily",
    "enumerate_k_edge_paths",
    "GeneralizedGame",
    "covering_strategy",
    "pure_nash_exists_generalized",
]
