"""The generalized defender game: Π restricted to a strategy family.

Same players and profits as Definition 2.1, but the defender draws from an
arbitrary :class:`~repro.models.families.DefenderFamily` instead of the
full ``E^k``.  Two of the paper's results transfer verbatim because their
proofs never use the tuple structure:

* **Generalized Theorem 3.1** — the game has a pure NE iff some family
  strategy covers every vertex (:func:`pure_nash_exists_generalized`):
  sufficiency is the same all-attackers-caught argument; necessity is the
  same escape-and-starve argument.
* **Value via LP** — the duel value is computable exactly by the generic
  minimax LP (:meth:`GeneralizedGame.solve_minimax`).

What does *not* transfer is the k-matching machinery — that is exactly
the Tuple model's structural privilege, and experiment E9 measures how
much defender value the shape constraints (path, star) give up relative
to it.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.game import GameError
from repro.core.tuples import EdgeTuple, tuple_vertices
from repro.graphs.core import Graph
from repro.models.families import DefenderFamily
from repro.solvers.lp import LPSolution, minimax_over_strategies

__all__ = [
    "GeneralizedGame",
    "pure_nash_exists_generalized",
    "covering_strategy",
]

_DEFAULT_STRATEGY_LIMIT = 200_000


class GeneralizedGame:
    """An instance of the family-restricted security game.

    Parameters
    ----------
    graph:
        The network (no isolated vertices, at least one edge).
    family:
        The defender's strategy family.
    nu:
        Number of attackers.
    strategy_limit:
        Materialization guard; families are enumerated eagerly so the LP
        and best-response logic can reuse the list.
    """

    def __init__(
        self,
        graph: Graph,
        family: DefenderFamily,
        nu: int = 1,
        strategy_limit: int = _DEFAULT_STRATEGY_LIMIT,
    ) -> None:
        try:
            graph.validate_for_game()
        except Exception as exc:  # GraphError
            raise GameError(f"invalid game graph: {exc}") from exc
        if not isinstance(nu, int) or nu < 1:
            raise GameError(f"the game needs at least one attacker; got {nu!r}")
        strategies: List[EdgeTuple] = []
        for strategy in family.strategies(graph):
            strategies.append(strategy)
            if len(strategies) > strategy_limit:
                raise GameError(
                    f"the {family.name} family exceeds the strategy limit "
                    f"{strategy_limit} on this graph"
                )
        if not strategies:
            raise GameError(
                f"the {family.name} family with k={family.k} is empty on "
                "this graph"
            )
        self.graph = graph
        self.family = family
        self.nu = nu
        self.strategies: List[EdgeTuple] = strategies

    def strategy_count(self) -> int:
        return len(self.strategies)

    def solve_minimax(self) -> LPSolution:
        """Exact duel value and optimal mixtures over the family."""
        return minimax_over_strategies(
            self.graph.sorted_vertices(), self.strategies, tuple_vertices
        )

    def defender_gain(self) -> float:
        """Equilibrium gain ``ν · value``."""
        return self.nu * self.solve_minimax().value

    def __repr__(self) -> str:
        return (
            f"GeneralizedGame(family={self.family.name}, k={self.family.k}, "
            f"strategies={len(self.strategies)}, nu={self.nu})"
        )


def covering_strategy(game: GeneralizedGame) -> Optional[EdgeTuple]:
    """A family strategy covering every vertex, or ``None``.

    The generalized-Theorem-3.1 witness: such a strategy exists iff the
    game has a pure NE.
    """
    everything = game.graph.vertices()
    for strategy in game.strategies:
        if tuple_vertices(strategy) == everything:
            return strategy
    return None


def pure_nash_exists_generalized(game: GeneralizedGame) -> bool:
    """Generalized Theorem 3.1: pure NE iff a covering strategy exists."""
    return covering_strategy(game) is not None
