"""Baseline solvers: exact LP minimax, coverage best response, learning.

These are the unstructured comparators for the paper's structural
equilibria — they know nothing about matchings or partitions, yet must
(and, in the test suite, do) agree with the closed forms of Section 4
wherever both apply.
"""

from repro.solvers.best_response import (
    best_tuple,
    branch_and_bound_best_tuple,
    coverage_value,
    exhaustive_best_tuple,
    greedy_tuple,
)
from repro.solvers.double_oracle import DoubleOracleResult, double_oracle
from repro.solvers.fictitious_play import FictitiousPlayResult, fictitious_play
from repro.solvers.lp import (
    LPSolution,
    lp_defender_gain,
    lp_equilibrium,
    minimax_over_strategies,
    solve_minimax,
)
from repro.solvers.ranges import (
    StrategyRanges,
    attacker_vertex_ranges,
    defender_edge_ranges,
)

__all__ = [
    "best_tuple",
    "branch_and_bound_best_tuple",
    "coverage_value",
    "exhaustive_best_tuple",
    "greedy_tuple",
    "DoubleOracleResult",
    "double_oracle",
    "FictitiousPlayResult",
    "fictitious_play",
    "LPSolution",
    "lp_defender_gain",
    "lp_equilibrium",
    "minimax_over_strategies",
    "solve_minimax",
    "StrategyRanges",
    "attacker_vertex_ranges",
    "defender_edge_ranges",
]
