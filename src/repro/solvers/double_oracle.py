"""Double oracle: exact equilibria without enumerating ``E^k``.

The exact LP of :mod:`repro.solvers.lp` materializes all ``C(m, k)``
defender strategies — hopeless beyond small instances.  The double-oracle
algorithm (McMahan, Gordon & Blum 2003; the standard scaling technique in
the security-games literature) solves the same zero-sum duel by lazy
strategy generation:

1. solve the *restricted* duel over small strategy pools;
2. ask each side's **best-response oracle** for an improving strategy
   against the opponent's current optimal mixture — for the defender this
   is weighted k-edge coverage (the :mod:`repro.kernels` coverage oracle,
   exact), for the attacker the minimum-hit vertex;
3. add improving strategies to the pools and repeat; stop when neither
   oracle improves.  At that point the restricted equilibrium is an
   equilibrium of the *full* game, and the final oracle payoffs bracket
   the value (the gap certifies optimality).

The defender pool typically stays tiny — a few dozen tuples even when
``E^k`` has millions — because equilibrium supports are small (cf. the
``δ`` tuples of Lemma 4.8).  The attacker has only ``n`` pure strategies,
so by default the attacker pool is materialized *eagerly* (all vertices up
front) and the attacker mixture is read off the defender LP's duals: one
LP per iteration instead of two, and no iterations spent growing the
attacker pool one vertex at a time.  ``lazy_attacker=True`` restores the
textbook both-sides-lazy variant.
"""

from __future__ import annotations

import json
from time import perf_counter
from typing import Dict, List, Optional, Set

import repro.cache as result_cache
from repro.core.game import GameError, TupleGame
from repro.core.tuples import EdgeTuple, tuple_vertices
from repro.graphs.core import Vertex, tuple_sort_key, vertex_sort_key
from repro.kernels.coverage import CoverageOracle, shared_oracle
from repro.obs import events as obs_events
from repro.obs import get_logger, metrics, tracing
from repro.obs import ledger as obs_ledger
from repro.solvers.lp import LPSolution, minimax_over_strategies

__all__ = [
    "DoubleOracleResult",
    "double_oracle",
    "double_oracle_result_to_json",
    "double_oracle_result_from_json",
]

_log = get_logger("repro.solvers.double_oracle")


class DoubleOracleResult:
    """Outcome of a double-oracle run.

    Attributes
    ----------
    solution:
        Equilibrium value and mixtures (over the final pools).
    iterations:
        Outer iterations until neither oracle improved.
    defender_pool_size / attacker_pool_size:
        Final pool sizes — the point of the method is that the defender's
        stays far below ``C(m, k)``.
    certified_gap:
        ``defender_oracle_payoff − attacker_oracle_payoff`` at
        termination, with the defender payoff recomputed by an *exact*
        oracle when the run used the greedy one — so the gap is always a
        valid optimality certificate.
    exact:
        Whether the certificate holds: ``certified_gap`` within the
        convergence slack (``2·tolerance``, one tolerance per oracle).
        Always true for exact oracle methods; a greedy run that stalled
        below the true optimum reports ``False`` (and logs a warning).
    gap_history:
        The certified gap after each outer iteration, oldest first —
        the convergence trajectory that the scaling experiments plot.
    """

    __slots__ = (
        "solution",
        "iterations",
        "defender_pool_size",
        "attacker_pool_size",
        "certified_gap",
        "exact",
        "gap_history",
    )

    def __init__(
        self,
        solution: LPSolution,
        iterations: int,
        defender_pool_size: int,
        attacker_pool_size: int,
        certified_gap: float,
        gap_history: Optional[List[float]] = None,
        exact: bool = True,
    ) -> None:
        self.solution = solution
        self.iterations = iterations
        self.defender_pool_size = defender_pool_size
        self.attacker_pool_size = attacker_pool_size
        self.certified_gap = certified_gap
        self.exact = exact
        self.gap_history = list(gap_history) if gap_history is not None else []

    @property
    def value(self) -> float:
        return self.solution.value

    def __repr__(self) -> str:
        return (
            f"DoubleOracleResult(value={self.value:.6f}, "
            f"iterations={self.iterations}, "
            f"pools={self.defender_pool_size}/{self.attacker_pool_size}, "
            f"exact={self.exact})"
        )


_RESULT_FORMAT = "repro.solvers.double-oracle-result.v1"


def double_oracle_result_to_json(result: DoubleOracleResult) -> str:
    """Canonical, byte-deterministic JSON dump of a double-oracle result.

    Support mixtures are emitted in canonical strategy order and floats
    round-trip exactly, so the result-cache replay
    (:func:`double_oracle_result_from_json`) reproduces these bytes.
    """
    with metrics.timer("cache.encode.seconds"):
        payload = {
            "format": _RESULT_FORMAT,
            "value": result.solution.value,
            "defender": [
                [[list(e) for e in t], p]
                for t, p in sorted(
                    result.solution.defender.items(),
                    key=lambda item: tuple_sort_key(item[0]),
                )
            ],
            "attacker": [
                [v, p]
                for v, p in sorted(
                    result.solution.attacker.items(),
                    key=lambda item: vertex_sort_key(item[0]),
                )
            ],
            "iterations": result.iterations,
            "defender_pool_size": result.defender_pool_size,
            "attacker_pool_size": result.attacker_pool_size,
            "certified_gap": result.certified_gap,
            "gap_history": result.gap_history,
            "exact": result.exact,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def double_oracle_result_from_json(text: str) -> DoubleOracleResult:
    """Parse a :func:`double_oracle_result_to_json` document.

    Raises :class:`~repro.core.game.GameError` on malformed documents or
    a format tag this reader does not understand.
    """
    with metrics.timer("cache.decode.seconds"):
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise GameError(f"invalid double-oracle document: {exc}") from exc
        if not isinstance(payload, dict) \
                or payload.get("format") != _RESULT_FORMAT:
            raise GameError(
                f"unrecognized double-oracle format "
                f"(expected {_RESULT_FORMAT!r})"
            )
        try:
            defender = {
                tuple(tuple(e) for e in t): float(p)
                for t, p in payload["defender"]
            }
            attacker = {v: float(p) for v, p in payload["attacker"]}
            solution = LPSolution(
                float(payload["value"]), defender, attacker
            )
            return DoubleOracleResult(
                solution,
                int(payload["iterations"]),
                int(payload["defender_pool_size"]),
                int(payload["attacker_pool_size"]),
                float(payload["certified_gap"]),
                [float(g) for g in payload["gap_history"]],
                bool(payload["exact"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise GameError(
                f"malformed double-oracle payload: {exc}"
            ) from exc


def _initial_defender_pool(oracle: CoverageOracle) -> List[EdgeTuple]:
    """Seed: a greedy family of tuples that together cover every vertex.

    Equilibrium defender supports rotate k-matchings until every vertex
    is protected (cf. Lemma 4.8), so a pool that already covers the whole
    vertex set starts the restricted LP near the final support — the
    remaining iterations only refine the mixture instead of discovering
    coverage one tuple at a time.  Each extra seed costs one greedy kernel
    query, orders of magnitude cheaper than the LP iteration it saves.
    """
    pool: List[EdgeTuple] = []
    seen: Set[EdgeTuple] = set()
    uncovered = set(oracle.vertices)
    first, _ = oracle.greedy({v: 1.0 for v in oracle.vertices})
    pool.append(first)
    seen.add(first)
    uncovered -= tuple_vertices(first)
    for _ in range(4 * oracle.n):
        if not uncovered:
            break
        masses = {v: (1.0 if v in uncovered else 0.0) for v in oracle.vertices}
        seed, value = oracle.greedy(masses)
        if value <= 0.0:
            break  # the rest of the vertices are not newly coverable
        if seed not in seen:
            pool.append(seed)
            seen.add(seed)
        uncovered -= tuple_vertices(seed)
    return pool


def double_oracle(
    game: TupleGame,
    tolerance: float = 1e-9,
    max_iterations: int = 200,
    method: str = "auto",
    lazy_attacker: bool = False,
) -> DoubleOracleResult:
    """Solve the duel of ``Π_k(G)`` by lazy strategy generation.

    ``method`` selects the defender-oracle coverage solver ("auto" uses
    the exact kernel searches; "greedy" trades the exactness certificate
    for speed on very large instances).  Greedy runs are re-certified at
    convergence with one exact oracle call: if the certified gap exceeds
    the convergence slack the result is returned with ``exact=False``, a
    warning is logged and ``double_oracle.inexact_convergence.count`` is
    bumped — greedy can stall on a suboptimal tuple that the restricted
    LP already contains, silently leaving value on the table.

    ``lazy_attacker=True`` grows the attacker pool one best-response
    vertex at a time (the textbook variant, two LPs per iteration)
    instead of materializing all ``n`` vertices up front.

    Raises :class:`~repro.core.game.GameError` if the oracles still
    improve after ``max_iterations`` (not observed in practice; a guard
    against pathological tolerance settings).
    """
    graph = game.graph
    # Probe before opening the ledger run so the record can carry the
    # ``cache_hit`` attribute (a no-op miss while caching is disabled).
    probe = result_cache.lookup(
        game, "solvers.double_oracle",
        {"tolerance": tolerance, "max_iterations": max_iterations,
         "method": method, "lazy_attacker": lazy_attacker},
    )
    with obs_ledger.run("solvers.double_oracle", game=game, method=method,
                        lazy_attacker=lazy_attacker, cache_hit=probe.hit), \
            tracing.span("double_oracle.solve", n=graph.n, m=graph.m,
                         k=game.k):
        if probe.hit:
            cached = probe.replay(double_oracle_result_from_json)
            if cached is not None:
                return cached
        oracle = shared_oracle(graph, game.k)
        vertices = oracle.vertices
        defender_pool: List[EdgeTuple] = _initial_defender_pool(oracle)
        defender_seen: Set[EdgeTuple] = set(defender_pool)
        attacker_pool: List[Vertex] = (
            [vertices[0]] if lazy_attacker else list(vertices)
        )
        attacker_seen: Set[Vertex] = set(attacker_pool)

        solution = None
        gap = float("inf")
        gap_history: List[float] = []
        oracle_timer = metrics.histogram("double_oracle.oracle.seconds")
        for iteration in range(1, max_iterations + 1):
            solution = minimax_over_strategies(
                attacker_pool, defender_pool, tuple_vertices,
                dual_attacker=not lazy_attacker,
            )

            # Defender oracle: best tuple against the attacker's mixture over
            # the *full* vertex set (off-pool vertices have mass 0).
            attacker_mix: Dict[Vertex, float] = dict(solution.attacker)
            with tracing.span("double_oracle.oracle.best_response"):
                oracle_start = perf_counter()
                best_def, def_payoff = oracle.best(attacker_mix, method=method)
                oracle_timer.observe(perf_counter() - oracle_start)

            # Attacker oracle: min-hit vertex against the defender's mixture.
            hit: Dict[Vertex, float] = {v: 0.0 for v in vertices}
            for t, p in solution.defender.items():
                for v in tuple_vertices(t):
                    hit[v] += p
            best_att = min(vertices, key=lambda v: (hit[v], repr(v)))
            att_payoff = hit[best_att]

            gap = def_payoff - att_payoff
            gap_history.append(gap)
            obs_events.publish(
                "solver.iteration", solver="double_oracle",
                iteration=iteration, value=solution.value, gap=gap,
                defender_pool=len(defender_pool),
                attacker_pool=len(attacker_pool),
            )
            _log.debug(
                "double_oracle.iteration", i=iteration, value=solution.value,
                gap=gap, defender_pool=len(defender_pool),
                attacker_pool=len(attacker_pool),
            )
            improved = False
            if def_payoff > solution.value + tolerance and best_def not in defender_seen:
                defender_pool.append(best_def)
                defender_seen.add(best_def)
                improved = True
            if att_payoff < solution.value - tolerance and best_att not in attacker_seen:
                attacker_pool.append(best_att)
                attacker_seen.add(best_att)
                improved = True
            if not improved:
                if method == "greedy":
                    # A greedy defender oracle's payoff is NOT an upper
                    # bound on the value, so the loop's gap is not a
                    # certificate — re-certify with one exact query.
                    _, exact_payoff = oracle.best(attacker_mix, method="auto")
                    gap = exact_payoff - att_payoff
                    gap_history[-1] = gap
                # At convergence each oracle is within one `tolerance` of
                # the restricted value, so a certified gap beyond twice
                # that means the oracle stalled short of the optimum.
                exact = gap <= 2.0 * tolerance
                metrics.counter("double_oracle.runs.count").inc()
                metrics.counter("double_oracle.iterations.count").inc(iteration)
                metrics.gauge("double_oracle.pool.defender").set(len(defender_pool))
                metrics.gauge("double_oracle.pool.attacker").set(len(attacker_pool))
                metrics.gauge("double_oracle.gap").set(gap)
                if not exact:
                    metrics.counter(
                        "double_oracle.inexact_convergence.count"
                    ).inc()
                    _log.warning(
                        "double_oracle.inexact_convergence",
                        method=method, value=solution.value, gap=gap,
                        tolerance=tolerance,
                    )
                _log.info(
                    "double_oracle.converged", iterations=iteration,
                    value=solution.value, gap=gap, exact=exact,
                )
                obs_events.publish(
                    "solver.iteration", solver="double_oracle",
                    iteration=iteration, value=solution.value, gap=gap,
                    defender_pool=len(defender_pool),
                    attacker_pool=len(attacker_pool),
                    converged=True, certified=exact,
                )
                result = DoubleOracleResult(
                    solution, iteration, len(defender_pool),
                    len(attacker_pool), gap, gap_history, exact,
                )
                probe.store(double_oracle_result_to_json(result))
                return result

    raise GameError(
        f"double oracle did not converge within {max_iterations} iterations "
        f"(remaining gap {gap!r})"
    )
