"""Double oracle: exact equilibria without enumerating ``E^k``.

The exact LP of :mod:`repro.solvers.lp` materializes all ``C(m, k)``
defender strategies — hopeless beyond small instances.  The double-oracle
algorithm (McMahan, Gordon & Blum 2003; the standard scaling technique in
the security-games literature) solves the same zero-sum duel by lazy
strategy generation:

1. solve the *restricted* duel over small strategy pools;
2. ask each side's **best-response oracle** for an improving strategy
   against the opponent's current optimal mixture — for the defender this
   is weighted k-edge coverage (branch and bound, exact), for the
   attacker the minimum-hit vertex;
3. add improving strategies to the pools and repeat; stop when neither
   oracle improves.  At that point the restricted equilibrium is an
   equilibrium of the *full* game, and the final oracle payoffs bracket
   the value (the gap certifies optimality).

The pools typically stay tiny — a few dozen tuples even when ``E^k`` has
millions — because equilibrium supports are small (cf. the ``δ`` tuples of
Lemma 4.8).
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Set

from repro.core.game import GameError, TupleGame
from repro.core.tuples import EdgeTuple, tuple_vertices
from repro.graphs.core import Vertex
from repro.obs import get_logger, metrics, tracing
from repro.solvers.best_response import best_tuple, greedy_tuple
from repro.solvers.lp import LPSolution, minimax_over_strategies

__all__ = ["DoubleOracleResult", "double_oracle"]

_log = get_logger("repro.solvers.double_oracle")


class DoubleOracleResult:
    """Outcome of a double-oracle run.

    Attributes
    ----------
    solution:
        Equilibrium value and mixtures (over the final pools).
    iterations:
        Outer iterations until neither oracle improved.
    defender_pool_size / attacker_pool_size:
        Final pool sizes — the point of the method is that these stay
        far below ``C(m, k)`` and ``n``.
    certified_gap:
        ``defender_oracle_payoff − attacker_oracle_payoff`` at
        termination; ≤ tolerance certifies the value is exact.
    gap_history:
        The certified gap after each outer iteration, oldest first —
        the convergence trajectory that the scaling experiments plot.
    """

    __slots__ = (
        "solution",
        "iterations",
        "defender_pool_size",
        "attacker_pool_size",
        "certified_gap",
        "gap_history",
    )

    def __init__(
        self,
        solution: LPSolution,
        iterations: int,
        defender_pool_size: int,
        attacker_pool_size: int,
        certified_gap: float,
        gap_history: Optional[List[float]] = None,
    ) -> None:
        self.solution = solution
        self.iterations = iterations
        self.defender_pool_size = defender_pool_size
        self.attacker_pool_size = attacker_pool_size
        self.certified_gap = certified_gap
        self.gap_history = list(gap_history) if gap_history is not None else []

    @property
    def value(self) -> float:
        return self.solution.value

    def __repr__(self) -> str:
        return (
            f"DoubleOracleResult(value={self.value:.6f}, "
            f"iterations={self.iterations}, "
            f"pools={self.defender_pool_size}/{self.attacker_pool_size})"
        )


def _initial_defender_pool(game: TupleGame) -> List[EdgeTuple]:
    """Seed: the greedy cover of uniform attacker mass (one good tuple)."""
    uniform_mass = {v: 1.0 for v in game.graph.vertices()}
    seed, _ = greedy_tuple(game.graph, uniform_mass, game.k)
    return [seed]


def double_oracle(
    game: TupleGame,
    tolerance: float = 1e-9,
    max_iterations: int = 200,
    method: str = "auto",
) -> DoubleOracleResult:
    """Solve the duel of ``Π_k(G)`` by lazy strategy generation.

    ``method`` selects the defender-oracle coverage solver ("auto" uses
    exact branch and bound; "greedy" trades the exactness certificate for
    speed on very large instances — the gap then reports how much may
    have been left on the table).

    Raises :class:`~repro.core.game.GameError` if the oracles still
    improve after ``max_iterations`` (not observed in practice; a guard
    against pathological tolerance settings).
    """
    graph = game.graph
    vertices = graph.sorted_vertices()
    defender_pool: List[EdgeTuple] = _initial_defender_pool(game)
    defender_seen: Set[EdgeTuple] = set(defender_pool)
    attacker_pool: List[Vertex] = [vertices[0]]
    attacker_seen: Set[Vertex] = set(attacker_pool)

    solution = None
    gap = float("inf")
    gap_history: List[float] = []
    oracle_timer = metrics.histogram("double_oracle.oracle.seconds")
    with tracing.span("double_oracle.solve", n=graph.n, m=graph.m, k=game.k):
        for iteration in range(1, max_iterations + 1):
            solution = minimax_over_strategies(
                attacker_pool, defender_pool, tuple_vertices
            )

            # Defender oracle: best tuple against the attacker's mixture over
            # the *full* vertex set (off-pool vertices have mass 0).
            attacker_mix: Dict[Vertex, float] = dict(solution.attacker)
            with tracing.span("double_oracle.oracle.best_response"):
                oracle_start = perf_counter()
                best_def, def_payoff = best_tuple(
                    graph, attacker_mix, game.k, method=method
                )
                oracle_timer.observe(perf_counter() - oracle_start)

            # Attacker oracle: min-hit vertex against the defender's mixture.
            hit: Dict[Vertex, float] = {v: 0.0 for v in vertices}
            for t, p in solution.defender.items():
                for v in tuple_vertices(t):
                    hit[v] += p
            best_att = min(vertices, key=lambda v: (hit[v], repr(v)))
            att_payoff = hit[best_att]

            gap = def_payoff - att_payoff
            gap_history.append(gap)
            _log.debug(
                "double_oracle.iteration", i=iteration, value=solution.value,
                gap=gap, defender_pool=len(defender_pool),
                attacker_pool=len(attacker_pool),
            )
            improved = False
            if def_payoff > solution.value + tolerance and best_def not in defender_seen:
                defender_pool.append(best_def)
                defender_seen.add(best_def)
                improved = True
            if att_payoff < solution.value - tolerance and best_att not in attacker_seen:
                attacker_pool.append(best_att)
                attacker_seen.add(best_att)
                improved = True
            if not improved:
                metrics.counter("double_oracle.runs.count").inc()
                metrics.counter("double_oracle.iterations.count").inc(iteration)
                metrics.gauge("double_oracle.pool.defender").set(len(defender_pool))
                metrics.gauge("double_oracle.pool.attacker").set(len(attacker_pool))
                metrics.gauge("double_oracle.gap").set(gap)
                _log.info(
                    "double_oracle.converged", iterations=iteration,
                    value=solution.value, gap=gap,
                )
                return DoubleOracleResult(
                    solution, iteration, len(defender_pool),
                    len(attacker_pool), gap, gap_history,
                )

    raise GameError(
        f"double oracle did not converge within {max_iterations} iterations "
        f"(remaining gap {gap!r})"
    )
