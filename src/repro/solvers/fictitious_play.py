"""Fictitious play — a learning-dynamics baseline for the duel.

Brown–Robinson fictitious play on the defender-vs-attacker zero-sum game:
each round both sides best-respond to the opponent's *empirical mixture*.
In zero-sum games the empirical mixtures converge to optimal strategies and
the best-response payoffs sandwich the game value, so this provides an
anytime, enumeration-free estimate of the defender's equilibrium gain —
usable on instances where the exact LP (over ``C(m,k)`` tuples) is out of
reach, and a second independent confirmation of the linear-in-k law on
instances where it is not.

The defender's best response is the k-edge coverage maximum, answered by
the amortized :mod:`repro.kernels` coverage oracle — built once per run,
queried every round (exact by default; pass ``method="greedy"`` for very
large instances, at the cost of the value bounds no longer being exact
bounds).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

import repro.cache as result_cache
from repro.core.game import GameError, TupleGame
from repro.core.tuples import EdgeTuple, tuple_vertices
from repro.graphs.core import Vertex, tuple_sort_key, vertex_sort_key
from repro.kernels.coverage import shared_oracle
from repro.obs import events as obs_events
from repro.obs import get_logger, metrics, tracing
from repro.obs import ledger as obs_ledger

__all__ = [
    "FictitiousPlayResult",
    "fictitious_play",
    "fictitious_play_result_to_json",
    "fictitious_play_result_from_json",
]

_log = get_logger("repro.solvers.fictitious_play")


class FictitiousPlayResult:
    """Trace and outcome of a fictitious-play run.

    Attributes
    ----------
    rounds:
        Number of iterations played.
    lower_bound / upper_bound:
        Sandwich on the per-attacker game value: the defender's average
        payoff against the attacker's empirical mixture (upper) and the
        hit probability the attacker could still secure (lower).
    value_estimate:
        Midpoint of the final sandwich.
    attacker_strategy / defender_strategy:
        The empirical mixtures (support only).
    history:
        Per-round ``(lower, upper)`` bound pairs, for convergence plots.
    residual_history:
        Per-round sandwich widths ``upper − lower`` (derived from
        ``history``) — the convergence residual trajectory.
    """

    __slots__ = (
        "rounds",
        "lower_bound",
        "upper_bound",
        "attacker_strategy",
        "defender_strategy",
        "history",
    )

    def __init__(
        self,
        rounds: int,
        lower_bound: float,
        upper_bound: float,
        attacker_strategy: Dict[Vertex, float],
        defender_strategy: Dict[EdgeTuple, float],
        history: List[Tuple[float, float]],
    ) -> None:
        self.rounds = rounds
        self.lower_bound = lower_bound
        self.upper_bound = upper_bound
        self.attacker_strategy = attacker_strategy
        self.defender_strategy = defender_strategy
        self.history = history

    @property
    def value_estimate(self) -> float:
        return (self.lower_bound + self.upper_bound) / 2.0

    @property
    def residual_history(self) -> List[float]:
        """Per-round convergence residuals ``upper − lower``."""
        return [upper - lower for lower, upper in self.history]

    @property
    def gap(self) -> float:
        return self.upper_bound - self.lower_bound

    def defender_gain_estimate(self, nu: int) -> float:
        """Estimated equilibrium gain for a ν-attacker instance."""
        return nu * self.value_estimate

    def __repr__(self) -> str:
        return (
            f"FictitiousPlayResult(rounds={self.rounds}, "
            f"value≈{self.value_estimate:.4f}, gap={self.gap:.4f})"
        )


_RESULT_FORMAT = "repro.solvers.fictitious-play-result.v1"


def fictitious_play_result_to_json(result: FictitiousPlayResult) -> str:
    """Canonical, byte-deterministic JSON dump of a fictitious-play run.

    Strategies are emitted in canonical order with exact float
    round-trip, so cache replay
    (:func:`fictitious_play_result_from_json`) reproduces these bytes.
    """
    with metrics.timer("cache.encode.seconds"):
        payload = {
            "format": _RESULT_FORMAT,
            "rounds": result.rounds,
            "lower_bound": result.lower_bound,
            "upper_bound": result.upper_bound,
            "attacker_strategy": [
                [v, p]
                for v, p in sorted(
                    result.attacker_strategy.items(),
                    key=lambda item: vertex_sort_key(item[0]),
                )
            ],
            "defender_strategy": [
                [[list(e) for e in t], p]
                for t, p in sorted(
                    result.defender_strategy.items(),
                    key=lambda item: tuple_sort_key(item[0]),
                )
            ],
            "history": [[lower, upper] for lower, upper in result.history],
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def fictitious_play_result_from_json(text: str) -> FictitiousPlayResult:
    """Parse a :func:`fictitious_play_result_to_json` document.

    Raises :class:`~repro.core.game.GameError` on malformed documents or
    an unknown format tag.
    """
    with metrics.timer("cache.decode.seconds"):
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise GameError(
                f"invalid fictitious-play document: {exc}"
            ) from exc
        if not isinstance(payload, dict) \
                or payload.get("format") != _RESULT_FORMAT:
            raise GameError(
                f"unrecognized fictitious-play format "
                f"(expected {_RESULT_FORMAT!r})"
            )
        try:
            return FictitiousPlayResult(
                int(payload["rounds"]),
                float(payload["lower_bound"]),
                float(payload["upper_bound"]),
                {v: float(p) for v, p in payload["attacker_strategy"]},
                {
                    tuple(tuple(e) for e in t): float(p)
                    for t, p in payload["defender_strategy"]
                },
                [
                    (float(lower), float(upper))
                    for lower, upper in payload["history"]
                ],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise GameError(
                f"malformed fictitious-play payload: {exc}"
            ) from exc


def fictitious_play(
    game: TupleGame,
    rounds: int = 200,
    method: str = "auto",
    tolerance: Optional[float] = None,
) -> FictitiousPlayResult:
    """Run fictitious play for the duel underlying ``Π_k(G)``.

    Parameters
    ----------
    game:
        The instance; only its graph and ``k`` matter (value is
        per-attacker).
    rounds:
        Maximum iterations (at least 1).
    method:
        Coverage-solver method for the defender's best response.
    tolerance:
        Optional early stop once ``upper − lower ≤ tolerance``; must be
        positive when given.

    Raises
    ------
    GameError
        On degenerate parameters (``rounds < 1``, ``tolerance <= 0``).
    """
    graph = game.graph
    # Parameter validation happens before the cache probe: invalid
    # parameters must never mint a cache key (or a ledger record claiming
    # a run happened), and ``rounds=0`` would otherwise surface as a bare
    # ``ValueError: max() arg is an empty sequence`` from the history
    # reduction (and a zero division building the empirical strategies).
    if rounds < 1:
        raise GameError(f"fictitious play needs rounds >= 1; got {rounds}")
    if tolerance is not None and tolerance <= 0:
        raise GameError(
            f"fictitious play needs a positive tolerance; got {tolerance}"
        )

    # Probe before opening the ledger run so the record can carry the
    # ``cache_hit`` attribute (a no-op miss while caching is disabled).
    probe = result_cache.lookup(
        game, "solvers.fictitious_play",
        {"rounds": rounds, "method": method, "tolerance": tolerance},
    )
    with obs_ledger.run("solvers.fictitious_play", game=game,
                        max_rounds=rounds, method=method,
                        cache_hit=probe.hit), \
            tracing.span("fictitious_play.run", n=graph.n, k=game.k,
                         max_rounds=rounds), \
            metrics.timer("fictitious_play.run.seconds"):
        result = probe.replay(fictitious_play_result_from_json)
        if result is None:
            result = _run_fictitious_play(game, rounds, method, tolerance)
            probe.store(fictitious_play_result_to_json(result))
    metrics.counter("fictitious_play.runs.count").inc()
    metrics.counter("fictitious_play.rounds.count").inc(result.rounds)
    metrics.gauge("fictitious_play.residual").set(result.gap)
    _log.info(
        "fictitious_play.finished", rounds=result.rounds,
        value=result.value_estimate, residual=result.gap,
    )
    return result


def _run_fictitious_play(
    game: TupleGame,
    rounds: int,
    method: str,
    tolerance: Optional[float],
) -> FictitiousPlayResult:
    graph = game.graph
    oracle = shared_oracle(graph, game.k)
    vertices = oracle.vertices

    attacker_counts: Dict[Vertex, int] = {}
    defender_counts: Dict[EdgeTuple, int] = {}
    # Cumulative hit tallies: hit_mass[v] = number of past defender
    # responses covering v.
    hit_mass: Dict[Vertex, float] = {v: 0.0 for v in vertices}

    # Round 0 seeds: attacker at the deterministically-first vertex.
    current_attack: Vertex = vertices[0]
    history: List[Tuple[float, float]] = []
    lower = 0.0
    upper = 1.0

    for round_index in range(1, rounds + 1):
        attacker_counts[current_attack] = attacker_counts.get(current_attack, 0) + 1
        # Defender best-responds to the attacker's empirical mixture.
        weights = {v: c / round_index for v, c in attacker_counts.items()}
        response, response_value = oracle.best(weights, method=method)
        defender_counts[response] = defender_counts.get(response, 0) + 1
        for v in tuple_vertices(response):
            hit_mass[v] += 1.0
        # Attacker best-responds to the defender's empirical mixture:
        # the vertex with the lowest empirical hit probability.
        current_attack = min(vertices, key=lambda v: (hit_mass[v], repr(v)))
        # Value sandwich: the defender's best response against the
        # empirical attacker guarantees >= value; the attacker's best
        # response against the empirical defender concedes <= value.
        upper = response_value
        lower = hit_mass[current_attack] / round_index
        history.append((lower, upper))
        obs_events.publish(
            "solver.iteration", solver="fictitious_play",
            round=round_index, lower=lower, upper=upper,
            residual=upper - lower,
        )
        if tolerance is not None and upper - lower <= tolerance:
            break

    total_rounds = len(history)
    attacker_strategy = {
        v: c / total_rounds
        for v, c in sorted(
            attacker_counts.items(), key=lambda item: vertex_sort_key(item[0])
        )
    }
    defender_strategy = {
        t: c / total_rounds
        for t, c in sorted(
            defender_counts.items(), key=lambda item: tuple_sort_key(item[0])
        )
    }
    # Report the tightest bounds seen (both are valid bounds every round).
    best_lower = max(l for l, _ in history)
    best_upper = min(u for _, u in history)
    return FictitiousPlayResult(
        total_rounds,
        best_lower,
        best_upper,
        attacker_strategy,
        defender_strategy,
        history,
    )
