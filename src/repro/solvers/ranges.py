"""Probing the optimal-strategy polytopes: what *every* equilibrium needs.

The LP minimax of :mod:`repro.solvers.lp` returns *one* optimal strategy
per side, but equilibria of the duel are rarely unique — Lemma 4.1's
uniform profile and the LP's vertex solution can differ while sharing the
value.  For deployment questions one wants the whole polytope:

* *which hosts can a rational attacker use at all?*  — vertex ``v`` is
  usable iff some optimal attacker mixture puts positive mass on it;
* *which links must every optimal scan schedule cover?* — edge ``e`` is
  mandatory iff its marginal probability is positive in every optimal
  defender mixture.

Both reduce to secondary LPs over the optimality polytope: fix the game
value ``v*`` (computed once), then minimize / maximize the coordinate of
interest subject to the optimality constraints.  Exact, no enumeration of
equilibria needed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.core.game import GameError, TupleGame
from repro.core.tuples import all_tuples, tuple_vertices
from repro.graphs.core import Edge, Vertex, edge_sort_key, vertex_sort_key
from repro.obs import events as obs_events
from repro.obs import ledger as obs_ledger
from repro.obs import metrics, tracing

__all__ = ["StrategyRanges", "attacker_vertex_ranges", "defender_edge_ranges"]

_TOL = 1e-9
_TOL_WIDEN = 1e4
"""Infeasibility fallback: one retry with the relaxation widened by this
factor (1e-9 → 1e-5) before giving up.

``solve_minimax`` returns ``v*`` with solver error around 1e-8 on some
instances; relaxing the optimality constraints by a smaller tolerance can
make the probed polytope *empty*, so ``_probe`` would fail on games that
are perfectly well-posed.  The relaxation is relative (scaled by
``max(1, |v*|)``) and the widened retry keeps the probe well inside any
meaningful probability resolution (ranges are reported at 1e-7)."""
_DEFAULT_TUPLE_LIMIT = 100_000


def _relaxation(value: float) -> float:
    """Relative optimality relaxation for the probe LPs."""
    return _TOL * max(1.0, abs(value))


class StrategyRanges:
    """Per-coordinate [min, max] probabilities over an optimal polytope.

    ``sort_key`` is the canonical key function for the coordinate keys —
    :func:`~repro.graphs.core.vertex_sort_key` for attacker (vertex)
    ranges, :func:`~repro.graphs.core.edge_sort_key` for defender (edge)
    ranges.  When omitted it is inferred from the key shape (edges are
    2-tuples; vertices are ints or strings), so :meth:`required` /
    :meth:`usable` always report in the same canonical order as
    :meth:`~repro.graphs.core.Graph.sorted_edges` and the serializers —
    sorting edges with the vertex key would drop mixed-label graphs into
    the ``(type_name, repr)`` fallback and diverge.
    """

    __slots__ = ("value", "ranges", "sort_key")

    def __init__(self, value: float, ranges: Dict, sort_key=None) -> None:
        self.value = value
        self.ranges = ranges
        if sort_key is None:
            sort_key = (
                edge_sort_key
                if any(isinstance(key, tuple) for key in ranges)
                else vertex_sort_key
            )
        self.sort_key = sort_key

    def required(self, tol: float = 1e-7) -> List:
        """Coordinates positive in *every* optimal strategy (min > 0)."""
        return sorted(
            (key for key, (low, _) in self.ranges.items() if low > tol),
            key=self.sort_key,
        )

    def usable(self, tol: float = 1e-7) -> List:
        """Coordinates positive in *some* optimal strategy (max > 0)."""
        return sorted(
            (key for key, (_, high) in self.ranges.items() if high > tol),
            key=self.sort_key,
        )

    def __repr__(self) -> str:
        return (
            f"StrategyRanges(value={self.value:.6f}, "
            f"coordinates={len(self.ranges)})"
        )


class _ProbeInfeasible(GameError):
    """A probe LP failed — usually an over-tight optimality relaxation."""


def _probe(c, a_ub, b_ub, a_eq, b_eq, bounds) -> float:
    res = linprog(
        c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq, bounds=bounds,
        method="highs",
    )
    if not res.success:
        raise _ProbeInfeasible(f"range-probe LP failed: {res.message}")
    return float(res.fun)


def _coverage_matrix(game: TupleGame, tuple_limit: int):
    if game.tuple_strategy_count() > tuple_limit:
        raise GameError(
            f"C(m={game.m}, k={game.k}) exceeds the probing limit {tuple_limit}"
        )
    vertices = game.graph.sorted_vertices()
    index = {v: i for i, v in enumerate(vertices)}
    tuples = list(all_tuples(game.graph, game.k))
    coverage = np.zeros((len(tuples), len(vertices)))
    for row, t in enumerate(tuples):
        for v in tuple_vertices(t):
            coverage[row, index[v]] = 1.0
    return vertices, tuples, coverage


def attacker_vertex_ranges(
    game: TupleGame, tuple_limit: int = _DEFAULT_TUPLE_LIMIT
) -> StrategyRanges:
    """[min, max] probability of each vertex across optimal attacker
    mixtures.

    The optimality polytope is ``{q ≥ 0 : Σq = 1, (A q)_t ≤ v* ∀t}``.
    """
    from repro.solvers.lp import solve_minimax

    metrics.counter("ranges.attacker.count").inc()
    with obs_ledger.run("solvers.ranges.attacker", game=game), \
            tracing.span("ranges.attacker", n=game.graph.n, k=game.k), \
            metrics.timer("ranges.attacker.seconds"):
        return _attacker_vertex_ranges(game, tuple_limit, solve_minimax)


def _attacker_vertex_ranges(game, tuple_limit, solve_minimax) -> StrategyRanges:
    vertices, tuples, coverage = _coverage_matrix(game, tuple_limit)
    value = solve_minimax(game, tuple_limit=tuple_limit).value
    n = len(vertices)
    a_ub = coverage
    a_eq = np.ones((1, n))
    b_eq = np.array([1.0])
    bounds = [(0.0, 1.0)] * n

    last_error: Optional[GameError] = None
    for widen in (1.0, _TOL_WIDEN):
        b_ub = np.full(len(tuples), value + widen * _relaxation(value))
        obs_events.publish(
            "solver.iteration", solver="ranges.attacker",
            probes=2 * n, widen=widen, value=value,
        )
        try:
            ranges: Dict[Vertex, Tuple[float, float]] = {}
            for i, v in enumerate(vertices):
                c = np.zeros(n)
                c[i] = 1.0
                low = _probe(c, a_ub, b_ub, a_eq, b_eq, bounds)
                high = -_probe(-c, a_ub, b_ub, a_eq, b_eq, bounds)
                ranges[v] = (max(0.0, low), min(1.0, high))
            return StrategyRanges(value, ranges, sort_key=vertex_sort_key)
        except _ProbeInfeasible as exc:
            # v* carries solver error; an over-tight relaxation can empty
            # the optimality polytope.  Retry once, widened.
            last_error = exc
            metrics.counter("ranges.probe.retry.count").inc()
    raise GameError(
        f"attacker range probes infeasible even with a widened tolerance "
        f"({_TOL_WIDEN:g}x): {last_error}"
    )


def defender_edge_ranges(
    game: TupleGame, tuple_limit: int = _DEFAULT_TUPLE_LIMIT
) -> StrategyRanges:
    """[min, max] *marginal* probability of each edge (the chance the
    schedule scans it) across optimal defender mixtures.

    The optimality polytope is ``{p ≥ 0 : Σp = 1, (Aᵀ p)_v ≥ v* ∀v}``;
    the probed coordinate is ``Σ_{t ∋ e} p_t``.
    """
    from repro.solvers.lp import solve_minimax

    metrics.counter("ranges.defender.count").inc()
    with obs_ledger.run("solvers.ranges.defender", game=game), \
            tracing.span("ranges.defender", n=game.graph.n, k=game.k), \
            metrics.timer("ranges.defender.seconds"):
        return _defender_edge_ranges(game, tuple_limit, solve_minimax)


def _defender_edge_ranges(game, tuple_limit, solve_minimax) -> StrategyRanges:
    vertices, tuples, coverage = _coverage_matrix(game, tuple_limit)
    value = solve_minimax(game, tuple_limit=tuple_limit).value
    t_count = len(tuples)
    a_ub = -coverage.T  # (A^T p)_v >= v*  ->  -(A^T p)_v <= -v*
    a_eq = np.ones((1, t_count))
    b_eq = np.array([1.0])
    bounds = [(0.0, 1.0)] * t_count

    membership: Dict[Edge, np.ndarray] = {}
    for e in game.graph.sorted_edges():
        row = np.zeros(t_count)
        for idx, t in enumerate(tuples):
            if e in t:
                row[idx] = 1.0
        membership[e] = row

    last_error: Optional[GameError] = None
    for widen in (1.0, _TOL_WIDEN):
        b_ub = np.full(len(vertices), -(value - widen * _relaxation(value)))
        obs_events.publish(
            "solver.iteration", solver="ranges.defender",
            probes=2 * len(membership), widen=widen, value=value,
        )
        try:
            ranges: Dict[Edge, Tuple[float, float]] = {}
            for e, row in membership.items():
                low = _probe(row, a_ub, b_ub, a_eq, b_eq, bounds)
                high = -_probe(-row, a_ub, b_ub, a_eq, b_eq, bounds)
                ranges[e] = (max(0.0, low), min(1.0, high))
            return StrategyRanges(value, ranges, sort_key=edge_sort_key)
        except _ProbeInfeasible as exc:
            last_error = exc
            metrics.counter("ranges.probe.retry.count").inc()
    raise GameError(
        f"defender range probes infeasible even with a widened tolerance "
        f"({_TOL_WIDEN:g}x): {last_error}"
    )
