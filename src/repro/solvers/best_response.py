"""Defender best response: maximum weight coverage by ``k`` edges.

Condition 3(a) of Theorem 3.4 compares the attacker mass ``m_s(t)`` of the
support tuples against ``max_t m_s(t)`` over the *whole* strategy set
``E^k``.  Computing that maximum is the "maximum coverage with k edges"
problem (pick ``k`` edges maximizing the total weight of *distinct* covered
endpoints), which is NP-hard in general — the structural equilibria of the
paper avoid it analytically, but verification and baseline solvers need the
actual optimum.  Three strategies are provided:

* :func:`exhaustive_best_tuple` — exact, enumerates ``C(m, k)`` tuples;
* :func:`branch_and_bound_best_tuple` — exact, prunes with the admissible
  bound "sum of the top remaining static edge weights";
* :func:`greedy_tuple` — the classical ``(1 − 1/e)``-approximation, for
  instances where exact search is hopeless.

:func:`best_tuple` dispatches between the exact methods by strategy-set
size.

This module is a thin compatibility facade: the actual search runs on the
amortized :class:`~repro.kernels.coverage.CoverageOracle` (one precompute
per ``(graph, k)``, memoized process-wide), so repeated queries against the
same instance — the double-oracle / fictitious-play / verification access
pattern — skip all graph re-derivation.  Both exact methods return the
canonical **lexicographically smallest** optimal tuple, ties included.
"""

from __future__ import annotations

from typing import Mapping, Tuple

from repro.core.tuples import EdgeTuple, tuple_vertices
from repro.graphs.core import Graph, GraphError, Vertex
from repro.kernels.coverage import shared_oracle
from repro.obs import metrics, tracing

__all__ = [
    "coverage_value",
    "exhaustive_best_tuple",
    "branch_and_bound_best_tuple",
    "greedy_tuple",
    "best_tuple",
]

_EXHAUSTIVE_LIMIT = 100_000
"""Default maximum number of tuples the auto dispatcher will enumerate."""


def coverage_value(weights: Mapping[Vertex, float], t: EdgeTuple) -> float:
    """Total weight of the distinct endpoints of ``t``."""
    return sum(weights.get(v, 0.0) for v in tuple_vertices(t))


def _check_k(graph: Graph, k: int) -> None:
    if not 1 <= k <= graph.m:
        raise GraphError(f"k must satisfy 1 <= k <= m={graph.m}; got {k}")


@tracing.traced("best_response.exhaustive")
def exhaustive_best_tuple(
    graph: Graph, weights: Mapping[Vertex, float], k: int
) -> Tuple[EdgeTuple, float]:
    """Exact maximum by full enumeration of ``E^k``.

    Deterministic tie-breaking: the lexicographically smallest optimal
    tuple wins.
    """
    _check_k(graph, k)
    return shared_oracle(graph, k).exhaustive(weights)


@tracing.traced("best_response.branch_and_bound")
def branch_and_bound_best_tuple(
    graph: Graph, weights: Mapping[Vertex, float], k: int
) -> Tuple[EdgeTuple, float]:
    """Exact maximum via depth-first branch and bound.

    Edges are pre-sorted by *static* weight ``w(u) + w(v)`` (an upper bound
    on any edge's marginal contribution), and a prefix-sum bound prunes
    branches that cannot beat the incumbent.  Worst case exponential, but
    fast on the benchmark instances because attacker mass concentrates on
    few vertices.  Returns the same canonical (lexicographically smallest)
    optimal tuple as :func:`exhaustive_best_tuple`, ties included.
    """
    _check_k(graph, k)
    return shared_oracle(graph, k).branch_and_bound(weights)


@tracing.traced("best_response.greedy")
def greedy_tuple(
    graph: Graph, weights: Mapping[Vertex, float], k: int
) -> Tuple[EdgeTuple, float]:
    """Greedy ``(1 − 1/e)``-approximate coverage: repeatedly take the edge
    with the largest marginal weight (first in lexicographic order on
    ties)."""
    _check_k(graph, k)
    return shared_oracle(graph, k).greedy(weights)


@tracing.traced("best_response.best_tuple")
def best_tuple(
    graph: Graph,
    weights: Mapping[Vertex, float],
    k: int,
    method: str = "auto",
    exhaustive_limit: int = _EXHAUSTIVE_LIMIT,
) -> Tuple[EdgeTuple, float]:
    """Exact defender best response against attacker masses ``weights``.

    ``method`` is one of ``"auto"`` (enumerate when ``C(m,k)`` is small,
    branch-and-bound otherwise), ``"exhaustive"``, ``"bnb"`` or
    ``"greedy"`` (the only inexact choice).
    """
    _check_k(graph, k)
    metrics.counter("best_response.calls.count").inc()
    metrics.counter(f"best_response.method.{method}.count").inc()
    return shared_oracle(graph, k).best(
        weights, method=method, exhaustive_limit=exhaustive_limit
    )
