"""Defender best response: maximum weight coverage by ``k`` edges.

Condition 3(a) of Theorem 3.4 compares the attacker mass ``m_s(t)`` of the
support tuples against ``max_t m_s(t)`` over the *whole* strategy set
``E^k``.  Computing that maximum is the "maximum coverage with k edges"
problem (pick ``k`` edges maximizing the total weight of *distinct* covered
endpoints), which is NP-hard in general — the structural equilibria of the
paper avoid it analytically, but verification and baseline solvers need the
actual optimum.  Three strategies are provided:

* :func:`exhaustive_best_tuple` — exact, enumerates ``C(m, k)`` tuples;
* :func:`branch_and_bound_best_tuple` — exact, prunes with the admissible
  bound "sum of the top remaining static edge weights";
* :func:`greedy_tuple` — the classical ``(1 − 1/e)``-approximation, for
  instances where exact search is hopeless.

:func:`best_tuple` dispatches between the exact methods by strategy-set
size.
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.core.tuples import EdgeTuple, canonical_tuple, tuple_vertices
from repro.graphs.core import Edge, Graph, GraphError, Vertex
from repro.obs import metrics, tracing

__all__ = [
    "coverage_value",
    "exhaustive_best_tuple",
    "branch_and_bound_best_tuple",
    "greedy_tuple",
    "best_tuple",
]

_EXHAUSTIVE_LIMIT = 100_000
"""Default maximum number of tuples the auto dispatcher will enumerate."""


def coverage_value(weights: Mapping[Vertex, float], t: EdgeTuple) -> float:
    """Total weight of the distinct endpoints of ``t``."""
    return sum(weights.get(v, 0.0) for v in tuple_vertices(t))


def _check_k(graph: Graph, k: int) -> None:
    if not 1 <= k <= graph.m:
        raise GraphError(f"k must satisfy 1 <= k <= m={graph.m}; got {k}")


@tracing.traced("best_response.exhaustive")
def exhaustive_best_tuple(
    graph: Graph, weights: Mapping[Vertex, float], k: int
) -> Tuple[EdgeTuple, float]:
    """Exact maximum by full enumeration of ``E^k``.

    Deterministic tie-breaking: the lexicographically smallest optimal
    tuple wins.
    """
    _check_k(graph, k)
    best_tuple_found: Optional[EdgeTuple] = None
    best_value = float("-inf")
    for combo in combinations(graph.sorted_edges(), k):
        value = coverage_value(weights, combo)
        if value > best_value + 1e-15:
            best_value = value
            best_tuple_found = combo
    assert best_tuple_found is not None
    return best_tuple_found, best_value


@tracing.traced("best_response.branch_and_bound")
def branch_and_bound_best_tuple(
    graph: Graph, weights: Mapping[Vertex, float], k: int
) -> Tuple[EdgeTuple, float]:
    """Exact maximum via depth-first branch and bound.

    Edges are pre-sorted by *static* weight ``w(u) + w(v)`` (an upper bound
    on any edge's marginal contribution), and a prefix-sum bound prunes
    branches that cannot beat the incumbent.  Worst case exponential, but
    fast on the benchmark instances because attacker mass concentrates on
    few vertices.
    """
    _check_k(graph, k)
    edges = graph.sorted_edges()
    static = [
        (weights.get(u, 0.0) + weights.get(v, 0.0), (u, v)) for u, v in edges
    ]
    # Sort by static weight (desc), then lexicographically for determinism.
    static.sort(key=lambda item: (-item[0], item[1]))
    ordered_edges = [e for _, e in static]
    ordered_weights = [w for w, _ in static]
    m = len(ordered_edges)

    # suffix_top[i][r] would be ideal; the cheaper admissible variant uses
    # the fact the list is sorted: the best r remaining edges from index i
    # are exactly edges i..i+r-1.
    prefix = [0.0]
    for w in ordered_weights:
        prefix.append(prefix[-1] + w)

    def remaining_bound(index: int, slots: int) -> float:
        stop = min(m, index + slots)
        return prefix[stop] - prefix[index]

    best_value = float("-inf")
    best_combo: Optional[Tuple[Edge, ...]] = None
    chosen: List[Edge] = []
    covered: Dict[Vertex, int] = {}
    current_value = 0.0

    def descend(index: int) -> None:
        nonlocal best_value, best_combo, current_value
        if len(chosen) == k:
            if current_value > best_value + 1e-15:
                best_value = current_value
                best_combo = tuple(chosen)
            return
        slots = k - len(chosen)
        if m - index < slots:
            return
        if current_value + remaining_bound(index, slots) <= best_value + 1e-15:
            return
        u, v = ordered_edges[index]
        # Branch 1: take the edge.
        gained = 0.0
        for vertex in (u, v):
            if covered.get(vertex, 0) == 0:
                gained += weights.get(vertex, 0.0)
            covered[vertex] = covered.get(vertex, 0) + 1
        chosen.append((u, v))
        current_value += gained
        descend(index + 1)
        chosen.pop()
        current_value -= gained
        for vertex in (u, v):
            covered[vertex] -= 1
        # Branch 2: skip the edge.
        descend(index + 1)

    descend(0)
    assert best_combo is not None
    return canonical_tuple(best_combo), best_value


@tracing.traced("best_response.greedy")
def greedy_tuple(
    graph: Graph, weights: Mapping[Vertex, float], k: int
) -> Tuple[EdgeTuple, float]:
    """Greedy ``(1 − 1/e)``-approximate coverage: repeatedly take the edge
    with the largest marginal weight."""
    _check_k(graph, k)
    chosen: List[Edge] = []
    covered: Set[Vertex] = set()
    remaining = set(graph.sorted_edges())
    value = 0.0
    for _ in range(k):
        best_edge = None
        best_gain = float("-inf")
        for edge in sorted(remaining):
            u, v = edge
            gain = sum(
                weights.get(x, 0.0) for x in (u, v) if x not in covered
            )
            if gain > best_gain + 1e-15:
                best_gain = gain
                best_edge = edge
        assert best_edge is not None
        remaining.discard(best_edge)
        chosen.append(best_edge)
        covered.update(best_edge)
        value += best_gain
    return canonical_tuple(chosen), value


@tracing.traced("best_response.best_tuple")
def best_tuple(
    graph: Graph,
    weights: Mapping[Vertex, float],
    k: int,
    method: str = "auto",
    exhaustive_limit: int = _EXHAUSTIVE_LIMIT,
) -> Tuple[EdgeTuple, float]:
    """Exact defender best response against attacker masses ``weights``.

    ``method`` is one of ``"auto"`` (enumerate when ``C(m,k)`` is small,
    branch-and-bound otherwise), ``"exhaustive"``, ``"bnb"`` or
    ``"greedy"`` (the only inexact choice).
    """
    _check_k(graph, k)
    metrics.counter("best_response.calls.count").inc()
    metrics.counter(f"best_response.method.{method}.count").inc()
    if method == "exhaustive":
        return exhaustive_best_tuple(graph, weights, k)
    if method == "bnb":
        return branch_and_bound_best_tuple(graph, weights, k)
    if method == "greedy":
        return greedy_tuple(graph, weights, k)
    if method != "auto":
        raise ValueError(f"unknown method {method!r}")
    if comb(graph.m, k) <= exhaustive_limit:
        return exhaustive_best_tuple(graph, weights, k)
    return branch_and_bound_best_tuple(graph, weights, k)
