"""Exact minimax LP baseline for the Tuple model.

The Tuple model is strategically a zero-sum duel: every attacker's payoff
depends only on the defender's strategy, so an NE of the ν-attacker game is
exactly "all players play optimal strategies of the 2-player zero-sum game
defender-vs-one-attacker" with defender value scaled by ``ν``.  That game
is solvable exactly by linear programming over the full strategy sets —
exponential in ``k`` (the defender has ``C(m, k)`` tuples) but exact, which
makes it the ideal *unstructured baseline* against which the paper's
structural equilibria are validated:

* the game value must equal ``k / ρ(G)`` whenever a k-matching NE exists
  (Claim 4.3 with ``|E(D(tp))| = ρ(G)``);
* the defender's optimal gain ``ν · value`` must reproduce the linear-in-k
  law of Theorem 4.5 — including on graphs (e.g. Petersen) where the
  structural machinery does not apply.

Solved with ``scipy.optimize.linprog`` (HiGHS).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.core.configuration import MixedConfiguration
from repro.core.game import GameError, TupleGame
from repro.core.tuples import EdgeTuple, all_tuples, tuple_vertices
from repro.obs import events as obs_events
from repro.obs import get_logger, metrics, tracing
from repro.obs import ledger as obs_ledger

_log = get_logger("repro.solvers.lp")

__all__ = [
    "LPSolution",
    "minimax_over_strategies",
    "solve_minimax",
    "lp_equilibrium",
    "lp_defender_gain",
]

_DEFAULT_TUPLE_LIMIT = 200_000
_PRUNE = 1e-10


class LPSolution:
    """Optimal strategies and value of the defender-vs-attacker duel.

    Attributes
    ----------
    value:
        The game value: the hit probability an optimal defender forces on
        an optimal attacker (per attacker).
    defender:
        Optimal defender distribution over k-edge tuples (support only).
    attacker:
        Optimal attacker distribution over vertices (support only).
    """

    __slots__ = ("value", "defender", "attacker")

    def __init__(
        self,
        value: float,
        defender: Dict[EdgeTuple, float],
        attacker: Dict,
    ) -> None:
        self.value = value
        self.defender = defender
        self.attacker = attacker

    def __repr__(self) -> str:
        return (
            f"LPSolution(value={self.value:.6f}, "
            f"defender_support={len(self.defender)}, "
            f"attacker_support={len(self.attacker)})"
        )


def _prune_and_normalize(raw: np.ndarray, keys: List) -> Dict:
    clipped = np.clip(raw, 0.0, None)
    clipped[clipped < _PRUNE] = 0.0
    total = clipped.sum()
    if total <= 0.0:
        raise GameError("LP produced an empty distribution (solver failure)")
    return {
        key: float(p / total) for key, p in zip(keys, clipped) if p > 0.0
    }


@tracing.traced("lp.minimax_over_strategies")
def minimax_over_strategies(
    vertices, strategies, coverage_of, dual_attacker: bool = False
) -> LPSolution:
    """Generic zero-sum minimax: defender mixes over ``strategies``, the
    attacker over ``vertices``; ``coverage_of(strategy)`` yields the
    vertices that strategy protects.

    This is the engine under :func:`solve_minimax` and under the
    generalized defender models of :mod:`repro.models` (path and star
    defenders), which differ only in the strategy family.

    With ``dual_attacker=True`` the attacker's optimal mixture is read off
    the dual multipliers of the defender LP instead of solving a second
    LP — half the solver calls, exact by LP duality (HiGHS returns the
    optimal basis duals).  The default keeps the two-LP path, whose
    explicit duality-gap check the validation suites rely on.
    """
    vertices = list(vertices)
    strategies = list(strategies)
    if not vertices or not strategies:
        raise GameError("minimax needs non-empty strategy sets on both sides")
    vertex_index = {v: i for i, v in enumerate(vertices)}
    n, t_count = len(vertices), len(strategies)

    # Coverage matrix A[t][v] = 1 iff strategy t protects vertex v.
    # Strategies may protect vertices outside the attacker's set (e.g. in
    # the restricted duels of the double-oracle solver); those columns
    # simply do not exist in this duel.
    coverage = np.zeros((t_count, n))
    for row, strategy in enumerate(strategies):
        for v in coverage_of(strategy):
            column = vertex_index.get(v)
            if column is not None:
                coverage[row, column] = 1.0
    return _solve_matrix_duel(coverage, vertices, strategies, dual_attacker)


def _solve_matrix_duel(
    coverage, vertices, strategies, dual_attacker: bool = False
) -> LPSolution:
    """Solve the LP(s) for a 0/1 coverage matrix and package the optima."""
    t_count, n = coverage.shape
    metrics.counter("lp.solve.count").inc()
    metrics.histogram("lp.matrix.strategies").observe(t_count)
    metrics.histogram("lp.matrix.vertices").observe(n)
    with tracing.span("lp.solve", strategies=t_count, vertices=n), \
            metrics.timer("lp.solve.seconds") as timing:
        solution = _solve_matrix_duel_inner(
            coverage, vertices, strategies, dual_attacker
        )
    _log.debug(
        "lp.solve", strategies=t_count, vertices=n,
        value=solution.value, seconds=timing.elapsed,
    )
    obs_events.publish(
        "lp.solve", strategies=t_count, vertices=n,
        value=solution.value, seconds=timing.elapsed,
    )
    return solution


def _solve_matrix_duel_inner(
    coverage, vertices, strategies, dual_attacker: bool
) -> LPSolution:
    t_count, n = coverage.shape

    # Defender LP: maximize z s.t. (p^T A)_v >= z for all v, sum p = 1.
    # Variables x = (p_0..p_{T-1}, z); minimize -z.
    c = np.zeros(t_count + 1)
    c[-1] = -1.0
    a_ub = np.hstack([-coverage.T, np.ones((n, 1))])  # z - (A^T p)_v <= 0
    b_ub = np.zeros(n)
    a_eq = np.zeros((1, t_count + 1))
    a_eq[0, :t_count] = 1.0
    b_eq = np.array([1.0])
    bounds = [(0.0, None)] * t_count + [(None, None)]
    defender_res = linprog(
        c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq, bounds=bounds,
        method="highs",
    )
    if not defender_res.success:
        raise GameError(f"defender LP failed: {defender_res.message}")

    if dual_attacker:
        # The multipliers of the coverage rows are the attacker's optimal
        # mixture: stationarity of the z column forces them to sum to 1,
        # and complementary slackness puts mass only on min-hit vertices.
        duals = -np.asarray(defender_res.ineqlin.marginals)
        attacker = _prune_and_normalize(duals, list(vertices))
        defender = _prune_and_normalize(defender_res.x[:t_count], strategies)
        return LPSolution(float(-defender_res.fun), defender, attacker)

    # Attacker LP: minimize z' s.t. (A q)_t <= z' for all t, sum q = 1.
    c2 = np.zeros(n + 1)
    c2[-1] = 1.0
    a_ub2 = np.hstack([coverage, -np.ones((t_count, 1))])
    b_ub2 = np.zeros(t_count)
    a_eq2 = np.zeros((1, n + 1))
    a_eq2[0, :n] = 1.0
    attacker_res = linprog(
        c2, A_ub=a_ub2, b_ub=b_ub2, A_eq=a_eq2, b_eq=np.array([1.0]),
        bounds=[(0.0, None)] * n + [(None, None)], method="highs",
    )
    if not attacker_res.success:
        raise GameError(f"attacker LP failed: {attacker_res.message}")

    value_defender = -defender_res.fun
    value_attacker = attacker_res.fun
    if abs(value_defender - value_attacker) > 1e-7:
        raise GameError(
            "LP duality gap: defender value "
            f"{value_defender!r} vs attacker value {value_attacker!r}"
        )

    defender = _prune_and_normalize(defender_res.x[:t_count], strategies)
    attacker = _prune_and_normalize(attacker_res.x[:n], vertices)
    return LPSolution(float(value_defender), defender, attacker)


@tracing.traced("lp.solve_minimax")
def solve_minimax(
    game: TupleGame, tuple_limit: int = _DEFAULT_TUPLE_LIMIT
) -> LPSolution:
    """Solve the Tuple-model duel exactly over the full strategy sets.

    Raises :class:`~repro.core.game.GameError` when the defender's
    strategy set exceeds ``tuple_limit`` (the LP matrix would not fit) —
    use the structural algorithms or fictitious play there instead.
    """
    total_tuples = game.tuple_strategy_count()
    if total_tuples > tuple_limit:
        raise GameError(
            f"C(m={game.m}, k={game.k}) = {total_tuples} tuples exceed the "
            f"LP limit of {tuple_limit}"
        )
    with obs_ledger.run("solvers.lp.solve_minimax", game=game,
                        tuples=total_tuples):
        return minimax_over_strategies(
            game.graph.sorted_vertices(),
            all_tuples(game.graph, game.k),
            tuple_vertices,
        )


@tracing.traced("lp.lp_equilibrium")
def lp_equilibrium(
    game: TupleGame, tuple_limit: int = _DEFAULT_TUPLE_LIMIT
) -> Tuple[MixedConfiguration, LPSolution]:
    """A (possibly unstructured) mixed NE assembled from the LP optima.

    Every vertex player adopts the optimal attacker distribution, the
    tuple player the optimal defender distribution; by zero-sum
    exchangeability the profile is a mixed NE of ``Π_k(G)``.
    """
    solution = solve_minimax(game, tuple_limit=tuple_limit)
    config = MixedConfiguration(
        game, [solution.attacker] * game.nu, solution.defender
    )
    return config, solution


def lp_defender_gain(
    game: TupleGame, tuple_limit: int = _DEFAULT_TUPLE_LIMIT
) -> float:
    """The defender's equilibrium gain ``ν · value`` — exact, unstructured."""
    return game.nu * solve_minimax(game, tuple_limit=tuple_limit).value
