"""``repro.serve`` — the solve service over the canonical JSON schema.

A zero-heavy-dependency asyncio HTTP service exposing the equilibrium
machinery to other processes: ``POST /solve``, ``POST /double-oracle``,
``POST /fictitious-play`` and ``POST /ranges`` accept the canonical game
document (:mod:`repro.core.serialize`) plus per-endpoint parameters, and
``GET /healthz`` / ``GET /metrics`` / ``GET /slo`` /
``GET /debug/events`` expose liveness, the Prometheus snapshot, the
live SLO burn-rate report and the newest telemetry events.  Every
response carries ``X-Request-Id`` and a W3C ``traceparent`` echo — the
trace id that also stamps the request's ledger record, run events,
span tree and access-log line.  See ``docs/serving.md`` for the wire
contract (``repro.serve/response/v1`` envelopes,
``repro.serve/error/v1`` errors), the correlation model and
backpressure.

Start it from the CLI::

    repro-defender serve --port 8400 --workers 2

or embed it::

    from repro.serve import ServeConfig, running_service

    with running_service(ServeConfig(port=0)) as (service, base_url):
        ...  # POST canonical game JSON at f"{base_url}/solve"
"""

from repro.serve.app import DefenderService, ServeConfig, running_service
from repro.serve.routes import ENDPOINTS
from repro.serve.schemas import (
    ERROR_SCHEMA,
    RESPONSE_SCHEMA,
    RequestError,
    error_payload,
    parse_request,
)
from repro.serve.workers import WorkerPool

__all__ = [
    "DefenderService",
    "ServeConfig",
    "running_service",
    "ENDPOINTS",
    "ERROR_SCHEMA",
    "RESPONSE_SCHEMA",
    "RequestError",
    "error_payload",
    "parse_request",
    "WorkerPool",
]
