"""Bounded worker pool with explicit backpressure for the solve service.

Solver work is CPU-bound and unbounded in duration (``C(m, k)`` grows
fast), so the service never runs it on the event loop.  Requests are
dispatched to a small thread pool behind a hard admission limit:
``workers`` threads may run concurrently and at most ``queue_limit``
further requests may wait.  Admission beyond that is refused *up front*
with a 429 — a saturated solver box must shed load at the door, not
accumulate an invisible queue whose tail latency is unbounded.

Per-request timeouts are enforced by the caller (the asyncio app waits
on the future with a deadline); an abandoned request still runs to
completion in its thread — Python threads cannot be safely killed — but
its slot is released by the done-callback either way, so the admission
accounting stays exact even for timed-out work.
"""

from __future__ import annotations

import contextvars
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable

from repro.obs import get_logger, metrics

from repro.serve.schemas import RequestError

__all__ = ["WorkerPool"]

_log = get_logger("repro.serve.workers")


class WorkerPool:
    """A ThreadPoolExecutor with a hard cap on admitted-but-unfinished work.

    ``capacity = workers + queue_limit``: up to ``workers`` requests run
    while up to ``queue_limit`` wait their turn.  :meth:`submit` raises
    :class:`~repro.serve.schemas.RequestError` with status 429
    (``saturated``) past that point and 503 (``shutting-down``) after
    :meth:`close` — the HTTP layer translates, it never sees a bare
    queue exception.
    """

    def __init__(self, workers: int = 2, queue_limit: int = 8) -> None:
        if workers < 1:
            raise RequestError(
                f"worker pool needs workers >= 1; got {workers}",
                status=500, code="bad-config",
            )
        if queue_limit < 0:
            raise RequestError(
                f"worker pool needs queue_limit >= 0; got {queue_limit}",
                status=500, code="bad-config",
            )
        self.workers = workers
        self.queue_limit = queue_limit
        self.capacity = workers + queue_limit
        self._lock = threading.Lock()
        self._inflight = 0  # repro: lock(_lock)
        self._stopped = False  # repro: lock(_lock)
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve",
        )

    # -- introspection ----------------------------------------------------

    @property
    def inflight(self) -> int:
        """Admitted and not yet finished (running + queued)."""
        with self._lock:
            return self._inflight

    @property
    def queue_depth(self) -> int:
        """Admitted requests waiting for a worker (inflight beyond the
        thread count) — the number a saturating service sees grow first."""
        with self._lock:
            return max(0, self._inflight - self.workers)

    # -- lifecycle --------------------------------------------------------

    def submit(self, fn: Callable[[], Any]) -> "Future[Any]":
        """Admit ``fn`` for execution, or refuse with a structured error.

        The slot is released by a done-callback on the returned future,
        so it is freed exactly once whether the caller collects the
        result, times out, or the work raises.

        ``fn`` runs under a copy of the submitter's ``contextvars``
        context, so the request's trace context
        (:mod:`repro.obs.tracing`) follows the work onto the worker
        thread — the hop that makes one trace id span the whole request.
        """
        with self._lock:
            if self._stopped:
                raise RequestError(
                    "service is shutting down",
                    status=503, code="shutting-down",
                )
            if self._inflight >= self.capacity:
                metrics.counter("serve.saturated.count").inc()
                raise RequestError(
                    f"solver pool saturated ({self.workers} workers, "
                    f"{self.queue_limit} queued); retry later",
                    status=429, code="saturated",
                )
            self._inflight += 1
            metrics.gauge("serve.inflight").set(self._inflight)
        context = contextvars.copy_context()
        try:
            future = self._executor.submit(context.run, fn)
        except RuntimeError as exc:  # executor shut down under us
            self._release()
            raise RequestError(
                "service is shutting down",
                status=503, code="shutting-down",
            ) from exc
        future.add_done_callback(lambda _f: self._release())
        return future

    def _release(self) -> None:
        with self._lock:
            self._inflight -= 1
            metrics.gauge("serve.inflight").set(self._inflight)

    def close(self, wait: bool = True) -> None:
        """Refuse new work and (optionally) wait for admitted work."""
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
        _log.info("serve.pool.closing", inflight=self.inflight)
        self._executor.shutdown(wait=wait)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
