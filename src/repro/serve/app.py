"""The solve service itself: a stdlib-only asyncio HTTP/1.1 server.

No FastAPI, no uvicorn — the container bakes in the scientific stack and
nothing else, and the wire surface here is small enough that a strict
little HTTP/1.1 parser (``Content-Length`` bodies, ``Connection:
close``) is both sufficient and auditable.  The event loop only ever
parses, validates and serves cache hits; solver work runs on the
:class:`~repro.serve.workers.WorkerPool` behind an admission limit, with
a per-request deadline enforced by ``asyncio.wait_for``.

``GET /healthz`` reports liveness plus pool occupancy; ``GET /metrics``
re-serializes the process-global registry in Prometheus text format —
the same bytes ``repro-defender stats --format prom`` emits, so one
scrape config covers CLI batch runs and the service.

:func:`running_service` runs the whole thing on a background thread and
yields the base URL — the harness used by the tests, the smoke check and
the load generator.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.obs import get_logger, metrics
from repro.obs.metrics import get_registry

from repro.serve.routes import prepare
from repro.serve.schemas import RequestError, error_payload
from repro.serve.workers import WorkerPool

__all__ = ["ServeConfig", "DefenderService", "running_service"]

_log = get_logger("repro.serve.app")

_MAX_HEADER_BYTES = 64 * 1024
_DEFAULT_MAX_BODY = 8 * 1024 * 1024

_STATUS_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    422: "Unprocessable Entity", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ServeConfig:
    """Tunables for one :class:`DefenderService` instance.

    ``port=0`` binds an ephemeral port (the bound port is reported by
    :attr:`DefenderService.port` once started) — how the tests and the
    smoke target avoid colliding on a fixed port.
    """

    __slots__ = ("host", "port", "workers", "queue_limit",
                 "request_timeout_s", "max_body_bytes")

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        queue_limit: int = 8,
        request_timeout_s: float = 60.0,
        max_body_bytes: int = _DEFAULT_MAX_BODY,
    ) -> None:
        if request_timeout_s <= 0:
            raise RequestError(
                f"request_timeout_s must be positive; got {request_timeout_s}",
                status=500, code="bad-config",
            )
        self.host = host
        self.port = port
        self.workers = workers
        self.queue_limit = queue_limit
        self.request_timeout_s = request_timeout_s
        self.max_body_bytes = max_body_bytes


class _HttpError(Exception):
    """An HTTP-level defect (before routing): status + message."""

    def __init__(self, status: int, message: str, code: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code


class DefenderService:
    """The asyncio HTTP server bound to one worker pool."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.pool = WorkerPool(self.config.workers, self.config.queue_limit)
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle --------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            return self.config.port
        return int(self._server.sockets[0].getsockname()[1])

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
        )
        _log.info("serve.started", host=self.config.host, port=self.port,
                  workers=self.config.workers,
                  queue_limit=self.config.queue_limit)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.pool.close()
        _log.info("serve.stopped")

    async def serve_forever(self) -> None:
        """Start (if needed) and block until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()

    # -- HTTP plumbing ----------------------------------------------------

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, bytes]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError as exc:
            raise _HttpError(413, "request head too large",
                             "head-too-large") from exc
        except (asyncio.IncompleteReadError, ConnectionError) as exc:
            raise _HttpError(400, "truncated request", "truncated") from exc
        if len(head) > _MAX_HEADER_BYTES:
            raise _HttpError(413, "request head too large", "head-too-large")
        try:
            lines = head.decode("latin-1").split("\r\n")
            method, target, _version = lines[0].split(" ", 2)
        except (UnicodeDecodeError, ValueError) as exc:
            raise _HttpError(400, "malformed request line",
                             "bad-request-line") from exc
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        body = b""
        length_header = headers.get("content-length")
        if length_header is not None:
            try:
                length = int(length_header)
            except ValueError as exc:
                raise _HttpError(400, "invalid Content-Length",
                                 "bad-content-length") from exc
            if length < 0:
                raise _HttpError(400, "invalid Content-Length",
                                 "bad-content-length")
            if length > self.config.max_body_bytes:
                raise _HttpError(
                    413,
                    f"request body exceeds {self.config.max_body_bytes} bytes",
                    "body-too-large",
                )
            try:
                body = await reader.readexactly(length)
            except (asyncio.IncompleteReadError, ConnectionError) as exc:
                raise _HttpError(400, "truncated request body",
                                 "truncated") from exc
        return method.upper(), target, body

    @staticmethod
    def _response_bytes(status: int, payload: Any,
                        content_type: str = "application/json") -> bytes:
        if isinstance(payload, (dict, list)):
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
        elif isinstance(payload, str):
            body = payload.encode("utf-8")
        else:
            body = payload
        reason = _STATUS_REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        return head.encode("latin-1") + body

    # -- routing ----------------------------------------------------------

    async def _dispatch(self, method: str, target: str,
                        body: bytes) -> Tuple[int, Any, str]:
        path = target.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            if method != "GET":
                raise _HttpError(405, "use GET for /healthz", "bad-method")
            return 200, {
                "status": "ok",
                "inflight": self.pool.inflight,
                "capacity": self.pool.capacity,
            }, "application/json"
        if path == "/metrics":
            if method != "GET":
                raise _HttpError(405, "use GET for /metrics", "bad-method")
            return (200, get_registry().to_prometheus(),
                    "text/plain; version=0.0.4")
        endpoint = path.lstrip("/")
        if method != "POST":
            raise _HttpError(405, f"use POST for /{endpoint}", "bad-method")
        response = await self._run_endpoint(endpoint, body)
        return 200, response, "application/json"

    async def _run_endpoint(self, endpoint: str, body: bytes) -> Any:
        loop = asyncio.get_running_loop()
        # Validation and the cache probe are cheap; run them on the
        # loop's default executor so a burst of malformed requests still
        # cannot occupy a solver worker.
        prepared = await loop.run_in_executor(None, prepare, endpoint, body)
        if prepared.response is not None:
            return prepared.response
        assert prepared.run is not None
        future = self.pool.submit(prepared.run)
        try:
            return await asyncio.wait_for(
                asyncio.wrap_future(future),
                timeout=self.config.request_timeout_s,
            )
        except asyncio.TimeoutError:
            metrics.counter("serve.timeout.count").inc()
            # The thread keeps running (threads cannot be killed); its
            # pool slot is released by the done-callback when it ends.
            raise RequestError(
                f"request exceeded {self.config.request_timeout_s:g}s",
                status=504, code="timeout",
            ) from None

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        metrics.counter("serve.requests.count").inc()
        status = 500
        try:
            try:
                method, target, body = await self._read_request(reader)
                status, payload, content_type = await self._dispatch(
                    method, target, body,
                )
            except RequestError as exc:
                status = exc.status
                payload, content_type = error_payload(exc), "application/json"
                metrics.counter("serve.errors.count").inc()
                metrics.counter(f"serve.errors.{exc.code}.count").inc()
            except _HttpError as exc:
                status = exc.status
                payload = error_payload(
                    RequestError(str(exc), status=exc.status, code=exc.code)
                )
                content_type = "application/json"
                metrics.counter("serve.errors.count").inc()
            except Exception as exc:  # last-resort 500: never drop a reply
                _log.error("serve.internal_error", error=repr(exc))
                payload = error_payload(
                    RequestError("internal error", status=500,
                                 code="internal")
                )
                content_type = "application/json"
                metrics.counter("serve.errors.count").inc()
            writer.write(self._response_bytes(status, payload, content_type))
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            with contextlib.suppress(ConnectionError):
                writer.close()
                await writer.wait_closed()
            metrics.counter(f"serve.responses.{status}.count").inc()


@contextlib.contextmanager
def running_service(
    config: Optional[ServeConfig] = None,
) -> Iterator[Tuple[DefenderService, str]]:
    """Run a service on a daemon thread; yield ``(service, base_url)``.

    The server is fully started (port bound and resolved) before the
    body runs, and stopped — pool drained — on exit.  This is the
    harness behind the tests, ``tools/serve_smoke.py`` and
    ``tools/bench_serve.py``.
    """
    service = DefenderService(config)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    async def _start() -> None:
        await service.start()
        started.set()

    def _run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(_start())
        loop.run_forever()

    thread = threading.Thread(target=_run, name="repro-serve-loop",
                              daemon=True)
    with metrics.timer("serve.startup.seconds"):
        thread.start()
        if not started.wait(timeout=10.0):
            raise RuntimeError("service failed to start within 10s")
    try:
        yield service, f"http://{service.config.host}:{service.port}"
    finally:
        stop = asyncio.run_coroutine_threadsafe(service.stop(), loop)
        stop.result(timeout=30.0)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10.0)
        loop.close()
