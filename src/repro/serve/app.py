"""The solve service itself: a stdlib-only asyncio HTTP/1.1 server.

No FastAPI, no uvicorn — the container bakes in the scientific stack and
nothing else, and the wire surface here is small enough that a strict
little HTTP/1.1 parser (``Content-Length`` bodies, ``Connection:
close``) is both sufficient and auditable.  The event loop only ever
parses, validates and serves cache hits; solver work runs on the
:class:`~repro.serve.workers.WorkerPool` behind an admission limit, with
a per-request deadline enforced by ``asyncio.wait_for``.

``GET /healthz`` reports liveness plus pool occupancy (workers, queue
depth, uptime); ``GET /metrics`` re-serializes the process-global
registry in Prometheus text format — the same bytes ``repro-defender
stats --format prom`` emits, so one scrape config covers CLI batch runs
and the service.  ``GET /slo`` renders the live SLO engine's burn-rate
report and ``GET /debug/events?n=`` the newest telemetry-bus events.

Every request runs under its own trace context
(:mod:`repro.obs.tracing`): an inbound W3C ``traceparent`` is honored
(else a trace id is minted), the response echoes ``X-Request-Id`` and
``traceparent``, and the same trace id lands in the ledger record, the
``run.start``/``run.end`` events, the span tree and the access-log line
(:mod:`repro.obs.access`) for that request.

:func:`running_service` runs the whole thing on a background thread and
yields the base URL — the harness used by the tests, the smoke check and
the load generator.
"""

from __future__ import annotations

import asyncio
import contextlib
import contextvars
import json
import threading
from email.utils import formatdate
from time import perf_counter, time
from typing import Any, Dict, Iterator, List, Optional, Tuple
from urllib.parse import parse_qs

from repro.obs import access as obs_access
from repro.obs import events as obs_events
from repro.obs import get_logger, metrics
from repro.obs import tracing
from repro.obs.metrics import get_registry
from repro.obs.slo import SloEngine, SloObjective

from repro.serve.routes import prepare
from repro.serve.schemas import RequestError, error_payload
from repro.serve.workers import WorkerPool

__all__ = ["ServeConfig", "DefenderService", "running_service"]

_log = get_logger("repro.serve.app")

_MAX_HEADER_BYTES = 64 * 1024
_DEFAULT_MAX_BODY = 8 * 1024 * 1024

_STATUS_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    422: "Unprocessable Entity", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ServeConfig:
    """Tunables for one :class:`DefenderService` instance.

    ``port=0`` binds an ephemeral port (the bound port is reported by
    :attr:`DefenderService.port` once started) — how the tests and the
    smoke target avoid colliding on a fixed port.
    """

    __slots__ = ("host", "port", "workers", "queue_limit",
                 "request_timeout_s", "max_body_bytes")

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        queue_limit: int = 8,
        request_timeout_s: float = 60.0,
        max_body_bytes: int = _DEFAULT_MAX_BODY,
    ) -> None:
        if request_timeout_s <= 0:
            raise RequestError(
                f"request_timeout_s must be positive; got {request_timeout_s}",
                status=500, code="bad-config",
            )
        self.host = host
        self.port = port
        self.workers = workers
        self.queue_limit = queue_limit
        self.request_timeout_s = request_timeout_s
        self.max_body_bytes = max_body_bytes


class _HttpError(Exception):
    """An HTTP-level defect (before routing): status + message."""

    def __init__(self, status: int, message: str, code: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code


class DefenderService:
    """The asyncio HTTP server bound to one worker pool.

    ``slo_objectives`` customizes the live :class:`SloEngine` behind
    ``GET /slo`` (the built-in availability + latency defaults
    otherwise — see :func:`repro.obs.slo.default_objectives`).
    """

    def __init__(self, config: Optional[ServeConfig] = None,
                 slo_objectives: Optional[List[SloObjective]] = None) -> None:
        self.config = config or ServeConfig()
        self.pool = WorkerPool(self.config.workers, self.config.queue_limit)
        self.slo = SloEngine(slo_objectives)
        self._server: Optional[asyncio.AbstractServer] = None
        self._started_at: Optional[float] = None

    # -- lifecycle --------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            return self.config.port
        return int(self._server.sockets[0].getsockname()[1])

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
        )
        self._started_at = time()
        _log.info("serve.started", host=self.config.host, port=self.port,
                  workers=self.config.workers,
                  queue_limit=self.config.queue_limit)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.pool.close()
        _log.info("serve.stopped")

    async def serve_forever(self) -> None:
        """Start (if needed) and block until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()

    # -- HTTP plumbing ----------------------------------------------------

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Dict[str, str], bytes]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError as exc:
            raise _HttpError(413, "request head too large",
                             "head-too-large") from exc
        except (asyncio.IncompleteReadError, ConnectionError) as exc:
            raise _HttpError(400, "truncated request", "truncated") from exc
        if len(head) > _MAX_HEADER_BYTES:
            raise _HttpError(413, "request head too large", "head-too-large")
        try:
            lines = head.decode("latin-1").split("\r\n")
            method, target, _version = lines[0].split(" ", 2)
        except (UnicodeDecodeError, ValueError) as exc:
            raise _HttpError(400, "malformed request line",
                             "bad-request-line") from exc
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        body = b""
        length_header = headers.get("content-length")
        if length_header is not None:
            try:
                length = int(length_header)
            except ValueError as exc:
                raise _HttpError(400, "invalid Content-Length",
                                 "bad-content-length") from exc
            if length < 0:
                raise _HttpError(400, "invalid Content-Length",
                                 "bad-content-length")
            if length > self.config.max_body_bytes:
                raise _HttpError(
                    413,
                    f"request body exceeds {self.config.max_body_bytes} bytes",
                    "body-too-large",
                )
            try:
                body = await reader.readexactly(length)
            except (asyncio.IncompleteReadError, ConnectionError) as exc:
                raise _HttpError(400, "truncated request body",
                                 "truncated") from exc
        return method.upper(), target, headers, body

    @staticmethod
    def _response_bytes(
        status: int,
        payload: Any,
        content_type: str = "application/json",
        trace: Optional[tracing.TraceContext] = None,
    ) -> bytes:
        """Serialize one response, stamping the correlation headers.

        Every response carries ``Date``; when a trace context is given
        (always, for requests that got as far as a response) it also
        carries ``X-Request-Id`` (the trace id — what a client quotes in
        a bug report) and the outbound W3C ``traceparent`` echo.
        """
        if isinstance(payload, (dict, list)):
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
        elif isinstance(payload, str):
            body = payload.encode("utf-8")
        else:
            body = payload
        reason = _STATUS_REASONS.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Date: {formatdate(usegmt=True)}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
        ]
        if trace is not None:
            lines.append(f"X-Request-Id: {trace.trace_id}")
            lines.append(f"traceparent: {trace.traceparent()}")
        lines.append("Connection: close")
        head = "\r\n".join(lines) + "\r\n\r\n"
        return head.encode("latin-1") + body

    # -- routing ----------------------------------------------------------

    async def _dispatch(self, method: str, target: str,
                        body: bytes) -> Tuple[int, Any, str]:
        path, _, query = target.partition("?")
        path = path.rstrip("/") or "/"
        if path == "/healthz":
            if method != "GET":
                raise _HttpError(405, "use GET for /healthz", "bad-method")
            uptime = 0.0 if self._started_at is None \
                else max(0.0, time() - self._started_at)
            return 200, {
                "status": "ok",
                "inflight": self.pool.inflight,
                "capacity": self.pool.capacity,
                "workers": self.pool.workers,
                "queue_limit": self.pool.queue_limit,
                "queue_depth": self.pool.queue_depth,
                "uptime_s": uptime,
            }, "application/json"
        if path == "/metrics":
            if method != "GET":
                raise _HttpError(405, "use GET for /metrics", "bad-method")
            return (200, get_registry().to_prometheus(),
                    "text/plain; version=0.0.4")
        if path == "/slo":
            if method != "GET":
                raise _HttpError(405, "use GET for /slo", "bad-method")
            return 200, self.slo.status_document(), "application/json"
        if path == "/debug/events":
            if method != "GET":
                raise _HttpError(405, "use GET for /debug/events",
                                 "bad-method")
            return (200, self._debug_events(query), "application/json")
        endpoint = path.lstrip("/")
        if method != "POST":
            raise _HttpError(405, f"use POST for /{endpoint}", "bad-method")
        response = await self._run_endpoint(endpoint, body)
        return 200, response, "application/json"

    @staticmethod
    def _debug_events(query: str) -> Dict[str, Any]:
        """The ``GET /debug/events?n=`` body: newest buffered events.

        The event bus must be enabled (``--events``) for the buffer to
        fill; with it off this returns an empty list, not an error — the
        endpoint is a debugging porthole, not a health signal.
        """
        count = 100
        params = parse_qs(query, keep_blank_values=True)
        if "n" in params:
            raw = params["n"][-1]
            try:
                count = int(raw)
            except ValueError:
                raise _HttpError(400, f"query param n must be an integer; "
                                      f"got {raw!r}", "bad-query") from None
            if count < 0:
                raise _HttpError(400, "query param n must be >= 0",
                                 "bad-query")
        events = obs_events.recent(count)
        return {"schema": obs_events.EVENT_SCHEMA, "count": len(events),
                "events": events}

    async def _run_endpoint(self, endpoint: str, body: bytes) -> Any:
        loop = asyncio.get_running_loop()
        # Validation and the cache probe are cheap; run them on the
        # loop's default executor so a burst of malformed requests still
        # cannot occupy a solver worker.  run_in_executor does not carry
        # contextvars across the hop by itself, so the request's trace
        # context is propagated explicitly (WorkerPool.submit does the
        # same for solver work).
        context = contextvars.copy_context()
        prepared = await loop.run_in_executor(
            None, context.run, prepare, endpoint, body)
        if prepared.response is not None:
            return prepared.response
        assert prepared.run is not None
        future = self.pool.submit(prepared.run)
        try:
            return await asyncio.wait_for(
                asyncio.wrap_future(future),
                timeout=self.config.request_timeout_s,
            )
        except asyncio.TimeoutError:
            metrics.counter("serve.timeout.count").inc()
            # The thread keeps running (threads cannot be killed); its
            # pool slot is released by the done-callback when it ends.
            raise RequestError(
                f"request exceeded {self.config.request_timeout_s:g}s",
                status=504, code="timeout",
            ) from None

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        started = perf_counter()
        metrics.counter("serve.requests.count").inc()
        status = 500
        method = ""
        endpoint = ""
        error_code: Optional[str] = None
        trace: Optional[tracing.TraceContext] = None
        payload: Any = None
        try:
            try:
                method, target, headers, body = await self._read_request(
                    reader)
                # Path form for the access log / SLO engine: "/solve",
                # trailing slash normalized away, bare "/" preserved.
                endpoint = "/" + target.split("?", 1)[0].strip("/")
                # One trace per request: continue the client's when it
                # sent a valid traceparent, mint one otherwise.  Every
                # span, ledger record, event and access line below here
                # carries this context's trace_id (the executor hops
                # copy the contextvars context).
                trace = tracing.start_trace(headers.get("traceparent"))
                status, payload, content_type = await self._dispatch(
                    method, target, body,
                )
            except RequestError as exc:
                status, error_code = exc.status, exc.code
                payload, content_type = error_payload(exc), "application/json"
                metrics.counter("serve.errors.count").inc()
                metrics.counter(f"serve.errors.{exc.code}.count").inc()
            except _HttpError as exc:
                status, error_code = exc.status, exc.code
                payload = error_payload(
                    RequestError(str(exc), status=exc.status, code=exc.code)
                )
                content_type = "application/json"
                metrics.counter("serve.errors.count").inc()
                metrics.counter(f"serve.errors.{exc.code}.count").inc()
            except Exception as exc:  # last-resort 500: never drop a reply
                _log.error("serve.internal_error", error=repr(exc))
                error_code = "internal"
                payload = error_payload(
                    RequestError("internal error", status=500,
                                 code="internal")
                )
                content_type = "application/json"
                metrics.counter("serve.errors.count").inc()
                metrics.counter("serve.errors.internal.count").inc()
            if trace is None:
                # The request died before its head parsed (truncated,
                # oversized); the error response still gets a request id.
                trace = tracing.start_trace(None)
            writer.write(self._response_bytes(status, payload, content_type,
                                              trace=trace))
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            with contextlib.suppress(ConnectionError):
                writer.close()
                await writer.wait_closed()
            metrics.counter(f"serve.responses.{status}.count").inc()
            cache_hit = payload.get("cache_hit") \
                if isinstance(payload, dict) else None
            self._finish_request(
                trace=trace, method=method, endpoint=endpoint, status=status,
                error_code=error_code,
                latency_s=perf_counter() - started,
                cache_hit=cache_hit if isinstance(cache_hit, bool) else None,
            )

    def _finish_request(
        self,
        trace: Optional[tracing.TraceContext],
        method: str,
        endpoint: str,
        status: int,
        error_code: Optional[str],
        latency_s: float,
        cache_hit: Optional[bool] = None,
    ) -> None:
        """Request epilogue: histogram, SLO feed, access line, event.

        Runs for every connection — including ones that died before a
        response could be written — so the operational record is
        complete.  The access line and ``serve.request`` event are
        single-boolean no-ops while their sinks are off (the obs cost
        contract); the SLO engine's in-memory append is always on.
        """
        metrics.histogram("serve.request.seconds").observe(latency_s)
        trace_id = None if trace is None else trace.trace_id
        self.slo.observe(endpoint=endpoint or "/", status=status,
                         latency_s=latency_s)
        obs_access.log_request(
            trace_id=trace_id, method=method, endpoint=endpoint or "/",
            status=status, error_code=error_code, latency_s=latency_s,
            cache_hit=cache_hit, inflight=self.pool.inflight,
        )
        obs_events.publish(
            "serve.request", trace_id=trace_id, method=method,
            endpoint=endpoint or "/", status=status, error_code=error_code,
            latency_s=latency_s,
        )


@contextlib.contextmanager
def running_service(
    config: Optional[ServeConfig] = None,
) -> Iterator[Tuple[DefenderService, str]]:
    """Run a service on a daemon thread; yield ``(service, base_url)``.

    The server is fully started (port bound and resolved) before the
    body runs, and stopped — pool drained — on exit.  This is the
    harness behind the tests, ``tools/serve_smoke.py`` and
    ``tools/bench_serve.py``.
    """
    service = DefenderService(config)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    async def _start() -> None:
        await service.start()
        started.set()

    def _run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(_start())
        loop.run_forever()

    thread = threading.Thread(target=_run, name="repro-serve-loop",
                              daemon=True)
    with metrics.timer("serve.startup.seconds"):
        thread.start()
        if not started.wait(timeout=10.0):
            raise RuntimeError("service failed to start within 10s")
    try:
        yield service, f"http://{service.config.host}:{service.port}"
    finally:
        stop = asyncio.run_coroutine_threadsafe(service.stop(), loop)
        stop.result(timeout=30.0)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10.0)
        loop.close()
