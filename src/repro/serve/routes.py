"""Endpoint registry for the solve service: validate, probe, run, record.

Each endpoint is an :class:`EndpointSpec` tying a URL name to a runner
over the library entry points, reusing the canonical result codecs so a
served response body is exactly the stored/replayed cache document
wrapped in the ``repro.serve/response/v1`` envelope.

The request lifecycle is deliberately ordered:

1. **validate** (:func:`repro.serve.schemas.parse_request`) — nothing
   invalid ever reaches a worker, mints a cache key or writes a ledger
   record;
2. **probe** the result cache with *exactly* the parameter dictionary
   the in-process solver would use — hits are decoded and served inline
   (no worker slot), recorded with ``cache_hit=True``;
3. **run** on a worker thread, wrapped in a ``serve.<endpoint>`` ledger
   run (which publishes ``run.start`` / ``run.end`` on the event bus)
   nested around the solver's own record.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Optional, Tuple

import repro.cache as result_cache
from repro.core.game import GameError, TupleGame
from repro.core.serialize import solve_result_to_json
from repro.equilibria import NoEquilibriumFoundError, solve_game
from repro.obs import get_logger, metrics, tracing
from repro.obs import ledger as obs_ledger
from repro.solvers.double_oracle import (
    double_oracle,
    double_oracle_result_to_json,
)
from repro.solvers.fictitious_play import (
    fictitious_play,
    fictitious_play_result_to_json,
)
from repro.solvers.ranges import (
    StrategyRanges,
    attacker_vertex_ranges,
    defender_edge_ranges,
)
from repro.serve.schemas import (
    RESPONSE_SCHEMA,
    RequestError,
    parse_request,
)

__all__ = ["ENDPOINTS", "EndpointSpec", "PreparedRequest", "prepare"]

_log = get_logger("repro.serve.routes")


def _solve_payload(game: TupleGame, params: Dict[str, Any]) -> Any:
    result = solve_game(game, seed=params["seed"],
                        allow_extensions=params["allow_extensions"])
    return json.loads(solve_result_to_json(result))


def _double_oracle_payload(game: TupleGame, params: Dict[str, Any]) -> Any:
    result = double_oracle(
        game,
        tolerance=params["tolerance"],
        max_iterations=params["max_iterations"],
        method=params["method"],
        lazy_attacker=params["lazy_attacker"],
    )
    return json.loads(double_oracle_result_to_json(result))


def _fictitious_play_payload(game: TupleGame, params: Dict[str, Any]) -> Any:
    result = fictitious_play(
        game,
        rounds=params["rounds"],
        method=params["method"],
        tolerance=params["tolerance"],
    )
    return json.loads(fictitious_play_result_to_json(result))


def _ranges_doc(ranges: StrategyRanges) -> Dict[str, Any]:
    ordered = sorted(ranges.ranges.items(),
                     key=lambda item: ranges.sort_key(item[0]))

    def as_json(key: Any) -> Any:
        return list(key) if isinstance(key, tuple) else key

    return {
        "value": ranges.value,
        "ranges": [[as_json(key), low, high] for key, (low, high) in ordered],
        "required": [as_json(key) for key in ranges.required()],
        "usable": [as_json(key) for key in ranges.usable()],
    }


def _ranges_payload(game: TupleGame, params: Dict[str, Any]) -> Any:
    payload: Dict[str, Any] = {}
    if params["side"] in ("attacker", "both"):
        payload["attacker"] = _ranges_doc(
            attacker_vertex_ranges(game, tuple_limit=params["tuple_limit"])
        )
    if params["side"] in ("defender", "both"):
        payload["defender"] = _ranges_doc(
            defender_edge_ranges(game, tuple_limit=params["tuple_limit"])
        )
    return payload


class EndpointSpec:
    """One POST endpoint: its runner plus its cache identity.

    ``cache_solver`` / ``cache_params`` mirror the probe the library
    entry point performs internally, letting the service answer repeat
    requests without occupying a worker.  Endpoints whose library calls
    do not cache (``/ranges``) set ``cache_solver=None``.
    """

    __slots__ = ("name", "runner", "cache_solver", "cache_params")

    def __init__(
        self,
        name: str,
        runner: Callable[[TupleGame, Dict[str, Any]], Any],
        cache_solver: Optional[str] = None,
        cache_params: Optional[
            Callable[[Dict[str, Any]], Dict[str, Any]]
        ] = None,
    ) -> None:
        self.name = name
        self.runner = runner
        self.cache_solver = cache_solver
        self.cache_params = cache_params


#: URL name (without the leading slash) -> spec.  The cache parameter
#: mappings must match the library entry points key-for-key or the fast
#: path would silently miss forever.
ENDPOINTS: Dict[str, EndpointSpec] = {
    "solve": EndpointSpec(
        "solve", _solve_payload,
        cache_solver="equilibria.solve",
        cache_params=lambda p: {
            "seed": p["seed"], "allow_extensions": p["allow_extensions"],
        },
    ),
    "double-oracle": EndpointSpec(
        "double-oracle", _double_oracle_payload,
        cache_solver="solvers.double_oracle",
        cache_params=lambda p: {
            "tolerance": p["tolerance"],
            "max_iterations": p["max_iterations"],
            "method": p["method"],
            "lazy_attacker": p["lazy_attacker"],
        },
    ),
    "fictitious-play": EndpointSpec(
        "fictitious-play", _fictitious_play_payload,
        cache_solver="solvers.fictitious_play",
        cache_params=lambda p: {
            "rounds": p["rounds"], "method": p["method"],
            "tolerance": p["tolerance"],
        },
    ),
    "ranges": EndpointSpec("ranges", _ranges_payload),
}


def _envelope(name: str, payload: Any, cache_hit: bool) -> Dict[str, Any]:
    return {
        "schema": RESPONSE_SCHEMA,
        "endpoint": name,
        "cache_hit": cache_hit,
        "result": payload,
    }


class PreparedRequest:
    """A validated request: either an inline response or worker work.

    ``response`` is set when the result cache answered (no worker slot
    needed); otherwise ``run`` is the thunk the app hands to the pool.
    """

    __slots__ = ("endpoint", "response", "run")

    def __init__(self, endpoint: str,
                 response: Optional[Dict[str, Any]] = None,
                 run: Optional[Callable[[], Dict[str, Any]]] = None) -> None:
        self.endpoint = endpoint
        self.response = response
        self.run = run


def _translate(endpoint: str, exc: GameError) -> RequestError:
    """Map library failures onto the structured error contract."""
    if isinstance(exc, RequestError):
        return exc
    if isinstance(exc, NoEquilibriumFoundError):
        return RequestError(str(exc), status=422, code="no-equilibrium")
    return RequestError(str(exc), status=422, code="game-error")


def prepare(endpoint: str, body: bytes) -> PreparedRequest:
    """Validate ``body`` for ``endpoint`` and decide how to answer it.

    Raises :class:`~repro.serve.schemas.RequestError` on anything
    invalid; returns a :class:`PreparedRequest` whose inline ``response``
    is populated on a cache hit (the request never occupies a worker)
    and whose ``run`` thunk is populated otherwise.  The thunk performs
    its own error translation, so the app only ever sees
    :class:`RequestError` out of either path.
    """
    spec = ENDPOINTS.get(endpoint)
    if spec is None:
        raise RequestError(f"unknown endpoint /{endpoint}",
                           status=404, code="not-found")
    with tracing.span("serve.prepare", endpoint=endpoint), \
            metrics.timer("serve.prepare.seconds"):
        game, params = parse_request(endpoint, body)

        if spec.cache_solver is not None and spec.cache_params is not None:
            probe = result_cache.lookup(
                game, spec.cache_solver, spec.cache_params(params)
            )
            if probe.hit:
                metrics.counter("serve.cache_hit.count").inc()
                with obs_ledger.run(f"serve.{endpoint}", game=game,
                                    cache_hit=True, **params):
                    payload = json.loads(probe.payload)
                _log.info("serve.cache_hit", endpoint=endpoint,
                          trace_id=tracing.current_trace_id())
                return PreparedRequest(
                    endpoint,
                    response=_envelope(endpoint, payload, cache_hit=True),
                )

    def run() -> Dict[str, Any]:
        try:
            with obs_ledger.run(f"serve.{endpoint}", game=game,
                                cache_hit=False, **params), \
                    tracing.span("serve.run", endpoint=endpoint), \
                    metrics.timer(f"serve.{endpoint}.seconds"):
                payload = spec.runner(game, params)
        except GameError as exc:
            raise _translate(endpoint, exc) from exc
        return _envelope(endpoint, payload, cache_hit=False)

    return PreparedRequest(endpoint, run=run)
