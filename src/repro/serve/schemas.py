"""Request validation for the solve service: schema first, worker later.

Serving arbitrary client games is exactly where the mixed-label ordering
and degenerate-parameter bug class bites (see the PR-4 fuzzing notes), so
the wire contract is strict: a request must be a JSON object of the form

.. code-block:: json

    {"game": { ...canonical game payload... }, "params": { ... }}

where ``game`` is the same canonical document
:func:`repro.core.serialize.game_to_json` emits (vertices, edges, ``k``,
``nu``, optional weighted-model discriminator) and ``params`` carries
only the endpoint's declared parameters.  Everything is validated here —
types, ranges, unknown keys — *before* the request can touch a worker or
mint a cache key, and every defect maps to one structured
:class:`RequestError` carrying an HTTP status and a stable machine
-readable ``code`` (the ``repro.serve/error/v1`` contract, see
``docs/serving.md``).
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.core.game import GameError
from repro.core.serialize import game_from_json
from repro.obs import metrics

__all__ = [
    "ERROR_SCHEMA",
    "RESPONSE_SCHEMA",
    "RequestError",
    "parse_request",
    "param_spec_for",
    "error_payload",
]

ERROR_SCHEMA = "repro.serve/error/v1"
RESPONSE_SCHEMA = "repro.serve/response/v1"


class RequestError(GameError):
    """A rejected request: HTTP status plus a stable machine code.

    ``status`` is the HTTP status the service responds with; ``code`` is
    a short stable identifier clients can dispatch on (``invalid-json``,
    ``invalid-game``, ``invalid-params``, ``no-equilibrium``,
    ``game-error``, ``timeout``, ``saturated``, ``shutting-down``).
    HTTP-level defects reuse the same envelope with their own codes
    (``bad-method``, ``bad-query``, ``bad-request-line``,
    ``bad-content-length``, ``head-too-large``, ``body-too-large``,
    ``truncated``, ``not-found``, ``internal``) — the ``error_code``
    field of the access log (``repro.obs/access/v1``) carries whichever
    code the response did.
    """

    def __init__(self, message: str, status: int = 400,
                 code: str = "invalid-request") -> None:
        super().__init__(message)
        self.status = status
        self.code = code


def error_payload(error: RequestError) -> Dict[str, Any]:
    """The structured JSON body of an error response."""
    return {
        "schema": ERROR_SCHEMA,
        "error": {
            "code": error.code,
            "status": error.status,
            "message": str(error),
        },
    }


# --------------------------------------------------------------------------
# parameter validators


def _int_param(default: int, minimum: Optional[int] = None,
               maximum: Optional[int] = None) -> Tuple[Any, Callable]:
    def check(name: str, value: Any) -> int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise RequestError(
                f"param {name!r} must be an integer; got {value!r}",
                code="invalid-params",
            )
        if minimum is not None and value < minimum:
            raise RequestError(
                f"param {name!r} must be >= {minimum}; got {value}",
                code="invalid-params",
            )
        if maximum is not None and value > maximum:
            raise RequestError(
                f"param {name!r} must be <= {maximum}; got {value}",
                code="invalid-params",
            )
        return value
    return default, check


def _bool_param(default: bool) -> Tuple[Any, Callable]:
    def check(name: str, value: Any) -> bool:
        if not isinstance(value, bool):
            raise RequestError(
                f"param {name!r} must be a boolean; got {value!r}",
                code="invalid-params",
            )
        return value
    return default, check


def _positive_float_param(default: float) -> Tuple[Any, Callable]:
    def check(name: str, value: Any) -> float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise RequestError(
                f"param {name!r} must be a number; got {value!r}",
                code="invalid-params",
            )
        if not value > 0:
            raise RequestError(
                f"param {name!r} must be positive; got {value}",
                code="invalid-params",
            )
        return float(value)
    return default, check


def _optional_positive_float_param() -> Tuple[Any, Callable]:
    _, positive = _positive_float_param(1.0)

    def check(name: str, value: Any) -> Optional[float]:
        if value is None:
            return None
        return positive(name, value)
    return None, check


def _choice_param(choices: Tuple[str, ...], default: str) -> Tuple[Any, Callable]:
    def check(name: str, value: Any) -> str:
        if value not in choices:
            raise RequestError(
                f"param {name!r} must be one of {sorted(choices)}; "
                f"got {value!r}",
                code="invalid-params",
            )
        return str(value)
    return default, check


_COVERAGE_METHODS = ("auto", "exhaustive", "bnb", "greedy")

#: Per-endpoint parameter schema: name -> (default, validator).  The
#: names and defaults mirror the library entry points exactly, so a
#: request's cache key equals the key an in-process call would mint.
_PARAM_SPECS: Dict[str, Dict[str, Tuple[Any, Callable]]] = {
    "solve": {
        "seed": _int_param(0, minimum=0),
        "allow_extensions": _bool_param(True),
    },
    "double-oracle": {
        "tolerance": _positive_float_param(1e-9),
        "max_iterations": _int_param(200, minimum=1, maximum=100_000),
        "method": _choice_param(_COVERAGE_METHODS, "auto"),
        "lazy_attacker": _bool_param(False),
    },
    "fictitious-play": {
        "rounds": _int_param(200, minimum=1, maximum=1_000_000),
        "method": _choice_param(_COVERAGE_METHODS, "auto"),
        "tolerance": _optional_positive_float_param(),
    },
    "ranges": {
        "side": _choice_param(("attacker", "defender", "both"), "both"),
        "tuple_limit": _int_param(100_000, minimum=1),
    },
}


def param_spec_for(endpoint: str) -> Mapping[str, Tuple[Any, Callable]]:
    """The (default, validator) table for one endpoint name."""
    return _PARAM_SPECS[endpoint]


def _validate_params(endpoint: str, raw: Any) -> Dict[str, Any]:
    spec = param_spec_for(endpoint)
    if raw is None:
        raw = {}
    if not isinstance(raw, dict):
        raise RequestError(
            f"'params' must be a JSON object; got {type(raw).__name__}",
            code="invalid-params",
        )
    unknown = sorted(set(raw) - set(spec))
    if unknown:
        raise RequestError(
            f"unknown params for /{endpoint}: {', '.join(unknown)} "
            f"(allowed: {', '.join(sorted(spec))})",
            code="invalid-params",
        )
    params: Dict[str, Any] = {}
    for name, (default, check) in spec.items():
        params[name] = check(name, raw[name]) if name in raw else default
    return params


def parse_request(endpoint: str, body: bytes) -> Tuple[Any, Dict[str, Any]]:
    """Validate one request body into ``(game, params)``.

    Raises :class:`RequestError` — never a bare exception — on malformed
    JSON (``invalid-json``), a body that is not the documented envelope
    (``invalid-request``), a game payload the serializer rejects
    (``invalid-game``) or parameters outside the endpoint's schema
    (``invalid-params``).
    """
    with metrics.timer("serve.validate.seconds"):
        try:
            document = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RequestError(f"request body is not valid JSON: {exc}",
                               code="invalid-json") from exc
        if not isinstance(document, dict):
            raise RequestError("request body must be a JSON object",
                               code="invalid-request")
        unknown = sorted(set(document) - {"game", "params"})
        if unknown:
            raise RequestError(
                f"unknown request keys: {', '.join(unknown)} "
                "(expected 'game' and optional 'params')",
                code="invalid-request",
            )
        if "game" not in document:
            raise RequestError("request is missing the 'game' payload",
                               code="invalid-request")
        if not isinstance(document["game"], dict):
            raise RequestError("'game' must be a JSON object",
                               code="invalid-game")
        try:
            # Round-tripping through the canonical serializer
            # re-validates everything: labels, edge structure, k/nu
            # ranges, weights.
            game = game_from_json(json.dumps(document["game"]))
        except RequestError:
            raise
        except GameError as exc:
            raise RequestError(f"invalid game payload: {exc}",
                               code="invalid-game") from exc
        params = _validate_params(endpoint, document.get("params"))
        return game, params
