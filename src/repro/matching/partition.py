"""Finding the ``IS``/``VC`` partitions of Theorem 2.2 / Corollary 4.11.

A graph admits a (k-)matching Nash equilibrium iff its vertices can be
split into an independent set ``IS`` and ``VC = V \\ IS`` such that ``VC``
expands into ``IS`` (every ``X ⊆ VC`` has ``|Neigh(X) ∩ IS| ≥ |X|`` — see
DESIGN.md §2 for why the "into" form is the operative one).  This module
hosts the three strategies the library uses to find such partitions:

* :func:`bipartite_partition` — constructive and always succeeds on
  bipartite graphs: take a König minimum vertex cover as ``VC`` (the
  maximum matching saturates it into the complement);
* :func:`exact_partition_search` — exhaustive over independent sets, for
  small general graphs (complete existence oracle);
* :func:`greedy_partition` — maximal-independent-set restarts for larger
  general graphs (sound but incomplete).

A structural fact worth noting (proved in DESIGN.md §2 and property-tested):
*every* valid partition has ``|IS| = n − ν(G)``, the minimum-edge-cover
size, so downstream quantities such as the defender's gain ``k·ν/|IS|`` do
not depend on which valid partition is chosen.
"""

from __future__ import annotations

import random
from typing import FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.graphs.core import Graph, Vertex
from repro.graphs.properties import bipartition, is_independent_set
from repro.matching.hall import is_expander_into
from repro.matching.konig import konig_vertex_cover

__all__ = [
    "Partition",
    "is_valid_partition",
    "bipartite_partition",
    "exact_partition_search",
    "greedy_partition",
    "find_partition",
]

Partition = Tuple[FrozenSet[Vertex], FrozenSet[Vertex]]
"""A ``(IS, VC)`` pair with ``VC = V \\ IS``."""

_EXACT_SEARCH_LIMIT = 24
"""Largest vertex count for which exhaustive partition search is attempted."""


def is_valid_partition(graph: Graph, independent: Iterable[Vertex]) -> bool:
    """Check that ``independent`` induces a partition satisfying C4.11.

    Conditions: ``IS`` is an independent set and ``VC = V \\ IS`` expands
    into ``IS`` (Hall).  An empty ``IS`` is never valid (the game needs a
    non-empty attacker support), and ``IS = V`` is valid only for edgeless
    graphs, which the model excludes anyway.
    """
    is_set = frozenset(independent)
    if not is_set:
        return False
    if not is_independent_set(graph, is_set):
        return False
    vc = graph.vertices() - is_set
    return bool(is_expander_into(graph, vc, is_set))


def bipartite_partition(graph: Graph) -> Partition:
    """The canonical partition for bipartite graphs (Theorem 5.1).

    ``VC`` is a König minimum vertex cover; ``IS`` its complement.  The
    maximum matching underlying König's theorem saturates ``VC`` with
    partners in ``IS``, so the expander condition holds by construction.
    """
    result = konig_vertex_cover(graph)
    return result.independent_set, result.cover


def exact_partition_search(graph: Graph) -> Optional[Partition]:
    """Exhaustively search for a valid partition (small graphs only).

    Enumerates subsets as candidate independent sets, largest first so the
    partition found yields the smallest ``VC``.  Returns ``None`` when no
    valid partition exists — this is a complete existence oracle, used by
    tests as ground truth for C4.11.  Raises ``ValueError`` above
    ``_EXACT_SEARCH_LIMIT`` vertices.
    """
    if graph.n > _EXACT_SEARCH_LIMIT:
        raise ValueError(
            f"exact search is limited to {_EXACT_SEARCH_LIMIT} vertices; "
            f"got {graph.n} (use greedy_partition or bipartite_partition)"
        )
    vertices = graph.sorted_vertices()
    n = len(vertices)
    candidates: List[FrozenSet[Vertex]] = []
    for mask in range(1, 1 << n):
        subset = frozenset(vertices[i] for i in range(n) if mask >> i & 1)
        if is_independent_set(graph, subset):
            candidates.append(subset)
    candidates.sort(key=len, reverse=True)
    for subset in candidates:
        vc = graph.vertices() - subset
        if is_expander_into(graph, vc, subset):
            return subset, frozenset(vc)
    return None


def _greedy_independent_set(graph: Graph, rng: random.Random) -> FrozenSet[Vertex]:
    """A maximal independent set grown in randomized low-degree-first order."""
    order = graph.sorted_vertices()
    order.sort(key=lambda v: (graph.degree(v), rng.random()))
    chosen: Set[Vertex] = set()
    blocked: Set[Vertex] = set()
    for v in order:
        if v not in blocked:
            chosen.add(v)
            blocked.add(v)
            blocked.update(graph.neighbors(v))
    return frozenset(chosen)


def greedy_partition(
    graph: Graph, attempts: int = 32, seed: int = 0
) -> Optional[Partition]:
    """Randomized-restart heuristic partition search for general graphs.

    Sound (any partition returned is valid) but incomplete: ``None`` means
    "not found", not "does not exist".  Deterministic for a given seed.
    """
    rng = random.Random(seed)
    for _ in range(max(1, attempts)):
        independent = _greedy_independent_set(graph, rng)
        if is_valid_partition(graph, independent):
            vc = graph.vertices() - independent
            return independent, frozenset(vc)
    return None


def find_partition(graph: Graph, seed: int = 0) -> Optional[Partition]:
    """Best-effort partition finder used by the high-level solvers.

    Strategy: bipartite graphs constructively (always succeeds); otherwise
    exhaustive search when small enough, falling back to greedy restarts.
    """
    if bipartition(graph) is not None:
        return bipartite_partition(graph)
    if graph.n <= _EXACT_SEARCH_LIMIT:
        return exact_partition_search(graph)
    return greedy_partition(graph, seed=seed)
