"""Hall-condition and expander checks.

Theorem 2.2 (via [MPPS05]) and Corollary 4.11 characterize graphs with
(k-)matching Nash equilibria through an expander condition on the vertex
cover side of a partition: ``G`` is a ``VC``-expander when every
``X ⊆ VC`` satisfies ``|X| ≤ |Neigh_G(X)|``.

Checking such conditions naively is exponential, but Hall's theorem turns
each of them into a single maximum-matching computation on an auxiliary
bipartite graph: the condition holds iff the left class can be saturated.
When it fails, the set of left vertices reachable by alternating paths from
any unmatched left vertex is a concrete *violator* ``X`` with
``|Neigh(X)| < |X|`` — returned to the caller as a certificate.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Optional, Set

from repro.graphs.core import Graph, Vertex, vertex_sort_key
from repro.matching.hopcroft_karp import MatchingResult, hopcroft_karp

__all__ = [
    "HallResult",
    "check_hall",
    "is_expander_into",
    "is_expander",
    "find_saturating_matching",
]


class HallResult:
    """Outcome of a Hall-condition check.

    Attributes
    ----------
    holds:
        True when every subset of the left class has enough neighbors.
    matching:
        A maximum matching of the auxiliary bipartite graph; saturating
        exactly when ``holds``.
    violator:
        When the condition fails, a set ``X`` of left vertices with
        ``|N(X)| < |X|``; ``None`` otherwise.
    """

    __slots__ = ("holds", "matching", "violator")

    def __init__(
        self,
        holds: bool,
        matching: MatchingResult,
        violator: Optional[FrozenSet[Hashable]],
    ) -> None:
        self.holds = holds
        self.matching = matching
        self.violator = violator

    def __bool__(self) -> bool:
        return self.holds

    def __repr__(self) -> str:
        return f"HallResult(holds={self.holds}, matching_size={self.matching.size})"


def _alternating_reachable(
    start: Hashable,
    adjacency: Mapping[Hashable, Iterable[Hashable]],
    match_right: Mapping[Hashable, Hashable],
) -> FrozenSet[Hashable]:
    """Left vertices reachable from ``start`` by alternating paths.

    Paths alternate unmatched (left->right) and matched (right->left)
    edges.  With a *maximum* matching and ``start`` unmatched, the returned
    set is a Hall violator.
    """
    seen_left: Set[Hashable] = {start}
    seen_right: Set[Hashable] = set()
    queue: deque = deque([start])
    while queue:
        v = queue.popleft()
        for r in adjacency.get(v, ()):
            if r in seen_right:
                continue
            seen_right.add(r)
            partner = match_right.get(r)
            if partner is not None and partner not in seen_left:
                seen_left.add(partner)
                queue.append(partner)
    return frozenset(seen_left)


def check_hall(
    left: Iterable[Hashable],
    adjacency: Mapping[Hashable, Iterable[Hashable]],
) -> HallResult:
    """Decide Hall's condition for a bipartite adjacency structure.

    Returns a :class:`HallResult` carrying the maximum matching and, on
    failure, a violating subset of the left class.
    """
    left_order: List[Hashable] = list(left)
    matching = hopcroft_karp(left_order, adjacency)
    unmatched = matching.unmatched_left(left_order)
    if not unmatched:
        return HallResult(True, matching, None)
    violator = _alternating_reachable(unmatched[0], adjacency, matching.pairs_right)
    return HallResult(False, matching, violator)


def find_saturating_matching(
    left: Iterable[Hashable],
    adjacency: Mapping[Hashable, Iterable[Hashable]],
) -> Optional[MatchingResult]:
    """A matching saturating ``left`` if one exists, else ``None``."""
    result = check_hall(left, adjacency)
    return result.matching if result.holds else None


def _restricted_adjacency(
    graph: Graph, source: Iterable[Vertex], target: Optional[Set[Vertex]]
) -> Dict[Vertex, List[Vertex]]:
    """Adjacency from ``source`` vertices to their graph neighbors,
    optionally intersected with ``target``.  Deterministic ordering."""
    adjacency: Dict[Vertex, List[Vertex]] = {}
    for v in source:
        neighbors = graph.neighbors(v)
        if target is not None:
            chosen = [u for u in neighbors if u in target]
        else:
            chosen = list(neighbors)
        adjacency[v] = sorted(chosen, key=vertex_sort_key)
    return adjacency


def is_expander_into(
    graph: Graph, source: Iterable[Vertex], target: Iterable[Vertex]
) -> HallResult:
    """Check ``|X| ≤ |Neigh_G(X) ∩ target|`` for every ``X ⊆ source``.

    This is the effective condition used by the matching-NE construction:
    the cover side ``VC`` must be matchable *into* the independent side
    ``IS`` (see DESIGN.md §2).  Decided exactly via Hall's theorem.
    """
    target_set = set(target)
    source_list = sorted(set(source), key=vertex_sort_key)
    adjacency = _restricted_adjacency(graph, source_list, target_set)
    return check_hall(source_list, adjacency)


def is_expander(graph: Graph, source: Iterable[Vertex]) -> HallResult:
    """Check the paper's literal ``S``-expander condition.

    §2.1: ``G`` is an ``S``-expander when every ``X ⊆ S`` satisfies
    ``|X| ≤ |Neigh_G(X)|`` (neighbors taken in the whole graph).  Hall's
    theorem applies verbatim to the bipartite *incidence* structure
    ``S × V(G)``, so this too is one matching computation, not a subset
    enumeration.
    """
    source_list = sorted(set(source), key=vertex_sort_key)
    adjacency = _restricted_adjacency(graph, source_list, None)
    return check_hall(source_list, adjacency)
