"""Edmonds' blossom algorithm: maximum matching in *general* graphs.

Pure Nash equilibria of the Tuple model exist exactly when the graph has an
edge cover of size ``k`` (Theorem 3.1), and by Gallai's identity the minimum
edge cover of any graph has size ``n − ν(G)`` where ``ν(G)`` is the maximum
matching number.  The paper's graphs are arbitrary (not only bipartite), so
deciding pure-NE existence in polynomial time (Corollary 3.2) needs a
general maximum-matching routine — this module.

The implementation is the classical ``O(n³)`` blossom-shrinking algorithm:
grow alternating BFS trees from free vertices; a cross edge between two
even-level vertices in the same tree reveals an odd cycle (*blossom*) that
is contracted by re-basing its vertices, while a cross edge to another tree
yields an augmenting path.

Vertices of the input :class:`~repro.graphs.core.Graph` are mapped to dense
integer indices internally and mapped back on output.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Set

from repro.graphs.core import Edge, Graph, Vertex, canonical_edge
from repro.obs import metrics, tracing

__all__ = ["maximum_matching", "matching_number"]


class _BlossomState:
    """Mutable working state for one augmenting-path search."""

    __slots__ = ("n", "adj", "match", "parent", "base")

    def __init__(self, n: int, adj: List[List[int]]) -> None:
        self.n = n
        self.adj = adj
        self.match: List[int] = [-1] * n
        self.parent: List[int] = [-1] * n
        self.base: List[int] = list(range(n))

    def _lca(self, a: int, b: int) -> int:
        """Lowest common ancestor of ``a`` and ``b`` in the alternating
        tree, working over blossom bases."""
        used = [False] * self.n
        v = a
        while True:
            v = self.base[v]
            used[v] = True
            if self.match[v] == -1:
                break
            v = self.parent[self.match[v]]
        v = b
        while True:
            v = self.base[v]
            if used[v]:
                return v
            v = self.parent[self.match[v]]

    def _mark_path(
        self, v: int, b: int, child: int, in_blossom: List[bool]
    ) -> None:
        """Mark blossom vertices on the tree path from ``v`` down to base
        ``b`` and re-hang parents so the contracted blossom stays even."""
        while self.base[v] != b:
            in_blossom[self.base[v]] = True
            in_blossom[self.base[self.match[v]]] = True
            self.parent[v] = child
            child = self.match[v]
            v = self.parent[self.match[v]]

    def find_augmenting_path(self, root: int) -> int:
        """BFS from free vertex ``root``; returns the free vertex ending an
        augmenting path, or ``-1`` when none exists."""
        used = [False] * self.n
        self.parent = [-1] * self.n
        self.base = list(range(self.n))
        used[root] = True
        queue: deque = deque([root])
        while queue:
            v = queue.popleft()
            for to in self.adj[v]:
                if self.base[v] == self.base[to] or self.match[v] == to:
                    continue
                if to == root or (
                    self.match[to] != -1 and self.parent[self.match[to]] != -1
                ):
                    # ``to`` is an even (outer) vertex in the same tree:
                    # contract the blossom closed by edge (v, to).
                    current_base = self._lca(v, to)
                    in_blossom = [False] * self.n
                    self._mark_path(v, current_base, to, in_blossom)
                    self._mark_path(to, current_base, v, in_blossom)
                    for i in range(self.n):
                        if in_blossom[self.base[i]]:
                            self.base[i] = current_base
                            if not used[i]:
                                used[i] = True
                                queue.append(i)
                elif self.parent[to] == -1:
                    self.parent[to] = v
                    if self.match[to] == -1:
                        return to
                    if not used[self.match[to]]:
                        used[self.match[to]] = True
                        queue.append(self.match[to])
        return -1

    def augment(self, finish: int) -> None:
        """Flip matched/unmatched edges along the found path ending at the
        free vertex ``finish``."""
        v = finish
        while v != -1:
            pv = self.parent[v]
            ppv = self.match[pv]
            self.match[v] = pv
            self.match[pv] = v
            v = ppv


def maximum_matching(graph: Graph) -> FrozenSet[Edge]:
    """Compute a maximum-cardinality matching of ``graph``.

    Returns the matching as a frozenset of canonical edges.  Deterministic:
    vertices are processed in the graph's canonical order.

    Examples
    --------
    >>> g = Graph([(1, 2), (2, 3), (3, 1)])  # triangle
    >>> len(maximum_matching(g))
    1
    """
    order = graph.sorted_vertices()
    index: Dict[Vertex, int] = {v: i for i, v in enumerate(order)}
    n = len(order)
    adj: List[List[int]] = [[] for _ in range(n)]
    for u, v in graph.sorted_edges():
        adj[index[u]].append(index[v])
        adj[index[v]].append(index[u])

    state = _BlossomState(n, adj)

    searches = 0
    augmentations = 0
    with tracing.span("blossom.matching", n=n, m=graph.m), \
            metrics.timer("blossom.matching.seconds"):
        # Greedy warm start halves the number of expensive BFS phases.
        for u, v in graph.sorted_edges():
            iu, iv = index[u], index[v]
            if state.match[iu] == -1 and state.match[iv] == -1:
                state.match[iu] = iv
                state.match[iv] = iu

        for v in range(n):
            if state.match[v] == -1:
                searches += 1
                finish = state.find_augmenting_path(v)
                if finish != -1:
                    augmentations += 1
                    state.augment(finish)
    metrics.counter("blossom.matchings.count").inc()
    metrics.counter("blossom.searches.count").inc(searches)
    metrics.counter("blossom.augmentations.count").inc(augmentations)

    matched: Set[Edge] = set()
    for i in range(n):
        j = state.match[i]
        if j != -1 and i < j:
            matched.add(canonical_edge(order[i], order[j]))
    return frozenset(matched)


def matching_number(graph: Graph) -> int:
    """``ν(G)``, the maximum matching cardinality."""
    return len(maximum_matching(graph))
