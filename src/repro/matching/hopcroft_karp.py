"""Hopcroft–Karp maximum bipartite matching, implemented from scratch.

This is the workhorse behind most of the library's polynomial-time results:

* deciding the Hall / ``VC``-expander condition of Theorem 2.2 and
  Corollary 4.11 (a set expands iff a saturating matching exists);
* König minimum vertex covers for bipartite graphs (Theorem 5.1);
* matching ``VC`` into ``IS`` inside Algorithm ``A`` of the Edge model.

The implementation follows the classical description: repeat (BFS layering
from free left vertices, then a phase of vertex-disjoint augmenting DFS
walks) until no augmenting path exists.  Runtime ``O(m · sqrt(n))`` — the
bound quoted by the paper in Theorem 5.1.

The solver works on an explicit bipartition rather than a
:class:`~repro.graphs.core.Graph` so it can also run on auxiliary bipartite
structures (e.g. the Hall-condition graph between ``VC`` and ``IS``) that are
not themselves simple graphs of the game.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Set

from repro.graphs.core import vertex_sort_key
from repro.obs import metrics, tracing

__all__ = ["MatchingResult", "hopcroft_karp", "maximum_bipartite_matching"]

_INF = float("inf")


class MatchingResult:
    """Outcome of a bipartite maximum-matching computation.

    Attributes
    ----------
    pairs:
        Mapping from matched left vertices to their right partners.
    pairs_right:
        The inverse mapping, right vertex -> left vertex.
    """

    __slots__ = ("pairs", "pairs_right")

    def __init__(self, pairs: Dict[Hashable, Hashable]) -> None:
        self.pairs: Dict[Hashable, Hashable] = dict(pairs)
        self.pairs_right: Dict[Hashable, Hashable] = {r: l for l, r in pairs.items()}

    @property
    def size(self) -> int:
        """Cardinality of the matching."""
        return len(self.pairs)

    def is_saturating(self, left: Iterable[Hashable]) -> bool:
        """True when every vertex of ``left`` is matched."""
        return all(v in self.pairs for v in left)

    def unmatched_left(self, left: Iterable[Hashable]) -> List[Hashable]:
        """Left vertices without a partner, preserving input order."""
        return [v for v in left if v not in self.pairs]

    def __repr__(self) -> str:
        return f"MatchingResult(size={self.size})"


def hopcroft_karp(
    left: Iterable[Hashable],
    adjacency: Mapping[Hashable, Iterable[Hashable]],
) -> MatchingResult:
    """Compute a maximum matching of a bipartite graph.

    Parameters
    ----------
    left:
        The left vertex class.  Iteration order fixes tie-breaking, so pass
        a deterministically ordered iterable for reproducible output.
    adjacency:
        For each left vertex, its right-side neighbors.  Left vertices
        missing from the mapping are treated as having no neighbors.

    Returns
    -------
    MatchingResult
        A maximum matching; deterministic given deterministic input order.
    """
    left_order: List[Hashable] = list(left)
    adj: Dict[Hashable, List[Hashable]] = {
        v: list(adjacency.get(v, ())) for v in left_order
    }

    match_left: Dict[Hashable, Hashable] = {}
    match_right: Dict[Hashable, Hashable] = {}
    dist: Dict[Optional[Hashable], float] = {}

    def bfs() -> bool:
        """Layer the graph from free left vertices; True if a free right
        vertex is reachable (i.e. an augmenting path exists)."""
        queue: deque = deque()
        for v in left_order:
            if v not in match_left:
                dist[v] = 0
                queue.append(v)
            else:
                dist[v] = _INF
        reachable_free = _INF
        while queue:
            v = queue.popleft()
            if dist[v] >= reachable_free:
                continue
            for r in adj[v]:
                partner = match_right.get(r)
                if partner is None:
                    # Free right vertex ends an augmenting path at the
                    # next layer.
                    if reachable_free == _INF:
                        reachable_free = dist[v] + 1
                elif dist.get(partner, _INF) == _INF:
                    dist[partner] = dist[v] + 1
                    queue.append(partner)
        return reachable_free != _INF

    def try_augment(root: Hashable) -> bool:
        """Search for an augmenting path from free left vertex ``root``
        along the BFS layering, flipping the matching if one is found.

        Implemented iteratively (explicit stack of frame iterators) so that
        augmenting paths of length ``Θ(n)`` — routine on path graphs — do
        not overflow Python's recursion limit.
        """
        stack: List[Hashable] = [root]
        iters: List[Iterator[Hashable]] = [iter(adj[root])]
        rights: List[Optional[Hashable]] = [None]
        while stack:
            v = stack[-1]
            descended = False
            for r in iters[-1]:
                partner = match_right.get(r)
                if partner is None:
                    # Free right vertex: flip the whole root..r path.
                    rights[-1] = r
                    for lv, rv in zip(stack, rights):
                        match_left[lv] = rv
                        match_right[rv] = lv
                    return True
                if dist.get(partner, _INF) == dist[v] + 1:
                    rights[-1] = r
                    stack.append(partner)
                    iters.append(iter(adj[partner]))
                    rights.append(None)
                    descended = True
                    break
            if not descended:
                dist[v] = _INF
                stack.pop()
                iters.pop()
                rights.pop()
        return False

    phases = 0
    augmentations = 0
    with tracing.span("hopcroft_karp.matching", left=len(left_order)), \
            metrics.timer("hopcroft_karp.matching.seconds"):
        while bfs():
            phases += 1
            for v in left_order:
                if v not in match_left:
                    if try_augment(v):
                        augmentations += 1
    metrics.counter("hopcroft_karp.matchings.count").inc()
    metrics.counter("hopcroft_karp.phases.count").inc(phases)
    metrics.counter("hopcroft_karp.augmentations.count").inc(augmentations)

    return MatchingResult(match_left)


def maximum_bipartite_matching(
    left: Iterable[Hashable],
    right: Iterable[Hashable],
    edges: Iterable[tuple],
) -> MatchingResult:
    """Convenience wrapper taking an explicit edge list.

    ``edges`` must contain ``(l, r)`` pairs with ``l`` in ``left`` and ``r``
    in ``right``; pairs violating the bipartition raise ``ValueError``.
    """
    left_set: Set[Hashable] = set(left)
    right_set: Set[Hashable] = set(right)
    adjacency: Dict[Hashable, List[Hashable]] = {v: [] for v in left_set}
    for l, r in edges:
        if l not in left_set or r not in right_set:
            raise ValueError(f"edge ({l!r}, {r!r}) does not respect the bipartition")
        adjacency[l].append(r)
    return hopcroft_karp(sorted(left_set, key=vertex_sort_key), adjacency)
