"""König's theorem: minimum vertex covers of bipartite graphs.

Theorem 5.1 applies Algorithm ``A_tuple`` to bipartite graphs with ``VC`` a
*minimum* vertex cover and ``IS = V \\ VC`` the complementary independent
set.  König's theorem makes that cover computable from one Hopcroft–Karp
run: with ``Z`` the set of vertices reachable by alternating paths from the
unmatched left vertices, ``(L \\ Z) ∪ (R ∩ Z)`` is a vertex cover of size
equal to the maximum matching, hence minimum.

The same run certifies the C4.11 characterization for bipartite graphs: the
matching it produces saturates ``VC`` into ``IS`` (DESIGN.md §2), which is
exactly what Algorithm ``A`` needs.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Set

from repro.graphs.core import Graph, GraphError, Vertex, vertex_sort_key
from repro.graphs.properties import bipartition
from repro.matching.hopcroft_karp import MatchingResult, hopcroft_karp

__all__ = ["konig_vertex_cover", "minimum_vertex_cover_bipartite", "KonigResult"]


class KonigResult:
    """Minimum vertex cover of a bipartite graph plus its certificates.

    Attributes
    ----------
    cover:
        A minimum vertex cover (``|cover|`` equals the matching number).
    independent_set:
        Its complement, a maximum independent set.
    matching:
        The maximum matching witnessing minimality, as a
        :class:`~repro.matching.hopcroft_karp.MatchingResult` with the
        graph's left class on the left.
    left, right:
        The bipartition used.
    """

    __slots__ = ("cover", "independent_set", "matching", "left", "right")

    def __init__(
        self,
        cover: FrozenSet[Vertex],
        independent_set: FrozenSet[Vertex],
        matching: MatchingResult,
        left: FrozenSet[Vertex],
        right: FrozenSet[Vertex],
    ) -> None:
        self.cover = cover
        self.independent_set = independent_set
        self.matching = matching
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return f"KonigResult(cover_size={len(self.cover)})"


def konig_vertex_cover(graph: Graph) -> KonigResult:
    """Compute a minimum vertex cover of a bipartite graph.

    Raises :class:`~repro.graphs.core.GraphError` when the graph is not
    bipartite.  Deterministic for a given graph.
    """
    parts = bipartition(graph)
    if parts is None:
        raise GraphError("König's theorem requires a bipartite graph")
    left, right = parts

    left_order = sorted(left, key=vertex_sort_key)
    adjacency: Dict[Vertex, List[Vertex]] = {
        v: sorted(graph.neighbors(v), key=vertex_sort_key) for v in left_order
    }
    matching = hopcroft_karp(left_order, adjacency)

    # Alternating BFS from unmatched left vertices.
    reachable_left: Set[Vertex] = set(matching.unmatched_left(left_order))
    reachable_right: Set[Vertex] = set()
    queue: deque = deque(reachable_left)
    while queue:
        v = queue.popleft()
        for r in adjacency[v]:
            if r in reachable_right:
                continue
            reachable_right.add(r)
            partner = matching.pairs_right.get(r)
            if partner is not None and partner not in reachable_left:
                reachable_left.add(partner)
                queue.append(partner)

    cover = frozenset((left - reachable_left) | reachable_right)
    independent = frozenset(graph.vertices() - cover)
    return KonigResult(cover, independent, matching, left, right)


def minimum_vertex_cover_bipartite(graph: Graph) -> FrozenSet[Vertex]:
    """Just the cover from :func:`konig_vertex_cover`."""
    return konig_vertex_cover(graph).cover
