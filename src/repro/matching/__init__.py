"""Matching engine: Hopcroft–Karp, blossom, König, Gallai, Hall.

These classical algorithms are the polynomial-time machinery behind the
paper's complexity claims (Corollary 3.2, Theorems 4.13 and 5.1); all are
implemented from scratch in this package.
"""

from repro.matching.blossom import matching_number, maximum_matching
from repro.matching.covers import (
    extend_matching_to_edge_cover,
    has_edge_cover_of_size,
    minimum_edge_cover,
    minimum_edge_cover_size,
)
from repro.matching.hall import (
    HallResult,
    check_hall,
    find_saturating_matching,
    is_expander,
    is_expander_into,
)
from repro.matching.hopcroft_karp import (
    MatchingResult,
    hopcroft_karp,
    maximum_bipartite_matching,
)
from repro.matching.konig import (
    KonigResult,
    konig_vertex_cover,
    minimum_vertex_cover_bipartite,
)
from repro.matching.partition import (
    Partition,
    bipartite_partition,
    exact_partition_search,
    find_partition,
    greedy_partition,
    is_valid_partition,
)

__all__ = [
    "matching_number",
    "maximum_matching",
    "extend_matching_to_edge_cover",
    "has_edge_cover_of_size",
    "minimum_edge_cover",
    "minimum_edge_cover_size",
    "HallResult",
    "check_hall",
    "find_saturating_matching",
    "is_expander",
    "is_expander_into",
    "MatchingResult",
    "hopcroft_karp",
    "maximum_bipartite_matching",
    "KonigResult",
    "konig_vertex_cover",
    "minimum_vertex_cover_bipartite",
    "Partition",
    "bipartite_partition",
    "exact_partition_search",
    "find_partition",
    "greedy_partition",
    "is_valid_partition",
]
