"""Minimum edge covers via Gallai's identity.

Theorem 3.1 reduces pure-NE existence of ``Π_k(G)`` to "does ``G`` have an
edge cover of size ``k``?", and Corollary 3.2 notes the question is
polynomial.  The classical route (the one the paper cites through [11]) is:

1. compute a maximum matching ``M`` (blossom algorithm — the graph need not
   be bipartite);
2. extend ``M`` greedily: every vertex left exposed by ``M`` picks one
   arbitrary incident edge.

The result is a minimum edge cover of size ``n − |M|`` (Gallai, 1959): each
added edge covers exactly one previously-exposed vertex (two exposed
vertices can never be adjacent once ``M`` is maximum), giving
``|M| + (n − 2|M|)`` edges, and no edge cover can do better.
"""

from __future__ import annotations

from typing import FrozenSet, Set

from repro.graphs.core import Edge, Graph, Vertex
from repro.matching.blossom import matching_number, maximum_matching

__all__ = [
    "minimum_edge_cover",
    "minimum_edge_cover_size",
    "has_edge_cover_of_size",
    "extend_matching_to_edge_cover",
]


def extend_matching_to_edge_cover(graph: Graph, matching: FrozenSet[Edge]) -> FrozenSet[Edge]:
    """Extend a matching to an edge cover by giving each exposed vertex one
    incident edge (the deterministically smallest).

    When the matching is *maximum* the result is a minimum edge cover.
    Requires the graph to have no isolated vertices.
    """
    graph.validate_for_game()
    cover: Set[Edge] = set(matching)
    covered: Set[Vertex] = set()
    for u, v in matching:
        covered.add(u)
        covered.add(v)
    for v in graph.sorted_vertices():
        if v not in covered:
            edge = graph.incident_edges(v)[0]
            cover.add(edge)
            covered.add(edge[0])
            covered.add(edge[1])
    return frozenset(cover)


def minimum_edge_cover(graph: Graph) -> FrozenSet[Edge]:
    """A minimum-cardinality edge cover of ``graph``.

    Size is always ``n − ν(G)`` (Gallai).  Raises
    :class:`~repro.graphs.core.GraphError` on graphs with isolated
    vertices, which admit no edge cover at all.
    """
    graph.validate_for_game()
    return extend_matching_to_edge_cover(graph, maximum_matching(graph))


def minimum_edge_cover_size(graph: Graph) -> int:
    """``ρ(G) = n − ν(G)`` without materializing the cover."""
    graph.validate_for_game()
    return graph.n - matching_number(graph)


def has_edge_cover_of_size(graph: Graph, k: int) -> bool:
    """Decide whether ``graph`` has an edge cover using exactly ``k``
    *distinct* edges.

    Monotone above the minimum: any minimum cover can absorb arbitrary
    extra edges, so the answer is ``ρ(G) ≤ k ≤ m``.
    """
    if k < 1:
        return False
    if k > graph.m:
        return False
    return minimum_edge_cover_size(graph) <= k
