"""Structural Nash equilibria: matching, k-matching, reductions, solver.

This package implements Section 4 of the paper — the k-matching machinery
(Definition 4.1, Lemma 4.1), Algorithm ``A_tuple`` (Figure 1), the
Theorem 4.5 reduction in both directions, and a one-call solver that
dispatches between the pure regime (Theorem 3.1) and the mixed regime.
"""

from repro.equilibria.atuple import algorithm_a_tuple, cyclic_tuples, expected_tuple_count
from repro.equilibria.families import (
    enumerate_k_matchings,
    perfect_matching_equilibrium,
    regular_edge_equilibrium,
    uniform_kmatching_equilibrium,
)
from repro.equilibria.kmatching import (
    is_kmatching_configuration,
    is_kmatching_nash,
    kmatching_profile,
    predicted_defender_gain,
    predicted_hit_probability,
    satisfies_cover_conditions,
    tuple_multiplicity,
)
from repro.equilibria.matching_ne import (
    algorithm_a,
    build_matching_cover,
    is_matching_configuration,
    matching_equilibrium,
)
from repro.equilibria.reduction import edge_to_tuple, gain_ratio, tuple_to_edge
from repro.equilibria.solve import NoEquilibriumFoundError, SolveResult, solve_game

__all__ = [
    "algorithm_a_tuple",
    "cyclic_tuples",
    "expected_tuple_count",
    "enumerate_k_matchings",
    "perfect_matching_equilibrium",
    "regular_edge_equilibrium",
    "uniform_kmatching_equilibrium",
    "is_kmatching_configuration",
    "is_kmatching_nash",
    "kmatching_profile",
    "predicted_defender_gain",
    "predicted_hit_probability",
    "satisfies_cover_conditions",
    "tuple_multiplicity",
    "algorithm_a",
    "build_matching_cover",
    "is_matching_configuration",
    "matching_equilibrium",
    "edge_to_tuple",
    "gain_ratio",
    "tuple_to_edge",
    "NoEquilibriumFoundError",
    "SolveResult",
    "solve_game",
]
