"""Matching Nash equilibria of the Edge model (``Π_1(G)``).

Definition 2.2 and Lemma 2.1 (both imported by the paper from [MPPS05])
define *matching configurations* and show that with uniform probabilities
and cover conditions they are Nash equilibria.  The paper's Algorithm
``A_tuple`` calls the Edge-model algorithm ``A(Π_1(G), IS, VC)`` as its
step 1; since [MPPS05] is not reproduced verbatim in the paper, the
construction here follows the proof obligations directly (see DESIGN.md
§2):

1. **Match** ``VC`` into ``IS``: a saturating matching exists exactly when
   the expander condition of Theorem 2.2 holds (Hall's theorem), giving
   each cover vertex a private independent-set partner.
2. **Patch**: every ``IS`` vertex not used by the matching adopts one
   arbitrary incident edge — its far endpoint lies in ``VC`` because
   ``IS`` is independent.

The resulting edge set ``D(tp)`` is an edge cover of ``G`` in which every
``IS`` vertex has degree exactly one and every edge has exactly one ``IS``
endpoint, i.e. a matching configuration satisfying Lemma 2.1's premises.
The uniform profile on ``(IS, D(tp))`` is then a matching NE.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Set

from repro.core.configuration import MixedConfiguration
from repro.core.game import GameError, TupleGame
from repro.graphs.core import (
    Edge,
    Graph,
    Vertex,
    canonical_edge,
    edge_sort_key,
    vertex_sort_key,
)
from repro.graphs.properties import is_independent_set
from repro.matching.hall import is_expander_into

__all__ = [
    "algorithm_a",
    "build_matching_cover",
    "is_matching_configuration",
    "matching_equilibrium",
]


def build_matching_cover(
    graph: Graph,
    independent_set: Iterable[Vertex],
    vertex_cover: Iterable[Vertex],
) -> FrozenSet[Edge]:
    """Construct the defender support ``D(tp)`` of Algorithm ``A``.

    Returns an edge cover of ``graph`` in which each vertex of
    ``independent_set`` is incident to exactly one edge and every edge has
    exactly one endpoint in ``independent_set``.

    Raises
    ------
    GameError
        If the inputs are not a valid Theorem 2.2 partition (``IS`` not
        independent, ``VC`` not the complement, or the expander condition
        fails — in which case the Hall violator is reported).
    """
    is_set = frozenset(independent_set)
    vc_set = frozenset(vertex_cover)
    if is_set | vc_set != graph.vertices() or is_set & vc_set:
        raise GameError("IS and VC must partition the vertex set")
    if not is_set:
        raise GameError("IS must be non-empty")
    if not is_independent_set(graph, is_set):
        raise GameError("IS is not an independent set")
    hall = is_expander_into(graph, vc_set, is_set)
    if not hall:
        raise GameError(
            f"G is not a VC-expander into IS; Hall violator: {sorted(hall.violator, key=vertex_sort_key)!r}"
        )

    cover: Set[Edge] = set()
    used_is: Set[Vertex] = set()
    for vc_vertex, is_partner in sorted(hall.matching.pairs.items(), key=vertex_sort_key):
        cover.add(canonical_edge(vc_vertex, is_partner))
        used_is.add(is_partner)
    for v in sorted(is_set - used_is, key=vertex_sort_key):
        # IS is independent, so any incident edge reaches into VC.
        cover.add(graph.incident_edges(v)[0])
    return frozenset(cover)


def algorithm_a(
    game: TupleGame,
    independent_set: Iterable[Vertex],
    vertex_cover: Iterable[Vertex],
) -> MixedConfiguration:
    """Algorithm ``A(Π_1(G), IS, VC)`` — a matching NE of the Edge model.

    Every vertex player plays uniformly on ``IS``; the edge player plays
    uniformly on the cover built by :func:`build_matching_cover`
    (Lemma 2.1).  Requires ``game.k == 1``.
    """
    if game.k != 1:
        raise GameError(
            f"algorithm A solves the Edge model; this game has k={game.k} "
            "(use algorithm_a_tuple)"
        )
    cover = build_matching_cover(game.graph, independent_set, vertex_cover)
    tuples = [(e,) for e in sorted(cover, key=edge_sort_key)]
    return MixedConfiguration.uniform(game, independent_set, tuples)


def matching_equilibrium(game: TupleGame, seed: int = 0) -> MixedConfiguration:
    """Find a partition (Theorem 2.2) and run Algorithm ``A`` on it.

    Raises :class:`~repro.core.game.GameError` when no partition is found
    (for non-bipartite graphs above the exact-search size this may be a
    false negative of the greedy heuristic).
    """
    from repro.matching.partition import find_partition

    partition = find_partition(game.graph, seed=seed)
    if partition is None:
        raise GameError(
            "no IS/VC partition satisfying Theorem 2.2 was found; "
            "the graph admits no matching NE (or the heuristic missed it)"
        )
    independent, cover = partition
    return algorithm_a(game, independent, cover)


def is_matching_configuration(game: TupleGame, config: MixedConfiguration) -> bool:
    """Check Definition 2.2 on an Edge-model configuration.

    (1) ``D(vp)`` is independent; (2) each support vertex is incident to
    exactly one support edge.
    """
    if game.k != 1:
        raise GameError("matching configurations are defined on the Edge model")
    if config.game != game:
        raise GameError("configuration belongs to a different game")
    vp_support = config.vp_support_union()
    if not is_independent_set(game.graph, vp_support):
        return False
    support_edges = config.tp_support_edges()
    for v in vp_support:
        incident = [e for e in support_edges if v in e]
        if len(incident) != 1:
            return False
    return True
