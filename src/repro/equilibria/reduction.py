"""The Theorem 4.5 reduction between the Tuple and Edge models.

Both directions are implemented as configuration transforms:

* :func:`tuple_to_edge` (Lemma 4.6) — flatten a k-matching NE of
  ``Π_k(G)``: the Edge-model defender plays uniformly on the *edge set*
  ``E(D_s(tp))``, the attackers keep their support.
* :func:`edge_to_tuple` (Lemma 4.8) — lift a matching NE of ``Π_1(G)``
  via the cyclic window construction of Figure 1 / :mod:`.atuple`.

Corollaries 4.7 and 4.10 pin the defender's gains across the reduction:
``IP_tp(Π_k) = k · IP_tp(Π_1)`` — the paper's headline "power of the
defender" law.  :func:`gain_ratio` measures it on actual configurations so
experiments can confirm the slope empirically.
"""

from __future__ import annotations

from repro.core.configuration import MixedConfiguration
from repro.core.game import GameError, TupleGame
from repro.core.profits import expected_profit_tp
from repro.equilibria.atuple import cyclic_tuples
from repro.equilibria.kmatching import is_kmatching_configuration
from repro.equilibria.matching_ne import is_matching_configuration
from repro.graphs.core import edge_sort_key

__all__ = ["tuple_to_edge", "edge_to_tuple", "gain_ratio"]


def tuple_to_edge(
    game: TupleGame, config: MixedConfiguration, validate: bool = True
) -> MixedConfiguration:
    """Lemma 4.6: from a k-matching NE of ``Π_k(G)`` to a matching NE of
    ``Π_1(G)``.

    The construction sets ``D_s'(VP) := D_s(VP)`` and
    ``D_s'(tp) := E(D_s(tp))`` with uniform probabilities throughout.
    With ``validate=True`` the input supports are checked to be a
    k-matching configuration first.
    """
    if config.game != game:
        raise GameError("configuration belongs to a different game")
    if validate and not is_kmatching_configuration(game, config):
        raise GameError("input is not a k-matching configuration (Definition 4.1)")
    edge_game = game.edge_game()
    tuples = [(e,) for e in sorted(config.tp_support_edges(), key=edge_sort_key)]
    return MixedConfiguration.uniform(edge_game, config.vp_support_union(), tuples)


def edge_to_tuple(
    edge_game: TupleGame,
    config: MixedConfiguration,
    k: int,
    validate: bool = True,
) -> MixedConfiguration:
    """Lemma 4.8: from a matching NE of ``Π_1(G)`` to a k-matching NE of
    ``Π_k(G)``.

    Labels the Edge-model support edges, cuts the ``δ`` cyclic k-windows
    and plays uniformly (each edge then lies in exactly
    ``α = k / gcd(E_num, k)`` tuples — Claim 4.9).
    """
    if config.game != edge_game:
        raise GameError("configuration belongs to a different game")
    if edge_game.k != 1:
        raise GameError("the source game must be an Edge-model instance (k=1)")
    if validate and not is_matching_configuration(edge_game, config):
        raise GameError("input is not a matching configuration (Definition 2.2)")
    target_game = TupleGame(edge_game.graph, k, edge_game.nu)
    labelled_edges = sorted(config.tp_support_edges(), key=edge_sort_key)
    tuples = cyclic_tuples(labelled_edges, k)
    return MixedConfiguration.uniform(
        target_game, config.vp_support_union(), tuples
    )


def gain_ratio(
    tuple_game: TupleGame,
    tuple_config: MixedConfiguration,
    edge_game: TupleGame,
    edge_config: MixedConfiguration,
) -> float:
    """``IP_tp(Π_k) / IP_tp(Π_1)`` — equals ``k`` at the Theorem 4.5 pair."""
    numerator = expected_profit_tp(tuple_config)
    denominator = expected_profit_tp(edge_config)
    if denominator == 0:
        raise GameError("Edge-model defender gain is zero; ratio undefined")
    return numerator / denominator
