"""Algorithm ``A_tuple`` — Figure 1 of the paper.

Computes a k-matching mixed Nash equilibrium of ``Π_k(G)`` given a
Theorem 2.2 partition ``(IS, VC)``:

1. run the Edge-model Algorithm ``A`` on ``Π_1(G)`` (step 1);
2. label the resulting support edges ``e_0 .. e_{E_num−1}`` (step 2);
3. walk cyclically over the labels, cutting consecutive windows of ``k``
   edges until the walk returns to label 0 — producing
   ``δ = E_num / gcd(E_num, k)`` tuples in which every edge appears exactly
   ``α = k / gcd(E_num, k)`` times (step 3, Claim 4.9);
4. play every vertex player uniformly on ``IS`` and the tuple player
   uniformly on the ``δ`` tuples (steps 4–5, equations (3)–(4)).

Per Theorem 4.13 the post-subroutine work is ``O(k · n)``.

Boundary the paper leaves implicit (DESIGN.md §2): the windows contain
``k`` *distinct* edges only when ``k ≤ E_num``.  Since every valid
partition has ``|IS| = E_num`` equal to the minimum-edge-cover size
``ρ(G)``, ``k > E_num`` lands strictly inside the pure-NE regime of
Theorem 3.1 and :func:`algorithm_a_tuple` raises a descriptive error
pointing there (at ``k = E_num`` exactly, the walk degenerates gracefully
to a single full-cover window — still an equilibrium).
:mod:`repro.equilibria.solve` dispatches across the boundary
automatically, preferring the pure construction from ``k = ρ(G)`` up.
"""

from __future__ import annotations

from math import gcd
from typing import Iterable, List, Sequence, Tuple

from repro.core.configuration import MixedConfiguration
from repro.core.game import GameError, TupleGame
from repro.graphs.core import Edge, Vertex, edge_sort_key
from repro.equilibria.matching_ne import algorithm_a

__all__ = ["cyclic_tuples", "algorithm_a_tuple", "expected_tuple_count"]


def expected_tuple_count(e_num: int, k: int) -> int:
    """``δ = E_num / GCD(E_num, k)`` — number of tuples the walk emits."""
    return e_num // gcd(e_num, k)


def cyclic_tuples(edges: Sequence[Edge], k: int) -> List[Tuple[Edge, ...]]:
    """Step 3 of Figure 1: consecutive k-windows over cyclically labelled
    edges, stopping when the cursor returns to label 0.

    Returns the tuples in construction order (each a tuple of ``k``
    distinct edges).  Raises :class:`~repro.core.game.GameError` when
    ``k > len(edges)``, where distinctness is impossible.
    """
    e_num = len(edges)
    if e_num == 0:
        raise GameError("the cyclic construction needs at least one edge")
    if k > e_num:
        raise GameError(
            f"k={k} exceeds the {e_num} support edges; tuples of distinct "
            "edges are impossible (this regime has a pure NE — Theorem 3.1)"
        )
    tuples: List[Tuple[Edge, ...]] = []
    current = 0
    while True:
        window = tuple(edges[(current + offset) % e_num] for offset in range(k))
        tuples.append(window)
        current = (current + k) % e_num
        if current == 0:
            break
    assert len(tuples) == expected_tuple_count(e_num, k)
    return tuples


def algorithm_a_tuple(
    game: TupleGame,
    independent_set: Iterable[Vertex],
    vertex_cover: Iterable[Vertex],
) -> MixedConfiguration:
    """Algorithm ``A_tuple(Π_k(G), IS, VC)`` (Figure 1).

    Returns the k-matching mixed NE of Theorem 4.12.  The inputs must be a
    Theorem 2.2 partition: ``IS`` independent, ``VC = V \\ IS`` and ``G`` a
    ``VC``-expander (into ``IS``); step 1 validates them.
    """
    # Step 1: matching NE of the Edge model.
    edge_config = algorithm_a(game.edge_game(), independent_set, vertex_cover)
    # Step 2: deterministic labelling e_0 .. e_{E_num-1}.
    labelled_edges = sorted(edge_config.tp_support_edges(), key=edge_sort_key)
    # Step 3: the cyclic windows.
    tuples = cyclic_tuples(labelled_edges, game.k)
    # Steps 4-5: uniform distributions (equations (3)-(4) of Lemma 4.1).
    return MixedConfiguration.uniform(game, independent_set, tuples)
