"""Structural equilibria beyond the IS/VC class — extension families.

The paper's k-matching machinery requires an independent-set/vertex-cover
partition (Corollary 4.11), which graphs like Petersen or odd cycles do
not have.  Its companion work ([8] in the paper's bibliography) studies
further structural families for the Edge model — regular graphs, graphs
with perfect matchings — and this module lifts those to the Tuple model:

* :func:`perfect_matching_equilibrium` — for any graph with a perfect
  matching ``M``: the defender plays the cyclic k-windows over ``M``
  (the Lemma 4.8 construction applied to ``M`` instead of a matching-NE
  cover) and every attacker plays uniformly on ``V``.  Because ``M`` is
  perfect, every vertex lies on exactly one support edge, so all hit
  probabilities equal ``k/|M| = 2k/n``, and every window covers ``2k``
  distinct vertices of equal mass — both Theorem 3.4 equalities hold by
  construction.  Defender gain: ``2k·ν/n = k·ν/ρ(G)`` (Gallai gives
  ``ρ = n/2`` here), extending the paper's linear law to every
  perfect-matching graph, bipartite or not.

* :func:`regular_edge_equilibrium` — for the Edge model (k = 1) on any
  r-regular graph: both sides uniform (attacker on ``V``, defender on
  ``E``).  Hit probabilities are ``r/m = 2/n`` everywhere and every edge
  carries mass ``2ν/n``.

* :func:`uniform_kmatching_equilibrium` — candidate-and-verify: the
  defender plays uniformly on *all* matchings of size ``k`` and the
  attackers uniformly on ``V``.  Every support tuple covers ``2k``
  distinct vertices (the global maximum), so condition 3 always holds;
  condition 2 — equal hit probabilities — is a symmetry property that the
  function *checks* (it holds on vertex- and edge-transitive graphs such
  as cycles, complete graphs, Petersen, circulants) and reports honestly
  when it fails.  Enumerating k-matchings is exponential; a count guard
  keeps this to the small instances where it is meant to be used.

These constructions are *extensions*: the paper proves none of them, but
each output is verified against the Theorem 3.4 characterization, and the
test suite cross-checks their values against the exact LP minimax.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, List

from repro.core.configuration import MixedConfiguration
from repro.core.game import GameError, TupleGame
from repro.core.profits import all_hit_probabilities
from repro.core.tuples import EdgeTuple
from repro.equilibria.atuple import cyclic_tuples
from repro.graphs.core import Graph, edge_sort_key
from repro.matching.blossom import maximum_matching

__all__ = [
    "perfect_matching_equilibrium",
    "regular_edge_equilibrium",
    "uniform_kmatching_equilibrium",
    "enumerate_k_matchings",
]

_KMATCHING_ENUMERATION_LIMIT = 250_000
"""Guard on ``C(m, k)`` for the candidate-and-verify construction."""


def perfect_matching_equilibrium(game: TupleGame) -> MixedConfiguration:
    """A mixed NE from a perfect matching — works on non-bipartite graphs.

    Raises :class:`~repro.core.game.GameError` when the graph has no
    perfect matching or when ``k > n/2`` (where Theorem 3.1's pure NE
    takes over anyway).

    Examples
    --------
    >>> from repro.graphs.generators import petersen_graph
    >>> game = TupleGame(petersen_graph(), k=2, nu=5)
    >>> config = perfect_matching_equilibrium(game)
    >>> len(config.tp_support_edges())   # the perfect matching
    5
    """
    graph = game.graph
    matching = maximum_matching(graph)
    if 2 * len(matching) != graph.n:
        raise GameError(
            f"the graph has no perfect matching (maximum matching covers "
            f"{2 * len(matching)} of {graph.n} vertices)"
        )
    if game.k > len(matching):
        raise GameError(
            f"k={game.k} exceeds the perfect matching size {len(matching)}; "
            "this regime has a pure NE (Theorem 3.1)"
        )
    labelled = sorted(matching, key=edge_sort_key)
    windows = cyclic_tuples(labelled, game.k)
    return MixedConfiguration.uniform(game, graph.vertices(), windows)


def regular_edge_equilibrium(game: TupleGame) -> MixedConfiguration:
    """Uniform/uniform NE for the Edge model on a regular graph.

    Raises :class:`~repro.core.game.GameError` unless ``k == 1`` and the
    graph is regular.
    """
    if game.k != 1:
        raise GameError(
            "the uniform/uniform construction is an Edge-model result; "
            "use perfect_matching_equilibrium or uniform_kmatching_equilibrium "
            f"for k={game.k}"
        )
    graph = game.graph
    degrees = {graph.degree(v) for v in graph.vertices()}
    if len(degrees) != 1:
        raise GameError(f"the graph is not regular (degrees {sorted(degrees)})")
    tuples = [(e,) for e in graph.sorted_edges()]
    return MixedConfiguration.uniform(game, graph.vertices(), tuples)


def enumerate_k_matchings(graph: Graph, k: int) -> Iterator[EdgeTuple]:
    """All matchings of exactly ``k`` edges, as canonical tuples.

    Straightforward ``C(m, k)`` filter; callers guard the size.
    """
    for combo in combinations(graph.sorted_edges(), k):
        seen = set()
        ok = True
        for u, v in combo:
            if u in seen or v in seen:
                ok = False
                break
            seen.add(u)
            seen.add(v)
        if ok:
            yield combo


def uniform_kmatching_equilibrium(
    game: TupleGame,
    tol: float = 1e-12,
    enumeration_limit: int = _KMATCHING_ENUMERATION_LIMIT,
) -> MixedConfiguration:
    """Candidate-and-verify: uniform over all size-k matchings.

    Sound but not complete: returns a verified mixed NE when the graph is
    symmetric enough for all hit probabilities to coincide (checked, not
    assumed); raises :class:`~repro.core.game.GameError` otherwise, or
    when the graph has no matching of size ``k``, or when ``C(m, k)``
    exceeds ``enumeration_limit``.
    """
    graph = game.graph
    if game.tuple_strategy_count() > enumeration_limit:
        raise GameError(
            f"C(m={graph.m}, k={game.k}) exceeds the enumeration limit "
            f"{enumeration_limit}"
        )
    matchings: List[EdgeTuple] = list(enumerate_k_matchings(graph, game.k))
    if not matchings:
        raise GameError(f"the graph has no matching of size k={game.k}")
    config = MixedConfiguration.uniform(game, graph.vertices(), matchings)
    hits = all_hit_probabilities(config)
    spread = max(hits.values()) - min(hits.values())
    if spread > tol:
        raise GameError(
            "uniform k-matchings do not equalize hit probabilities on this "
            f"graph (spread {spread:.3e}); the candidate is not an NE"
        )
    # Condition 3 of Theorem 3.4 holds by construction: every support
    # tuple is a matching, covering 2k distinct vertices of mass ν/n each
    # — the global maximum over E^k.
    return config
