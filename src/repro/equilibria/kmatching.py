"""k-matching configurations and Nash equilibria — Definition 4.1, Lemma 4.1.

A *k-matching configuration* of ``Π_k(G)`` (Definition 4.1) satisfies:

1. ``D_s(VP)`` is an independent set of ``G``;
2. each vertex of ``D_s(VP)`` is incident to exactly one edge of
   ``E(D_s(tp))``;
3. every edge of ``E(D_s(tp))`` belongs to the same number ``α`` of
   distinct support tuples.

Lemma 4.1: if additionally condition 1 of Theorem 3.4 holds (the support
edges cover ``G`` and the attacker support vertex-covers the obtained
subgraph), then the *uniform* profile on those supports is a mixed NE —
a **k-matching Nash equilibrium** (Definition 4.2).  At that equilibrium
every support vertex is hit with probability ``k / |E(D_s(tp))|`` (Claim
4.3) and the defender earns ``k·ν / |D_s(VP)|`` (Corollary 4.7).
"""

from __future__ import annotations

from typing import Counter as CounterType, Iterable, Optional

from collections import Counter

from repro.core.configuration import MixedConfiguration
from repro.core.game import GameError, TupleGame
from repro.core.tuples import EdgeTuple, canonical_tuple
from repro.graphs.core import Edge, Vertex
from repro.graphs.properties import is_edge_cover, is_independent_set, is_vertex_cover

__all__ = [
    "is_kmatching_configuration",
    "satisfies_cover_conditions",
    "is_kmatching_nash",
    "kmatching_profile",
    "tuple_multiplicity",
    "predicted_hit_probability",
    "predicted_defender_gain",
]


def tuple_multiplicity(tuples: Iterable[EdgeTuple]) -> Optional[int]:
    """The common per-edge tuple count ``α`` of Definition 4.1(3).

    Returns ``α`` when every edge appearing in the tuples appears in
    exactly ``α`` of them, else ``None``.
    """
    counts: CounterType[Edge] = Counter()
    for t in tuples:
        for e in t:
            counts[e] += 1
    if not counts:
        return None
    values = set(counts.values())
    return values.pop() if len(values) == 1 else None


def is_kmatching_configuration(game: TupleGame, config: MixedConfiguration) -> bool:
    """Check the three clauses of Definition 4.1 on a configuration's
    supports (probabilities are irrelevant to the definition)."""
    if config.game != game:
        raise GameError("configuration belongs to a different game")
    vp_support = config.vp_support_union()
    if not is_independent_set(game.graph, vp_support):
        return False
    support_edges = config.tp_support_edges()
    for v in vp_support:
        if sum(1 for e in support_edges if v in e) != 1:
            return False
    return tuple_multiplicity(config.tp_support()) is not None


def satisfies_cover_conditions(game: TupleGame, config: MixedConfiguration) -> bool:
    """Condition 1 of Theorem 3.4, the extra premise of Lemma 4.1."""
    support_edges = config.tp_support_edges()
    if not is_edge_cover(game.graph, support_edges):
        return False
    obtained = game.graph.subgraph_from_edges(support_edges)
    candidates = config.vp_support_union() & obtained.vertices()
    return is_vertex_cover(obtained, candidates)


def is_kmatching_nash(
    game: TupleGame, config: MixedConfiguration, tol: float = 1e-9
) -> bool:
    """Check Definition 4.2: k-matching configuration + cover conditions +
    the uniform Lemma 4.1 distributions."""
    if not is_kmatching_configuration(game, config):
        return False
    if not satisfies_cover_conditions(game, config):
        return False
    # Uniformity of the tuple player (equation (3)).
    tp = config.tp_distribution()
    expected_tp = 1.0 / len(tp)
    if any(abs(p - expected_tp) > tol for p in tp.values()):
        return False
    # Uniformity of each vertex player on the shared support (equation (4)).
    vp_support = config.vp_support_union()
    expected_vp = 1.0 / len(vp_support)
    for i in range(game.nu):
        dist = config.vp_distribution(i)
        if set(dist) != set(vp_support):
            return False
        if any(abs(p - expected_vp) > tol for p in dist.values()):
            return False
    return True


def kmatching_profile(
    game: TupleGame,
    vp_support: Iterable[Vertex],
    tuples: Iterable[Iterable[Edge]],
    validate: bool = True,
) -> MixedConfiguration:
    """Assemble the uniform Lemma 4.1 profile from explicit supports.

    With ``validate=True`` (default), raises
    :class:`~repro.core.game.GameError` unless the supports form a
    k-matching configuration satisfying the lemma's premises — so the
    returned profile is guaranteed to be a k-matching NE.
    """
    canonical = [canonical_tuple(t) for t in tuples]
    config = MixedConfiguration.uniform(game, vp_support, canonical)
    if validate:
        if not is_kmatching_configuration(game, config):
            raise GameError(
                "supports do not form a k-matching configuration (Definition 4.1)"
            )
        if not satisfies_cover_conditions(game, config):
            raise GameError(
                "supports violate condition 1 of Theorem 3.4 (cover conditions)"
            )
    return config


def predicted_hit_probability(game: TupleGame, config: MixedConfiguration) -> float:
    """Claim 4.3's closed form ``k / |E(D_s(tp))|`` for support vertices."""
    return game.k / len(config.tp_support_edges())


def predicted_defender_gain(game: TupleGame, config: MixedConfiguration) -> float:
    """Corollary 4.7/4.10's closed form ``k·ν / |D_s(VP)|``."""
    return game.k * game.nu / len(config.vp_support_union())
