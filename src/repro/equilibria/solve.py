"""One-call equilibrium solver for the Tuple model.

The paper's results tile the parameter space of ``Π_k(G)`` exactly
(DESIGN.md §2):

* ``k ≥ ρ(G)`` (minimum-edge-cover size): a **pure** NE exists and is
  constructed per Theorem 3.1;
* ``k < ρ(G)``: no pure NE (Theorem 3.1); if a Theorem 2.2 partition
  ``(IS, VC)`` exists, then ``|IS| = ρ(G) > k`` and Algorithm ``A_tuple``
  yields a **k-matching mixed** NE (Theorems 4.12/5.1);
* otherwise the paper's machinery does not apply, and the solver falls
  back to the extension families of :mod:`repro.equilibria.families`
  (beyond the paper, each output verified): **perfect-matching** window
  equilibria for graphs with perfect matchings (e.g. Petersen), then
  candidate-and-verify **uniform-k-matching** equilibria for small
  symmetric graphs (e.g. odd cycles);
* if every construction declines, :func:`solve_game` reports that
  honestly (small instances can still use :mod:`repro.solvers.lp` for an
  unstructured mixed NE).

:func:`solve_game` walks that decision tree and returns a
:class:`SolveResult` carrying the equilibrium, its kind and the defender's
gain.
"""

from __future__ import annotations

import json
from typing import Optional

import repro.cache as result_cache
from repro.core.configuration import MixedConfiguration, PureConfiguration
from repro.core.game import GameError, TupleGame
from repro.core.profits import expected_profit_tp, pure_profit_tp
from repro.core.pure import find_pure_nash
from repro.core.serialize import (
    configuration_from_json,
    solve_result_to_json,
)
from repro.equilibria.atuple import algorithm_a_tuple
from repro.kernels.coverage import shared_oracle
from repro.matching.covers import minimum_edge_cover_size
from repro.matching.partition import Partition, find_partition
from repro.obs import get_logger, metrics, tracing
from repro.obs import ledger as obs_ledger

_log = get_logger("repro.equilibria.solve")

__all__ = [
    "SolveResult",
    "solve_game",
    "solve_result_from_json",
    "NoEquilibriumFoundError",
]


class NoEquilibriumFoundError(GameError):
    """Raised when neither the pure nor the k-matching machinery applies."""


class SolveResult:
    """Outcome of :func:`solve_game`.

    Attributes
    ----------
    kind:
        ``"pure"``, ``"k-matching"``, or one of the extension kinds
        ``"perfect-matching"`` / ``"uniform-k-matching"``.
    mixed:
        The equilibrium as a :class:`MixedConfiguration` (pure equilibria
        are wrapped as degenerate mixed profiles).
    pure:
        The underlying :class:`PureConfiguration` when ``kind == "pure"``.
    partition:
        The ``(IS, VC)`` partition used, for k-matching equilibria.
    defender_gain:
        ``IP_tp`` at the equilibrium: ``ν`` for pure, ``k·ν/ρ(G)`` for
        k-matching.
    """

    __slots__ = ("kind", "mixed", "pure", "partition", "defender_gain")

    def __init__(
        self,
        kind: str,
        mixed: MixedConfiguration,
        pure: Optional[PureConfiguration],
        partition: Optional[Partition],
        defender_gain: Optional[float] = None,
    ) -> None:
        self.kind = kind
        self.mixed = mixed
        self.pure = pure
        self.partition = partition
        # ``defender_gain`` is normally derived from the profile; cache
        # replay (:func:`solve_result_from_json`) passes the recorded
        # value instead so a replayed result re-serializes byte-for-byte
        # (deriving it from a pure-less reconstruction could differ in
        # the last floating-point bit).
        if defender_gain is not None:
            self.defender_gain = defender_gain
        else:
            self.defender_gain = (
                float(pure_profit_tp(pure)) if pure is not None
                else expected_profit_tp(mixed)
            )

    def __repr__(self) -> str:
        return f"SolveResult(kind={self.kind!r}, defender_gain={self.defender_gain:.4f})"


def solve_game(
    game: TupleGame, seed: int = 0, allow_extensions: bool = True
) -> SolveResult:
    """Compute a Nash equilibrium of ``Π_k(G)`` by the paper's recipe.

    With ``allow_extensions=True`` (default) the solver also tries the
    beyond-the-paper constructions of :mod:`repro.equilibria.families`
    before giving up; pass ``False`` to restrict to exactly the paper's
    machinery (used by experiments that characterize its reach).

    Raises
    ------
    NoEquilibriumFoundError
        When ``k < ρ(G)`` and no applicable construction was found.  For
        bipartite graphs this never happens (Theorem 5.1); for general
        graphs beyond the exact-search size it may be a false negative of
        the greedy partition heuristic.
    """
    metrics.counter("equilibria.solve.count").inc()
    # Probe before opening the ledger run so the record can carry the
    # ``cache_hit`` attribute (a no-op miss while caching is disabled).
    probe = result_cache.lookup(
        game, "equilibria.solve",
        {"seed": seed, "allow_extensions": allow_extensions},
    )
    with obs_ledger.run("equilibria.solve", game=game, seed=seed,
                        allow_extensions=allow_extensions,
                        cache_hit=probe.hit), \
            tracing.span("equilibria.solve", n=game.graph.n, k=game.k,
                         nu=game.nu), \
            metrics.timer("equilibria.solve.seconds"):
        result = probe.replay(solve_result_from_json)
        if result is None:
            # Prewarm the coverage kernel: every downstream verification
            # bridge (pure-NE checks, best-response certificates) queries
            # the same (graph, k) and now hits the shared cache.
            shared_oracle(game.graph, game.k)
            try:
                result = _solve_game_impl(game, seed, allow_extensions)
            except NoEquilibriumFoundError:
                metrics.counter("equilibria.solve.kind.none.count").inc()
                raise
            probe.store(solve_result_to_json(result))
    # Record which strategy of the solve cascade fired.
    metrics.counter(f"equilibria.solve.kind.{result.kind}.count").inc()
    _log.info(
        "equilibria.solved", kind=result.kind, k=game.k, nu=game.nu,
        defender_gain=result.defender_gain,
    )
    return result


def solve_result_from_json(text: str) -> SolveResult:
    """Parse a :func:`repro.core.serialize.solve_result_to_json` document.

    The replay half of the result cache: the equilibrium profile is
    rebuilt through :func:`~repro.core.serialize.configuration_from_json`
    (which fully re-validates it, weighted games included) and the
    recorded ``kind`` / ``defender_gain`` / ``partition`` are restored
    verbatim, so re-serializing the result reproduces the document
    byte-for-byte.  The degenerate ``pure`` view of pure equilibria is
    not rehydrated (the document does not carry it; the mixed profile
    and recorded gain are the replayed contract).

    Raises :class:`~repro.core.game.GameError` on malformed documents.
    """
    with metrics.timer("cache.decode.seconds"):
        mixed = configuration_from_json(text)
        try:
            payload = json.loads(text)
            solve = payload["solve"]
            kind = str(solve["kind"])
            defender_gain = float(solve["defender_gain"])
            partition: Optional[Partition] = None
            if solve.get("partition") is not None:
                partition = (
                    frozenset(solve["partition"]["independent_set"]),
                    frozenset(solve["partition"]["vertex_cover"]),
                )
        except (KeyError, TypeError, ValueError) as exc:
            raise GameError(
                f"malformed solve-result payload: {exc}"
            ) from exc
        return SolveResult(kind, mixed, None, partition,
                           defender_gain=defender_gain)


def _solve_game_impl(
    game: TupleGame, seed: int, allow_extensions: bool
) -> SolveResult:
    rho = minimum_edge_cover_size(game.graph)
    if game.k >= rho:
        pure = find_pure_nash(game)
        if pure is None:
            # Theorem 3.1 guarantees a pure NE whenever k >= rho(G) (and
            # k <= m by construction), so this state is unreachable on a
            # correct build.  Raise explicitly rather than `assert`: under
            # `python -O` an assert vanishes and the impossible state
            # would resurface as an AttributeError deep inside
            # SolveResult, far from the broken invariant.
            raise GameError(
                f"internal invariant violated: k={game.k} >= rho={rho} "
                "but find_pure_nash returned no equilibrium (Theorem 3.1)"
            )
        return SolveResult("pure", MixedConfiguration.from_pure(pure), pure, None)

    partition = find_partition(game.graph, seed=seed)
    if partition is not None:
        independent, cover = partition
        config = algorithm_a_tuple(game, independent, cover)
        return SolveResult("k-matching", config, None, partition)

    if allow_extensions:
        from repro.equilibria.families import (
            perfect_matching_equilibrium,
            uniform_kmatching_equilibrium,
        )

        try:
            config = perfect_matching_equilibrium(game)
            return SolveResult("perfect-matching", config, None, None)
        except GameError:
            pass
        try:
            config = uniform_kmatching_equilibrium(game)
            return SolveResult("uniform-k-matching", config, None, None)
        except GameError:
            pass

    raise NoEquilibriumFoundError(
        f"k={game.k} < minimum edge cover {rho} rules out pure NE, no "
        "IS/VC partition for a k-matching NE was found"
        + (
            ", and the extension families (perfect-matching, "
            "uniform-k-matching) do not apply"
            if allow_extensions
            else " (extensions disabled)"
        )
    )
