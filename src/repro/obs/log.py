"""Zero-dependency structured logging for the solver stack.

A deliberately tiny alternative to :mod:`logging`: loggers emit one
*event* per call as either a ``key=value`` line or a JSON object, so the
output is grep-able and machine-parseable without a parsing library.
There are no handlers, filters or hierarchies — one process-global
configuration (level, format, stream) governs every logger, and the
level check is a single integer comparison so disabled log sites cost
essentially nothing on hot paths.

Configuration sources, in priority order:

1. :func:`configure` (what the CLI's ``--verbose`` / ``--log-json``
   flags call);
2. the environment — ``REPRO_LOG_LEVEL`` (``debug`` / ``info`` /
   ``warning`` / ``error``) and ``REPRO_LOG_FORMAT`` (``text`` /
   ``json``), read once at import;
3. defaults: level ``warning``, text format, ``sys.stderr`` — silent
   unless something is actually wrong, so default CLI output is
   untouched.

Example::

    from repro.obs import get_logger
    log = get_logger("repro.solvers.double_oracle")
    log.info("converged", iterations=12, gap=0.0)
    # -> level=info logger=repro.solvers.double_oracle event=converged \
    #    iterations=12 gap=0.0
"""

from __future__ import annotations

import json
import os
import sys
from typing import Dict, Optional, TextIO

__all__ = [
    "LEVELS",
    "StructuredLogger",
    "get_logger",
    "configure",
    "logging_config",
]

LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30, "error": 40}
"""Numeric severity of each level name, lowest (most verbose) first."""


class _Config:
    """The single process-global logging configuration."""

    __slots__ = ("level", "json_mode", "stream")

    def __init__(self) -> None:
        env_level = os.environ.get("REPRO_LOG_LEVEL", "warning").lower()
        self.level: int = LEVELS.get(env_level, LEVELS["warning"])
        self.json_mode: bool = (
            os.environ.get("REPRO_LOG_FORMAT", "text").lower() == "json"
        )
        self.stream: Optional[TextIO] = None  # None -> sys.stderr at call time


_CONFIG = _Config()
_LOGGERS: Dict[str, "StructuredLogger"] = {}


def configure(
    level: Optional[str] = None,
    json_mode: Optional[bool] = None,
    stream: Optional[TextIO] = None,
) -> None:
    """Adjust the global logging configuration.

    Any argument left ``None`` keeps its current value.  ``level`` is a
    name from :data:`LEVELS`; an unknown name raises ``ValueError``.
    """
    if level is not None:
        try:
            _CONFIG.level = LEVELS[level.lower()]
        except KeyError:
            raise ValueError(
                f"unknown log level {level!r}; choose from {sorted(LEVELS)}"
            ) from None
    if json_mode is not None:
        _CONFIG.json_mode = bool(json_mode)
    if stream is not None:
        _CONFIG.stream = stream


def logging_config() -> Dict[str, object]:
    """The effective configuration (level name, json flag) — for tests."""
    level_name = next(
        (name for name, num in LEVELS.items() if num == _CONFIG.level),
        str(_CONFIG.level),
    )
    return {"level": level_name, "json": _CONFIG.json_mode}


def _format_value(value: object) -> str:
    """Render one field value for the key=value format."""
    if isinstance(value, float):
        return f"{value:.6g}"
    text = str(value)
    if any(ch.isspace() for ch in text) or "=" in text or not text:
        return json.dumps(text)
    return text


class StructuredLogger:
    """A named emitter of structured log events.

    Obtain instances via :func:`get_logger`; one instance per name is
    cached for the life of the process.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def is_enabled_for(self, level: str) -> bool:
        """True when events at ``level`` would currently be emitted."""
        return LEVELS[level] >= _CONFIG.level

    def _emit(self, level: str, event: str, fields: Dict[str, object]) -> None:
        stream = _CONFIG.stream or sys.stderr
        if _CONFIG.json_mode:
            record = {"level": level, "logger": self.name, "event": event}
            record.update(fields)
            stream.write(json.dumps(record, default=str) + "\n")
        else:
            parts = [f"level={level}", f"logger={self.name}", f"event={event}"]
            parts.extend(f"{k}={_format_value(v)}" for k, v in fields.items())
            stream.write(" ".join(parts) + "\n")

    def debug(self, event: str, **fields: object) -> None:
        """Emit a debug-level event."""
        if LEVELS["debug"] >= _CONFIG.level:
            self._emit("debug", event, fields)

    def info(self, event: str, **fields: object) -> None:
        """Emit an info-level event."""
        if LEVELS["info"] >= _CONFIG.level:
            self._emit("info", event, fields)

    def warning(self, event: str, **fields: object) -> None:
        """Emit a warning-level event."""
        if LEVELS["warning"] >= _CONFIG.level:
            self._emit("warning", event, fields)

    def error(self, event: str, **fields: object) -> None:
        """Emit an error-level event."""
        if LEVELS["error"] >= _CONFIG.level:
            self._emit("error", event, fields)

    def __repr__(self) -> str:
        return f"StructuredLogger({self.name!r})"


def get_logger(name: str) -> StructuredLogger:
    """The (cached) structured logger for ``name``.

    Names conventionally mirror module paths (``repro.solvers.lp``).
    """
    try:
        return _LOGGERS[name]
    except KeyError:
        return _LOGGERS.setdefault(name, StructuredLogger(name))
