"""Process resource sampler: RSS, CPU time, GC and thread telemetry.

A daemon-thread sampler that periodically reads cheap process-level
resource facts and feeds them into the :mod:`repro.obs.metrics`
registry:

* **RSS** from ``/proc/self/status`` (``VmRSS``), falling back to
  ``resource.getrusage`` where ``/proc`` does not exist — gauge
  ``process.rss_bytes`` plus histogram ``process.rss_bytes.samples``
  (so runs get RSS percentiles, not just a point);
* **CPU time** from ``os.times()`` — gauges ``process.cpu_user_s`` /
  ``process.cpu_system_s``;
* **GC pressure** from ``gc.get_stats()`` — gauge
  ``process.gc_collections``;
* **thread count** — gauge ``process.threads``.

:func:`start_sampler` / :func:`stop_sampler` manage one process-global
daemon thread (idempotent; re-entrant via a depth count, so nested
ledger runs share a single sampler).  :func:`snapshot` packages the
current sample plus the peak/percentile view into the ``resources``
block every ledger record carries (see
``repro.obs/ledger-record/v3``).  Everything degrades gracefully:
an unreadable ``/proc`` yields ``None`` RSS, never an exception.
"""

from __future__ import annotations

import gc
import os
import threading
from typing import Any, Dict, Optional

import repro.obs.metrics as _metrics
from repro.obs.log import get_logger

__all__ = [
    "DEFAULT_INTERVAL_S",
    "rss_bytes",
    "sample_once",
    "start_sampler",
    "stop_sampler",
    "sampler_running",
    "snapshot",
]

_log = get_logger("repro.obs.resources")

#: Seconds between daemon-thread samples.
DEFAULT_INTERVAL_S = 0.05

_PROC_STATUS = "/proc/self/status"


class _SamplerState:
    """The process-global sampler thread and its bookkeeping."""

    __slots__ = ("thread", "stop_event", "depth", "samples", "peak_rss",
                 "lock")

    def __init__(self) -> None:
        self.thread: Optional[threading.Thread] = None
        self.stop_event = threading.Event()
        self.depth = 0
        self.samples = 0
        self.peak_rss = 0
        self.lock = threading.Lock()


_STATE = _SamplerState()


def rss_bytes() -> Optional[int]:
    """Resident set size in bytes, or None when unavailable.

    Reads ``VmRSS`` from ``/proc/self/status`` on Linux; elsewhere falls
    back to ``resource.getrusage(RUSAGE_SELF).ru_maxrss`` (a *peak*, and
    kilobytes on Linux vs bytes on macOS — normalized here).
    """
    try:
        with open(_PROC_STATUS, "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource as _resource

        peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
        if peak <= 0:
            return None
        # ru_maxrss is KiB on Linux, bytes on macOS.
        return peak if os.uname().sysname == "Darwin" else peak * 1024
    except (ImportError, OSError, AttributeError):
        return None


def sample_once() -> Dict[str, Any]:
    """Take one resource sample and feed the metrics registry.

    Returns the sample dict (also the building block of
    :func:`snapshot`); safe to call with the sampler thread stopped.
    """
    with _metrics.timer("resources.sample.seconds"):
        times = os.times()
        stats = gc.get_stats()
        sample: Dict[str, Any] = {
            "rss_bytes": rss_bytes(),
            "cpu_user_s": times.user,
            "cpu_system_s": times.system,
            "gc_collections": sum(s.get("collections", 0) for s in stats),
            "threads": threading.active_count(),
        }
        registry_feed(sample)
    return sample


def registry_feed(sample: Dict[str, Any]) -> None:
    """Push one sample's fields into the process metrics registry."""
    rss = sample.get("rss_bytes")
    if rss is not None:
        _metrics.gauge("process.rss_bytes").set(float(rss))
        _metrics.histogram("process.rss_bytes.samples").observe(float(rss))
        with _STATE.lock:
            _STATE.samples += 1
            if rss > _STATE.peak_rss:
                _STATE.peak_rss = rss
    _metrics.gauge("process.cpu_user_s").set(sample["cpu_user_s"])
    _metrics.gauge("process.cpu_system_s").set(sample["cpu_system_s"])
    _metrics.gauge("process.gc_collections").set(
        float(sample["gc_collections"])
    )
    _metrics.gauge("process.threads").set(float(sample["threads"]))


def _sampler_loop(interval: float) -> None:
    while not _STATE.stop_event.wait(interval):
        try:
            sample_once()
        except Exception as exc:  # sampling must never kill the process
            _metrics.counter("resources.sample_errors.count").inc()
            _log.warning("resources.sample.failed",
                         error=type(exc).__name__)


def start_sampler(interval: float = DEFAULT_INTERVAL_S) -> bool:
    """Start (or join) the daemon sampler thread; True when it started.

    Re-entrant: each call bumps a depth count and only the first actually
    spawns the thread, so nested ledger runs share one sampler and the
    matching :func:`stop_sampler` calls unwind it.
    """
    with _metrics.timer("resources.start.seconds"):
        with _STATE.lock:
            _STATE.depth += 1
            if _STATE.thread is not None and _STATE.thread.is_alive():
                return False
            _STATE.stop_event = threading.Event()
            _STATE.samples = 0
            _STATE.peak_rss = 0
            thread = threading.Thread(
                target=_sampler_loop, args=(interval,),
                name="repro-obs-resources", daemon=True,
            )
            _STATE.thread = thread
        sample_once()  # always at least one sample, however short the run
        thread.start()
    return True


def stop_sampler() -> None:
    """Unwind one :func:`start_sampler` call; stops the thread at depth 0."""
    with _STATE.lock:
        _STATE.depth = max(0, _STATE.depth - 1)
        if _STATE.depth > 0:
            return
        thread = _STATE.thread
        _STATE.thread = None
        _STATE.stop_event.set()
    if thread is not None and thread.is_alive():
        thread.join(timeout=1.0)


def _sampler_running_locked() -> bool:
    """``sampler_running`` body; every caller already holds ``_STATE.lock``."""
    thread = _STATE.thread
    return thread is not None and thread.is_alive()


def sampler_running() -> bool:
    """True while the daemon sampler thread is alive."""
    with _STATE.lock:
        return _sampler_running_locked()


def snapshot() -> Dict[str, Any]:
    """The ``resources`` block for a ledger record.

    One fresh sample (current RSS / CPU / GC / threads) plus the peak
    RSS and sample count accumulated since the sampler started — still
    meaningful with the sampler off (``samples`` counts that one).
    """
    with _metrics.timer("resources.snapshot.seconds"):
        sample = sample_once()
        with _STATE.lock:
            sample["rss_peak_bytes"] = (
                _STATE.peak_rss or sample.get("rss_bytes")
            )
            sample["samples"] = _STATE.samples
            sample["sampler_running"] = _sampler_running_locked()
    return sample
