"""Span-based tracing: where the wall-clock of a solve actually goes.

A *span* is a named, timed section of work with key=value attributes:
``span("lp.solve", strategies=40, vertices=12)``.  Spans nest — the
double-oracle loop's span contains one ``lp.solve`` span per restricted
duel plus the oracle spans — and the resulting tree shows, per solve,
which layer of the stack consumed the time.  ``repro-defender stats``
and ``--trace`` print exactly this tree.

Tracing is **opt-in and near-free when off** (the default):
:func:`span` returns a shared no-op context manager and
:func:`traced`-wrapped functions fall through with a single boolean
check, so instrumented hot paths cost a few nanoseconds per call when
nobody is looking.  Enable with :func:`enable_tracing` (the CLI's
``--trace`` flag, or ``REPRO_TRACE=1`` in the environment).

When tracing is on, every finished span also feeds the global metrics
registry: a histogram named ``span.<name>.seconds`` (the ``span.``
prefix keeps trace-derived timings apart from the always-on timers of
the instrumented code).  Completed root spans accumulate in a
per-context trace buffer; :func:`get_trace` returns them and
:func:`render_trace` formats the indented tree.

Correlation (PR 10): the trace buffer lives in a
:class:`contextvars.ContextVar` rather than ``threading.local``, so a
request's trace context survives the hop from the asyncio loop onto an
executor thread whenever the callable is run under
``contextvars.copy_context()`` (which the serve layer's
:class:`~repro.serve.workers.WorkerPool` and ``run_in_executor`` calls
do).  Every context carries a W3C-style 128-bit ``trace_id`` and every
span minted inside it gets a 64-bit ``span_id``; :func:`start_trace`
begins a fresh context for an inbound request, honoring its
``traceparent`` header when one is supplied.  Trace *identity* is
always available — even with span collection disabled — which is what
lets the access log, ledger and event bus stamp one shared trace id per
request.
"""

from __future__ import annotations

import contextvars
import os
from functools import wraps
from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple

import repro.obs.metrics as _metrics

__all__ = [
    "Span",
    "TraceContext",
    "span",
    "traced",
    "enable_tracing",
    "tracing_enabled",
    "start_trace",
    "current_trace",
    "current_trace_id",
    "parse_traceparent",
    "format_traceparent",
    "get_trace",
    "clear_trace",
    "render_trace",
]

_enabled = os.environ.get("REPRO_TRACE", "") not in ("", "0", "false", "no")

_TRACEPARENT_VERSION = "00"


def _new_trace_id() -> str:
    return os.urandom(16).hex()


def _new_span_id() -> str:
    return os.urandom(8).hex()


def parse_traceparent(header: Optional[str]) -> Optional[Tuple[str, str]]:
    """Parse a W3C ``traceparent`` header into ``(trace_id, parent_id)``.

    The accepted shape is ``00-<32 hex>-<16 hex>-<2 hex>``; a malformed
    header, the reserved version ``ff`` or an all-zero id returns
    ``None`` (the caller mints a fresh trace instead of failing the
    request — correlation must never reject traffic).
    """
    if not header:
        return None
    parts = header.strip().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, parent_id, flags = parts
    if len(version) != 2 or len(trace_id) != 32 or len(parent_id) != 16:
        return None
    if len(flags) != 2:
        return None
    try:
        int(version, 16)
        int(trace_id, 16)
        int(parent_id, 16)
        int(flags, 16)
    except ValueError:
        return None
    if version.lower() == "ff":
        return None
    if trace_id == "0" * 32 or parent_id == "0" * 16:
        return None
    return trace_id.lower(), parent_id.lower()


def format_traceparent(trace_id: str, span_id: str) -> str:
    """Render ``(trace_id, span_id)`` as an outbound ``traceparent``
    header value (always sampled: this service records what it serves)."""
    return f"{_TRACEPARENT_VERSION}-{trace_id}-{span_id}-01"


class TraceContext:
    """One trace's identity plus its span buffer.

    ``trace_id`` is the 128-bit hex id shared by every span, ledger
    record, event and access-log line of one logical request;
    ``span_id`` identifies this service hop (it is the parent id echoed
    in the response ``traceparent``); ``parent_id`` is the caller's span
    id when an inbound ``traceparent`` was honored, else ``None``.

    The open-span ``stack`` and finished-root ``roots`` buffers live on
    the context object itself, so code running under a copied
    ``contextvars`` context (worker threads, executors) appends into the
    *same* buffers as the request task that started the trace.
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "stack", "roots")

    def __init__(self, trace_id: Optional[str] = None,
                 parent_id: Optional[str] = None) -> None:
        self.trace_id = trace_id or _new_trace_id()
        self.span_id = _new_span_id()
        self.parent_id = parent_id
        self.stack: List["Span"] = []
        self.roots: List["Span"] = []

    def traceparent(self) -> str:
        """The outbound ``traceparent`` value for this hop."""
        return format_traceparent(self.trace_id, self.span_id)

    def __repr__(self) -> str:
        return (
            f"TraceContext(trace_id={self.trace_id!r}, "
            f"span_id={self.span_id!r}, roots={len(self.roots)})"
        )


_CONTEXT: "contextvars.ContextVar[Optional[TraceContext]]" = (
    contextvars.ContextVar("repro_trace_context", default=None)
)


def _current_context(create: bool = True) -> Optional[TraceContext]:
    state = _CONTEXT.get()
    if state is None and create:
        state = TraceContext()
        _CONTEXT.set(state)
    return state


def start_trace(traceparent: Optional[str] = None) -> TraceContext:
    """Begin a fresh trace context for the current task/thread.

    Honors a valid inbound W3C ``traceparent`` (continuing the caller's
    ``trace_id`` with this hop as a child span) and mints a new
    ``trace_id`` otherwise.  Returns the new context — the serve layer
    calls this once per HTTP request, then copies the surrounding
    ``contextvars`` context across its executor hops so every span,
    ledger record and event of that request lands in this buffer.
    """
    parsed = parse_traceparent(traceparent)
    if parsed is not None:
        state = TraceContext(trace_id=parsed[0], parent_id=parsed[1])
    else:
        state = TraceContext()
    _CONTEXT.set(state)
    return state


def current_trace() -> Optional[TraceContext]:
    """The active :class:`TraceContext`, or ``None`` before any trace
    activity in this task/thread."""
    return _CONTEXT.get()


def current_trace_id(create: bool = False) -> Optional[str]:
    """The active trace id; with ``create=True`` mint a context first."""
    state = _current_context(create=create)
    return None if state is None else state.trace_id


class Span:
    """One named, timed section of work.

    Attributes
    ----------
    name:
        Dotted span name (``component.operation``).
    attributes:
        The key=value annotations passed at creation.
    duration_s:
        Wall-clock seconds from entry to exit (0.0 while open).
    status:
        ``"ok"``, or ``"error"`` when the block raised.
    error_type:
        The exception class name when ``status == "error"``, else ``None``.
    children:
        Spans opened (and closed) while this one was the innermost.
    trace_id:
        The 128-bit hex id of the trace this span belongs to (shared by
        the whole request), or ``None`` for a span never entered.
    span_id:
        This span's own 64-bit hex id, minted on entry.
    parent_id:
        The enclosing span's ``span_id`` (or the trace context's hop id
        for root spans), or ``None`` for a span never entered.
    """

    __slots__ = ("name", "attributes", "start", "duration_s", "status",
                 "error_type", "children", "trace_id", "span_id",
                 "parent_id")

    def __init__(self, name: str, attributes: Dict[str, object]) -> None:
        self.name = name
        self.attributes = attributes
        self.start = 0.0
        self.duration_s = 0.0
        self.status = "ok"
        self.error_type: Optional[str] = None
        self.children: List["Span"] = []
        self.trace_id: Optional[str] = None
        self.span_id: Optional[str] = None
        self.parent_id: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        """The span subtree as a plain JSON-ready dict (ledger/profiler
        serialization format)."""
        payload: Dict[str, object] = {
            "name": self.name,
            "duration_s": self.duration_s,
            "status": self.status,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }
        if self.error_type is not None:
            payload["error_type"] = self.error_type
        if self.trace_id is not None:
            payload["trace_id"] = self.trace_id
            payload["span_id"] = self.span_id
            payload["parent_id"] = self.parent_id
        return payload

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, duration_s={self.duration_s:.6f}, "
            f"children={len(self.children)}, status={self.status!r})"
        )


class _NullSpanContext:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_CONTEXT = _NullSpanContext()


class _SpanContext:
    """Live span context: pushes on enter, records and pops on exit."""

    __slots__ = ("span_obj", "_state")

    def __init__(self, name: str, attributes: Dict[str, object]) -> None:
        self.span_obj = Span(name, attributes)
        self._state: Optional[TraceContext] = None

    def __enter__(self) -> Span:
        state = _current_context()
        assert state is not None
        self._state = state
        current = self.span_obj
        current.trace_id = state.trace_id
        current.span_id = _new_span_id()
        current.parent_id = (
            state.stack[-1].span_id if state.stack else state.span_id
        )
        current.start = perf_counter()
        state.stack.append(current)
        return current

    def __exit__(self, exc_type, exc, tb) -> bool:
        current = self.span_obj
        end = perf_counter()
        current.duration_s = end - current.start
        if exc_type is not None:
            current.status = "error"
            current.error_type = exc_type.__name__
        state = self._state if self._state is not None else _current_context()
        assert state is not None
        stack = state.stack
        # Exception-safety: spans abandoned above this one (entered but
        # never exited — a generator that died, a manual __enter__ with no
        # matching exit) are closed here rather than dropped: they keep
        # their partial duration, carry error status, stay in the tree as
        # children of the span below them, and still feed their histogram.
        while stack and stack[-1] is not current:
            abandoned = stack.pop()
            abandoned.duration_s = end - abandoned.start
            abandoned.status = "error"
            if abandoned.error_type is None:
                abandoned.error_type = (
                    exc_type.__name__ if exc_type is not None else "AbandonedSpan"
                )
            parent = stack[-1] if stack else None
            if parent is not None:
                parent.children.append(abandoned)
            else:
                state.roots.append(abandoned)
            _metrics.histogram(f"span.{abandoned.name}.seconds").observe(
                abandoned.duration_s
            )
        if stack:
            stack.pop()
        if stack:
            stack[-1].children.append(current)
        else:
            state.roots.append(current)
        _metrics.histogram(f"span.{current.name}.seconds").observe(
            current.duration_s
        )
        return False


def enable_tracing(on: bool = True) -> None:
    """Turn span collection on or off process-wide."""
    global _enabled
    _enabled = bool(on)


def tracing_enabled() -> bool:
    """True when spans are currently being collected."""
    return _enabled


def span(name: str, **attributes: object):
    """Open a traced span: ``with span("lp.solve", vertices=n): ...``.

    Returns a context manager; the ``as`` target is the live
    :class:`Span` (or ``None`` while tracing is disabled, which is the
    near-free fast path).
    """
    if not _enabled:
        return _NULL_CONTEXT
    return _SpanContext(name, attributes)


def traced(name_or_fn=None, **attributes: object):
    """Decorator tracing every call of a function as one span.

    Usable bare (``@traced`` — the span is named after the function) or
    with arguments (``@traced("lp.solve", layer="solver")``).  When
    tracing is disabled the wrapper is a single boolean check on top of
    the call.
    """

    def decorate(fn: Callable, span_name: Optional[str] = None) -> Callable:
        label = span_name or fn.__qualname__

        @wraps(fn)
        def wrapper(*args, **kwargs):
            if not _enabled:
                return fn(*args, **kwargs)
            with _SpanContext(label, dict(attributes)):
                return fn(*args, **kwargs)

        return wrapper

    if callable(name_or_fn):
        return decorate(name_or_fn)
    return lambda fn: decorate(fn, name_or_fn)


def get_trace() -> List[Span]:
    """The completed root spans of the current trace context, oldest
    first (empty before any trace activity)."""
    state = _CONTEXT.get()
    return [] if state is None else list(state.roots)


def clear_trace() -> None:
    """Discard the current context's collected spans and open stack."""
    state = _CONTEXT.get()
    if state is not None:
        state.stack.clear()
        state.roots.clear()


def _render_span(s: Span, depth: int, lines: List[str]) -> None:
    attrs = " ".join(f"{k}={v}" for k, v in s.attributes.items())
    if s.status == "ok":
        flag = ""
    else:
        flag = f"  [ERROR {s.error_type}]" if s.error_type else "  [ERROR]"
    lines.append(
        "  " * depth
        + f"{s.name}  {s.duration_s * 1000:.3f} ms"
        + (f"  ({attrs})" if attrs else "")
        + flag
    )
    for child in s.children:
        _render_span(child, depth + 1, lines)


def render_trace(spans: Optional[List[Span]] = None) -> str:
    """Indented text rendering of a span forest.

    Defaults to the current context's collected roots (:func:`get_trace`).
    """
    if spans is None:
        spans = get_trace()
    if not spans:
        return "(no spans recorded)"
    lines: List[str] = []
    for root in spans:
        _render_span(root, 0, lines)
    return "\n".join(lines)
