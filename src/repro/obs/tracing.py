"""Span-based tracing: where the wall-clock of a solve actually goes.

A *span* is a named, timed section of work with key=value attributes:
``span("lp.solve", strategies=40, vertices=12)``.  Spans nest — the
double-oracle loop's span contains one ``lp.solve`` span per restricted
duel plus the oracle spans — and the resulting tree shows, per solve,
which layer of the stack consumed the time.  ``repro-defender stats``
and ``--trace`` print exactly this tree.

Tracing is **opt-in and near-free when off** (the default):
:func:`span` returns a shared no-op context manager and
:func:`traced`-wrapped functions fall through with a single boolean
check, so instrumented hot paths cost a few nanoseconds per call when
nobody is looking.  Enable with :func:`enable_tracing` (the CLI's
``--trace`` flag, or ``REPRO_TRACE=1`` in the environment).

When tracing is on, every finished span also feeds the global metrics
registry: a histogram named ``span.<name>.seconds`` (the ``span.``
prefix keeps trace-derived timings apart from the always-on timers of
the instrumented code).  Completed root spans accumulate per-thread in
a trace buffer; :func:`get_trace` returns them and
:func:`render_trace` formats the indented tree.
"""

from __future__ import annotations

import os
import threading
from functools import wraps
from time import perf_counter
from typing import Callable, Dict, List, Optional

import repro.obs.metrics as _metrics

__all__ = [
    "Span",
    "span",
    "traced",
    "enable_tracing",
    "tracing_enabled",
    "get_trace",
    "clear_trace",
    "render_trace",
]

_enabled = os.environ.get("REPRO_TRACE", "") not in ("", "0", "false", "no")


class _TraceBuffer(threading.local):
    """Per-thread span stack and finished-root-span buffer."""

    def __init__(self) -> None:
        self.stack: List["Span"] = []
        self.roots: List["Span"] = []


_BUFFER = _TraceBuffer()


class Span:
    """One named, timed section of work.

    Attributes
    ----------
    name:
        Dotted span name (``component.operation``).
    attributes:
        The key=value annotations passed at creation.
    duration_s:
        Wall-clock seconds from entry to exit (0.0 while open).
    status:
        ``"ok"``, or ``"error"`` when the block raised.
    error_type:
        The exception class name when ``status == "error"``, else ``None``.
    children:
        Spans opened (and closed) while this one was the innermost.
    """

    __slots__ = ("name", "attributes", "start", "duration_s", "status",
                 "error_type", "children")

    def __init__(self, name: str, attributes: Dict[str, object]) -> None:
        self.name = name
        self.attributes = attributes
        self.start = 0.0
        self.duration_s = 0.0
        self.status = "ok"
        self.error_type: Optional[str] = None
        self.children: List["Span"] = []

    def to_dict(self) -> Dict[str, object]:
        """The span subtree as a plain JSON-ready dict (ledger/profiler
        serialization format)."""
        payload: Dict[str, object] = {
            "name": self.name,
            "duration_s": self.duration_s,
            "status": self.status,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }
        if self.error_type is not None:
            payload["error_type"] = self.error_type
        return payload

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, duration_s={self.duration_s:.6f}, "
            f"children={len(self.children)}, status={self.status!r})"
        )


class _NullSpanContext:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_CONTEXT = _NullSpanContext()


class _SpanContext:
    """Live span context: pushes on enter, records and pops on exit."""

    __slots__ = ("span_obj",)

    def __init__(self, name: str, attributes: Dict[str, object]) -> None:
        self.span_obj = Span(name, attributes)

    def __enter__(self) -> Span:
        self.span_obj.start = perf_counter()
        _BUFFER.stack.append(self.span_obj)
        return self.span_obj

    def __exit__(self, exc_type, exc, tb) -> bool:
        current = self.span_obj
        end = perf_counter()
        current.duration_s = end - current.start
        if exc_type is not None:
            current.status = "error"
            current.error_type = exc_type.__name__
        stack = _BUFFER.stack
        # Exception-safety: spans abandoned above this one (entered but
        # never exited — a generator that died, a manual __enter__ with no
        # matching exit) are closed here rather than dropped: they keep
        # their partial duration, carry error status, stay in the tree as
        # children of the span below them, and still feed their histogram.
        while stack and stack[-1] is not current:
            abandoned = stack.pop()
            abandoned.duration_s = end - abandoned.start
            abandoned.status = "error"
            if abandoned.error_type is None:
                abandoned.error_type = (
                    exc_type.__name__ if exc_type is not None else "AbandonedSpan"
                )
            parent = stack[-1] if stack else None
            if parent is not None:
                parent.children.append(abandoned)
            else:
                _BUFFER.roots.append(abandoned)
            _metrics.histogram(f"span.{abandoned.name}.seconds").observe(
                abandoned.duration_s
            )
        if stack:
            stack.pop()
        if stack:
            stack[-1].children.append(current)
        else:
            _BUFFER.roots.append(current)
        _metrics.histogram(f"span.{current.name}.seconds").observe(
            current.duration_s
        )
        return False


def enable_tracing(on: bool = True) -> None:
    """Turn span collection on or off process-wide."""
    global _enabled
    _enabled = bool(on)


def tracing_enabled() -> bool:
    """True when spans are currently being collected."""
    return _enabled


def span(name: str, **attributes: object):
    """Open a traced span: ``with span("lp.solve", vertices=n): ...``.

    Returns a context manager; the ``as`` target is the live
    :class:`Span` (or ``None`` while tracing is disabled, which is the
    near-free fast path).
    """
    if not _enabled:
        return _NULL_CONTEXT
    return _SpanContext(name, attributes)


def traced(name_or_fn=None, **attributes: object):
    """Decorator tracing every call of a function as one span.

    Usable bare (``@traced`` — the span is named after the function) or
    with arguments (``@traced("lp.solve", layer="solver")``).  When
    tracing is disabled the wrapper is a single boolean check on top of
    the call.
    """

    def decorate(fn: Callable, span_name: Optional[str] = None) -> Callable:
        label = span_name or fn.__qualname__

        @wraps(fn)
        def wrapper(*args, **kwargs):
            if not _enabled:
                return fn(*args, **kwargs)
            with _SpanContext(label, dict(attributes)):
                return fn(*args, **kwargs)

        return wrapper

    if callable(name_or_fn):
        return decorate(name_or_fn)
    return lambda fn: decorate(fn, name_or_fn)


def get_trace() -> List[Span]:
    """The completed root spans collected on this thread, oldest first."""
    return list(_BUFFER.roots)


def clear_trace() -> None:
    """Discard this thread's collected spans and any open span stack."""
    _BUFFER.stack.clear()
    _BUFFER.roots.clear()


def _render_span(s: Span, depth: int, lines: List[str]) -> None:
    attrs = " ".join(f"{k}={v}" for k, v in s.attributes.items())
    if s.status == "ok":
        flag = ""
    else:
        flag = f"  [ERROR {s.error_type}]" if s.error_type else "  [ERROR]"
    lines.append(
        "  " * depth
        + f"{s.name}  {s.duration_s * 1000:.3f} ms"
        + (f"  ({attrs})" if attrs else "")
        + flag
    )
    for child in s.children:
        _render_span(child, depth + 1, lines)


def render_trace(spans: Optional[List[Span]] = None) -> str:
    """Indented text rendering of a span forest.

    Defaults to this thread's collected roots (:func:`get_trace`).
    """
    if spans is None:
        spans = get_trace()
    if not spans:
        return "(no spans recorded)"
    lines: List[str] = []
    for root in spans:
        _render_span(root, 0, lines)
    return "\n".join(lines)
