"""Live telemetry event bus: typed run events, bounded and subscribable.

The ledger records *what a run was* after it finished; this module
streams *what a run is doing* while it happens.  Instrumented code
publishes small typed events — per-iteration solver progress
(``solver.iteration``), LP solves (``lp.solve``), fuzz cases
(``fuzz.case``), benchmark cases (``bench.case``) and run boundaries
(``run.start`` / ``run.end``) — into a process-global, thread-safe,
bounded ring buffer.  Consumers attach three ways:

* :func:`subscribe` — an in-process callback invoked synchronously on
  every published event (subscriber exceptions are caught, counted in
  ``events.subscriber_errors.count`` and never break the publisher);
* :func:`recent` — snapshot the newest buffered events (the live view
  behind ``repro-defender tail``);
* the **JSONL sink** — when enabled with a directory, every event is
  appended to ``events.jsonl`` under it (``.repro/events/`` by default),
  so ``repro-defender tail --follow`` can stream a run from another
  process and finished runs replay exactly.

The bus follows the tracer/ledger cost contract: **opt-in and
near-free when off**.  :func:`publish` is a single boolean check while
disabled (the default); enable via :func:`enable_events`, the CLI
``--events`` flag, or ``REPRO_EVENTS=1`` (``REPRO_EVENTS_DIR`` points
the sink somewhere else).  Event schema::

    {"schema": "repro.obs/event/v1", "seq": 17, "ts": 1754640000.123,
     "type": "solver.iteration", "payload": {...}}

``seq`` is a process-wide monotone sequence number, so interleaved
multi-threaded streams have a total order independent of clock ties.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from pathlib import Path
from time import sleep, time
from typing import Any, Callable, Dict, Iterator, List, Optional

import repro.obs.metrics as _metrics
from repro.obs.log import get_logger

__all__ = [
    "EVENT_SCHEMA",
    "EVENT_TYPES",
    "DEFAULT_EVENTS_DIR",
    "DEFAULT_CAPACITY",
    "enable_events",
    "disable_events",
    "events_enabled",
    "events_sink_path",
    "publish",
    "subscribe",
    "unsubscribe",
    "recent",
    "clear_events",
    "read_events",
    "tail_events",
]

_log = get_logger("repro.obs.events")

EVENT_SCHEMA = "repro.obs/event/v1"
DEFAULT_EVENTS_DIR = ".repro/events"
SINK_FILENAME = "events.jsonl"

#: Ring-buffer capacity: events kept for :func:`recent` (oldest dropped).
DEFAULT_CAPACITY = 4096

#: The typed event vocabulary.  Publishing an unknown type is allowed
#: (forward compatibility for downstream subsystems) but counted in
#: ``events.unknown_type.count`` so drift is visible.
EVENT_TYPES = frozenset({
    "run.start",
    "run.end",
    "solver.iteration",
    "lp.solve",
    "fuzz.case",
    "bench.case",
    "serve.request",
    "slo.breach",
})


class _BusState:
    """Process-global bus: switch, ring buffer, subscribers, sink."""

    __slots__ = ("enabled", "buffer", "subscribers", "sink", "sink_path",
                 "seq", "next_token", "lock")

    def __init__(self) -> None:
        self.enabled = False  # repro: lock(lock)
        self.buffer: deque = deque(maxlen=DEFAULT_CAPACITY)  # repro: lock(lock)
        self.subscribers: Dict[int, Callable[[Dict[str, Any]], None]] = {}  # repro: lock(lock)
        self.sink = None  # repro: lock(lock)
        self.sink_path: Optional[Path] = None  # repro: lock(lock)
        self.seq = 0  # repro: lock(lock)
        self.next_token = 1  # repro: lock(lock)
        self.lock = threading.Lock()
        if os.environ.get("REPRO_EVENTS", "") not in ("", "0", "false", "no"):
            self.enabled = True
            self._open_sink(Path(
                os.environ.get("REPRO_EVENTS_DIR", DEFAULT_EVENTS_DIR)
            ))

    def _open_sink(self, directory: Optional[Path]) -> None:
        if directory is None:
            return
        try:
            directory.mkdir(parents=True, exist_ok=True)
            self.sink_path = directory / SINK_FILENAME
            self.sink = open(self.sink_path, "a", encoding="utf-8")
        except OSError as exc:  # the bus must never break the workload
            self.sink = None
            self.sink_path = None
            _log.warning("events.sink.open_failed", directory=str(directory),
                         error=type(exc).__name__)

    def _close_sink(self) -> None:
        if self.sink is not None:
            try:
                self.sink.close()
            except OSError:
                pass
        self.sink = None
        self.sink_path = None


_STATE = _BusState()


def enable_events(directory: Optional[os.PathLike] = None,
                  sink: bool = True) -> None:
    """Turn the bus on, optionally persisting events under ``directory``.

    With ``sink=True`` (the default) every event is appended to
    ``<directory>/events.jsonl`` (``.repro/events/`` when no directory is
    given); ``sink=False`` keeps events purely in-memory — the mode the
    overhead benchmark and in-process subscribers use.
    """
    with _STATE.lock:
        _STATE._close_sink()
        if sink:
            root = Path(directory) if directory is not None \
                else Path(DEFAULT_EVENTS_DIR)
            _STATE._open_sink(root)
        _STATE.enabled = True


def disable_events() -> None:
    """Turn the bus off and close the JSONL sink (buffer is kept)."""
    with _STATE.lock:
        _STATE.enabled = False
        _STATE._close_sink()


def events_enabled() -> bool:
    """True while :func:`publish` is recording events."""
    with _STATE.lock:
        return _STATE.enabled


def events_sink_path() -> Optional[Path]:
    """The JSONL file events are appended to (None when sink-less)."""
    with _STATE.lock:
        return _STATE.sink_path


def clear_events() -> None:
    """Drop all buffered events (subscribers and the sink are kept)."""
    with _STATE.lock:
        _STATE.buffer.clear()


def publish(event_type: str, **payload: Any) -> Optional[Dict[str, Any]]:
    """Publish one event; a no-op single boolean check while disabled.

    Returns the event dict when published (None while the bus is off),
    so instrumentation can assert on what it emitted in tests.
    """
    # Deliberate benign race: a stale read of the boolean switch costs
    # one event around enable/disable, and keeps the disabled-path
    # overhead to a single attribute load.
    if not _STATE.enabled:  # repro: noqa[LCK001]
        return None
    return _publish(event_type, payload)


def _publish(event_type: str, payload: Dict[str, Any]) -> Dict[str, Any]:
    with _STATE.lock:
        _STATE.seq += 1
        event = {
            "schema": EVENT_SCHEMA,
            "seq": _STATE.seq,
            "ts": time(),
            "type": event_type,
            "payload": payload,
        }
        _STATE.buffer.append(event)
        if _STATE.sink is not None:
            try:
                _STATE.sink.write(
                    json.dumps(event, sort_keys=True, default=str) + "\n"
                )
                _STATE.sink.flush()
            except (OSError, ValueError) as exc:
                _metrics.counter("events.sink_errors.count").inc()
                _log.warning("events.sink.write_failed",
                             error=type(exc).__name__)
                _STATE._close_sink()
        callbacks = list(_STATE.subscribers.values())
    _metrics.counter("events.published.count").inc()
    if event_type not in EVENT_TYPES:
        _metrics.counter("events.unknown_type.count").inc()
    for callback in callbacks:
        try:
            callback(event)
        except Exception as exc:  # a bad subscriber never breaks the run
            _metrics.counter("events.subscriber_errors.count").inc()
            _log.warning("events.subscriber.failed",
                         error=type(exc).__name__)
    return event


def subscribe(callback: Callable[[Dict[str, Any]], None]) -> int:
    """Attach an in-process callback to every published event.

    The callback runs synchronously on the publisher's thread; exceptions
    it raises are swallowed (and counted).  Returns a token for
    :func:`unsubscribe`.
    """
    with _STATE.lock, _metrics.timer("events.subscribe.seconds"):
        token = _STATE.next_token
        _STATE.next_token += 1
        _STATE.subscribers[token] = callback
    return token


def unsubscribe(token: int) -> bool:
    """Detach a subscriber; True when the token was attached."""
    with _STATE.lock:
        return _STATE.subscribers.pop(token, None) is not None


def recent(count: Optional[int] = None,
           types: Optional[List[str]] = None) -> List[Dict[str, Any]]:
    """Snapshot the newest buffered events, oldest first.

    ``count`` caps the result (newest kept); ``types`` filters to the
    given event types.
    """
    with _STATE.lock, _metrics.timer("events.recent.seconds"):
        events = list(_STATE.buffer)
    if types is not None:
        wanted = set(types)
        events = [e for e in events if e.get("type") in wanted]
    if count is not None and count >= 0:
        events = events[len(events) - min(count, len(events)):]
    return events


# --------------------------------------------------------------------------
# reading a sink back (the `repro-defender tail` engine)


def read_events(path: os.PathLike,
                types: Optional[List[str]] = None) -> List[Dict[str, Any]]:
    """Parse a JSONL event-sink file, tolerating a torn trailing line.

    Corrupt lines are skipped and counted in
    ``events.read.corrupt_lines.count`` — the sink is append-only, so a
    torn tail is expected when tailing a live run.
    """
    with _metrics.timer("events.read.seconds"):
        wanted = set(types) if types is not None else None
        events: List[Dict[str, Any]] = []
        try:
            lines = Path(path).read_text(encoding="utf-8").splitlines()
        except OSError:
            return events
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                _metrics.counter("events.read.corrupt_lines.count").inc()
                continue
            if not isinstance(event, dict):
                continue
            if wanted is not None and event.get("type") not in wanted:
                continue
            events.append(event)
    return events


def tail_events(
    path: os.PathLike,
    types: Optional[List[str]] = None,
    follow: bool = False,
    poll_interval: float = 0.25,
    stop: Optional[Callable[[], bool]] = None,
) -> Iterator[Dict[str, Any]]:
    """Yield events from a sink file, optionally following appends.

    Without ``follow`` this yields the current file contents and stops.
    With it, the file is polled every ``poll_interval`` seconds for new
    lines until ``stop()`` (when given) returns True — the generator the
    ``repro-defender tail --follow`` loop drains (Ctrl-C breaks it).
    """
    with _metrics.timer("events.tail.setup.seconds"):
        target = Path(path)
        wanted = set(types) if types is not None else None
        offset = 0
    while True:
        try:
            with open(target, "r", encoding="utf-8") as handle:
                handle.seek(offset)
                chunk = handle.read()
        except OSError:
            chunk = ""
        if chunk:
            # Only consume whole lines; a torn tail stays for next poll.
            complete = chunk.rfind("\n") + 1
            offset += len(chunk[:complete].encode("utf-8"))
            for line in chunk[:complete].splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    _metrics.counter("events.read.corrupt_lines.count").inc()
                    continue
                if not isinstance(event, dict):
                    continue
                if wanted is not None and event.get("type") not in wanted:
                    continue
                yield event
        if not follow or (stop is not None and stop()):
            return
        sleep(poll_interval)
