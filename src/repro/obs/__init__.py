"""repro.obs — structured observability for the solver stack.

A cross-cutting, zero-dependency layer with three pieces (see
``docs/observability.md`` for conventions and examples):

* :mod:`repro.obs.log` — structured logging (``key=value`` or JSON
  lines, env/CLI-configurable level, silent by default);
* :mod:`repro.obs.metrics` — a process-global registry of counters,
  gauges and timing histograms, exportable as JSON or Prometheus-style
  text; the always-on instrumentation of the solvers, matching kernels
  and simulation engine feeds it;
* :mod:`repro.obs.tracing` — nested spans (``span("lp.solve", ...)`` /
  ``@traced``) that show where the wall-clock of a solve goes; opt-in
  and near-free when disabled.

Quickstart::

    from repro.obs import enable_tracing, get_registry, render_trace, span

    enable_tracing()
    with span("my.workload", n=12):
        ...                       # solver calls nest their own spans
    print(render_trace())
    print(get_registry().to_json())
"""

from repro.obs.log import StructuredLogger, configure, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    counter,
    gauge,
    get_registry,
    histogram,
    render_snapshot,
    timer,
)
from repro.obs.tracing import (
    Span,
    clear_trace,
    enable_tracing,
    get_trace,
    render_trace,
    span,
    traced,
    tracing_enabled,
)

__all__ = [
    "StructuredLogger",
    "configure",
    "get_logger",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "counter",
    "gauge",
    "get_registry",
    "histogram",
    "render_snapshot",
    "timer",
    "Span",
    "clear_trace",
    "enable_tracing",
    "get_trace",
    "render_trace",
    "span",
    "traced",
    "tracing_enabled",
]
