"""repro.obs — structured observability for the solver stack.

A cross-cutting, zero-dependency layer (see ``docs/observability.md``
for conventions and examples):

* :mod:`repro.obs.log` — structured logging (``key=value`` or JSON
  lines, env/CLI-configurable level, silent by default);
* :mod:`repro.obs.metrics` — a process-global registry of counters,
  gauges and timing histograms, exportable as JSON or Prometheus-style
  text; the always-on instrumentation of the solvers, matching kernels
  and simulation engine feeds it;
* :mod:`repro.obs.tracing` — nested spans (``span("lp.solve", ...)`` /
  ``@traced``) that show where the wall-clock of a solve goes; opt-in
  and near-free when disabled;
* :mod:`repro.obs.ledger` — the run-provenance ledger: a durable
  append-only JSONL record (fingerprint, environment, metrics, span
  tree, outcome) of every wrapped entry-point run;
* :mod:`repro.obs.prof` — the deterministic profiler: span trees as
  folded-stack flamegraphs, Chrome ``trace_event`` JSON and self/total
  aggregation tables;
* :mod:`repro.obs.watchdog` — the perf-regression watchdog comparing
  benchmark timings against their trailing-median history.

Quickstart::

    from repro.obs import enable_tracing, get_registry, render_trace, span

    enable_tracing()
    with span("my.workload", n=12):
        ...                       # solver calls nest their own spans
    print(render_trace())
    print(get_registry().to_json())
"""

from repro.obs.ledger import (
    disable_ledger,
    enable_ledger,
    ledger_enabled,
    read_runs,
    run_diff,
)
from repro.obs.log import StructuredLogger, configure, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    counter,
    gauge,
    get_registry,
    histogram,
    render_snapshot,
    timer,
)
from repro.obs.prof import (
    aggregate,
    render_aggregate,
    to_chrome_trace,
    to_folded_stacks,
)
from repro.obs.tracing import (
    Span,
    clear_trace,
    enable_tracing,
    get_trace,
    render_trace,
    span,
    traced,
    tracing_enabled,
)
from repro.obs.watchdog import WatchReport, watch_file

__all__ = [
    "StructuredLogger",
    "configure",
    "get_logger",
    "disable_ledger",
    "enable_ledger",
    "ledger_enabled",
    "read_runs",
    "run_diff",
    "aggregate",
    "render_aggregate",
    "to_chrome_trace",
    "to_folded_stacks",
    "WatchReport",
    "watch_file",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "counter",
    "gauge",
    "get_registry",
    "histogram",
    "render_snapshot",
    "timer",
    "Span",
    "clear_trace",
    "enable_tracing",
    "get_trace",
    "render_trace",
    "span",
    "traced",
    "tracing_enabled",
]
