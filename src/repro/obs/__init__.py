"""repro.obs — structured observability for the solver stack.

A cross-cutting, zero-dependency layer (see ``docs/observability.md``
for conventions and examples):

* :mod:`repro.obs.log` — structured logging (``key=value`` or JSON
  lines, env/CLI-configurable level, silent by default);
* :mod:`repro.obs.metrics` — a process-global registry of counters,
  gauges and timing histograms, exportable as JSON or Prometheus-style
  text; the always-on instrumentation of the solvers, matching kernels
  and simulation engine feeds it;
* :mod:`repro.obs.tracing` — nested spans (``span("lp.solve", ...)`` /
  ``@traced``) that show where the wall-clock of a solve goes; opt-in
  and near-free when disabled; carries the per-request W3C trace
  context (``trace_id``/``span_id``, ``traceparent`` parsing) that
  correlates spans, ledger records, events and access-log lines;
* :mod:`repro.obs.ledger` — the run-provenance ledger: a durable
  append-only JSONL record (fingerprint, environment, metrics, span
  tree, outcome) of every wrapped entry-point run;
* :mod:`repro.obs.prof` — the deterministic profiler: span trees as
  folded-stack flamegraphs, Chrome ``trace_event`` JSON and self/total
  aggregation tables;
* :mod:`repro.obs.watchdog` — the perf-regression watchdog comparing
  benchmark timings against their trailing-median history;
* :mod:`repro.obs.events` — the live telemetry event bus: typed run
  events (``solver.iteration``, ``lp.solve``, ...) in a bounded ring
  buffer with subscribers and an opt-in JSONL sink;
* :mod:`repro.obs.resources` — the daemon-thread process resource
  sampler (RSS, CPU, GC, threads) feeding the metrics registry and the
  ``resources`` block of every ledger record;
* :mod:`repro.obs.report` — ledger analytics (grouped latency
  percentiles, error rates, cross-revision deltas) and the
  self-contained HTML/markdown run reports;
* :mod:`repro.obs.access` — the per-request structured access log of
  the solve service (``repro.obs/access/v1`` JSONL lines; opt-in and
  near-free when off);
* :mod:`repro.obs.slo` — declarative service-level objectives: latency
  p95 targets and error-rate budgets evaluated over sliding windows,
  with burn rates, ``slo.breach`` events and the ``repro-defender slo``
  CLI.

Quickstart::

    from repro.obs import enable_tracing, get_registry, render_trace, span

    enable_tracing()
    with span("my.workload", n=12):
        ...                       # solver calls nest their own spans
    print(render_trace())
    print(get_registry().to_json())
"""

from repro.obs.access import (
    access_log_enabled,
    access_log_path,
    disable_access_log,
    enable_access_log,
    log_request,
    read_access,
)
from repro.obs.events import (
    disable_events,
    enable_events,
    events_enabled,
    publish,
    read_events,
    recent,
    subscribe,
    tail_events,
    unsubscribe,
)
from repro.obs.ledger import (
    disable_ledger,
    enable_ledger,
    ledger_enabled,
    read_runs,
    run_diff,
)
from repro.obs.log import StructuredLogger, configure, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    counter,
    gauge,
    get_registry,
    histogram,
    render_snapshot,
    timer,
)
from repro.obs.prof import (
    aggregate,
    render_aggregate,
    to_chrome_trace,
    to_folded_stacks,
)
from repro.obs.report import (
    aggregate_runs,
    render_report_html,
    render_report_markdown,
    write_report,
)
from repro.obs.resources import (
    sample_once,
    sampler_running,
    start_sampler,
    stop_sampler,
)
from repro.obs.slo import (
    SloEngine,
    SloObjective,
    default_objectives,
    evaluate_slos,
    load_slo_config,
)
from repro.obs.tracing import (
    Span,
    TraceContext,
    clear_trace,
    current_trace,
    current_trace_id,
    enable_tracing,
    format_traceparent,
    get_trace,
    parse_traceparent,
    render_trace,
    span,
    start_trace,
    traced,
    tracing_enabled,
)
from repro.obs.watchdog import WatchReport, watch_file

__all__ = [
    "StructuredLogger",
    "configure",
    "get_logger",
    "disable_ledger",
    "enable_ledger",
    "ledger_enabled",
    "read_runs",
    "run_diff",
    "disable_events",
    "enable_events",
    "events_enabled",
    "publish",
    "read_events",
    "recent",
    "subscribe",
    "tail_events",
    "unsubscribe",
    "aggregate_runs",
    "render_report_html",
    "render_report_markdown",
    "write_report",
    "sample_once",
    "sampler_running",
    "start_sampler",
    "stop_sampler",
    "aggregate",
    "render_aggregate",
    "to_chrome_trace",
    "to_folded_stacks",
    "WatchReport",
    "watch_file",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "counter",
    "gauge",
    "get_registry",
    "histogram",
    "render_snapshot",
    "timer",
    "Span",
    "TraceContext",
    "clear_trace",
    "current_trace",
    "current_trace_id",
    "enable_tracing",
    "format_traceparent",
    "get_trace",
    "parse_traceparent",
    "render_trace",
    "span",
    "start_trace",
    "traced",
    "tracing_enabled",
    "access_log_enabled",
    "access_log_path",
    "disable_access_log",
    "enable_access_log",
    "log_request",
    "read_access",
    "SloEngine",
    "SloObjective",
    "default_objectives",
    "evaluate_slos",
    "load_slo_config",
]
