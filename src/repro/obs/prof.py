"""Deterministic profiler: span trees → flamegraphs, Chrome traces, tables.

The tracer (:mod:`repro.obs.tracing`) already collects a nested span tree
for every instrumented solve; this module turns that tree into the three
standard profiler artifacts **without touching any instrumented site**:

* :func:`aggregate` / :func:`render_aggregate` — per-span-name call
  counts with *total* (inclusive) and *self* (exclusive) wall-clock,
  the table ``repro-defender stats`` and ``profile`` print;
* :func:`to_folded_stacks` — Brendan-Gregg folded-stack lines
  (``root;child;leaf <self µs>``) consumable by ``flamegraph.pl`` and
  speedscope;
* :func:`to_chrome_trace` — a Chrome ``trace_event`` JSON document
  (``chrome://tracing`` / Perfetto "complete" events, ``ph: "X"``) with
  span attributes carried through as event ``args``.

Because spans are measured, not sampled, the exports are exact and
deterministic for a given run: same spans in, byte-identical JSON out.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

import repro.obs.metrics as _metrics
import repro.obs.tracing as _tracing
from repro.obs.tracing import Span

__all__ = [
    "SpanStats",
    "aggregate",
    "render_aggregate",
    "to_folded_stacks",
    "to_chrome_trace",
    "write_folded_stacks",
    "write_chrome_trace",
]

CHROME_TRACE_GENERATOR = "repro.obs.prof"


class SpanStats:
    """Aggregated timing of every span sharing one name.

    ``total_s`` is inclusive wall-clock (children included); ``self_s``
    is exclusive (children subtracted) — the flamegraph width.
    """

    __slots__ = ("name", "calls", "total_s", "self_s", "errors")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.total_s = 0.0
        self.self_s = 0.0
        self.errors = 0

    def __repr__(self) -> str:
        return (
            f"SpanStats({self.name!r}, calls={self.calls}, "
            f"total_s={self.total_s:.6f}, self_s={self.self_s:.6f})"
        )


def _self_seconds(span: Span) -> float:
    return max(0.0, span.duration_s - sum(c.duration_s for c in span.children))


def aggregate(spans: Optional[List[Span]] = None) -> Dict[str, SpanStats]:
    """Fold a span forest into per-name call/total/self statistics.

    Defaults to this thread's collected trace.  ``total_s`` sums the
    inclusive duration over *top-level occurrences* of a name only (a
    recursive span is not double-counted into its own total), while
    ``self_s`` and ``calls`` accumulate over every occurrence.
    """
    with _metrics.timer("prof.aggregate.seconds"):
        if spans is None:
            spans = _tracing.get_trace()
        stats: Dict[str, SpanStats] = {}

        def visit(span: Span, ancestry: frozenset) -> None:
            entry = stats.get(span.name)
            if entry is None:
                entry = stats[span.name] = SpanStats(span.name)
            entry.calls += 1
            entry.self_s += _self_seconds(span)
            if span.status != "ok":
                entry.errors += 1
            if span.name not in ancestry:
                entry.total_s += span.duration_s
            child_ancestry = ancestry | {span.name}
            for child in span.children:
                visit(child, child_ancestry)

        for root in spans:
            visit(root, frozenset())
    return stats


def render_aggregate(stats: Dict[str, SpanStats]) -> str:
    """Aligned text table of an :func:`aggregate` result, hottest first."""
    if not stats:
        return "(no spans recorded)"
    with _metrics.timer("prof.render.seconds"):
        rows = sorted(stats.values(), key=lambda s: (-s.self_s, s.name))
        width = max(len("span"), max(len(s.name) for s in rows))
        lines = [
            f"{'span'.ljust(width)}  {'calls':>6}  {'total ms':>10}  "
            f"{'self ms':>10}  {'self %':>6}"
        ]
        grand_self = sum(s.self_s for s in rows) or 1.0
        for s in rows:
            share = 100.0 * s.self_s / grand_self
            flag = f"  errors={s.errors}" if s.errors else ""
            lines.append(
                f"{s.name.ljust(width)}  {s.calls:>6}  "
                f"{s.total_s * 1e3:>10.3f}  "
                f"{s.self_s * 1e3:>10.3f}  {share:>5.1f}%{flag}"
            )
    return "\n".join(lines)


def to_folded_stacks(spans: Optional[List[Span]] = None) -> str:
    """Folded-stack flamegraph lines: ``a;b;c <self-µs>``, sorted.

    Self-time is reported in integer microseconds (the "sample count" a
    flamegraph renderer expects); identical stacks are merged.  Feed the
    output straight to ``flamegraph.pl`` or paste into speedscope.
    """
    with _metrics.timer("prof.export.seconds"):
        if spans is None:
            spans = _tracing.get_trace()
        folded: Dict[str, int] = {}

        def visit(span: Span, prefix: str) -> None:
            stack = f"{prefix};{span.name}" if prefix else span.name
            micros = int(round(_self_seconds(span) * 1e6))
            if micros > 0:
                folded[stack] = folded.get(stack, 0) + micros
            for child in span.children:
                visit(child, stack)

        for root in spans:
            visit(root, "")
        lines = [f"{stack} {count}" for stack, count in sorted(folded.items())]
    return "\n".join(lines) + ("\n" if lines else "")


def to_chrome_trace(spans: Optional[List[Span]] = None) -> Dict[str, object]:
    """The span forest as a Chrome ``trace_event`` JSON document (a dict).

    Every span becomes one "complete" event (``ph: "X"``) with
    microsecond ``ts``/``dur`` relative to the earliest span, its
    attributes (plus error status) under ``args``.  Load the serialized
    document in ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    with _metrics.timer("prof.export.seconds"):
        if spans is None:
            spans = _tracing.get_trace()
        events: List[Dict[str, object]] = []
        origin = min((s.start for s in spans), default=0.0)

        def visit(span: Span) -> None:
            args: Dict[str, object] = {
                str(k): v for k, v in span.attributes.items()
            }
            if span.status != "ok":
                args["error"] = True
                if span.error_type:
                    args["error_type"] = span.error_type
            events.append({
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "ts": round((span.start - origin) * 1e6, 3),
                "dur": round(span.duration_s * 1e6, 3),
                "pid": 1,
                "tid": 1,
                "args": args,
            })
            for child in span.children:
                visit(child)

        for root in spans:
            visit(root)
        # Parents start at (or before) their children and last longer, so
        # sorting by (start, -duration) writes each stack top-down.
        events.sort(key=lambda e: (e["ts"], -e["dur"]))  # type: ignore[operator]
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": CHROME_TRACE_GENERATOR},
    }


def write_folded_stacks(path, spans: Optional[List[Span]] = None) -> Path:
    """Write :func:`to_folded_stacks` output to ``path``; returns it."""
    with _metrics.timer("prof.write.seconds"):
        target = Path(path)
        target.write_text(to_folded_stacks(spans), encoding="utf-8")
    return target


def write_chrome_trace(path, spans: Optional[List[Span]] = None) -> Path:
    """Serialize :func:`to_chrome_trace` to ``path``; returns it."""
    with _metrics.timer("prof.write.seconds"):
        target = Path(path)
        target.write_text(
            json.dumps(to_chrome_trace(spans), indent=2, sort_keys=True,
                       default=str) + "\n",
            encoding="utf-8",
        )
    return target
