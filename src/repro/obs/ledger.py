"""Run-provenance ledger: a durable, append-only record of every solve.

PR 1 made runs *observable*; this module makes them *durable*.  Every
wrapped entry point — ``equilibria.solve``, each ``repro.solvers`` route,
the fuzz runner, the benchmark session — appends one JSON line to a
ledger file under ``.repro/ledger/`` describing what ran, on what, where,
for how long and with what outcome:

* a **content-addressed run id** (sha256 over the record itself);
* a **game/config fingerprint** (sha256 of the canonical
  :func:`repro.core.serialize.game_to_json` dump, so identical games are
  identical fingerprints across machines and sessions);
* an **environment capture** (python, platform, CPU count, git revision);
* the full **metrics snapshot** and the **span tree** collected during
  the run;
* the **trace id** correlating the record with the run's spans, events
  and (for served requests) the access-log line and ``X-Request-Id``
  response header (see :mod:`repro.obs.tracing`);
* the **outcome**: ``ok`` or ``error`` with the exception type/message.

The ledger is **opt-in and near-free when off** (the default): wrapped
entry points call :func:`run`, which returns a shared no-op context
manager unless the ledger was enabled via :func:`enable_ledger`, the CLI
``--ledger`` flag, or ``REPRO_LEDGER=1`` (``REPRO_LEDGER_DIR`` overrides
the directory).  Records go to one JSONL file per entry point
(``equilibria.solve.jsonl``, ...), append-only — nothing is ever
rewritten, so the files are a tamper-evident perf/provenance trajectory.

Reading back: :func:`read_runs` (with entry-point / status / fingerprint
filters), :func:`find_run` and :func:`run_diff` (field-by-field and
metric-by-metric comparison of two records).
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
import threading
from pathlib import Path
from time import perf_counter, time
from typing import Any, Dict, Iterator, List, Optional

import repro.obs.events as _events
import repro.obs.metrics as _metrics
import repro.obs.resources as _resources
import repro.obs.tracing as _tracing
from repro.obs.log import get_logger

__all__ = [
    "RECORD_SCHEMA",
    "RECORD_SCHEMA_V1",
    "RECORD_SCHEMA_V2",
    "DEFAULT_LEDGER_DIR",
    "enable_ledger",
    "disable_ledger",
    "ledger_enabled",
    "ledger_directory",
    "run",
    "canonical_json",
    "canonical_sha256",
    "fingerprint_game",
    "capture_environment",
    "read_runs",
    "find_run",
    "run_diff",
]

_log = get_logger("repro.obs.ledger")

RECORD_SCHEMA = "repro.obs/ledger-record/v3"
#: Previous record schemas, still accepted by the readers (v2 added the
#: ``resources`` block; v3 added the ``trace_id`` correlation field —
#: every other field is unchanged).
RECORD_SCHEMA_V2 = "repro.obs/ledger-record/v2"
RECORD_SCHEMA_V1 = "repro.obs/ledger-record/v1"
DEFAULT_LEDGER_DIR = ".repro/ledger"


class _LedgerState:
    """Process-global on/off switch and target directory."""

    __slots__ = ("enabled", "directory", "lock")

    def __init__(self) -> None:
        self.enabled = False  # repro: lock(lock)
        self.directory = Path(  # repro: lock(lock)
            os.environ.get("REPRO_LEDGER_DIR", DEFAULT_LEDGER_DIR)
        )
        self.lock = threading.Lock()
        if os.environ.get("REPRO_LEDGER", "") not in ("", "0", "false", "no"):
            self.enabled = True


_STATE = _LedgerState()


def enable_ledger(directory: Optional[os.PathLike] = None) -> None:
    """Start recording wrapped runs (optionally into ``directory``)."""
    with _STATE.lock:
        if directory is not None:
            _STATE.directory = Path(directory)
        _STATE.enabled = True


def disable_ledger() -> None:
    """Stop recording wrapped runs."""
    with _STATE.lock:
        _STATE.enabled = False


def ledger_enabled() -> bool:
    """True when wrapped entry points are currently being recorded."""
    with _STATE.lock:
        return _STATE.enabled


def ledger_directory() -> Path:
    """The directory records are appended under."""
    with _STATE.lock:
        return _STATE.directory


# --------------------------------------------------------------------------
# fingerprints and environment capture


def _canonicalize(value: Any) -> Any:
    """Recursively reduce ``value`` to deterministic JSON-encodable data.

    The previous encoder leaned on ``json.dumps(..., default=str)``,
    which hashed sets in ``PYTHONHASHSEED``-dependent iteration order and
    silently stringified anything unknown — two runs of the same record
    could produce different content addresses.  This canonicalizer is
    explicit instead:

    * dicts keep their (string) keys — ``sort_keys`` orders them at
      encode time; non-string keys are rejected;
    * lists/tuples canonicalize elementwise;
    * sets/frozensets become lists sorted by their canonical JSON
      encoding, independent of hash seed;
    * non-finite floats become tagged objects (``{"__nonfinite__":
      "nan" | "inf" | "-inf"}``) so the document never carries the
      non-RFC ``NaN``/``Infinity`` tokens;
    * any other type raises ``TypeError`` — an unknown type in a record
      is a bug at the call site, not something to stringify silently.
    """
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        if value != value:
            return {"__nonfinite__": "nan"}
        if value == float("inf"):
            return {"__nonfinite__": "inf"}
        if value == float("-inf"):
            return {"__nonfinite__": "-inf"}
        return value
    if isinstance(value, dict):
        for key in value:
            if not isinstance(key, str):
                raise TypeError(
                    f"canonical JSON requires string keys; got {key!r}"
                )
        return {key: _canonicalize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonicalize(item) for item in value]
    if isinstance(value, (set, frozenset)):
        members = [_canonicalize(item) for item in value]
        return sorted(
            members,
            key=lambda m: json.dumps(m, sort_keys=True, separators=(",", ":")),
        )
    raise TypeError(
        f"cannot canonically encode {type(value).__name__!r} value {value!r}"
    )


def canonical_json(payload: Any) -> str:
    """The canonical JSON encoding of ``payload`` (see :func:`_canonicalize`).

    Key-sorted, whitespace-free, hash-seed independent; raises
    ``TypeError`` on values with no canonical encoding.  The result cache
    (:mod:`repro.cache`) stores this text as the human-readable half of
    its ``(fingerprint, solver, params)`` key.
    """
    return json.dumps(_canonicalize(payload), sort_keys=True,
                      separators=(",", ":"), allow_nan=False)


def canonical_sha256(payload: Any) -> str:
    """sha256 hex digest of the canonical JSON encoding of ``payload``.

    Deterministic across processes and hash seeds: see
    :func:`_canonicalize` for the exact normalization.  Raises
    ``TypeError`` on values with no canonical encoding.
    """
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


#: Backward-compatible alias — tools/check_obs.py and older callers used
#: the underscored name before the canonicalizer became public API.
_canonical_sha256 = canonical_sha256


def fingerprint_game(game) -> Dict[str, Any]:
    """Content fingerprint of a plain or weighted tuple game.

    Hashes the canonical serialization, so two structurally identical
    games fingerprint identically regardless of construction order — and
    two :class:`~repro.weighted.game.WeightedTupleGame` instances that
    differ only in their vertex weights fingerprint *differently* (the
    serialization carries the weight vector).
    """
    # Deliberate layering inversion (obs -> core), deferred to call time:
    # the ledger is layer 0 so every solver may import it, and only runs
    # that actually record pay for the serialization machinery.
    from repro.core.serialize import game_to_json

    return {
        "kind": (
            "weighted-tuple-game"
            if getattr(game, "weights", None) is not None
            else "tuple-game"
        ),
        "sha256": hashlib.sha256(game_to_json(game).encode("utf-8")).hexdigest(),
        "n": game.graph.n,
        "m": game.graph.m,
        "k": game.k,
        "nu": game.nu,
    }


_GIT_REV: Optional[str] = None


def _git_revision() -> str:
    """The current short git revision (cached; ``"unknown"`` off-repo)."""
    global _GIT_REV
    if _GIT_REV is None:
        try:
            _GIT_REV = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True, text=True, timeout=5,
                cwd=Path(__file__).resolve().parent,
            ).stdout.strip() or "unknown"
        except (OSError, subprocess.SubprocessError):
            _GIT_REV = "unknown"
    return _GIT_REV


def capture_environment() -> Dict[str, Any]:
    """Where this run happened: interpreter, platform, CPUs, git rev."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "git_rev": _git_revision(),
        "argv0": Path(sys.argv[0]).name if sys.argv else "",
    }


# --------------------------------------------------------------------------
# recording


class _NullRunContext:
    """Shared no-op context manager returned while the ledger is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_RUN = _NullRunContext()


class _RunContext:
    """Live run recorder: times the block, snapshots telemetry on exit.

    Also the run-boundary publisher for the telemetry bus: a
    ``run.start`` / ``run.end`` event pair brackets every wrapped run
    while :mod:`repro.obs.events` is enabled — even for runs the ledger
    itself is not recording (``record=False``)."""

    __slots__ = ("entry_point", "fingerprint", "attributes", "record_run",
                 "_game", "_start", "_started_at", "_trace_mark",
                 "_auto_trace", "_trace_id")

    def __init__(
        self,
        entry_point: str,
        game,
        fingerprint: Optional[Dict[str, Any]],
        attributes: Dict[str, Any],
        record_run: bool = True,
    ) -> None:
        self.entry_point = entry_point
        self.fingerprint = fingerprint
        self.attributes = attributes
        self.record_run = record_run
        self._game = game
        self._start = 0.0
        self._started_at = 0.0
        self._trace_mark = 0
        self._auto_trace = False
        self._trace_id: Optional[str] = None

    def __enter__(self) -> "_RunContext":
        if self.record_run:
            if self.fingerprint is None and self._game is not None:
                self.fingerprint = fingerprint_game(self._game)
            # Runs always carry a span tree: turn tracing on for the
            # duration when nobody else has.
            if not _tracing.tracing_enabled():
                _tracing.enable_tracing(True)
                self._auto_trace = True
            # Correlation: recorded runs always carry a trace id — the
            # request's when one is active (the serve layer starts a
            # trace per HTTP request), a freshly minted one otherwise.
            self._trace_id = _tracing.current_trace_id(create=True)
            self._trace_mark = len(_tracing.get_trace())
            _resources.start_sampler()
        else:
            self._trace_id = _tracing.current_trace_id()
        _events.publish("run.start", entry_point=self.entry_point,
                        trace_id=self._trace_id)
        self._started_at = time()
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = perf_counter() - self._start
        status = "ok" if exc_type is None else "error"
        _events.publish("run.end", entry_point=self.entry_point,
                        status=status, duration_s=duration,
                        trace_id=self._trace_id)
        if not self.record_run:
            return False
        try:
            spans = [
                s.to_dict() for s in _tracing.get_trace()[self._trace_mark:]
            ]
            resources = _resources.snapshot()
            record: Dict[str, Any] = {
                "schema": RECORD_SCHEMA,
                "entry_point": self.entry_point,
                "started_at": self._started_at,
                "duration_s": duration,
                "status": status,
                "trace_id": self._trace_id,
                "fingerprint": self.fingerprint,
                "attributes": self.attributes,
                "env": capture_environment(),
                "metrics": _metrics.get_registry().snapshot(),
                "resources": resources,
                "spans": spans,
            }
            if exc_type is not None:
                record["error"] = {
                    "type": exc_type.__name__,
                    "message": str(exc),
                }
            record["run_id"] = _canonical_sha256(record)[:16]
            _append(record)
        except Exception as inner:  # recording must never break the solve
            _metrics.counter("ledger.errors.count").inc()
            _log.warning(
                "ledger.append.failed", entry_point=self.entry_point,
                error=type(inner).__name__,
            )
        finally:
            # Cleanup must survive a failed record build: a serialization
            # error must not leave auto-enabled tracing (or the sampler)
            # running for the rest of the process.
            if self._auto_trace:
                _tracing.enable_tracing(False)
            _resources.stop_sampler()
        return False


def _record_path(entry_point: str) -> Path:
    safe = "".join(c if c.isalnum() or c in "._-" else "_"
                   for c in entry_point)
    return ledger_directory() / f"{safe}.jsonl"


def _append(record: Dict[str, Any]) -> Path:
    """Append one record to its entry point's JSONL file (atomic line)."""
    with _metrics.timer("ledger.append.seconds"):
        path = _record_path(record["entry_point"])
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        with _STATE.lock:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(path, "a", encoding="utf-8") as handle:
                handle.write(line)
        _metrics.counter("ledger.records.count").inc()
    return path


def run(entry_point: str, game=None,
        fingerprint: Optional[Dict[str, Any]] = None, **attributes):
    """Record one run of ``entry_point`` in the ledger.

    Usage (this is what the instrumented entry points do)::

        with ledger.run("equilibria.solve", game=game, seed=seed):
            ...solve...

    Passing ``game`` fingerprints it via :func:`fingerprint_game`;
    game-less workloads (fuzz batches, benchmark sessions) pass an
    explicit ``fingerprint`` dict instead.  Extra keyword arguments land
    in the record's ``attributes``.  While the ledger is disabled (the
    default) this returns a shared no-op context manager — unless the
    telemetry bus is on, in which case a lightweight context still
    publishes the ``run.start`` / ``run.end`` event pair without
    fingerprinting, tracing or appending anything.
    """
    # Deliberate benign race: a stale read of the switch misclassifies
    # one run around enable/disable and keeps the disabled path to a
    # single attribute load on every wrapped entry point.
    if _STATE.enabled:  # repro: noqa[LCK001]
        return _RunContext(entry_point, game, fingerprint, attributes)
    return _RunContext(entry_point, game, fingerprint, attributes,
                       record_run=False) \
        if _events.events_enabled() else _NULL_RUN


# --------------------------------------------------------------------------
# reading back


def _iter_records(directory: Path) -> Iterator[Dict[str, Any]]:
    for path in sorted(directory.glob("*.jsonl")):
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except OSError:
            continue
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # Torn write at the tail of an append-only log: tolerated,
                # but counted and logged so silent corruption is visible.
                _metrics.counter("ledger.read.corrupt_lines.count").inc()
                _log.warning("ledger.read.corrupt_line", file=path.name)
                continue
            if isinstance(record, dict):
                yield record


def read_runs(
    directory: Optional[os.PathLike] = None,
    entry_point: Optional[str] = None,
    status: Optional[str] = None,
    fingerprint_sha256: Optional[str] = None,
    since: Optional[float] = None,
    limit: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Read ledger records, oldest first, with optional filters.

    ``entry_point`` / ``status`` filter exactly; ``fingerprint_sha256``
    matches the game-fingerprint hash; ``since`` keeps runs whose
    ``started_at`` is at or after the given UNIX timestamp; ``limit``
    keeps only the *newest* matching records.
    """
    with _metrics.timer("ledger.read.seconds"):
        root = Path(directory) if directory is not None \
            else ledger_directory()
        records = []
        if root.is_dir():
            for record in _iter_records(root):
                if entry_point is not None \
                        and record.get("entry_point") != entry_point:
                    continue
                if status is not None and record.get("status") != status:
                    continue
                if fingerprint_sha256 is not None:
                    fp = record.get("fingerprint") or {}
                    if fp.get("sha256") != fingerprint_sha256:
                        continue
                if since is not None \
                        and record.get("started_at", 0.0) < since:
                    continue
                records.append(record)
        records.sort(key=lambda r: r.get("started_at", 0.0))
        if limit is not None and limit >= 0:
            records = records[len(records) - min(limit, len(records)):]
    return records


def find_run(run_id: str,
             directory: Optional[os.PathLike] = None) -> Optional[Dict[str, Any]]:
    """The record with the given (possibly abbreviated) run id, or None.

    An abbreviation matching more than one distinct run id raises
    ``ValueError`` listing the candidates — silently returning the first
    of several matches would diff or report the wrong run.
    """
    with _metrics.timer("ledger.find.seconds"):
        matches: List[Dict[str, Any]] = []
        seen_ids: List[str] = []
        for record in read_runs(directory=directory):
            rid = str(record.get("run_id", ""))
            if rid.startswith(run_id):
                if rid not in seen_ids:
                    matches.append(record)
                    seen_ids.append(rid)
        if len(matches) > 1:
            raise ValueError(
                f"run id prefix {run_id!r} is ambiguous: matches "
                + ", ".join(sorted(seen_ids))
            )
    return matches[0] if matches else None


def _metric_deltas(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, float]:
    deltas: Dict[str, float] = {}
    for name in sorted(set(a) | set(b)):
        va, vb = a.get(name, 0.0), b.get(name, 0.0)
        if isinstance(va, dict) or isinstance(vb, dict):  # histograms
            va = (va or {}).get("mean", 0.0)
            vb = (vb or {}).get("mean", 0.0)
        if va != vb:
            deltas[name] = float(vb) - float(va)
    return deltas


def run_diff(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
    """Structured comparison of two ledger records.

    Returns duration delta, whether the game fingerprints match, the
    environment fields that changed, and per-metric deltas (counter and
    gauge values; histogram means).
    """
    with _metrics.timer("ledger.diff.seconds"):
        fp_a = (a.get("fingerprint") or {}).get("sha256")
        fp_b = (b.get("fingerprint") or {}).get("sha256")
        env_a, env_b = a.get("env", {}), b.get("env", {})
        env_changes = {
            key: {"a": env_a.get(key), "b": env_b.get(key)}
            for key in sorted(set(env_a) | set(env_b))
            if env_a.get(key) != env_b.get(key)
        }
        metrics_a = a.get("metrics", {})
        metrics_b = b.get("metrics", {})
    return {
        "run_a": a.get("run_id"),
        "run_b": b.get("run_id"),
        "entry_points": [a.get("entry_point"), b.get("entry_point")],
        "same_fingerprint": fp_a is not None and fp_a == fp_b,
        "duration_delta_s": (
            b.get("duration_s", 0.0) - a.get("duration_s", 0.0)
        ),
        "env_changes": env_changes,
        "metrics": {
            "counters": _metric_deltas(
                metrics_a.get("counters", {}), metrics_b.get("counters", {})
            ),
            "gauges": _metric_deltas(
                metrics_a.get("gauges", {}), metrics_b.get("gauges", {})
            ),
            "histogram_means": _metric_deltas(
                metrics_a.get("histograms", {}),
                metrics_b.get("histograms", {}),
            ),
        },
    }
